//! The gradient-graph builder.

use rdg_graph::{
    CallSiteId, Graph, GraphError, GraphRef, Module, NodeId, OpKind, PortRef, SubGraph, SubGraphId,
};
use rdg_tensor::{DType, Tensor};
use std::collections::{HashMap, HashSet};

/// Signature of a declared (possibly not-yet-built) gradient SubGraph.
#[derive(Clone, Debug)]
struct GradDecl {
    /// Id of `∇S` in the extended module.
    id: SubGraphId,
    /// Forward output indices that are `f32` (one `∇S` input per entry).
    dy_outputs: Vec<usize>,
    /// Forward input indices that are `f32` (one `∇S` output per entry).
    f32_inputs: Vec<usize>,
}

/// Pending gradient-body construction jobs.
enum Job {
    /// Build the body of `∇S` for SubGraph `fwd`.
    Sub { fwd: SubGraphId, decl: GradDecl },
    /// Build the extended gradient of one cond branch: gradients of `fwd`,
    /// padded with pass-through zeros for `other`'s inputs so both branch
    /// gradients share an output signature.
    Branch {
        fwd: SubGraphId,
        other: SubGraphId,
        /// `true` → outputs are `[grads(fwd) ++ zeros(other)]`,
        /// `false` → `[zeros(other) ++ grads(fwd)]`.
        self_first: bool,
        id: SubGraphId,
    },
}

/// State for differentiating one forward graph into one output graph.
struct DiffState {
    /// Snapshot of the forward graph.
    fwd: Graph,
    /// `None` → the main graph (gradient nodes reference forward ports
    /// directly); `Some(id)` → a SubGraph (references go through the cache).
    fwd_sub: Option<SubGraphId>,
    /// Graph receiving gradient nodes (the main graph itself, or a new one).
    out: Graph,
    /// Pending gradient contributions per forward port.
    contrib: HashMap<(u32, u16), Vec<PortRef>>,
    /// Memo for forward-value references.
    vref: HashMap<(u32, u16), PortRef>,
    /// Memo for forward-shape (zeros) references.
    zref: HashMap<(u32, u16), PortRef>,
    /// Gradients that reached `Input` nodes, by forward input index.
    input_grads: HashMap<usize, PortRef>,
}

impl DiffState {
    fn n1(&mut self, op: OpKind, inputs: Vec<PortRef>, dt: DType) -> PortRef {
        PortRef::of(self.out.push_node(op, inputs, vec![dt]))
    }

    fn add_contrib(&mut self, fwd_port: PortRef, g: PortRef) {
        self.contrib
            .entry((fwd_port.node.0, fwd_port.port))
            .or_default()
            .push(g);
    }

    fn finalize(&mut self, node: NodeId, port: u16) -> Option<PortRef> {
        let v = self.contrib.remove(&(node.0, port))?;
        let mut it = v.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |acc, g| {
            self.n1(OpKind::Add, vec![acc, g], DType::F32)
        }))
    }
}

/// Builds gradient graphs across a whole module.
struct GradBuilder {
    module: Module,
    memo: HashMap<SubGraphId, Option<GradDecl>>,
    branch_memo: HashMap<(SubGraphId, bool), SubGraphId>,
    pending: Vec<Job>,
    keep: HashMap<GraphRef, HashSet<(NodeId, u16)>>,
    shape_keep: HashMap<GraphRef, HashSet<(NodeId, u16)>>,
}

/// Extends `fwd` with backpropagation of `loss` (a scalar `f32` port in the
/// main graph), returning the training module.
///
/// The returned module keeps the forward outputs unchanged; executing it in
/// training mode additionally fills the gradient store. Keep-sets for the
/// backprop cache are attached to the module.
pub fn build_training_module(fwd: &Module, loss: PortRef) -> rdg_graph::Result<Module> {
    fwd.validate()?;
    if loss.node.0 as usize >= fwd.main.len() {
        return Err(GraphError::invalid(
            "loss port does not exist in the main graph",
        ));
    }
    if fwd.main.port_dtype(loss) != DType::F32 {
        return Err(GraphError::invalid("loss must be an f32 port"));
    }
    let mut gb = GradBuilder {
        module: fwd.clone(),
        memo: HashMap::new(),
        branch_memo: HashMap::new(),
        pending: Vec::new(),
        keep: HashMap::new(),
        shape_keep: HashMap::new(),
    };
    gb.diff_main(loss)?;
    while let Some(job) = gb.pending.pop() {
        match job {
            Job::Sub { fwd, decl } => gb.build_sub(fwd, decl)?,
            Job::Branch {
                fwd,
                other,
                self_first,
                id,
            } => gb.build_branch(fwd, other, self_first, id)?,
        }
    }
    gb.module.keep_sets = gb.keep;
    gb.module.shape_keep_sets = gb.shape_keep;
    // Reverse-mode rules emit contributions speculatively; chains whose
    // tail reaches a gradient-free origin (e.g. a ZerosDyn state table)
    // end up dead. Prune them so the generated module is analyzer-clean
    // and the executor skips the wasted kernels.
    rdg_graph::analyze::prune_dead(&mut gb.module);
    gb.module.validate()?;
    Ok(gb.module)
}

impl GradBuilder {
    // -- forward-value references -----------------------------------------

    /// A port in `st.out` carrying the forward value of `p`.
    fn ref_value(&mut self, st: &mut DiffState, p: PortRef) -> PortRef {
        if let Some(&r) = st.vref.get(&(p.node.0, p.port)) {
            return r;
        }
        let dt = st.fwd.port_dtype(p);
        let r = match &st.fwd.node(p.node).op {
            OpKind::Const(t) => st.n1(OpKind::Const(t.clone()), vec![], dt),
            OpKind::Param(pid) => st.n1(OpKind::Param(*pid), vec![], dt),
            _ => match st.fwd_sub {
                None => p, // main graph: the forward node is in `out` itself
                Some(sub) => {
                    self.keep
                        .entry(GraphRef::Sub(sub))
                        .or_default()
                        .insert((p.node, p.port));
                    st.n1(OpKind::FwdValue { of: p }, vec![], dt)
                }
            },
        };
        st.vref.insert((p.node.0, p.port), r);
        r
    }

    /// A port in `st.out` carrying zeros shaped like the forward value of
    /// `p` (a shape witness; only the shape is retained for SubGraphs).
    fn ref_zeros(&mut self, st: &mut DiffState, p: PortRef) -> PortRef {
        if let Some(&r) = st.zref.get(&(p.node.0, p.port)) {
            return r;
        }
        let r = match st.fwd_sub {
            None => st.n1(OpKind::ZerosLike, vec![p], DType::F32),
            Some(sub) => {
                self.shape_keep
                    .entry(GraphRef::Sub(sub))
                    .or_default()
                    .insert((p.node, p.port));
                st.n1(OpKind::FwdZeros { of: p }, vec![], DType::F32)
            }
        };
        st.zref.insert((p.node.0, p.port), r);
        r
    }

    // -- declarations ------------------------------------------------------

    /// Declares `∇S` (allocating its id and signature) without building the
    /// body; returns `None` when no gradient can flow into `S` (no `f32`
    /// outputs).
    fn declare_grad(&mut self, sub: SubGraphId) -> Option<GradDecl> {
        if let Some(d) = self.memo.get(&sub) {
            return d.clone();
        }
        let sg = &self.module.subgraphs[sub.0 as usize];
        let dy_outputs: Vec<usize> = sg
            .output_dtypes
            .iter()
            .enumerate()
            .filter(|(_, &dt)| dt == DType::F32)
            .map(|(i, _)| i)
            .collect();
        if dy_outputs.is_empty() {
            self.memo.insert(sub, None);
            return None;
        }
        let f32_inputs: Vec<usize> = sg
            .input_dtypes
            .iter()
            .enumerate()
            .filter(|(_, &dt)| dt == DType::F32)
            .map(|(i, _)| i)
            .collect();
        let name = format!("grad_{}", sg.name);
        let n_in = sg.input_dtypes.len();
        let id = SubGraphId(self.module.subgraphs.len() as u32);
        let mut grad_input_map = vec![None; n_in];
        for (j, &i) in f32_inputs.iter().enumerate() {
            grad_input_map[i] = Some(j);
        }
        self.module.subgraphs.push(SubGraph {
            id,
            name,
            graph: Graph::new(),
            input_dtypes: vec![DType::F32; dy_outputs.len()],
            explicit_inputs: dy_outputs.len(),
            output_dtypes: vec![DType::F32; f32_inputs.len()],
            grad_of: Some(sub),
            grad_input_map,
        });
        let decl = GradDecl {
            id,
            dy_outputs,
            f32_inputs,
        };
        self.memo.insert(sub, Some(decl.clone()));
        self.pending.push(Job::Sub {
            fwd: sub,
            decl: decl.clone(),
        });
        Some(decl)
    }

    /// Declares the extended gradient of cond branch `fwd` (see [`Job::Branch`]).
    fn declare_branch_grad(
        &mut self,
        fwd: SubGraphId,
        other: SubGraphId,
        self_first: bool,
    ) -> SubGraphId {
        if let Some(&id) = self.branch_memo.get(&(fwd, self_first)) {
            return id;
        }
        let fsg = &self.module.subgraphs[fwd.0 as usize];
        let osg = &self.module.subgraphs[other.0 as usize];
        let n_dys = fsg
            .output_dtypes
            .iter()
            .filter(|&&d| d == DType::F32)
            .count();
        let n_self = fsg
            .input_dtypes
            .iter()
            .filter(|&&d| d == DType::F32)
            .count();
        let n_other = osg
            .input_dtypes
            .iter()
            .filter(|&&d| d == DType::F32)
            .count();
        let name = format!("grad_{}", fsg.name);
        let id = SubGraphId(self.module.subgraphs.len() as u32);
        self.module.subgraphs.push(SubGraph {
            id,
            name,
            graph: Graph::new(),
            input_dtypes: vec![DType::F32; n_dys + n_other],
            explicit_inputs: n_dys + n_other,
            output_dtypes: vec![DType::F32; n_self + n_other],
            grad_of: Some(fwd),
            grad_input_map: Vec::new(),
        });
        self.branch_memo.insert((fwd, self_first), id);
        self.pending.push(Job::Branch {
            fwd,
            other,
            self_first,
            id,
        });
        id
    }

    // -- body construction ---------------------------------------------------

    fn diff_main(&mut self, loss: PortRef) -> rdg_graph::Result<()> {
        let snapshot = self.module.main.clone();
        let out = std::mem::take(&mut self.module.main);
        let mut st = DiffState {
            fwd: snapshot,
            fwd_sub: None,
            out,
            contrib: HashMap::new(),
            vref: HashMap::new(),
            zref: HashMap::new(),
            input_grads: HashMap::new(),
        };
        // Seed dL/dL = 1. `OnesLike(loss)` rather than a constant: the data
        // dependency on the loss port orders the entire backward sweep after
        // the forward frames whose activations it reads from the cache (a
        // forward InvokeOp completes only when its whole frame subtree has
        // completed, i.e. after all its cache writes).
        let one = st.n1(OpKind::OnesLike, vec![loss], DType::F32);
        st.add_contrib(loss, one);
        self.diff_body(&mut st)?;
        self.module.main = st.out;
        Ok(())
    }

    fn build_sub(&mut self, fwd: SubGraphId, decl: GradDecl) -> rdg_graph::Result<()> {
        let fsg = self.module.subgraphs[fwd.0 as usize].clone();
        let mut st = DiffState {
            fwd: fsg.graph.clone(),
            fwd_sub: Some(fwd),
            out: Graph::new(),
            contrib: HashMap::new(),
            vref: HashMap::new(),
            zref: HashMap::new(),
            input_grads: HashMap::new(),
        };
        for (j, &k) in decl.dy_outputs.iter().enumerate() {
            let dy = PortRef::of(st.out.push_node(
                OpKind::Input {
                    index: j,
                    dtype: DType::F32,
                },
                vec![],
                vec![DType::F32],
            ));
            st.add_contrib(fsg.graph.outputs[k], dy);
        }
        self.diff_body(&mut st)?;
        let mut outputs = Vec::with_capacity(decl.f32_inputs.len());
        for &i in &decl.f32_inputs {
            let port = match st.input_grads.get(&i) {
                Some(&g) => g,
                None => {
                    let fwd_in = PortRef::of(fsg.graph.input_nodes[i]);
                    self.ref_zeros(&mut st, fwd_in)
                }
            };
            outputs.push(port);
        }
        st.out.outputs = outputs;
        self.module.subgraphs[decl.id.0 as usize].graph = st.out;
        Ok(())
    }

    fn build_branch(
        &mut self,
        fwd: SubGraphId,
        other: SubGraphId,
        self_first: bool,
        id: SubGraphId,
    ) -> rdg_graph::Result<()> {
        let fsg = self.module.subgraphs[fwd.0 as usize].clone();
        let osg = self.module.subgraphs[other.0 as usize].clone();
        let dy_outputs: Vec<usize> = fsg
            .output_dtypes
            .iter()
            .enumerate()
            .filter(|(_, &dt)| dt == DType::F32)
            .map(|(i, _)| i)
            .collect();
        let self_inputs: Vec<usize> = fsg
            .input_dtypes
            .iter()
            .enumerate()
            .filter(|(_, &dt)| dt == DType::F32)
            .map(|(i, _)| i)
            .collect();
        let n_other = osg
            .input_dtypes
            .iter()
            .filter(|&&d| d == DType::F32)
            .count();

        let mut st = DiffState {
            fwd: fsg.graph.clone(),
            fwd_sub: Some(fwd),
            out: Graph::new(),
            contrib: HashMap::new(),
            vref: HashMap::new(),
            zref: HashMap::new(),
            input_grads: HashMap::new(),
        };
        // dy inputs first, then the pass-through zero tensors.
        for (j, &k) in dy_outputs.iter().enumerate() {
            let dy = PortRef::of(st.out.push_node(
                OpKind::Input {
                    index: j,
                    dtype: DType::F32,
                },
                vec![],
                vec![DType::F32],
            ));
            st.add_contrib(fsg.graph.outputs[k], dy);
        }
        let mut zero_ports = Vec::with_capacity(n_other);
        for j in 0..n_other {
            zero_ports.push(PortRef::of(st.out.push_node(
                OpKind::Input {
                    index: dy_outputs.len() + j,
                    dtype: DType::F32,
                },
                vec![],
                vec![DType::F32],
            )));
        }
        self.diff_body(&mut st)?;
        let mut self_grads = Vec::with_capacity(self_inputs.len());
        for &i in &self_inputs {
            let port = match st.input_grads.get(&i) {
                Some(&g) => g,
                None => {
                    let fwd_in = PortRef::of(fsg.graph.input_nodes[i]);
                    self.ref_zeros(&mut st, fwd_in)
                }
            };
            self_grads.push(port);
        }
        st.out.outputs = if self_first {
            self_grads.into_iter().chain(zero_ports).collect()
        } else {
            zero_ports.into_iter().chain(self_grads).collect()
        };
        self.module.subgraphs[id.0 as usize].graph = st.out;
        Ok(())
    }

    /// Reverse-mode sweep over `st.fwd`, emitting gradient nodes into
    /// `st.out`.
    fn diff_body(&mut self, st: &mut DiffState) -> rdg_graph::Result<()> {
        let order = st.fwd.topo_order("forward")?;
        for &nid in order.iter().rev() {
            let node = st.fwd.node(nid).clone();
            let arity = node.op.n_outputs();
            let mut dys: Vec<Option<PortRef>> =
                (0..arity).map(|k| st.finalize(nid, k as u16)).collect();
            if dys.iter().all(Option::is_none) {
                continue;
            }
            self.op_grad(st, nid, &node.op, &node.inputs, &mut dys)?;
        }
        Ok(())
    }

    /// Per-op gradient rule: given output gradients, contribute input
    /// gradients (and parameter sinks).
    #[allow(clippy::too_many_lines)]
    fn op_grad(
        &mut self,
        st: &mut DiffState,
        nid: NodeId,
        op: &OpKind,
        ins: &[PortRef],
        dys: &mut [Option<PortRef>],
    ) -> rdg_graph::Result<()> {
        let dy = dys[0];
        match op {
            OpKind::Add => {
                let dy = dy.expect("checked");
                st.add_contrib(ins[0], dy);
                st.add_contrib(ins[1], dy);
            }
            OpKind::Sub => {
                let dy = dy.expect("checked");
                st.add_contrib(ins[0], dy);
                let nd = st.n1(OpKind::Neg, vec![dy], DType::F32);
                st.add_contrib(ins[1], nd);
            }
            OpKind::Mul => {
                let dy = dy.expect("checked");
                let a = self.ref_value(st, ins[0]);
                let b = self.ref_value(st, ins[1]);
                let da = st.n1(OpKind::Mul, vec![dy, b], DType::F32);
                let db = st.n1(OpKind::Mul, vec![dy, a], DType::F32);
                st.add_contrib(ins[0], da);
                st.add_contrib(ins[1], db);
            }
            OpKind::Div => {
                let dy = dy.expect("checked");
                let a = self.ref_value(st, ins[0]);
                let b = self.ref_value(st, ins[1]);
                let da = st.n1(OpKind::Div, vec![dy, b], DType::F32);
                let num = st.n1(OpKind::Mul, vec![dy, a], DType::F32);
                let b2 = st.n1(OpKind::Mul, vec![b, b], DType::F32);
                let frac = st.n1(OpKind::Div, vec![num, b2], DType::F32);
                let db = st.n1(OpKind::Neg, vec![frac], DType::F32);
                st.add_contrib(ins[0], da);
                st.add_contrib(ins[1], db);
            }
            OpKind::Neg => {
                let dy = dy.expect("checked");
                let d = st.n1(OpKind::Neg, vec![dy], DType::F32);
                st.add_contrib(ins[0], d);
            }
            OpKind::Scale(s) => {
                let dy = dy.expect("checked");
                let d = st.n1(OpKind::Scale(*s), vec![dy], DType::F32);
                st.add_contrib(ins[0], d);
            }
            OpKind::AddConst(_) | OpKind::Identity => {
                st.add_contrib(ins[0], dy.expect("checked"));
            }
            OpKind::ScalarMul => {
                let dy = dy.expect("checked");
                let x = self.ref_value(st, ins[0]);
                let s = self.ref_value(st, ins[1]);
                let dx = st.n1(OpKind::ScalarMul, vec![dy, s], DType::F32);
                let prod = st.n1(OpKind::Mul, vec![dy, x], DType::F32);
                let ds = st.n1(OpKind::SumAll, vec![prod], DType::F32);
                st.add_contrib(ins[0], dx);
                st.add_contrib(ins[1], ds);
            }
            OpKind::MatMul => {
                let dy = dy.expect("checked");
                let a = self.ref_value(st, ins[0]);
                let b = self.ref_value(st, ins[1]);
                let da = st.n1(OpKind::MatMulBT, vec![dy, b], DType::F32);
                let db = st.n1(OpKind::MatMulAT, vec![a, dy], DType::F32);
                st.add_contrib(ins[0], da);
                st.add_contrib(ins[1], db);
            }
            OpKind::MatMulAT => {
                let dy = dy.expect("checked");
                let a = self.ref_value(st, ins[0]);
                let b = self.ref_value(st, ins[1]);
                let da = st.n1(OpKind::MatMulBT, vec![b, dy], DType::F32);
                let db = st.n1(OpKind::MatMul, vec![a, dy], DType::F32);
                st.add_contrib(ins[0], da);
                st.add_contrib(ins[1], db);
            }
            OpKind::MatMulBT => {
                let dy = dy.expect("checked");
                let a = self.ref_value(st, ins[0]);
                let b = self.ref_value(st, ins[1]);
                let da = st.n1(OpKind::MatMul, vec![dy, b], DType::F32);
                let db = st.n1(OpKind::MatMulAT, vec![dy, a], DType::F32);
                st.add_contrib(ins[0], da);
                st.add_contrib(ins[1], db);
            }
            OpKind::AddBias => {
                let dy = dy.expect("checked");
                st.add_contrib(ins[0], dy);
                let db = st.n1(OpKind::SumAxis0, vec![dy], DType::F32);
                st.add_contrib(ins[1], db);
            }
            OpKind::Bilinear => {
                let dy = dy.expect("checked");
                let x = self.ref_value(st, ins[0]);
                let v = self.ref_value(st, ins[1]);
                let dx = st.n1(OpKind::BilinearGradX, vec![x, v, dy], DType::F32);
                let dv = st.n1(OpKind::BilinearGradV, vec![x, v, dy], DType::F32);
                st.add_contrib(ins[0], dx);
                st.add_contrib(ins[1], dv);
            }
            OpKind::Tanh
            | OpKind::Sigmoid
            | OpKind::Relu
            | OpKind::Softmax
            | OpKind::LogSoftmax => {
                let dy = dy.expect("checked");
                let y = self.ref_value(st, PortRef::of(nid));
                let gop = match op {
                    OpKind::Tanh => OpKind::TanhGrad,
                    OpKind::Sigmoid => OpKind::SigmoidGrad,
                    OpKind::Relu => OpKind::ReluGrad,
                    OpKind::Softmax => OpKind::SoftmaxGrad,
                    _ => OpKind::LogSoftmaxGrad,
                };
                let d = st.n1(gop, vec![y, dy], DType::F32);
                st.add_contrib(ins[0], d);
            }
            OpKind::ConcatCols => {
                let dy = dy.expect("checked");
                let za = self.ref_zeros(st, ins[0]);
                let zb = self.ref_zeros(st, ins[1]);
                let da = st.n1(
                    OpKind::SliceColsLike { take_second: false },
                    vec![za, zb, dy],
                    DType::F32,
                );
                let db = st.n1(
                    OpKind::SliceColsLike { take_second: true },
                    vec![za, zb, dy],
                    DType::F32,
                );
                st.add_contrib(ins[0], da);
                st.add_contrib(ins[1], db);
            }
            OpKind::SliceCols { lo, .. } => {
                let dy = dy.expect("checked");
                let z = self.ref_zeros(st, ins[0]);
                let d = st.n1(OpKind::PadColsLike { lo: *lo }, vec![z, dy], DType::F32);
                st.add_contrib(ins[0], d);
            }
            OpKind::Transpose => {
                let dy = dy.expect("checked");
                let d = st.n1(OpKind::Transpose, vec![dy], DType::F32);
                st.add_contrib(ins[0], d);
            }
            OpKind::StackRows => {
                let dy = dy.expect("checked");
                for (i, &inp) in ins.iter().enumerate() {
                    let idx = st.n1(
                        OpKind::Const(Tensor::scalar_i32(i as i32)),
                        vec![],
                        DType::I32,
                    );
                    let d = st.n1(OpKind::GetRow, vec![dy, idx], DType::F32);
                    st.add_contrib(inp, d);
                }
            }
            OpKind::SumAll => {
                let dy = dy.expect("checked");
                let z = self.ref_zeros(st, ins[0]);
                let d = st.n1(OpKind::FillLike, vec![z, dy], DType::F32);
                st.add_contrib(ins[0], d);
            }
            OpKind::MeanAll => {
                let dy = dy.expect("checked");
                let z = self.ref_zeros(st, ins[0]);
                let d = st.n1(OpKind::MeanAllGrad, vec![z, dy], DType::F32);
                st.add_contrib(ins[0], d);
            }
            OpKind::SumAxis0 => {
                let dy = dy.expect("checked");
                let z = self.ref_zeros(st, ins[0]);
                let d = st.n1(OpKind::BroadcastRowsLike, vec![z, dy], DType::F32);
                st.add_contrib(ins[0], d);
            }
            OpKind::GatherRows => {
                let dy = dy.expect("checked");
                let ids = self.ref_value(st, ins[1]);
                // Embedding fast path: a gather straight from a parameter
                // becomes a row-sparse sink instead of a dense scatter.
                if let OpKind::Param(p) = st.fwd.node(ins[0].node).op {
                    st.n1(OpKind::GradSinkRows { param: p }, vec![ids, dy], DType::F32);
                } else {
                    let z = self.ref_zeros(st, ins[0]);
                    let d = st.n1(OpKind::ScatterRowsLike, vec![z, ids, dy], DType::F32);
                    st.add_contrib(ins[0], d);
                }
            }
            OpKind::GetRow => {
                let dy = dy.expect("checked");
                let z = self.ref_zeros(st, ins[0]);
                let i = self.ref_value(st, ins[1]);
                let d = st.n1(OpKind::ScatterRowLike, vec![z, i, dy], DType::F32);
                st.add_contrib(ins[0], d);
            }
            OpKind::SetRow => {
                let dy = dy.expect("checked");
                let i = self.ref_value(st, ins[1]);
                let zrow = self.ref_zeros(st, ins[2]);
                let dmat = st.n1(OpKind::SetRow, vec![dy, i, zrow], DType::F32);
                let drow = st.n1(OpKind::GetRow, vec![dy, i], DType::F32);
                st.add_contrib(ins[0], dmat);
                st.add_contrib(ins[2], drow);
            }
            OpKind::SoftmaxXent => {
                let dy = dy.expect("checked");
                let logits = self.ref_value(st, ins[0]);
                let labels = self.ref_value(st, ins[1]);
                let d = st.n1(
                    OpKind::SoftmaxXentGrad,
                    vec![logits, labels, dy],
                    DType::F32,
                );
                st.add_contrib(ins[0], d);
            }
            OpKind::Param(p) => {
                let dy = dy.expect("checked");
                st.n1(OpKind::GradSink { param: *p }, vec![dy], DType::F32);
            }
            OpKind::Input { index, .. } => {
                let dy = dy.expect("checked");
                // Accumulate if the same input already received a gradient
                // (several rules may target the same input node).
                match st.input_grads.get(index) {
                    Some(&prev) => {
                        let sum = st.n1(OpKind::Add, vec![prev, dy], DType::F32);
                        st.input_grads.insert(*index, sum);
                    }
                    None => {
                        st.input_grads.insert(*index, dy);
                    }
                }
            }
            OpKind::Const(_)
            | OpKind::OneHot { .. }
            | OpKind::ArgmaxRows
            | OpKind::ZerosLike
            | OpKind::OnesLike
            | OpKind::IAdd
            | OpKind::ISub
            | OpKind::IMul
            | OpKind::IDiv
            | OpKind::ILt
            | OpKind::ILe
            | OpKind::IGt
            | OpKind::IGe
            | OpKind::IEq
            | OpKind::And
            | OpKind::Or
            | OpKind::Not
            | OpKind::GatherScalarI32
            | OpKind::Len
            | OpKind::FGtConst(_)
            | OpKind::ZerosDyn { .. } => {
                // Non-differentiable: gradients stop here (a contribution to
                // a ZerosDyn state buffer is the gradient of a constant).
            }
            OpKind::Invoke { sub, site, .. } => {
                self.invoke_grad(st, nid, *sub, *site, ins, dys)?;
            }
            OpKind::Cond {
                sub_then,
                sub_else,
                site_then,
                site_else,
                n_then_in,
                ..
            } => {
                self.cond_grad(
                    st,
                    nid,
                    *sub_then,
                    *sub_else,
                    *site_then,
                    *site_else,
                    *n_then_in as usize,
                    ins,
                    dys,
                )?;
            }
            other => {
                return Err(GraphError::invalid(format!(
                    "cannot differentiate op {other}: gradient ops must not appear in forward graphs"
                )));
            }
        }
        Ok(())
    }

    fn invoke_grad(
        &mut self,
        st: &mut DiffState,
        nid: NodeId,
        sub: SubGraphId,
        site: CallSiteId,
        ins: &[PortRef],
        dys: &mut [Option<PortRef>],
    ) -> rdg_graph::Result<()> {
        let Some(decl) = self.declare_grad(sub) else {
            return Ok(());
        };
        let mut args = Vec::with_capacity(decl.dy_outputs.len());
        for &k in &decl.dy_outputs {
            let dy = match dys[k].take() {
                Some(d) => d,
                None => self.ref_zeros(
                    st,
                    PortRef {
                        node: nid,
                        port: k as u16,
                    },
                ),
            };
            args.push(dy);
        }
        let n_out = decl.f32_inputs.len() as u16;
        let g = st.out.push_node(
            OpKind::Invoke {
                sub: decl.id,
                site,
                n_out,
                mirror: true,
            },
            args,
            vec![DType::F32; n_out as usize],
        );
        for (j, &i) in decl.f32_inputs.iter().enumerate() {
            st.add_contrib(
                ins[i],
                PortRef {
                    node: g,
                    port: j as u16,
                },
            );
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn cond_grad(
        &mut self,
        st: &mut DiffState,
        nid: NodeId,
        sub_then: SubGraphId,
        sub_else: SubGraphId,
        site_then: CallSiteId,
        site_else: CallSiteId,
        n_then_in: usize,
        ins: &[PortRef],
        dys: &mut [Option<PortRef>],
    ) -> rdg_graph::Result<()> {
        let tsg = &self.module.subgraphs[sub_then.0 as usize];
        let esg = &self.module.subgraphs[sub_else.0 as usize];
        let dy_outputs: Vec<usize> = tsg
            .output_dtypes
            .iter()
            .enumerate()
            .filter(|(_, &dt)| dt == DType::F32)
            .map(|(i, _)| i)
            .collect();
        if dy_outputs.is_empty() {
            return Ok(());
        }
        let t_f32: Vec<usize> = tsg
            .input_dtypes
            .iter()
            .enumerate()
            .filter(|(_, &dt)| dt == DType::F32)
            .map(|(i, _)| i)
            .collect();
        let e_f32: Vec<usize> = esg
            .input_dtypes
            .iter()
            .enumerate()
            .filter(|(_, &dt)| dt == DType::F32)
            .map(|(i, _)| i)
            .collect();

        let g_then = self.declare_branch_grad(sub_then, sub_else, true);
        let g_else = self.declare_branch_grad(sub_else, sub_then, false);

        let pred = self.ref_value(st, ins[0]);
        let mut dy_ports = Vec::with_capacity(dy_outputs.len());
        for &k in &dy_outputs {
            let dy = match dys[k].take() {
                Some(d) => d,
                None => self.ref_zeros(
                    st,
                    PortRef {
                        node: nid,
                        port: k as u16,
                    },
                ),
            };
            dy_ports.push(dy);
        }
        // Zero witnesses for the args of the branch that did NOT run; the
        // forward cond evaluated all its args eagerly, so shapes exist.
        let zeros_e: Vec<PortRef> = e_f32
            .iter()
            .map(|&i| self.ref_zeros(st, ins[1 + n_then_in + i]))
            .collect();
        let zeros_t: Vec<PortRef> = t_f32
            .iter()
            .map(|&i| self.ref_zeros(st, ins[1 + i]))
            .collect();

        let mut inputs = vec![pred];
        inputs.extend(dy_ports.iter().copied());
        inputs.extend(zeros_e.iter().copied());
        let n_then_in_g = (dy_ports.len() + zeros_e.len()) as u16;
        inputs.extend(dy_ports.iter().copied());
        inputs.extend(zeros_t.iter().copied());

        let n_out = (t_f32.len() + e_f32.len()) as u16;
        let g = st.out.push_node(
            OpKind::Cond {
                sub_then: g_then,
                sub_else: g_else,
                site_then,
                site_else,
                n_then_in: n_then_in_g,
                n_out,
                mirror: true,
            },
            inputs,
            vec![DType::F32; n_out as usize],
        );
        for (j, &i) in t_f32.iter().enumerate() {
            st.add_contrib(
                ins[1 + i],
                PortRef {
                    node: g,
                    port: j as u16,
                },
            );
        }
        for (j, &i) in e_f32.iter().enumerate() {
            st.add_contrib(
                ins[1 + n_then_in + i],
                PortRef {
                    node: g,
                    port: (t_f32.len() + j) as u16,
                },
            );
        }
        Ok(())
    }
}
