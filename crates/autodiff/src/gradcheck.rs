//! Finite-difference gradient verification.
//!
//! The paper claims its recursive implementation "calculates numerically
//! identical results as the iterative implementation" (§6.2); this module is
//! how the test suite holds the autodiff machinery to that standard: every
//! analytic gradient is compared against central finite differences of the
//! loss, on the real executor, for every model.

use crate::diff::build_training_module;
use rdg_exec::{Executor, Session};
use rdg_graph::{Module, ParamId, PortRef};
use rdg_tensor::Tensor;
use std::sync::Arc;

/// Result of a gradient check.
#[derive(Debug, Clone)]
pub struct GradCheckReport {
    /// Largest absolute error observed across all checked elements.
    pub max_abs_err: f32,
    /// Largest relative error (|a - n| / max(1, |a|, |n|)).
    pub max_rel_err: f32,
    /// Number of parameter elements checked.
    pub n_checked: usize,
}

/// Verifies analytic gradients of `module`'s loss output against central
/// finite differences.
///
/// * `loss_output` — which main-graph output is the scalar loss.
/// * `feeds` — main-graph inputs.
/// * `eps` — perturbation size (1e-2 works well in `f32`).
/// * `max_elems_per_param` — cap on elements probed per parameter
///   (deterministically strided so big tensors stay cheap).
///
/// Returns the error report; callers assert on `max_rel_err`.
pub fn check_gradients(
    module: &Module,
    loss_output: usize,
    feeds: &[Tensor],
    eps: f32,
    max_elems_per_param: usize,
) -> Result<GradCheckReport, String> {
    let loss_port: PortRef = *module
        .main
        .outputs
        .get(loss_output)
        .ok_or_else(|| format!("module has no output {loss_output}"))?;
    let train = build_training_module(module, loss_port).map_err(|e| e.to_string())?;

    let exec = Executor::with_threads(2);
    let train_sess = Session::new(Arc::clone(&exec), train).map_err(|e| e.to_string())?;
    let inf_sess = Session::with_params(
        Arc::clone(&exec),
        module.clone(),
        Arc::clone(train_sess.params()),
    )
    .map_err(|e| e.to_string())?;

    // Analytic gradients.
    train_sess
        .run_training(feeds.to_vec())
        .map_err(|e| e.to_string())?;

    let loss_at = |sess: &Session| -> Result<f32, String> {
        let outs = sess.run(feeds.to_vec()).map_err(|e| e.to_string())?;
        outs[loss_output].as_f32_scalar().map_err(|e| e.to_string())
    };

    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
        n_checked: 0,
    };
    for (pi, spec) in module.params.iter().enumerate() {
        let pid = ParamId(pi as u32);
        let analytic = train_sess.grads().get(pid);
        let base = train_sess.params().read(pid);
        let n = base.numel();
        let stride = (n / max_elems_per_param.max(1)).max(1);
        for i in (0..n).step_by(stride) {
            let orig = base.f32s().map_err(|e| e.to_string())?[i];

            let mut plus = base.clone();
            plus.make_f32_mut().map_err(|e| e.to_string())?[i] = orig + eps;
            train_sess.params().write(pid, plus);
            let lp = loss_at(&inf_sess)?;

            let mut minus = base.clone();
            minus.make_f32_mut().map_err(|e| e.to_string())?[i] = orig - eps;
            train_sess.params().write(pid, minus);
            let lm = loss_at(&inf_sess)?;

            train_sess.params().write(pid, base.clone());

            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic
                .as_ref()
                .and_then(|g| g.f32s().ok().map(|v| v[i]))
                .unwrap_or(0.0);
            let abs = (a - numeric).abs();
            let rel = abs / 1.0f32.max(a.abs()).max(numeric.abs());
            if abs > report.max_abs_err {
                report.max_abs_err = abs;
            }
            if rel > report.max_rel_err {
                report.max_rel_err = rel;
            }
            report.n_checked += 1;
            if rel > 0.5 && abs > 0.5 {
                return Err(format!(
                    "gradient mismatch on param '{}' element {i}: analytic {a}, numeric {numeric}",
                    spec.name
                ));
            }
        }
    }
    Ok(report)
}
