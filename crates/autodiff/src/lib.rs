//! Reverse-mode automatic differentiation for recursive dataflow modules.
//!
//! This crate implements §4.2 of the EuroSys '18 paper: given a forward
//! [`rdg_graph::Module`] and a scalar loss port in its main graph,
//! [`build_training_module`] produces an extended module that computes the
//! loss *and* accumulates parameter gradients when executed in training
//! mode.
//!
//! The key design points, mirroring the paper:
//!
//! * **Gradient SubGraphs.** The gradient of an `InvokeOp` is an `InvokeOp`
//!   of the differentiated SubGraph (`∇S`). If `S` invokes itself, `∇S`
//!   invokes `∇S` — the backward graph of a recursive model is itself
//!   recursive, produced via the same forward-declaration trick the builder
//!   uses (declare `∇S`'s signature first, then build the body that refers
//!   to it).
//! * **Mirrored call sites.** Every gradient `Invoke`/`Cond` carries the
//!   *forward* call-site id (flagged `mirror`), so a backward frame's
//!   invocation path equals its forward twin's path and `FwdValue` reads hit
//!   the right backprop-cache entries.
//! * **Lazy conditional gradients.** The gradient of a `Cond` is a `Cond` on
//!   the cached forward predicate; only the branch that executed forward is
//!   differentiated (the untaken branch's activations were never cached).
//!   The not-taken side of the gradient pair passes through zero tensors so
//!   both branches agree on output signature.
//! * **Keep-set analysis.** While building gradients we record exactly which
//!   forward ports backward reads (`FwdValue`) and which it only needs
//!   *shapes* for (`FwdZeros`); the executor caches values for the former
//!   and shapes for the latter, so large loop-carried state in the iterative
//!   baseline is not retained by value.
//! * **Parameter gradients** drain into `GradSink` nodes (dense) or
//!   `GradSinkRows` (row-sparse, for embedding `GatherRows` reads straight
//!   from a parameter), accumulating across all frames of a step.
//!
//! [`gradcheck`] provides finite-difference verification used heavily by the
//! test suite.

pub mod diff;
pub mod gradcheck;

pub use diff::build_training_module;
pub use gradcheck::{check_gradients, GradCheckReport};
