//! End-to-end autodiff tests: every scenario checks analytic gradients
//! against finite differences on the real executor.

use rdg_autodiff::{build_training_module, check_gradients};
use rdg_exec::{Executor, Session};
use rdg_graph::{ModuleBuilder, PortRef};
use rdg_tensor::{DType, Tensor};

fn assert_gradcheck(module: &rdg_graph::Module, feeds: &[Tensor]) {
    let report = check_gradients(module, 0, feeds, 1e-2, 16).expect("gradcheck runs");
    assert!(
        report.max_rel_err < 0.05,
        "max_rel_err {} (abs {}) over {} elements",
        report.max_rel_err,
        report.max_abs_err,
        report.n_checked
    );
    assert!(report.n_checked > 0);
}

#[test]
fn chain_rule_in_main_graph() {
    // loss = tanh(w * x), dw = (1 - tanh²(wx)) x.
    let mut mb = ModuleBuilder::new();
    let w = mb.param_wire("w", Tensor::scalar_f32(0.7)).unwrap();
    let x = mb.const_f32(1.3);
    let y = mb.mul(w, x).unwrap();
    let loss = mb.tanh(y).unwrap();
    mb.set_outputs(&[loss]).unwrap();
    let m = mb.finish().unwrap();

    // Exact analytic check first.
    let train = build_training_module(&m, m.main.outputs[0]).unwrap();
    let exec = Executor::with_threads(2);
    let s = Session::new(exec, train).unwrap();
    s.run_training(vec![]).unwrap();
    let g = s
        .grads()
        .get(rdg_graph::ParamId(0))
        .unwrap()
        .as_f32_scalar()
        .unwrap();
    let wx = 0.7f32 * 1.3;
    let want = (1.0 - wx.tanh().powi(2)) * 1.3;
    assert!((g - want).abs() < 1e-5, "got {g}, want {want}");

    assert_gradcheck(&m, &[]);
}

#[test]
fn matmul_bias_activation_pipeline() {
    // loss = mean(sigmoid(x·W + b)) — a dense layer, checked numerically.
    let mut mb = ModuleBuilder::new();
    let w = mb
        .param_wire(
            "W",
            Tensor::from_f32([3, 2], vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6]).unwrap(),
        )
        .unwrap();
    let b = mb
        .param_wire("b", Tensor::from_f32([2], vec![0.05, -0.05]).unwrap())
        .unwrap();
    let x = mb.constant(Tensor::from_f32([2, 3], vec![1.0, 2.0, -1.0, 0.5, -0.3, 0.8]).unwrap());
    let h = mb.matmul(x, w).unwrap();
    let hb = mb.add_bias(h, b).unwrap();
    let a = mb.sigmoid(hb).unwrap();
    let loss = mb.mean_all(a).unwrap();
    mb.set_outputs(&[loss]).unwrap();
    assert_gradcheck(&mb.finish().unwrap(), &[]);
}

#[test]
fn invoke_gradient_flows_through_subgraph() {
    // f(x) = tanh(x * w); loss = f(c). The gradient of the InvokeOp is an
    // InvokeOp of the gradient SubGraph.
    let mut mb = ModuleBuilder::new();
    let w = mb.param("w", Tensor::scalar_f32(0.9));
    let f = mb
        .subgraph("f", &[DType::F32], &[DType::F32], |b| {
            let x = b.input(0)?;
            let wv = b.param_read(w)?;
            let y = b.mul(x, wv)?;
            Ok(vec![b.tanh(y)?])
        })
        .unwrap();
    let c = mb.const_f32(0.4);
    let out = mb.invoke(&f, &[c]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    let m = mb.finish().unwrap();
    // There must be a gradient SubGraph after differentiation.
    let train = build_training_module(&m, m.main.outputs[0]).unwrap();
    assert!(
        train.subgraphs.iter().any(|s| s.grad_of.is_some()),
        "gradient SubGraph synthesized"
    );
    assert_gradcheck(&m, &[]);
}

#[test]
fn recursive_power_gradient() {
    // P(n) = n > 0 ? w * P(n-1) : x   ⇒   loss = P(3) = w³x, dw = 3w²x.
    let mut mb = ModuleBuilder::new();
    let w = mb.param("w", Tensor::scalar_f32(0.8));
    let x = mb.const_f32(0.5);
    let h = mb.declare_subgraph("power", &[DType::I32], &[DType::F32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::F32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                let rec = b.invoke(&h, &[m])?[0];
                let wv = b.param_read(w)?;
                b.mul(wv, rec)
            },
            |b| b.identity(x),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let n0 = mb.const_i32(3);
    let out = mb.invoke(&h, &[n0]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    let m = mb.finish().unwrap();

    let train = build_training_module(&m, m.main.outputs[0]).unwrap();
    let exec = Executor::with_threads(2);
    let s = Session::new(exec, train).unwrap();
    let outs = s.run_training(vec![]).unwrap();
    let loss = outs[0].as_f32_scalar().unwrap();
    assert!(
        (loss - 0.8f32.powi(3) * 0.5).abs() < 1e-5,
        "forward value {loss}"
    );
    let g = s
        .grads()
        .get(rdg_graph::ParamId(0))
        .unwrap()
        .as_f32_scalar()
        .unwrap();
    let want = 3.0 * 0.8f32.powi(2) * 0.5;
    assert!((g - want).abs() < 1e-4, "dw = {g}, want {want}");

    assert_gradcheck(&m, &[]);
}

#[test]
fn double_recursion_gradient() {
    // T(n) = n <= 0 ? w : T(n-1) + T(n-1)  ⇒  T(n) = 2ⁿ w, dw = 2ⁿ.
    let mut mb = ModuleBuilder::new();
    let w = mb.param("w", Tensor::scalar_f32(0.3));
    let h = mb.declare_subgraph("twice", &[DType::I32], &[DType::F32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::F32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                let l = b.invoke(&h, &[m])?[0];
                let r = b.invoke(&h, &[m])?[0];
                b.add(l, r)
            },
            |b| b.param_read(w),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let n0 = mb.const_i32(4);
    let out = mb.invoke(&h, &[n0]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    let m = mb.finish().unwrap();

    let train = build_training_module(&m, m.main.outputs[0]).unwrap();
    let s = Session::new(Executor::with_threads(2), train).unwrap();
    let outs = s.run_training(vec![]).unwrap();
    assert!((outs[0].as_f32_scalar().unwrap() - 16.0 * 0.3).abs() < 1e-4);
    let g = s
        .grads()
        .get(rdg_graph::ParamId(0))
        .unwrap()
        .as_f32_scalar()
        .unwrap();
    assert!(
        (g - 16.0).abs() < 1e-3,
        "dw = {g}, want 16 (2⁴ leaf contributions)"
    );
}

#[test]
fn while_loop_gradient() {
    // s ← s * w, 5 times: loss = x·w⁵.
    let mut mb = ModuleBuilder::new();
    let w = mb.param("w", Tensor::scalar_f32(0.9));
    let x = mb.const_f32(0.7);
    let i0 = mb.const_i32(0);
    let limit = mb.const_i32(5);
    let outs = mb
        .while_loop(
            "powloop",
            &[i0, x],
            |b, s| b.ilt(s[0], limit),
            |b, s| {
                let one = b.const_i32(1);
                let i = b.iadd(s[0], one)?;
                let wv = b.param_read(w)?;
                let v = b.mul(s[1], wv)?;
                Ok(vec![i, v])
            },
        )
        .unwrap();
    mb.set_outputs(&[outs[1]]).unwrap();
    let m = mb.finish().unwrap();

    let train = build_training_module(&m, m.main.outputs[0]).unwrap();
    let s = Session::new(Executor::with_threads(2), train).unwrap();
    let o = s.run_training(vec![]).unwrap();
    assert!((o[0].as_f32_scalar().unwrap() - 0.7 * 0.9f32.powi(5)).abs() < 1e-5);
    let g = s
        .grads()
        .get(rdg_graph::ParamId(0))
        .unwrap()
        .as_f32_scalar()
        .unwrap();
    let want = 5.0 * 0.9f32.powi(4) * 0.7;
    assert!((g - want).abs() < 1e-4, "dw = {g}, want {want}");

    assert_gradcheck(&m, &[]);
}

#[test]
fn cond_gradient_routes_to_taken_branch() {
    // loss = pred ? x*w1 : x*w2, with pred fed at run time.
    let build = || {
        let mut mb = ModuleBuilder::new();
        let w1 = mb.param("w1", Tensor::scalar_f32(0.5));
        let w2 = mb.param("w2", Tensor::scalar_f32(-0.5));
        // One i32 input in the main graph: hand-build the Input node.
        let m = {
            let x = mb.const_f32(2.0);
            let h = mb
                .subgraph("pick", &[DType::I32], &[DType::F32], |b| {
                    let p = b.input(0)?;
                    let out = b.cond1(
                        p,
                        DType::F32,
                        |b| {
                            let wv = b.param_read(w1)?;
                            b.mul(x, wv)
                        },
                        |b| {
                            let wv = b.param_read(w2)?;
                            b.mul(x, wv)
                        },
                    )?;
                    Ok(vec![out])
                })
                .unwrap();
            // Feed the predicate through a main-graph input.
            let input = {
                let node = mb_input_i32(&mut mb);
                node
            };
            let out = mb.invoke(&h, &[input]).unwrap();
            mb.set_outputs(&[out[0]]).unwrap();
            mb.finish().unwrap()
        };
        m.validate().unwrap();
        m
    };
    // Helper: ModuleBuilder has no main-input API by design (feeds are
    // usually tree tensors); emulate one via a const + identity? Instead we
    // add the input node through the public graph type after finish — but
    // simplest is: build two modules with a const predicate each.
    fn mb_input_i32(mb: &mut ModuleBuilder) -> rdg_graph::Wire {
        mb.main_input(rdg_tensor::DType::I32)
    }
    let m = build();

    let train = build_training_module(&m, m.main.outputs[0]).unwrap();
    let s = Session::new(Executor::with_threads(2), train).unwrap();

    // pred = 1: gradient goes to w1 only.
    s.run_training(vec![Tensor::scalar_i32(1)]).unwrap();
    let g1 = s
        .grads()
        .get(rdg_graph::ParamId(0))
        .map(|t| t.as_f32_scalar().unwrap());
    let g2 = s
        .grads()
        .get(rdg_graph::ParamId(1))
        .map(|t| t.as_f32_scalar().unwrap());
    assert!((g1.unwrap() - 2.0).abs() < 1e-5, "dw1 = {g1:?}");
    assert!(
        g2.is_none() || g2.unwrap().abs() < 1e-6,
        "dw2 = {g2:?} must be zero"
    );

    // pred = 0: gradient goes to w2 only.
    s.run_training(vec![Tensor::scalar_i32(0)]).unwrap();
    let g1 = s
        .grads()
        .get(rdg_graph::ParamId(0))
        .map(|t| t.as_f32_scalar().unwrap());
    let g2 = s
        .grads()
        .get(rdg_graph::ParamId(1))
        .map(|t| t.as_f32_scalar().unwrap());
    assert!(
        g1.is_none() || g1.unwrap().abs() < 1e-6,
        "dw1 = {g1:?} must be zero"
    );
    assert!((g2.unwrap() - 2.0).abs() < 1e-5, "dw2 = {g2:?}");
}

#[test]
fn embedding_gradient_is_row_sparse() {
    // loss = mean(gather(table, [1, 1, 3])): rows 1 and 3 get gradients,
    // row 1 twice as much.
    let mut mb = ModuleBuilder::new();
    let table = mb
        .param_wire(
            "emb",
            Tensor::from_f32([4, 2], (0..8).map(|i| i as f32 * 0.1).collect()).unwrap(),
        )
        .unwrap();
    let ids = mb.constant(Tensor::from_i32([3], vec![1, 1, 3]).unwrap());
    let rows = mb.gather_rows(table, ids).unwrap();
    let loss = mb.mean_all(rows).unwrap();
    mb.set_outputs(&[loss]).unwrap();
    let m = mb.finish().unwrap();

    let train = build_training_module(&m, m.main.outputs[0]).unwrap();
    // The gather reads a Param directly: gradient must use GradSinkRows.
    let has_sparse_sink = train
        .main
        .nodes
        .iter()
        .any(|n| matches!(n.op, rdg_graph::OpKind::GradSinkRows { .. }));
    assert!(has_sparse_sink, "embedding gradient should be row-sparse");

    let s = Session::new(Executor::with_threads(2), train).unwrap();
    s.run_training(vec![]).unwrap();
    let g = s.grads().get(rdg_graph::ParamId(0)).unwrap();
    let gv = g.f32s().unwrap();
    // d(mean)/d(element) = 1/6 for each of the 6 gathered elements.
    assert!(
        (gv[2] - 2.0 / 6.0).abs() < 1e-5,
        "row 1 gathered twice: {gv:?}"
    );
    assert!(
        (gv[6] - 1.0 / 6.0).abs() < 1e-5,
        "row 3 gathered once: {gv:?}"
    );
    assert!(
        gv[0].abs() < 1e-9 && gv[4].abs() < 1e-9,
        "rows 0, 2 untouched"
    );

    assert_gradcheck(&m, &[]);
}

#[test]
fn iterative_state_matrix_gradcheck() {
    // The iterative baseline's pattern: a state matrix threaded through
    // get_row / set_row / concat updates.
    let mut mb = ModuleBuilder::new();
    let w = mb
        .param_wire("W", Tensor::from_f32([4, 2], vec![0.3; 8]).unwrap())
        .unwrap();
    let state = mb.constant(Tensor::from_f32([3, 2], vec![0.1, 0.2, 0.3, 0.4, 0.0, 0.0]).unwrap());
    let i0 = mb.const_i32(0);
    let i1 = mb.const_i32(1);
    let i2 = mb.const_i32(2);
    let r0 = mb.get_row(state, i0).unwrap();
    let r1 = mb.get_row(state, i1).unwrap();
    let cat = mb.concat_cols(r0, r1).unwrap(); // [1,4]
    let h = mb.matmul(cat, w).unwrap(); // [1,2]
    let ht = mb.tanh(h).unwrap();
    let state2 = mb.set_row(state, i2, ht).unwrap();
    let out = mb.get_row(state2, i2).unwrap();
    let loss = mb.mean_all(out).unwrap();
    mb.set_outputs(&[loss]).unwrap();
    assert_gradcheck(&mb.finish().unwrap(), &[]);
}

#[test]
fn unused_invoke_output_gets_zero_dy() {
    // f returns two values; only one feeds the loss.
    let mut mb = ModuleBuilder::new();
    let w = mb.param("w", Tensor::scalar_f32(1.1));
    let f = mb
        .subgraph("two", &[DType::F32], &[DType::F32, DType::F32], |b| {
            let x = b.input(0)?;
            let wv = b.param_read(w)?;
            let a = b.mul(x, wv)?;
            let bb = b.mul(a, wv)?;
            Ok(vec![a, bb])
        })
        .unwrap();
    let c = mb.const_f32(0.6);
    let outs = mb.invoke(&f, &[c]).unwrap();
    // Only output 0 used: loss = x·w, so dw = x (output 1 contributes 0).
    mb.set_outputs(&[outs[0]]).unwrap();
    let m = mb.finish().unwrap();
    let train = build_training_module(&m, m.main.outputs[0]).unwrap();
    let s = Session::new(Executor::with_threads(2), train).unwrap();
    s.run_training(vec![]).unwrap();
    let g = s
        .grads()
        .get(rdg_graph::ParamId(0))
        .unwrap()
        .as_f32_scalar()
        .unwrap();
    assert!((g - 0.6).abs() < 1e-5, "dw = {g}, want 0.6");
}

#[test]
fn rejects_bad_loss_ports() {
    let mut mb = ModuleBuilder::new();
    let c = mb.const_i32(1);
    mb.set_outputs(&[c]).unwrap();
    let m = mb.finish().unwrap();
    // i32 loss is invalid.
    assert!(build_training_module(&m, m.main.outputs[0]).is_err());
    // Dangling port is invalid.
    let bad = PortRef {
        node: rdg_graph::NodeId(999),
        port: 0,
    };
    assert!(build_training_module(&m, bad).is_err());
}
