//! The backprop cache under concurrency (paper §5, Figure 6): many frames
//! inserting and looking up activations at once.

use criterion::{criterion_group, criterion_main, Criterion};
use rdg_core::exec::{CacheKey, PathKey, ShardedMap};
use rdg_core::graph::{CallSiteId, GraphRef, NodeId, SubGraphId};
use rdg_core::tensor::Tensor;
use std::sync::Arc;

fn key(site: u32, node: u32) -> CacheKey {
    CacheKey {
        gref: GraphRef::Sub(SubGraphId(0)),
        path: PathKey::root().child(CallSiteId(site)),
        node: NodeId(node),
        port: 0,
    }
}

fn single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_single");
    g.sample_size(20);
    g.bench_function("insert_get_1000", |b| {
        b.iter(|| {
            let m: ShardedMap<CacheKey, Tensor> = ShardedMap::new();
            for i in 0..1000u32 {
                m.insert(key(i, i % 50), Tensor::scalar_f32(i as f32));
            }
            let mut acc = 0.0;
            for i in 0..1000u32 {
                acc += m
                    .get(&key(i, i % 50))
                    .expect("present")
                    .as_f32_scalar()
                    .expect("scalar");
            }
            acc
        })
    });
    g.finish();
}

fn concurrent(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_concurrent");
    g.sample_size(10);
    g.bench_function("2_threads_disjoint_paths", |b| {
        b.iter(|| {
            let m: Arc<ShardedMap<CacheKey, Tensor>> = Arc::new(ShardedMap::new());
            let handles: Vec<_> = (0..2u32)
                .map(|t| {
                    let m = Arc::clone(&m);
                    std::thread::spawn(move || {
                        for i in 0..500u32 {
                            let k = key(t * 10_000 + i, i % 50);
                            m.insert(k.clone(), Tensor::scalar_f32(i as f32));
                            let _ = m.get(&k);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("join");
            }
        })
    });
    g.finish();
}

fn path_keys(c: &mut Criterion) {
    let mut g = c.benchmark_group("path_key");
    g.sample_size(20);
    g.bench_function("extend_100_deep", |b| {
        b.iter(|| {
            let mut p = PathKey::root();
            for i in 0..100u32 {
                p = p.child(CallSiteId(i));
            }
            p.hash_value()
        })
    });
    let deep = {
        let mut p = PathKey::root();
        for i in 0..100u32 {
            p = p.child(CallSiteId(i));
        }
        p
    };
    let deep2 = {
        let mut p = PathKey::root();
        for i in 0..100u32 {
            p = p.child(CallSiteId(i));
        }
        p
    };
    g.bench_function("eq_100_deep_reconstructed", |b| b.iter(|| deep == deep2));
    g.finish();
}

criterion_group!(benches, single_thread, concurrent, path_keys);
criterion_main!(benches);
