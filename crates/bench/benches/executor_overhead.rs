//! Executor overhead: per-op dispatch and per-frame (InvokeOp) cost —
//! the constants behind every throughput number in the paper tables.
//!
//! Workloads:
//!
//! * `dispatch/op_chain/{100,1000}` — serial chains of trivial ops: pure
//!   scheduler + dispatch cost, the plain-op baseline.
//! * `dispatch/invoke_chain/{100,1000}` — the same chains with every op
//!   wrapped in a SubGraph invocation: the per-invoke premium over a plain
//!   op is `(invoke_chain - op_chain) / n`.
//! * `recursion/fib/{12,16}` — a fib-shaped doubly-recursive module: frame
//!   fan-out, Cond branches, and deep PathKey reuse, the shape the paper's
//!   recursive models actually execute.
//! * `scheduler/{fifo,depth_priority}` — scheduling-policy ablation on the
//!   same fib shape.
//! * `specialize/{invoke_chain/1000,fib/16}` — the same workloads through
//!   the plan specializer (inlining + hot-shape unrolling): the B side of
//!   the PR 10 A/B. The `dispatch`/`recursion` groups above are pinned to
//!   [`SpecializeOptions::disabled`] so they stay the A baseline whatever
//!   `RDG_SPECIALIZE` says.
//!
//! Set `CRITERION_JSON=results/executor_overhead.json` to append one JSON
//! record per benchmark (see the criterion shim docs); `PERFORMANCE.md`
//! tracks the medians across PRs. The `specialize` group additionally
//! appends one `{"spec_stats": …}` record per workload carrying the
//! specializer's hit/miss/promotion counters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdg_core::exec::SpecializeOptions;
use rdg_core::prelude::*;
use std::sync::Arc;

/// A chain of `n` trivial ops in the main graph: measures scheduler +
/// dispatch cost per op with zero kernel work.
fn chain_module(n: usize) -> Module {
    let mut mb = ModuleBuilder::new();
    let mut x = mb.const_f32(1.0);
    for _ in 0..n {
        x = mb.add_const(x, 1.0).expect("add");
    }
    mb.set_outputs(&[x]).expect("outputs");
    mb.finish().expect("finish")
}

/// A chain of `n` nested identity SubGraph invocations: measures per-frame
/// overhead (spawn + argument passing + return delivery).
fn invoke_chain_module(n: usize) -> Module {
    let mut mb = ModuleBuilder::new();
    let id = mb
        .subgraph("ident", &[DType::F32], &[DType::F32], |b| {
            let x = b.input(0)?;
            Ok(vec![b.add_const(x, 1.0)?])
        })
        .expect("subgraph");
    let mut x = mb.const_f32(0.0);
    for _ in 0..n {
        x = mb.invoke(&id, &[x]).expect("invoke")[0];
    }
    mb.set_outputs(&[x]).expect("outputs");
    mb.finish().expect("finish")
}

fn dispatch_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    g.sample_size(20);
    let exec = Executor::with_threads(2);
    for n in [100usize, 1000] {
        let sess = Session::with_options(
            Arc::clone(&exec),
            chain_module(n),
            SpecializeOptions::disabled(),
        )
        .expect("session");
        g.bench_with_input(BenchmarkId::new("op_chain", n), &n, |b, _| {
            b.iter(|| sess.run(vec![]).expect("run"))
        });
        let sess = Session::with_options(
            Arc::clone(&exec),
            invoke_chain_module(n),
            SpecializeOptions::disabled(),
        )
        .expect("session");
        g.bench_with_input(BenchmarkId::new("invoke_chain", n), &n, |b, _| {
            b.iter(|| sess.run(vec![]).expect("run"))
        });
    }
    g.finish();
}

/// A doubly-recursive fib module: `fib(n) = n <= 1 ? n : fib(n-1)+fib(n-2)`.
///
/// Exponential frame fan-out with a Cond at every level — the recursion
/// shape (frame tree, not a chain) that the paper's models execute.
fn fib_module(n: i32) -> Module {
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("fib", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let one = b.const_i32(1);
        let p = b.ile(n, one)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| b.identity(n),
            |b| {
                let one = b.const_i32(1);
                let two = b.const_i32(2);
                let a = b.isub(n, one)?;
                let c2 = b.isub(n, two)?;
                let fa = b.invoke(&h, &[a])?[0];
                let fb = b.invoke(&h, &[c2])?[0];
                b.iadd(fa, fb)
            },
        )?;
        Ok(vec![out])
    })
    .expect("define");
    let s = mb.const_i32(n);
    let out = mb.invoke(&h, &[s]).expect("invoke");
    mb.set_outputs(&[out[0]]).expect("outputs");
    mb.finish().expect("finish")
}

fn recursion_bench(c: &mut Criterion) {
    // Frame fan-out cost on the recursion shape real models execute
    // (exponentially many concurrent sibling frames, Cond at every level).
    let mut g = c.benchmark_group("recursion");
    g.sample_size(10);
    let exec = Executor::with_threads(2);
    for n in [12i32, 16] {
        let sess = Session::with_options(
            Arc::clone(&exec),
            fib_module(n),
            SpecializeOptions::disabled(),
        )
        .expect("session");
        g.bench_with_input(BenchmarkId::new("fib", n), &n, |b, _| {
            b.iter(|| sess.run(vec![]).expect("run"))
        });
    }
    g.finish();
}

fn scheduler_bench(c: &mut Criterion) {
    // FIFO (the paper's design) vs depth-priority (its §4.1.2 future-work
    // idea) on a parallel recursion.
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    let module = fib_module(13);
    for (name, kind) in [
        ("fifo", SchedulerKind::Fifo),
        ("depth_priority", SchedulerKind::DepthPriority),
    ] {
        let exec = Executor::new(2, kind);
        // Pinned general: a promoted flat plan has no frames to schedule,
        // which would turn the policy ablation into a no-op.
        let sess = Session::with_options(exec, module.clone(), SpecializeOptions::disabled())
            .expect("session");
        g.bench_function(name, |b| b.iter(|| sess.run(vec![]).expect("run")));
    }
    g.finish();
}

/// Appends one JSON line with the session's specializer counters to the
/// `CRITERION_JSON` file (the same trajectory the criterion shim writes),
/// so the A/B in `results/` carries hit-rate alongside the timings.
fn record_spec_stats(workload: &str, sess: &Session) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let s = sess.plan().spec_stats();
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        use std::io::Write as _;
        let hit_rate = if s.hits + s.misses > 0 {
            s.hits as f64 / (s.hits + s.misses) as f64
        } else {
            0.0
        };
        let _ = writeln!(
            f,
            "{{\"spec_stats\":\"{workload}\",\"inlined_invokes\":{},\"hits\":{},\"misses\":{},\"hit_rate\":{hit_rate:.4},\"promotions\":{},\"promoted_plans\":{},\"unrolled_frames\":{},\"folded_ops\":{},\"residual_frames\":{},\"unix_time\":{unix_time}}}",
            s.inlined_invokes,
            s.hits,
            s.misses,
            s.promotions,
            s.promoted_plans,
            s.unrolled_frames,
            s.folded_ops,
            s.residual_frames,
        );
    }
}

fn specialize_bench(c: &mut Criterion) {
    // The B side of the PR 10 A/B: identical workloads to
    // `dispatch/invoke_chain/1000` and `recursion/fib/16`, run through the
    // plan specializer. Two warmup runs cross the `hot_after` promotion
    // threshold before measurement, matching a warmed serving process.
    let mut g = c.benchmark_group("specialize");
    g.sample_size(20);
    let exec = Executor::with_threads(2);

    let sess = Session::with_options(
        Arc::clone(&exec),
        invoke_chain_module(1000),
        SpecializeOptions::default(),
    )
    .expect("session");
    for _ in 0..2 {
        sess.run(vec![]).expect("warmup");
    }
    g.bench_with_input(BenchmarkId::new("invoke_chain", 1000), &1000, |b, _| {
        b.iter(|| sess.run(vec![]).expect("run"))
    });
    record_spec_stats("invoke_chain/1000", &sess);

    let sess = Session::with_options(
        Arc::clone(&exec),
        fib_module(16),
        SpecializeOptions::default(),
    )
    .expect("session");
    for _ in 0..2 {
        sess.run(vec![]).expect("warmup");
    }
    g.bench_with_input(BenchmarkId::new("fib", 16), &16, |b, _| {
        b.iter(|| sess.run(vec![]).expect("run"))
    });
    record_spec_stats("fib/16", &sess);

    g.finish();
}

criterion_group!(
    benches,
    dispatch_bench,
    recursion_bench,
    scheduler_bench,
    specialize_bench
);
criterion_main!(benches);
