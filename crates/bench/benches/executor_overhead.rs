//! Executor overhead: per-op dispatch and per-frame (InvokeOp) cost —
//! the constants behind every throughput number in the paper tables.
//!
//! Workloads:
//!
//! * `dispatch/op_chain/{100,1000}` — serial chains of trivial ops: pure
//!   scheduler + dispatch cost, the plain-op baseline.
//! * `dispatch/invoke_chain/{100,1000}` — the same chains with every op
//!   wrapped in a SubGraph invocation: the per-invoke premium over a plain
//!   op is `(invoke_chain - op_chain) / n`.
//! * `recursion/fib/{12,16}` — a fib-shaped doubly-recursive module: frame
//!   fan-out, Cond branches, and deep PathKey reuse, the shape the paper's
//!   recursive models actually execute.
//! * `scheduler/{fifo,depth_priority}` — scheduling-policy ablation on the
//!   same fib shape.
//!
//! Set `CRITERION_JSON=results/executor_overhead.json` to append one JSON
//! record per benchmark (see the criterion shim docs); `PERFORMANCE.md`
//! tracks the medians across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdg_core::prelude::*;
use std::sync::Arc;

/// A chain of `n` trivial ops in the main graph: measures scheduler +
/// dispatch cost per op with zero kernel work.
fn chain_module(n: usize) -> Module {
    let mut mb = ModuleBuilder::new();
    let mut x = mb.const_f32(1.0);
    for _ in 0..n {
        x = mb.add_const(x, 1.0).expect("add");
    }
    mb.set_outputs(&[x]).expect("outputs");
    mb.finish().expect("finish")
}

/// A chain of `n` nested identity SubGraph invocations: measures per-frame
/// overhead (spawn + argument passing + return delivery).
fn invoke_chain_module(n: usize) -> Module {
    let mut mb = ModuleBuilder::new();
    let id = mb
        .subgraph("ident", &[DType::F32], &[DType::F32], |b| {
            let x = b.input(0)?;
            Ok(vec![b.add_const(x, 1.0)?])
        })
        .expect("subgraph");
    let mut x = mb.const_f32(0.0);
    for _ in 0..n {
        x = mb.invoke(&id, &[x]).expect("invoke")[0];
    }
    mb.set_outputs(&[x]).expect("outputs");
    mb.finish().expect("finish")
}

fn dispatch_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    g.sample_size(20);
    let exec = Executor::with_threads(2);
    for n in [100usize, 1000] {
        let sess = Session::new(Arc::clone(&exec), chain_module(n)).expect("session");
        g.bench_with_input(BenchmarkId::new("op_chain", n), &n, |b, _| {
            b.iter(|| sess.run(vec![]).expect("run"))
        });
        let sess = Session::new(Arc::clone(&exec), invoke_chain_module(n)).expect("session");
        g.bench_with_input(BenchmarkId::new("invoke_chain", n), &n, |b, _| {
            b.iter(|| sess.run(vec![]).expect("run"))
        });
    }
    g.finish();
}

/// A doubly-recursive fib module: `fib(n) = n <= 1 ? n : fib(n-1)+fib(n-2)`.
///
/// Exponential frame fan-out with a Cond at every level — the recursion
/// shape (frame tree, not a chain) that the paper's models execute.
fn fib_module(n: i32) -> Module {
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("fib", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let one = b.const_i32(1);
        let p = b.ile(n, one)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| b.identity(n),
            |b| {
                let one = b.const_i32(1);
                let two = b.const_i32(2);
                let a = b.isub(n, one)?;
                let c2 = b.isub(n, two)?;
                let fa = b.invoke(&h, &[a])?[0];
                let fb = b.invoke(&h, &[c2])?[0];
                b.iadd(fa, fb)
            },
        )?;
        Ok(vec![out])
    })
    .expect("define");
    let s = mb.const_i32(n);
    let out = mb.invoke(&h, &[s]).expect("invoke");
    mb.set_outputs(&[out[0]]).expect("outputs");
    mb.finish().expect("finish")
}

fn recursion_bench(c: &mut Criterion) {
    // Frame fan-out cost on the recursion shape real models execute
    // (exponentially many concurrent sibling frames, Cond at every level).
    let mut g = c.benchmark_group("recursion");
    g.sample_size(10);
    let exec = Executor::with_threads(2);
    for n in [12i32, 16] {
        let sess = Session::new(Arc::clone(&exec), fib_module(n)).expect("session");
        g.bench_with_input(BenchmarkId::new("fib", n), &n, |b, _| {
            b.iter(|| sess.run(vec![]).expect("run"))
        });
    }
    g.finish();
}

fn scheduler_bench(c: &mut Criterion) {
    // FIFO (the paper's design) vs depth-priority (its §4.1.2 future-work
    // idea) on a parallel recursion.
    let mut g = c.benchmark_group("scheduler");
    g.sample_size(10);
    let module = fib_module(13);
    for (name, kind) in [
        ("fifo", SchedulerKind::Fifo),
        ("depth_priority", SchedulerKind::DepthPriority),
    ] {
        let exec = Executor::new(2, kind);
        let sess = Session::new(exec, module.clone()).expect("session");
        g.bench_function(name, |b| b.iter(|| sess.run(vec![]).expect("run")));
    }
    g.finish();
}

criterion_group!(benches, dispatch_bench, recursion_bench, scheduler_bench);
criterion_main!(benches);
