//! Folding's defining overhead: depth-wise regrouping (gather/concat/
//! scatter) versus the batched kernel it enables (paper §6.4: "the
//! ungrouping and regrouping of tree nodes across multiple depths lead to
//! numerous memory reallocations and copies").

use criterion::{criterion_group, criterion_main, Criterion};
use rdg_core::fold::FoldPlan;
use rdg_core::prelude::*;
use rdg_core::tensor::{ops, Tensor};

fn plan_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("fold_plan");
    g.sample_size(20);
    let data = Dataset::generate(DatasetConfig {
        vocab: 500,
        n_train: 25,
        n_valid: 0,
        min_len: 16,
        max_len: 32,
        seed: 21,
        ..DatasetConfig::default()
    });
    let batch = data.split(Split::Train).to_vec();
    g.bench_function("plan_25_trees", |b| b.iter(|| FoldPlan::build(&batch)));
    g.finish();
}

fn regroup_vs_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fold_level");
    g.sample_size(20);
    // A representative level: 64 nodes, hidden 168 (TreeLSTM-sized).
    let d = 168usize;
    let n_level = 64usize;
    let state = Tensor::full([1000, d], 0.1);
    let li = Tensor::from_i32([n_level], (0..n_level as i32).collect()).expect("ids");
    let ri =
        Tensor::from_i32([n_level], (0..n_level as i32).map(|i| i + 100).collect()).expect("ids");
    let w = Tensor::full([2 * d, d], 0.01);

    g.bench_function("regroup_gather_concat", |b| {
        b.iter(|| {
            let hl = ops::gather_rows(&state, &li).expect("gather");
            let hr = ops::gather_rows(&state, &ri).expect("gather");
            ops::concat_cols(&hl, &hr).expect("concat")
        })
    });
    let hl = ops::gather_rows(&state, &li).expect("gather");
    let hr = ops::gather_rows(&state, &ri).expect("gather");
    let x = ops::concat_cols(&hl, &hr).expect("concat");
    g.bench_function("batched_matmul_64x336x168", |b| {
        b.iter(|| ops::matmul(&x, &w).expect("matmul"))
    });
    g.bench_function("per_node_matmuls_64", |b| {
        // What the non-batched engines do: 64 separate [1,336]×[336,168].
        b.iter(|| {
            let mut acc = 0.0f32;
            for r in 0..n_level {
                let row = ops::slice_cols(&x.reshape([n_level, 2 * d]).expect("reshape"), 0, 2 * d)
                    .expect("slice");
                let row1 =
                    ops::gather_rows(&row, &Tensor::from_i32([1], vec![r as i32]).expect("id"))
                        .expect("gather");
                let y = ops::matmul(&row1, &w).expect("matmul");
                acc += y.f32s().expect("f32")[0];
            }
            acc
        })
    });
    let scatter_src = ops::matmul(&x, &w).expect("matmul");
    let ni =
        Tensor::from_i32([n_level], (0..n_level as i32).map(|i| i + 500).collect()).expect("ids");
    g.bench_function("scatter_back", |b| {
        b.iter(|| {
            let mut dst = Tensor::zeros([1000, d]);
            ops::scatter_add_rows(&mut dst, &ni, &scatter_src).expect("scatter");
            dst
        })
    });
    g.finish();
}

criterion_group!(benches, plan_build, regroup_vs_kernel);
criterion_main!(benches);
