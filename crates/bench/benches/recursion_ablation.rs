//! Ablation: what does expressing iteration as tail recursion cost?
//!
//! `while_loop` is sugar over `W(s) = Cond(p, W(body(s)), s)` (DESIGN.md §4).
//! This bench compares N loop iterations against the same N body ops laid
//! out as a static chain — the difference is pure recursion machinery
//! (frames, conds, argument passing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdg_core::prelude::*;
use std::sync::Arc;

fn loop_module(n: i32) -> Module {
    let mut mb = ModuleBuilder::new();
    let i0 = mb.const_i32(0);
    let x0 = mb.const_f32(0.0);
    let limit = mb.const_i32(n);
    let outs = mb
        .while_loop(
            "acc",
            &[i0, x0],
            |b, s| b.ilt(s[0], limit),
            |b, s| {
                let one = b.const_i32(1);
                let i = b.iadd(s[0], one)?;
                let x = b.add_const(s[1], 1.5)?;
                Ok(vec![i, x])
            },
        )
        .expect("while");
    mb.set_outputs(&[outs[1]]).expect("outputs");
    mb.finish().expect("finish")
}

fn unrolled_module(n: i32) -> Module {
    let mut mb = ModuleBuilder::new();
    let mut x = mb.const_f32(0.0);
    for _ in 0..n {
        x = mb.add_const(x, 1.5).expect("add");
    }
    mb.set_outputs(&[x]).expect("outputs");
    mb.finish().expect("finish")
}

fn loop_vs_unrolled(c: &mut Criterion) {
    let mut g = c.benchmark_group("while_as_recursion");
    g.sample_size(10);
    let exec = Executor::with_threads(2);
    for n in [50i32, 200] {
        let sess = Session::new(Arc::clone(&exec), loop_module(n)).expect("session");
        g.bench_with_input(BenchmarkId::new("tail_recursive_loop", n), &n, |b, _| {
            b.iter(|| sess.run(vec![]).expect("run"))
        });
        let sess = Session::new(Arc::clone(&exec), unrolled_module(n)).expect("session");
        g.bench_with_input(BenchmarkId::new("static_chain", n), &n, |b, _| {
            b.iter(|| sess.run(vec![]).expect("run"))
        });
    }
    g.finish();
}

fn capture_fixup_cost(c: &mut Criterion) {
    // Builder-side ablation: module construction cost with deep capture
    // chains (the price of the automatic outer-reference mechanism).
    let mut g = c.benchmark_group("builder");
    g.sample_size(10);
    g.bench_function("treelstm_module_build_batch10", |b| {
        b.iter(|| {
            let cfg = ModelConfig::paper_default(ModelKind::TreeLstm, 10);
            build_recursive(&cfg).expect("build")
        })
    });
    g.bench_function("treelstm_autodiff_batch10", |b| {
        let cfg = ModelConfig::paper_default(ModelKind::TreeLstm, 10);
        let m = build_recursive(&cfg).expect("build");
        b.iter(|| build_training_module(&m, m.main.outputs[0]).expect("ad"))
    });
    g.finish();
}

criterion_group!(benches, loop_vs_unrolled, capture_fixup_cost);
criterion_main!(benches);
