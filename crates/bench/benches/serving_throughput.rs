//! serving_throughput — concurrent inference serving on one session.
//!
//! The north-star workload: a stream of independent, mixed-depth inference
//! requests (different parse trees → different recursion depths) served by
//! one `Session` on one shared worker pool, both bare (`Session::run_many`)
//! and through the admission queue (`Session::serve`).
//!
//! Three measurements:
//!
//! * criterion group `serving/*` — `run_many` at several concurrency levels
//!   vs the blocking sequential loop vs the admission-queue path at offered
//!   concurrency 32, with `Throughput::Elements` so the shim reports
//!   requests/sec first-class (stdout and `CRITERION_JSON`);
//! * a windowed closed-loop requests/sec table appended to
//!   `results/serving_throughput.json` (same JSON-lines trajectory format
//!   as the figure/table harnesses), honouring `RDG_QUICK`/`RDG_THREADS`/
//!   `RDG_SECONDS` — queued rows carry the per-request latency
//!   percentiles (enqueue→complete) from `ServeStats`, which the bare
//!   `run_many` path cannot measure (that is the point of the queue);
//! * a **mixed-QoS table** (same JSON file): one Interactive foreground
//!   client measured while a saturating Batch background stream hammers
//!   the same queue, class-blind (everything in one lane — the PR 4
//!   behavior) vs QoS-aware (foreground `Priority::Interactive`,
//!   background `Priority::Batch`). The percentile columns are the
//!   *foreground* stream's client-observed latency; requests/s is the
//!   aggregate of both streams.

use criterion::{BenchmarkId, Criterion, Throughput};
use rdg_bench::{fmt_thr, throughput, BenchOpts, Table};
use rdg_core::exec::LatencyPercentiles;
use rdg_core::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A per-instance TreeRNN inference session plus a pool of mixed-depth
/// requests (leaf counts spread 4–48, Moderate shape).
fn serving_fixture(threads: usize, quick: bool) -> (Session, Vec<Vec<Tensor>>) {
    let cfg = ModelConfig::paper_default(ModelKind::TreeRnn, 1);
    let data = Dataset::generate(DatasetConfig {
        vocab: cfg.vocab,
        n_train: 64,
        n_valid: 0,
        min_len: 4,
        max_len: if quick { 24 } else { 48 },
        shape: TreeShape::Moderate,
        seed: 20240715,
        ..DatasetConfig::default()
    });
    let m = build_recursive(&cfg).expect("build recursive");
    let sess = Session::new(Executor::with_threads(threads), m).expect("session");
    let requests = Dataset::feeds_per_instance(data.split(Split::Train));
    (sess, requests)
}

fn serving_bench(c: &mut Criterion, sess: &Session, requests: &[Vec<Tensor>]) {
    let mut g = c.benchmark_group("serving");
    g.sample_size(10);

    // Sequential baseline: the same 8 requests, one blocking run at a time.
    let reqs8: Vec<Vec<Tensor>> = requests[..8].to_vec();
    g.throughput(Throughput::Elements(8));
    g.bench_with_input(BenchmarkId::new("sequential", 8), &8usize, |b, _| {
        b.iter(|| {
            for r in &reqs8 {
                sess.run(r.clone()).expect("request");
            }
        })
    });

    // Concurrent serving minibatches (bare: all requests in flight at once).
    for &n in &[8usize, 32] {
        let reqs: Vec<Vec<Tensor>> = requests[..n].to_vec();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("run_many", n), &n, |b, _| {
            b.iter(|| {
                for r in sess.run_many(reqs.clone()) {
                    r.expect("request");
                }
            })
        });
    }

    // Admission-queue arm: the same 32 requests *offered* at once, but the
    // dispatcher admits them in worker-sized waves, so in-flight frames
    // stay at ≈ workers × batch_multiple instead of 32 — the high-offered-
    // concurrency locality tax is what this path removes.
    {
        let client = sess.serve();
        let reqs: Vec<Vec<Tensor>> = requests[..32].to_vec();
        g.throughput(Throughput::Elements(32));
        g.bench_with_input(BenchmarkId::new("queued", 32), &32usize, |b, _| {
            b.iter(|| {
                let tickets: Vec<_> = reqs
                    .iter()
                    .map(|r| client.submit(r.clone()).expect("admit"))
                    .collect();
                for t in tickets {
                    t.wait().expect("request");
                }
            })
        });
        client.shutdown();
    }
    g.finish();
}

/// Closed-loop requests/sec (and, on the queued path, latency percentiles)
/// at several concurrency levels, recorded to
/// `results/serving_throughput.json` for the cross-PR trajectory.
fn record_serving_throughput(opts: &BenchOpts, sess: &Session, requests: &[Vec<Tensor>]) {
    let window = Duration::from_secs_f64(opts.seconds);
    let mut table = Table::new(
        format!(
            "Serving throughput: mixed-depth TreeRNN inference, {} worker threads, {:.1}s window",
            opts.threads.max(2),
            opts.seconds
        ),
        &[
            "mode",
            "concurrency",
            "requests/s",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    for &conc in &[1usize, 8, 32] {
        // Closed loop: `conc` requests in flight per call, rotating
        // through the pool (the cursor lives in the closure).
        let mut cursor = 0usize;
        let rps = throughput(conc, window, || {
            let batch: Vec<Vec<Tensor>> = (0..conc)
                .map(|k| requests[(cursor + k) % requests.len()].clone())
                .collect();
            cursor = (cursor + conc) % requests.len();
            for r in sess.run_many(batch) {
                r.expect("request");
            }
        });
        table.row(&[
            "bare".into(),
            conc.to_string(),
            fmt_thr(rps),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    for &conc in &[8usize, 32] {
        // Queued closed loop: the same offered concurrency, admitted
        // through the bounded queue. A fresh client per row keeps each
        // row's latency window to its own measurement.
        let client = sess.serve();
        let mut cursor = 0usize;
        let rps = throughput(conc, window, || {
            let tickets: Vec<_> = (0..conc)
                .map(|k| {
                    let feeds = requests[(cursor + k) % requests.len()].clone();
                    client.submit(feeds).expect("admit")
                })
                .collect();
            cursor = (cursor + conc) % requests.len();
            for t in tickets {
                t.wait().expect("request");
            }
        });
        let st = client.stats();
        table.row(&[
            "queued".into(),
            conc.to_string(),
            fmt_thr(rps),
            format!("{:.0}", st.total.p50_us),
            format!("{:.0}", st.total.p95_us),
            format!("{:.0}", st.total.p99_us),
        ]);
        client.shutdown();
    }
    table.emit("serving_throughput");
}

/// The cross-request batching fixture: the same mixed-depth tree pool as
/// [`serving_fixture`], but at serving-scale model dimensions
/// (embed 256, hidden 768). At the paper's toy dims (32) the weight
/// matrices live in L1 and per-request time is all executor machinery,
/// which fusing kernel calls cannot touch; at serving scale the combine
/// matrix alone is ~4.5 MB — past L2 — so every scalar GEMV re-streams
/// it and a fused row block reads it once. That is the regime dynamic
/// batching exists for.
fn batching_fixture(threads: usize, quick: bool) -> (Session, Vec<Vec<Tensor>>) {
    let cfg = ModelConfig {
        kind: ModelKind::TreeRnn,
        vocab: 2000,
        embed: 256,
        hidden: 768,
        classes: 2,
        batch: 1,
        seed: 20180423,
    };
    let data = Dataset::generate(DatasetConfig {
        vocab: cfg.vocab,
        n_train: 64,
        n_valid: 0,
        min_len: 4,
        max_len: if quick { 24 } else { 48 },
        shape: TreeShape::Moderate,
        seed: 20240715,
        ..DatasetConfig::default()
    });
    let m = build_recursive(&cfg).expect("build recursive");
    let sess = Session::new(Executor::with_threads(threads), m).expect("session");
    let requests = Dataset::feeds_per_instance(data.split(Split::Train));
    (sess, requests)
}

/// One cross-request-batching measurement: a closed loop of `conc`
/// offered requests through the admission queue, with the dispatch-time
/// kernel fuser either off (the scalar PR 5–7 path) or on. Fixed wave
/// sizing at a saturating multiple keeps both arms' admission schedules
/// identical, so the fuser is the only variable. Returns the requests/s
/// plus the client's final `ServeStats` (latency percentiles and the
/// fusion telemetry rows).
fn batching_arm(
    sess: &Session,
    requests: &[Vec<Tensor>],
    window: Duration,
    conc: usize,
    fused: bool,
) -> (f64, ServeStats) {
    let client = sess.serve_with(ServeConfig {
        capacity: 64,
        batch_multiple: 16,
        sizing: WaveSizing::Fixed,
        cross_request_batching: fused,
        ..ServeConfig::default()
    });
    let mut cursor = 0usize;
    let rps = throughput(conc, window, || {
        let tickets: Vec<_> = (0..conc)
            .map(|k| {
                let feeds = requests[(cursor + k) % requests.len()].clone();
                client.submit(feeds).expect("admit")
            })
            .collect();
        cursor = (cursor + conc) % requests.len();
        for t in tickets {
            t.wait().expect("request");
        }
    });
    let st = client.stats();
    client.shutdown();
    (rps, st)
}

/// The cross-request batching A/B table: identical saturating mixed-depth
/// traffic, scalar dispatch vs the dispatch-time fuser, with the fusion
/// telemetry (groups formed, instances fused, eligible instances, fused
/// fraction) carried per row. Appended to
/// `results/serving_throughput.json`.
///
/// With `RDG_ASSERT_SPEEDUP=1` the arm also enforces the PR 8 acceptance
/// floor — fused ≥ 1.3× scalar requests/s and ≥ 50% of eligible
/// instances fused — which on a busy or single-core host is advisory
/// only (see ROADMAP.md on wall-clock asserts).
fn record_batching_ab(opts: &BenchOpts) {
    let (sess, requests) = batching_fixture(opts.threads.max(2), opts.quick);
    let (sess, requests) = (&sess, &requests[..]);
    let window = Duration::from_secs_f64(opts.seconds);
    const CONC: usize = 32;
    let mut table = Table::new(
        format!(
            "Cross-request batching A/B: mixed-depth TreeRNN at serving \
             scale (embed 256, hidden 768), {} offered requests \
             closed-loop, {} worker threads, {:.1}s window; fused rows \
             stack same-shape kernels across requests at dispatch time",
            CONC,
            opts.threads.max(2),
            opts.seconds
        ),
        &[
            "mode",
            "concurrency",
            "requests/s",
            "p50_us",
            "p99_us",
            "fused_groups",
            "fused_instances",
            "fused_eligible",
            "fused_frac",
        ],
    );
    let mut rps_by_mode = [0.0f64; 2];
    let mut last_frac = 0.0f64;
    for (i, (mode, fused)) in [("queued-scalar", false), ("queued-fused", true)]
        .into_iter()
        .enumerate()
    {
        let (rps, st) = batching_arm(sess, requests, window, CONC, fused);
        rps_by_mode[i] = rps;
        last_frac = st.fused_fraction();
        table.row(&[
            mode.into(),
            CONC.to_string(),
            fmt_thr(rps),
            format!("{:.0}", st.total.p50_us),
            format!("{:.0}", st.total.p99_us),
            st.fusion_groups.to_string(),
            st.fusion_instances.to_string(),
            st.fusion_eligible.to_string(),
            format!("{:.3}", last_frac),
        ]);
    }
    table.emit("serving_throughput");
    if std::env::var_os("RDG_ASSERT_SPEEDUP").is_some() {
        let ratio = rps_by_mode[1] / rps_by_mode[0];
        assert!(
            ratio >= 1.3,
            "fused serving only {ratio:.2}x scalar (floor 1.3x)"
        );
        assert!(
            last_frac >= 0.5,
            "only {:.0}% of eligible instances fused (floor 50%)",
            last_frac * 100.0
        );
    }
}

/// One mixed-QoS measurement: `bg_threads` background clients keep
/// `bg_outstanding` requests in flight each (a saturating stream), while
/// the foreground thread runs a closed loop and measures every request at
/// the client. `qos = false` submits both streams into one class (the
/// class-blind PR 4 queue); `qos = true` splits them
/// Interactive/Batch. Returns (aggregate req/s, foreground percentiles).
fn mixed_qos_arm(
    sess: &Session,
    requests: &[Vec<Tensor>],
    window: Duration,
    qos: bool,
) -> (f64, LatencyPercentiles) {
    const BG_THREADS: usize = 2;
    const BG_OUTSTANDING: usize = 24;
    let client = sess.serve_with(ServeConfig {
        capacity: 64,
        // Aging is the starvation bound, tuned to the lower class's
        // tolerance; for the A/B arm it must exceed the backlog drain
        // time or the aged backlog degenerates to FIFO and the arms
        // measure the same thing.
        aging_step: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let bg_class = if qos {
        Priority::Batch
    } else {
        Priority::Interactive
    };
    let stop = Arc::new(AtomicBool::new(false));
    let mut bg = Vec::new();
    for t in 0..BG_THREADS {
        let client = client.with_priority(bg_class);
        let stop = Arc::clone(&stop);
        let requests = requests.to_vec();
        bg.push(std::thread::spawn(move || {
            let mut ring: std::collections::VecDeque<rdg_core::exec::ServeTicket> =
                std::collections::VecDeque::new();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                if ring.len() >= BG_OUTSTANDING {
                    ring.pop_front().unwrap().wait().expect("bg request");
                }
                let feeds = requests[(t * 41 + i) % requests.len()].clone();
                i += 1;
                ring.push_back(client.submit(feeds).expect("bg admit"));
            }
            for t in ring {
                t.wait().expect("bg drain");
            }
        }));
    }
    // Foreground: closed loop, one request at a time, client-observed
    // latency per request (the number an interactive SLO is written on).
    let mut fg_lat_ns: Vec<u64> = Vec::new();
    let t0 = Instant::now();
    let mut i = 0usize;
    while t0.elapsed() < window {
        let feeds = requests[(i * 7) % requests.len()].clone();
        i += 1;
        let sent = Instant::now();
        client
            .submit(feeds)
            .expect("fg admit")
            .wait()
            .expect("fg request");
        fg_lat_ns.push(sent.elapsed().as_nanos() as u64);
    }
    stop.store(true, Ordering::Relaxed);
    for h in bg {
        h.join().expect("bg thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let completed = client.stats().completed;
    client.shutdown();
    (
        completed as f64 / wall,
        LatencyPercentiles::from_ns_samples(&mut fg_lat_ns),
    )
}

/// The mixed-QoS table: Interactive foreground under a saturating Batch
/// background, class-blind vs QoS-aware, appended to
/// `results/serving_throughput.json` next to the closed-loop table.
fn record_mixed_qos(opts: &BenchOpts, sess: &Session, requests: &[Vec<Tensor>]) {
    let window = Duration::from_secs_f64(opts.seconds);
    let mut table = Table::new(
        format!(
            "Mixed QoS: interactive foreground vs saturating batch background \
             (2 bg clients × 24 in flight), {} worker threads, {:.1}s window; \
             percentiles are the foreground stream's",
            opts.threads.max(2),
            opts.seconds
        ),
        &[
            "mode",
            "concurrency",
            "requests/s",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    for (mode, qos) in [("mixed-blind", false), ("mixed-qos", true)] {
        let (rps, fg) = mixed_qos_arm(sess, requests, window, qos);
        table.row(&[
            mode.into(),
            "1+48".into(),
            fmt_thr(rps),
            format!("{:.0}", fg.p50_us),
            format!("{:.0}", fg.p95_us),
            format!("{:.0}", fg.p99_us),
        ]);
    }
    table.emit("serving_throughput");
}

/// One overload arm: `OV_CLIENTS` closed-loop clients per class keep the
/// queue saturated for `window`; every request is measured at the client.
/// With `slo` set, requests go through `submit_slo_with` (all three shed
/// points armed) and a shed resolves the ticket immediately; without, the
/// PR 5 path — backpressure only, every admitted request served however
/// stale. Returns per-class `(goodput req/s, completed, shed)` where
/// goodput counts only requests that *completed within `slo_ns`* — the
/// number an SLO dashboard reports, identical filter for both arms.
fn overload_arm(
    sess: &Session,
    requests: &[Vec<Tensor>],
    window: Duration,
    slo_ns: u64,
    shed: bool,
) -> [(f64, u64, u64); 2] {
    const OV_CLIENTS: usize = 2; // per class
    const OV_OUTSTANDING: usize = 12;
    let client = sess.serve_with(ServeConfig {
        capacity: 64,
        aging_step: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let classes = [Priority::Interactive, Priority::Batch];
    let t0 = Instant::now();
    let mut per_class = [(0.0f64, 0u64, 0u64); 2];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (ci, &class) in classes.iter().enumerate() {
            for t in 0..OV_CLIENTS {
                let client = client.with_priority(class);
                let requests = &requests;
                handles.push(scope.spawn(move || -> (usize, u64, u64, u64) {
                    let mut ring: std::collections::VecDeque<(
                        Instant,
                        rdg_core::exec::ServeTicket,
                    )> = std::collections::VecDeque::new();
                    let (mut good, mut done, mut shed_n) = (0u64, 0u64, 0u64);
                    let mut reap = |ring: &mut std::collections::VecDeque<_>| {
                        let (sent, ticket): (Instant, rdg_core::exec::ServeTicket) =
                            ring.pop_front().unwrap();
                        match ticket.wait() {
                            Ok(_) => {
                                done += 1;
                                if sent.elapsed().as_nanos() as u64 <= slo_ns {
                                    good += 1;
                                }
                            }
                            Err(rdg_core::exec::ServeError::Shed { .. }) => shed_n += 1,
                            Err(e) => panic!("overload request failed: {e}"),
                        }
                    };
                    // Predictive sheds are rejected at submit (no ticket),
                    // counted apart so the reap closure owns `shed_n` alone.
                    let mut pre_shed = 0u64;
                    let mut i = 0usize;
                    while t0.elapsed() < window {
                        if ring.len() >= OV_OUTSTANDING {
                            reap(&mut ring);
                        }
                        let feeds = requests[(ci * 97 + t * 41 + i) % requests.len()].clone();
                        i += 1;
                        let sent = Instant::now();
                        let submitted = if shed {
                            client.submit_slo(feeds, Duration::from_nanos(slo_ns))
                        } else {
                            client.submit(feeds)
                        };
                        match submitted {
                            Ok(ticket) => ring.push_back((sent, ticket)),
                            Err(rdg_core::exec::ServeError::Shed { .. }) => pre_shed += 1,
                            Err(e) => panic!("overload submit failed: {e}"),
                        }
                    }
                    while !ring.is_empty() {
                        reap(&mut ring);
                    }
                    drop(reap);
                    (ci, good, done, shed_n + pre_shed)
                }));
            }
        }
        for h in handles {
            let (ci, good, done, shed_n) = h.join().expect("overload client");
            per_class[ci].1 += done;
            per_class[ci].2 += shed_n;
            per_class[ci].0 += good as f64;
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    for entry in &mut per_class {
        entry.0 /= wall;
    }
    client.shutdown();
    per_class
}

/// The overload table: identical saturating two-class traffic, PR 5
/// no-shedding baseline vs SLO-enforced shedding, goodput + shed counts
/// per class, appended to `results/serving_throughput.json`.
fn record_overload_shedding(opts: &BenchOpts, sess: &Session, requests: &[Vec<Tensor>]) {
    let window = Duration::from_secs_f64(opts.seconds);
    // Calibrate the SLO to this host: mean unloaded latency of a few
    // sequential requests, scaled to half the expected full-queue wait
    // (2 classes × 2 clients × 12 outstanding, minus in-flight slack).
    let t0 = Instant::now();
    let cal = 8usize;
    for r in requests.iter().take(cal) {
        sess.run(r.clone()).expect("calibration request");
    }
    let mean_ns = (t0.elapsed().as_nanos() as u64 / cal as u64).max(1);
    let slo_ns = mean_ns * 48 / (2 * opts.threads.max(2) as u64);
    let mut table = Table::new(
        format!(
            "Overload shedding: 2+2 closed-loop clients × 12 in flight per \
             class, SLO {:.1} ms (calibrated), {} worker threads, {:.1}s \
             window; goodput counts requests completed within the SLO",
            slo_ns as f64 / 1e6,
            opts.threads.max(2),
            opts.seconds
        ),
        &["mode", "class", "goodput/s", "completed", "shed"],
    );
    for (mode, shed) in [("overload-noslo", false), ("overload-slo", true)] {
        let per_class = overload_arm(sess, requests, window, slo_ns, shed);
        for (ci, class) in [Priority::Interactive, Priority::Batch].iter().enumerate() {
            let (goodput, done, shed_n) = per_class[ci];
            table.row(&[
                mode.into(),
                class.name().into(),
                fmt_thr(goodput),
                done.to_string(),
                shed_n.to_string(),
            ]);
        }
    }
    table.emit("serving_throughput");
}

fn main() {
    // One fixture for all four measurements: same session, same request
    // pool, one worker pool (a `criterion_group!` would rebuild it per
    // target).
    let opts = BenchOpts::from_env();
    let (sess, requests) = serving_fixture(opts.threads.max(2), opts.quick);
    let mut criterion = Criterion::default();
    serving_bench(&mut criterion, &sess, &requests);
    record_serving_throughput(&opts, &sess, &requests);
    record_batching_ab(&opts);
    record_mixed_qos(&opts, &sess, &requests);
    record_overload_shedding(&opts, &sess, &requests);
}
