//! serving_throughput — concurrent inference serving on one session.
//!
//! The north-star workload: a stream of independent, mixed-depth inference
//! requests (different parse trees → different recursion depths) served by
//! one `Session` on one shared worker pool, both bare (`Session::run_many`)
//! and through the admission queue (`Session::serve`).
//!
//! Three measurements:
//!
//! * criterion group `serving/*` — `run_many` at several concurrency levels
//!   vs the blocking sequential loop vs the admission-queue path at offered
//!   concurrency 32, with `Throughput::Elements` so the shim reports
//!   requests/sec first-class (stdout and `CRITERION_JSON`);
//! * a windowed closed-loop requests/sec table appended to
//!   `results/serving_throughput.json` (same JSON-lines trajectory format
//!   as the figure/table harnesses), honouring `RDG_QUICK`/`RDG_THREADS`/
//!   `RDG_SECONDS` — queued rows carry the per-request latency
//!   percentiles (enqueue→complete) from `ServeStats`, which the bare
//!   `run_many` path cannot measure (that is the point of the queue).

use criterion::{BenchmarkId, Criterion, Throughput};
use rdg_bench::{fmt_thr, throughput, BenchOpts, Table};
use rdg_core::prelude::*;
use std::time::Duration;

/// A per-instance TreeRNN inference session plus a pool of mixed-depth
/// requests (leaf counts spread 4–48, Moderate shape).
fn serving_fixture(threads: usize, quick: bool) -> (Session, Vec<Vec<Tensor>>) {
    let cfg = ModelConfig::paper_default(ModelKind::TreeRnn, 1);
    let data = Dataset::generate(DatasetConfig {
        vocab: cfg.vocab,
        n_train: 64,
        n_valid: 0,
        min_len: 4,
        max_len: if quick { 24 } else { 48 },
        shape: TreeShape::Moderate,
        seed: 20240715,
        ..DatasetConfig::default()
    });
    let m = build_recursive(&cfg).expect("build recursive");
    let sess = Session::new(Executor::with_threads(threads), m).expect("session");
    let requests = Dataset::feeds_per_instance(data.split(Split::Train));
    (sess, requests)
}

fn serving_bench(c: &mut Criterion, sess: &Session, requests: &[Vec<Tensor>]) {
    let mut g = c.benchmark_group("serving");
    g.sample_size(10);

    // Sequential baseline: the same 8 requests, one blocking run at a time.
    let reqs8: Vec<Vec<Tensor>> = requests[..8].to_vec();
    g.throughput(Throughput::Elements(8));
    g.bench_with_input(BenchmarkId::new("sequential", 8), &8usize, |b, _| {
        b.iter(|| {
            for r in &reqs8 {
                sess.run(r.clone()).expect("request");
            }
        })
    });

    // Concurrent serving minibatches (bare: all requests in flight at once).
    for &n in &[8usize, 32] {
        let reqs: Vec<Vec<Tensor>> = requests[..n].to_vec();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("run_many", n), &n, |b, _| {
            b.iter(|| {
                for r in sess.run_many(reqs.clone()) {
                    r.expect("request");
                }
            })
        });
    }

    // Admission-queue arm: the same 32 requests *offered* at once, but the
    // dispatcher admits them in worker-sized waves, so in-flight frames
    // stay at ≈ workers × batch_multiple instead of 32 — the high-offered-
    // concurrency locality tax is what this path removes.
    {
        let client = sess.serve();
        let reqs: Vec<Vec<Tensor>> = requests[..32].to_vec();
        g.throughput(Throughput::Elements(32));
        g.bench_with_input(BenchmarkId::new("queued", 32), &32usize, |b, _| {
            b.iter(|| {
                let tickets: Vec<_> = reqs
                    .iter()
                    .map(|r| client.submit(r.clone()).expect("admit"))
                    .collect();
                for t in tickets {
                    t.wait().expect("request");
                }
            })
        });
        client.shutdown();
    }
    g.finish();
}

/// Closed-loop requests/sec (and, on the queued path, latency percentiles)
/// at several concurrency levels, recorded to
/// `results/serving_throughput.json` for the cross-PR trajectory.
fn record_serving_throughput(opts: &BenchOpts, sess: &Session, requests: &[Vec<Tensor>]) {
    let window = Duration::from_secs_f64(opts.seconds);
    let mut table = Table::new(
        format!(
            "Serving throughput: mixed-depth TreeRNN inference, {} worker threads, {:.1}s window",
            opts.threads.max(2),
            opts.seconds
        ),
        &[
            "mode",
            "concurrency",
            "requests/s",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    for &conc in &[1usize, 8, 32] {
        // Closed loop: `conc` requests in flight per call, rotating
        // through the pool (the cursor lives in the closure).
        let mut cursor = 0usize;
        let rps = throughput(conc, window, || {
            let batch: Vec<Vec<Tensor>> = (0..conc)
                .map(|k| requests[(cursor + k) % requests.len()].clone())
                .collect();
            cursor = (cursor + conc) % requests.len();
            for r in sess.run_many(batch) {
                r.expect("request");
            }
        });
        table.row(&[
            "bare".into(),
            conc.to_string(),
            fmt_thr(rps),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    for &conc in &[8usize, 32] {
        // Queued closed loop: the same offered concurrency, admitted
        // through the bounded queue. A fresh client per row keeps each
        // row's latency window to its own measurement.
        let client = sess.serve();
        let mut cursor = 0usize;
        let rps = throughput(conc, window, || {
            let tickets: Vec<_> = (0..conc)
                .map(|k| {
                    let feeds = requests[(cursor + k) % requests.len()].clone();
                    client.submit(feeds).expect("admit")
                })
                .collect();
            cursor = (cursor + conc) % requests.len();
            for t in tickets {
                t.wait().expect("request");
            }
        });
        let st = client.stats();
        table.row(&[
            "queued".into(),
            conc.to_string(),
            fmt_thr(rps),
            format!("{:.0}", st.total.p50_us),
            format!("{:.0}", st.total.p95_us),
            format!("{:.0}", st.total.p99_us),
        ]);
        client.shutdown();
    }
    table.emit("serving_throughput");
}

fn main() {
    // One fixture for both halves: same session, same request pool, one
    // worker pool (a `criterion_group!` would rebuild it per target).
    let opts = BenchOpts::from_env();
    let (sess, requests) = serving_fixture(opts.threads.max(2), opts.quick);
    let mut criterion = Criterion::default();
    serving_bench(&mut criterion, &sess, &requests);
    record_serving_throughput(&opts, &sess, &requests);
}
