//! Micro-benchmarks of the tensor kernels that dominate model time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdg_core::tensor::{ops, Tensor};

fn matmul_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(20);
    for &(m, k, n) in &[
        (1usize, 128usize, 128usize),
        (1, 336, 168),
        (25, 336, 168),
        (64, 64, 64),
    ] {
        let a = Tensor::full([m, k], 0.5);
        let b = Tensor::full([k, n], 0.25);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bench, (a, b)| bench.iter(|| ops::matmul(a, b).expect("matmul")),
        );
    }
    g.finish();
}

fn elementwise_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("elementwise");
    g.sample_size(20);
    let x = Tensor::full([25, 168], 0.3);
    g.bench_function("tanh_25x168", |b| b.iter(|| ops::tanh(&x).expect("tanh")));
    g.bench_function("sigmoid_25x168", |b| {
        b.iter(|| ops::sigmoid(&x).expect("sigmoid"))
    });
    let y = Tensor::full([25, 168], 0.7);
    g.bench_function("mul_25x168", |b| b.iter(|| ops::mul(&x, &y).expect("mul")));
    g.finish();
}

fn gather_scatter_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("gather_scatter");
    g.sample_size(20);
    let table = Tensor::full([2000, 64], 0.1);
    let ids = Tensor::from_i32([64], (0..64).map(|i| (i * 31) % 2000).collect()).expect("ids");
    g.bench_function("gather_64_rows_of_64", |b| {
        b.iter(|| ops::gather_rows(&table, &ids).expect("gather"))
    });
    let src = Tensor::full([64, 64], 0.5);
    g.bench_function("scatter_add_64_rows", |b| {
        b.iter(|| {
            let mut dst = Tensor::zeros([2000, 64]);
            ops::scatter_add_rows(&mut dst, &ids, &src).expect("scatter");
            dst
        })
    });
    g.finish();
}

fn bilinear_bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("bilinear");
    g.sample_size(10);
    // RNTN-sized: 32 slices of 64×64.
    let x = Tensor::full([1, 64], 0.2);
    let v = Tensor::full([32, 64, 64], 0.01);
    g.bench_function("rntn_1x64_v32", |b| {
        b.iter(|| ops::bilinear(&x, &v).expect("bilinear"))
    });
    g.finish();
}

criterion_group!(
    benches,
    matmul_bench,
    elementwise_bench,
    gather_scatter_bench,
    bilinear_bench
);
criterion_main!(benches);
