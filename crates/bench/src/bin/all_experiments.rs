//! Runs every figure/table harness in sequence (quick mode unless
//! overridden), collecting all outputs under `results/`.

use std::process::Command;

fn main() {
    let bins = [
        "fig7", "fig8", "fig9", "fig10", "fig11", "table1", "table2", "table3",
    ];
    let quick = std::env::var("RDG_QUICK").unwrap_or_else(|_| "1".into());
    println!("running all experiments (RDG_QUICK={quick})");
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::PathBuf::from));
    for bin in bins {
        println!("\n##### {bin} #####");
        let status = match &exe_dir {
            // Prefer sibling binaries (same build profile)…
            Some(dir) if dir.join(bin).exists() => Command::new(dir.join(bin))
                .env("RDG_QUICK", &quick)
                .status(),
            // …fall back to cargo for odd layouts.
            _ => Command::new("cargo")
                .args(["run", "--release", "-p", "rdg_bench", "--bin", bin])
                .env("RDG_QUICK", &quick)
                .status(),
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("failed to launch {bin}: {e}"),
        }
    }
    println!("\nall experiment outputs appended under results/");
}
