//! Figure 10 — TreeLSTM training throughput under data parallelism on
//! 1/2/4/8 machines (paper: 1.00× / 1.85× / 3.65× / 7.34×).
//!
//! Two modes are reported:
//! * **real threads** — honest wall-clock on this host (scaling saturates at
//!   the physical core count; the paper had 8 × 36-core machines);
//! * **virtual time** — compute times calibrated from the real 1-machine
//!   run, synchronous-step makespan modeled as straggler max + parameter-
//!   server network cost (the documented hardware substitution).

use rdg_bench::{fmt_thr, record, BenchOpts, Table};
use rdg_core::cluster::{run_real, run_virtual, ClusterConfig, NetModel};
use rdg_core::prelude::*;

fn main() {
    let opts = BenchOpts::from_env();
    let machines = [1usize, 2, 4, 8];
    let data = Dataset::generate(DatasetConfig {
        vocab: 500,
        n_train: 128,
        n_valid: 0,
        min_len: 4,
        max_len: if opts.quick { 10 } else { 20 },
        seed: 10,
        ..DatasetConfig::default()
    });
    let mut model = if opts.quick {
        ModelConfig::tiny(ModelKind::TreeLstm, 2)
    } else {
        let mut m = ModelConfig::paper_default(ModelKind::TreeLstm, 4);
        m.hidden = 96; // keep per-step time moderate on small hosts
        m
    };
    model.vocab = 500;
    let steps = if opts.quick { 2 } else { 4 };

    println!(
        "Figure 10: TreeLSTM data-parallel training, per-machine batch {}, {} steps{}",
        model.batch,
        steps,
        if opts.quick { " [quick]" } else { "" }
    );

    // Parameter volume for the network model.
    let m = build_recursive(&model).expect("build");
    let param_bytes: f64 = m.params.iter().map(|p| p.init.numel() as f64 * 4.0).sum();
    println!("parameter volume: {:.2} MB", param_bytes / 1e6);

    let mut table = Table::new(
        "Fig 10: training throughput vs machines",
        &[
            "machines",
            "real inst/s",
            "real speedup",
            "virtual inst/s",
            "virtual speedup",
        ],
    );
    let mut base_real = None;
    let mut base_virt = None;
    for &n in &machines {
        let cfg = ClusterConfig {
            n_machines: n,
            threads_per_machine: 1,
            model: model.clone(),
            steps,
            lr: 0.01,
        };
        let real = run_real(&cfg, &data).expect("real cluster run");
        let virt =
            run_virtual(&cfg, &data, &NetModel::default(), param_bytes).expect("virtual run");
        let br = *base_real.get_or_insert(real.instances_per_sec);
        let bv = *base_virt.get_or_insert(virt.instances_per_sec);
        table.row(&[
            n.to_string(),
            fmt_thr(real.instances_per_sec),
            format!("{:.2}x", real.instances_per_sec / br),
            fmt_thr(virt.instances_per_sec),
            format!("{:.2}x", virt.instances_per_sec / bv),
        ]);
    }
    table.emit("fig10");
    println!("paper reference speedups: 1.00x / 1.85x / 3.65x / 7.34x");
    record(
        "fig10",
        &format!("threads=1/machine quick={}\n", opts.quick),
    );
}
