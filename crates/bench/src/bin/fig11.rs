//! Figure 11 — Per-instance processing time vs sentence length for the
//! TreeLSTM model, recursive vs iterative, training and inference.
//!
//! The iterative implementation is O(N) by construction; the recursive one
//! approaches O(height) = O(log N) when workers are plentiful. Wall-clock
//! rows show this host's truncated parallelism; the virtual-time rows replay
//! the same dataflow on a 36-worker machine (the paper's testbed width),
//! where the logarithmic inference trend is visible.

use rdg_bench::{record, time_once, BenchOpts, Table};
use rdg_core::exec::sim::SimExecutor;
use rdg_core::exec::ModulePlan;
use rdg_core::prelude::*;
use std::sync::Arc;

fn main() {
    let opts = BenchOpts::from_env();
    let lengths: &[usize] = if opts.quick {
        &[10, 40, 120]
    } else {
        &[10, 25, 50, 100, 150, 200, 250]
    };
    let mut cfg = ModelConfig::paper_default(ModelKind::TreeLstm, 1);
    if opts.quick {
        cfg.hidden = 48;
    }

    println!(
        "Figure 11: per-instance time vs sentence length (TreeLSTM, balanced parses), {} threads{}",
        opts.threads,
        if opts.quick { " [quick]" } else { "" }
    );

    let mut table = Table::new(
        "Fig 11: per-instance time (ms) vs words",
        &[
            "words",
            "train rec",
            "train iter",
            "infer rec",
            "infer iter",
            "sim36 rec",
            "sim36 iter",
        ],
    );

    let exec = Executor::with_threads(opts.threads);
    for &len in lengths {
        let data = Dataset::generate_fixed_length(
            DatasetConfig {
                vocab: cfg.vocab,
                n_train: 2,
                n_valid: 0,
                shape: TreeShape::Balanced,
                seed: 11,
                ..DatasetConfig::default()
            },
            len,
        );
        let insts = data.split(Split::Train)[..1].to_vec();
        let feeds = Dataset::feeds_for(&insts);

        let m_rec = build_recursive(&cfg).expect("build");
        let m_itr = build_iterative(&cfg).expect("build");
        let t_rec = build_training_module(&m_rec, m_rec.main.outputs[0]).expect("ad");
        let t_itr = build_training_module(&m_itr, m_itr.main.outputs[0]).expect("ad");

        let s_rec = Session::new(Arc::clone(&exec), m_rec.clone()).expect("session");
        let s_itr =
            Session::with_params(Arc::clone(&exec), m_itr.clone(), Arc::clone(s_rec.params()))
                .expect("session");
        let st_rec = Session::with_params(Arc::clone(&exec), t_rec, Arc::clone(s_rec.params()))
            .expect("session");
        let st_itr = Session::with_params(Arc::clone(&exec), t_itr, Arc::clone(s_rec.params()))
            .expect("session");

        // Warm-ups, then single-shot timings (medians over 3).
        let med = |f: &mut dyn FnMut() -> f64| -> f64 {
            let mut v = [f(), f(), f()];
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v[1]
        };
        let feeds2 = feeds.clone();
        let tr_rec = med(&mut || {
            time_once(|| {
                st_rec.run_training(feeds2.clone()).expect("run");
            })
        });
        let feeds2 = feeds.clone();
        let tr_itr = med(&mut || {
            time_once(|| {
                st_itr.run_training(feeds2.clone()).expect("run");
            })
        });
        let feeds2 = feeds.clone();
        let in_rec = med(&mut || {
            time_once(|| {
                s_rec.run(feeds2.clone()).expect("run");
            })
        });
        let feeds2 = feeds.clone();
        let in_itr = med(&mut || {
            time_once(|| {
                s_itr.run(feeds2.clone()).expect("run");
            })
        });

        // Virtual-time inference on a 36-worker machine.
        let sim = SimExecutor::new(36);
        let plan_rec = ModulePlan::new(Arc::new(m_rec)).expect("plan");
        let plan_itr = ModulePlan::new(Arc::new(m_itr)).expect("plan");
        let sim_rec = sim
            .run(&plan_rec, s_rec.params(), feeds.clone(), None, None)
            .expect("sim")
            .seconds();
        let sim_itr = sim
            .run(&plan_itr, s_rec.params(), feeds.clone(), None, None)
            .expect("sim")
            .seconds();

        table.row(&[
            len.to_string(),
            format!("{:.1}", tr_rec * 1e3),
            format!("{:.1}", tr_itr * 1e3),
            format!("{:.1}", in_rec * 1e3),
            format!("{:.1}", in_itr * 1e3),
            format!("{:.2}", sim_rec * 1e3),
            format!("{:.2}", sim_itr * 1e3),
        ]);
    }
    table.emit("fig11");
    println!(
        "expected shape: iterative columns grow ~linearly with words; the \
         sim36 recursive column grows ~logarithmically (tree height)."
    );
    record(
        "fig11",
        &format!("threads={} quick={}\n", opts.threads, opts.quick),
    );
}
