//! Figure 7 — Training throughput for TreeRNN, RNTN, and TreeLSTM with the
//! synthetic Large Movie Review stand-in: recursive vs iterative vs
//! static-unrolling, batch sizes {1, 10, 25}.
//!
//! Recursive and iterative bins run minibatches as **concurrent batch
//! runs**: the module is built per-instance and the runtime launches the
//! whole minibatch as concurrent root frames on one worker pool
//! (`Trainer::step_batch`), instead of replicating the instance subgraphs
//! inside one main graph. Unrolling keeps its defining per-instance
//! graph-construction loop.

use rdg_bench::{fmt_thr, record, throughput, BenchOpts, Table};
use rdg_core::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_env();
    let window = Duration::from_secs_f64(opts.seconds);
    let batches: &[usize] = if opts.quick { &[1, 10] } else { &[1, 10, 25] };
    let kinds = [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm];

    println!(
        "Figure 7: training throughput (instances/s), {} threads, window {:.1}s{}",
        opts.threads,
        opts.seconds,
        if opts.quick { " [quick]" } else { "" }
    );

    for kind in kinds {
        let mut table = Table::new(
            format!("Fig 7 ({kind:?}) training throughput"),
            &["batch", "Recursive", "Iterative", "Unrolling"],
        );
        for &batch in batches {
            // Per-instance module: the minibatch is batched by the runtime
            // (concurrent root frames), not inside the graph.
            let cfg = ModelConfig::paper_default(kind, 1);
            let data = Dataset::generate(DatasetConfig {
                vocab: cfg.vocab,
                n_train: batch.max(8) * 4,
                n_valid: 0,
                min_len: 4,
                max_len: if opts.quick { 16 } else { 32 },
                seed: 7,
                ..DatasetConfig::default()
            });
            let insts: Vec<Instance> = data.split(Split::Train)[..batch].to_vec();
            let feeds_list = Dataset::feeds_per_instance(&insts);

            // Recursive.
            let m = build_recursive(&cfg).expect("build recursive");
            let t = build_training_module(&m, m.main.outputs[0]).expect("autodiff");
            let exec = Executor::with_threads(opts.threads);
            let sess = Session::new(Arc::clone(&exec), t).expect("session");
            let mut trainer = Trainer::new(sess, Adagrad::new(0.01));
            let rec = throughput(batch, window, || {
                trainer.step_batch(feeds_list.clone()).expect("train step");
            });

            // Iterative.
            let m = build_iterative(&cfg).expect("build iterative");
            let t = build_training_module(&m, m.main.outputs[0]).expect("autodiff");
            let sess = Session::new(Arc::clone(&exec), t).expect("session");
            let mut trainer = Trainer::new(sess, Adagrad::new(0.01));
            let itr = throughput(batch, window, || {
                trainer.step_batch(feeds_list.clone()).expect("train step");
            });

            // Unrolling (fresh graph per instance, sequential dispatch).
            let unr_model = UnrolledModel::new(cfg.clone()).expect("build unrolled");
            let grads = rdg_core::exec::GradStore::new(unr_model.params().len());
            let mut opt = Adagrad::new(0.01);
            let unr = throughput(batch, window, || {
                unr_model.run_training(&insts, &grads).expect("train step");
                opt.step(unr_model.params(), &grads).expect("update");
            });

            table.row(&[batch.to_string(), fmt_thr(rec), fmt_thr(itr), fmt_thr(unr)]);
        }
        table.emit("fig7");
    }
    record(
        "fig7",
        &format!("threads={} quick={}\n", opts.threads, opts.quick),
    );
}
