//! Figure 8 — Inference throughput for TreeRNN, RNTN, and TreeLSTM:
//! recursive vs iterative vs static-unrolling, batch sizes {1, 10, 25}.

use rdg_bench::{fmt_thr, record, throughput, BenchOpts, Table};
use rdg_core::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_env();
    let window = Duration::from_secs_f64(opts.seconds);
    let batches: &[usize] = if opts.quick { &[1, 10] } else { &[1, 10, 25] };
    let kinds = [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm];

    println!(
        "Figure 8: inference throughput (instances/s), {} threads, window {:.1}s{}",
        opts.threads,
        opts.seconds,
        if opts.quick { " [quick]" } else { "" }
    );

    for kind in kinds {
        let mut table = Table::new(
            format!("Fig 8 ({kind:?}) inference throughput"),
            &["batch", "Recursive", "Iterative", "Unrolling"],
        );
        for &batch in batches {
            let cfg = ModelConfig::paper_default(kind, batch);
            let data = Dataset::generate(DatasetConfig {
                vocab: cfg.vocab,
                n_train: batch.max(8) * 4,
                n_valid: 0,
                min_len: 4,
                max_len: if opts.quick { 16 } else { 32 },
                seed: 8,
                ..DatasetConfig::default()
            });
            let insts: Vec<Instance> = data.split(Split::Train)[..batch].to_vec();
            let feeds = Dataset::feeds_for(&insts);

            let exec = Executor::with_threads(opts.threads);
            let rec_sess = Session::new(Arc::clone(&exec), build_recursive(&cfg).expect("build"))
                .expect("session");
            let rec = throughput(batch, window, || {
                rec_sess.run(feeds.clone()).expect("run");
            });

            let itr_sess = Session::with_params(
                Arc::clone(&exec),
                build_iterative(&cfg).expect("build"),
                Arc::clone(rec_sess.params()),
            )
            .expect("session");
            let itr = throughput(batch, window, || {
                itr_sess.run(feeds.clone()).expect("run");
            });

            let mut unr_model = UnrolledModel::new(cfg).expect("build");
            unr_model.set_params(Arc::clone(rec_sess.params()));
            let unr = throughput(batch, window, || {
                unr_model.run_inference(&insts).expect("run");
            });

            table.row(&[batch.to_string(), fmt_thr(rec), fmt_thr(itr), fmt_thr(unr)]);
        }
        table.emit("fig8");
    }
    record(
        "fig8",
        &format!("threads={} quick={}\n", opts.threads, opts.quick),
    );
}
