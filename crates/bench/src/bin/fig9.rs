//! Figure 9 — Validation accuracy over wall-clock training time, recursive
//! vs iterative, for the three sentiment models. Reports the accuracy
//! trajectory and the time to reach the target accuracy.
//!
//! Both implementations take identical optimization trajectories (identical
//! per-step numerics); the recursive curve reaches any accuracy level
//! earlier exactly in proportion to its higher throughput — the paper's
//! point.

use rdg_bench::{record, BenchOpts, Table};
use rdg_core::nn::metrics::accuracy;
use rdg_core::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn eval_acc(sess: &Session, data: &Dataset, batch: usize) -> f32 {
    let (mut c, mut t) = (0.0f32, 0.0f32);
    for chunk in data.batches(Split::Valid, batch) {
        let outs = sess.run(Dataset::feeds_for(chunk)).expect("eval");
        let labels: Vec<i32> = chunk.iter().map(|i| i.label).collect();
        let labels = Tensor::from_i32([labels.len()], labels).expect("labels");
        c += accuracy(&outs[1], &labels).expect("accuracy") * chunk.len() as f32;
        t += chunk.len() as f32;
    }
    c / t
}

fn main() {
    let opts = BenchOpts::from_env();
    let batch = 8;
    let target = 0.85f32; // stands in for the paper's 93% line
    let epochs = if opts.quick { 3 } else { 6 };
    let kinds = [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm];

    println!(
        "Figure 9: validation accuracy vs wall time, target {:.0}%, {} threads{}",
        target * 100.0,
        opts.threads,
        if opts.quick { " [quick]" } else { "" }
    );

    for kind in kinds {
        let data = Dataset::generate(DatasetConfig {
            vocab: 60,
            n_train: if opts.quick { 800 } else { 1600 },
            n_valid: 160,
            min_len: 3,
            max_len: 6,
            seed: 9,
            ..DatasetConfig::default()
        });
        let mut cfg = ModelConfig::tiny(kind, batch);
        cfg.vocab = 60;
        cfg.embed = 6;
        cfg.hidden = 10;

        let mut table = Table::new(
            format!("Fig 9 ({kind:?}) accuracy vs time"),
            &["impl", "epoch", "wall s", "valid acc %", "reached target"],
        );
        for (name, module) in [
            ("recursive", build_recursive(&cfg).expect("build")),
            ("iterative", build_iterative(&cfg).expect("build")),
        ] {
            let train = build_training_module(&module, module.main.outputs[0]).expect("ad");
            let exec = Executor::with_threads(opts.threads);
            let ts = Session::new(Arc::clone(&exec), train).expect("session");
            let is = Session::with_params(exec, module, Arc::clone(ts.params())).expect("session");
            let mut trainer = Trainer::new(ts, Adagrad::new(0.05));
            let t0 = Instant::now();
            let mut reached: Option<f64> = None;
            for epoch in 1..=epochs {
                for chunk in data.batches(Split::Train, batch) {
                    trainer.step(Dataset::feeds_for(chunk)).expect("step");
                }
                let wall = t0.elapsed().as_secs_f64();
                let acc = eval_acc(&is, &data, batch);
                if acc >= target && reached.is_none() {
                    reached = Some(wall);
                }
                table.row(&[
                    name.to_string(),
                    epoch.to_string(),
                    format!("{wall:.1}"),
                    format!("{:.1}", acc * 100.0),
                    reached
                        .map(|t| format!("{t:.1}s"))
                        .unwrap_or_else(|| "-".into()),
                ]);
            }
        }
        table.emit("fig9");
    }
    record(
        "fig9",
        &format!("threads={} quick={}\n", opts.threads, opts.quick),
    );
}
