//! Table 1 — TreeRNN training throughput on the recursive implementation
//! with balanced / moderately-balanced / linear parse trees, batch {1,10,25}.
//!
//! Balancedness bounds the exploitable concurrency *within* one instance: a
//! full binary tree over N leaves admits (N+1)/2-way parallelism, a comb
//! admits ~1. Minibatches run as concurrent batch runs
//! (`Trainer::step_batch` on a per-instance module), so cross-instance
//! parallelism tops up whatever the tree shape leaves on the table — which
//! is why Linear gains the most from batching.

use rdg_bench::{fmt_thr, record, throughput, BenchOpts, Table};
use rdg_core::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_env();
    let window = Duration::from_secs_f64(opts.seconds);
    let batches: &[usize] = if opts.quick { &[1, 10] } else { &[1, 10, 25] };
    let shapes = [
        ("Balanced", TreeShape::Balanced),
        ("Moderate", TreeShape::Moderate),
        ("Linear", TreeShape::Linear),
    ];

    println!(
        "Table 1: TreeRNN recursive training throughput vs tree balancedness, {} threads{}",
        opts.threads,
        if opts.quick { " [quick]" } else { "" }
    );

    let mut table = Table::new(
        "Table 1: throughput (instances/s)",
        &["batch", "Balanced", "Moderate", "Linear"],
    );
    let exec = Executor::with_threads(opts.threads);
    for &batch in batches {
        // Per-instance module; the runtime batches across instances.
        let cfg = ModelConfig::paper_default(ModelKind::TreeRnn, 1);
        let mut cells = vec![batch.to_string()];
        for (_, shape) in shapes {
            let data = Dataset::generate(DatasetConfig {
                vocab: cfg.vocab,
                n_train: batch.max(4) * 2,
                n_valid: 0,
                min_len: if opts.quick { 12 } else { 24 },
                max_len: if opts.quick { 12 } else { 24 },
                shape,
                seed: 12,
                ..DatasetConfig::default()
            });
            let insts: Vec<Instance> = data.split(Split::Train)[..batch].to_vec();
            let feeds_list = Dataset::feeds_per_instance(&insts);
            let m = build_recursive(&cfg).expect("build");
            let t = build_training_module(&m, m.main.outputs[0]).expect("ad");
            let sess = Session::new(Arc::clone(&exec), t).expect("session");
            let mut trainer = Trainer::new(sess, Adagrad::new(0.01));
            let thr = throughput(batch, window, || {
                trainer.step_batch(feeds_list.clone()).expect("step");
            });
            cells.push(fmt_thr(thr));
        }
        table.row(&cells);
    }
    table.emit("table1");
    println!("paper shape: Balanced > Moderate > Linear at every batch size;");
    println!("Linear gains the most from batching (unused threads get work).");
    record(
        "table1",
        &format!("threads={} quick={}\n", opts.threads, opts.quick),
    );
}
