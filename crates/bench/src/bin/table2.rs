//! Table 2 — TreeLSTM inference and training throughput: iterative vs
//! recursive vs folding (depth-wise dynamic batching), batch {1, 10, 25}.
//!
//! The paper's crossover: recursion wins on inference (no regrouping
//! overhead, cheap parallelism), folding wins on training at larger batches
//! (batched kernels amortize; the paper additionally had a GPU — our fold
//! runs batched CPU kernels, see REPRODUCING.md for the gap discussion).

use rdg_bench::{fmt_thr, record, throughput, BenchOpts, Table};
use rdg_core::fold::FoldEngine;
use rdg_core::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_env();
    let window = Duration::from_secs_f64(opts.seconds);
    let batches: &[usize] = if opts.quick { &[1, 10] } else { &[1, 10, 25] };

    println!(
        "Table 2: TreeLSTM iterative/recursive/folding, {} threads{}",
        opts.threads,
        if opts.quick { " [quick]" } else { "" }
    );

    let mut inf_table = Table::new(
        "Table 2 (inference, instances/s)",
        &["batch", "Iter", "Recur", "Fold"],
    );
    let mut trn_table = Table::new(
        "Table 2 (training, instances/s)",
        &["batch", "Iter", "Recur", "Fold"],
    );

    let exec = Executor::with_threads(opts.threads);
    for &batch in batches {
        let mut cfg = ModelConfig::paper_default(ModelKind::TreeLstm, batch);
        if opts.quick {
            cfg.hidden = 64;
        }
        let data = Dataset::generate(DatasetConfig {
            vocab: cfg.vocab,
            n_train: batch.max(4) * 2,
            n_valid: 0,
            min_len: 4,
            max_len: if opts.quick { 16 } else { 32 },
            seed: 13,
            ..DatasetConfig::default()
        });
        let insts: Vec<Instance> = data.split(Split::Train)[..batch].to_vec();
        let feeds = Dataset::feeds_for(&insts);

        // Sessions with shared parameters.
        let m_rec = build_recursive(&cfg).expect("build");
        let m_itr = build_iterative(&cfg).expect("build");
        let t_rec = build_training_module(&m_rec, m_rec.main.outputs[0]).expect("ad");
        let t_itr = build_training_module(&m_itr, m_itr.main.outputs[0]).expect("ad");
        let s_rec = Session::new(Arc::clone(&exec), m_rec).expect("session");
        let s_itr = Session::with_params(Arc::clone(&exec), m_itr, Arc::clone(s_rec.params()))
            .expect("session");
        let st_rec = Session::with_params(Arc::clone(&exec), t_rec, Arc::clone(s_rec.params()))
            .expect("session");
        let st_itr = Session::with_params(Arc::clone(&exec), t_itr, Arc::clone(s_rec.params()))
            .expect("session");
        let mut fold = FoldEngine::new(cfg).expect("build fold");
        fold.set_params(Arc::clone(s_rec.params()));

        // Inference.
        let i_itr = throughput(batch, window, || {
            s_itr.run(feeds.clone()).expect("run");
        });
        let i_rec = throughput(batch, window, || {
            s_rec.run(feeds.clone()).expect("run");
        });
        let i_fold = throughput(batch, window, || {
            fold.infer(&insts).expect("run");
        });
        inf_table.row(&[
            batch.to_string(),
            fmt_thr(i_itr),
            fmt_thr(i_rec),
            fmt_thr(i_fold),
        ]);

        // Training (no optimizer application — measuring fwd+bwd as in §6.4).
        let t_itr = throughput(batch, window, || {
            st_itr.run_training(feeds.clone()).expect("run");
        });
        let t_rec = throughput(batch, window, || {
            st_rec.run_training(feeds.clone()).expect("run");
        });
        let grads = rdg_core::exec::GradStore::new(fold.params().len());
        let t_fold = throughput(batch, window, || {
            fold.train_step(&insts, &grads).expect("run");
        });
        trn_table.row(&[
            batch.to_string(),
            fmt_thr(t_itr),
            fmt_thr(t_rec),
            fmt_thr(t_fold),
        ]);
    }
    inf_table.emit("table2");
    trn_table.emit("table2");
    println!("paper shape: Recur dominates inference; Fold overtakes on training as batch grows.");
    record(
        "table2",
        &format!("threads={} quick={}\n", opts.threads, opts.quick),
    );
}
