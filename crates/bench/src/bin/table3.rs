//! Table 3 — TD-TreeLSTM (dynamically-structured) throughput: iterative vs
//! recursive, batch {1, 64}. Folding is *not applicable*: the tree structure
//! is computed during execution, so no ahead-of-time batching plan exists.

use rdg_bench::{fmt_thr, record, throughput, BenchOpts, Table};
use rdg_core::models::td::td_feeds;
use rdg_core::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let opts = BenchOpts::from_env();
    let window = Duration::from_secs_f64(opts.seconds);
    let batches: &[usize] = if opts.quick { &[1, 16] } else { &[1, 64] };

    println!(
        "Table 3: TD-TreeLSTM evaluation throughput, {} threads{}",
        opts.threads,
        if opts.quick { " [quick]" } else { "" }
    );

    let mut table = Table::new(
        "Table 3: throughput (instances/s)",
        &["batch", "Iterative", "Recursive", "Folding"],
    );
    let exec = Executor::with_threads(opts.threads);
    for &batch in batches {
        let mut cfg = TdConfig::paper_default(batch);
        if opts.quick {
            cfg.hidden = 32;
            cfg.max_depth = 5;
        }
        let feeds = td_feeds(&cfg, 14);

        let m_rec = build_td_recursive(&cfg).expect("build");
        let m_itr = build_td_iterative(&cfg).expect("build");
        let s_rec = Session::new(Arc::clone(&exec), m_rec).expect("session");
        let s_itr = Session::with_params(Arc::clone(&exec), m_itr, Arc::clone(s_rec.params()))
            .expect("session");

        // Sanity: both implementations generate identical structures.
        let nr = s_rec.run(feeds.clone()).expect("run")[0]
            .as_i32_scalar()
            .expect("count");
        let ni = s_itr.run(feeds.clone()).expect("run")[0]
            .as_i32_scalar()
            .expect("count");
        assert_eq!(nr, ni, "implementations must agree on generated trees");
        println!("batch {batch}: {nr} total nodes generated per run");

        let thr_itr = throughput(batch, window, || {
            s_itr.run(feeds.clone()).expect("run");
        });
        let thr_rec = throughput(batch, window, || {
            s_rec.run(feeds.clone()).expect("run");
        });
        table.row(&[
            batch.to_string(),
            fmt_thr(thr_itr),
            fmt_thr(thr_rec),
            "Not supported".into(),
        ]);
    }
    table.emit("table3");
    println!(
        "paper shape: recursive >> iterative (parallel sibling expansion); fold inapplicable."
    );
    record(
        "table3",
        &format!("threads={} quick={}\n", opts.threads, opts.quick),
    );
}
