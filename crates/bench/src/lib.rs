//! Shared benchmark harness: timing, table printing, result recording.
//!
//! Every figure/table binary follows the same protocol:
//!
//! 1. Read [`BenchOpts`] from the environment (`RDG_QUICK=1` shrinks
//!    workloads for smoke runs, `RDG_THREADS=n` pins the worker count,
//!    `RDG_SECONDS=s` adjusts the measurement window).
//! 2. Measure throughput with [`throughput`] (timed window after a warm-up).
//! 3. Print a paper-format table with [`Table`] and append a
//!    machine-readable record under `results/`: the rendered text to
//!    `results/<name>.txt` and one JSON line per run to
//!    `results/<name>.json`, so benchmark trajectories across PRs can be
//!    diffed mechanically (see [`record_json`]).

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Benchmark options from the environment.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Shrink workloads (CI / smoke runs).
    pub quick: bool,
    /// Executor worker threads.
    pub threads: usize,
    /// Measurement window per cell, seconds.
    pub seconds: f64,
}

impl BenchOpts {
    /// Reads `RDG_QUICK`, `RDG_THREADS`, `RDG_SECONDS`.
    pub fn from_env() -> Self {
        let quick = std::env::var("RDG_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false);
        let threads = std::env::var("RDG_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(2)
            });
        let seconds = std::env::var("RDG_SECONDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 0.8 } else { 3.0 });
        BenchOpts {
            quick,
            threads,
            seconds,
        }
    }
}

/// Runs `f` (which processes `batch` instances per call) repeatedly for the
/// measurement window after one warm-up call; returns instances/second.
pub fn throughput(batch: usize, window: Duration, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (also pays one-time planning costs outside the window)
    let t0 = Instant::now();
    let mut calls = 0usize;
    while t0.elapsed() < window {
        f();
        calls += 1;
    }
    (calls * batch) as f64 / t0.elapsed().as_secs_f64()
}

/// Times a single invocation of `f` in seconds.
pub fn time_once(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// A fixed-width text table in the paper's row/column format.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut s = String::new();
        let _ = writeln!(s, "== {} ==", self.title);
        let line = |s: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                let _ = write!(s, "{c:>w$}  ");
            }
            let _ = writeln!(s);
        };
        line(&mut s, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(s, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut s, row);
        }
        s
    }

    /// Prints to stdout and appends to `results/<name>.txt` (rendered text)
    /// and `results/<name>.json` (one structured record per run).
    pub fn emit(&self, name: &str) {
        let rendered = self.render();
        println!("{rendered}");
        record(name, &rendered);
        record_json(name, &self.title, &self.headers, &self.rows);
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
///
/// `shims/criterion` carries its own copy (`escape_json_label`) rather
/// than sharing this one: the shim must stay a drop-in for real criterion,
/// which exposes no such helper, so nothing outside the shim may depend on
/// it. A fix to either escaper should be mirrored in the other.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Resolves the `results/` directory records append to.
///
/// `RDG_RESULTS_DIR` wins when set. Otherwise the walk starts at the
/// process working directory and climbs until it finds an existing
/// `results/` or a `Cargo.lock` (the workspace root) — figure/table
/// binaries run from the repo root, but `cargo bench` runs bench
/// executables from their *package* directory (`crates/bench`), and both
/// must land records in the same place.
pub fn results_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("RDG_RESULTS_DIR") {
        if !dir.is_empty() {
            return dir.into();
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        if dir.join("results").is_dir() || dir.join("Cargo.lock").is_file() {
            return dir.join("results");
        }
        if !dir.pop() {
            return "results".into();
        }
    }
}

/// Appends one JSON line describing a table run to `results/<name>.json`:
/// `{"table":…,"headers":[…],"rows":[[…]],"unix_time":…}`.
///
/// The file is append-only JSON-lines, so successive runs (and successive
/// PRs) accumulate a trajectory that tooling can diff without parsing the
/// human-format text tables.
pub fn record_json(name: &str, title: &str, headers: &[String], rows: &[Vec<String>]) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let cells = |row: &[String]| -> String {
        let quoted: Vec<String> = row
            .iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect();
        format!("[{}]", quoted.join(","))
    };
    let rows_json: Vec<String> = rows.iter().map(|r| cells(r)).collect();
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(
            f,
            "{{\"table\":\"{}\",\"headers\":{},\"rows\":[{}],\"unix_time\":{}}}",
            json_escape(title),
            cells(headers),
            rows_json.join(","),
            unix_time
        );
    }
}

/// Appends `content` (with a timestamp header) to `results/<name>.txt`.
pub fn record(name: &str, content: &str) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.txt"));
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = writeln!(
            f,
            "# run at unix {}\n{content}",
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0)
        );
    }
}

/// Formats a throughput value the way the paper annotates bars.
pub fn fmt_thr(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["model", "batch 1", "batch 10"]);
        t.row(&["treernn".into(), "46.6".into(), "125.2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("treernn"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn throughput_counts_instances() {
        let rate = throughput(10, Duration::from_millis(50), || {
            std::thread::sleep(Duration::from_millis(5));
        });
        // ~10 calls in 50 ms → ~2000 instances/s, very loose bounds.
        assert!(rate > 200.0 && rate < 20_000.0, "rate {rate}");
    }

    #[test]
    fn json_escape_neutralizes_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c d");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn fmt_thr_scales_precision() {
        assert_eq!(fmt_thr(129.7), "130");
        assert_eq!(fmt_thr(46.64), "46.6");
        assert_eq!(fmt_thr(4.82), "4.82");
    }
}
