//! Data-parallel multi-machine training (paper Figure 10) and
//! admission-controlled multi-replica serving.
//!
//! The paper scales TreeLSTM training to 8 machines with "the well-known
//! data parallelism technique" (parameter server, Li et al. OSDI '14) and
//! observes near-linear speedup. This crate reproduces that experiment in
//! two modes:
//!
//! * [`run_real`] — every simulated machine is a thread group with its own
//!   executor and training session; all machines share one parameter store
//!   (the in-process stand-in for the parameter server). Synchronous SGD:
//!   compute shard gradients → barrier → aggregate → central update →
//!   barrier. Honest wall-clock numbers, but bounded by the host's physical
//!   cores (the paper used 8 × 36-core machines).
//! * [`run_virtual`] — calibrated virtual time: per-step compute times are
//!   *measured* on one real machine, then an `N`-machine synchronous step is
//!   modeled as `max` of `N` bootstrap-sampled compute times (stragglers)
//!   plus a parameter-server network term derived from the actual parameter
//!   byte count and a configurable bandwidth/latency. This is the documented
//!   hardware substitution for the paper's cluster.

//!
//! Serving: [`serve_real`] stands up `n` model replicas on one shared
//! parameter store, fronts each with a QoS-aware admission queue
//! (`rdg_exec::ServeQueue`: per-class lanes, aged strict priority,
//! EWMA-sized dispatch waves), and drives them from a pool of client
//! threads whose classes follow `ServeClusterConfig::class_mix` — the
//! request stream goes through bounded admission with backpressure, not
//! bare `run_many`, so burst load cannot put unbounded root frames in
//! flight on any machine. The report carries cluster-level per-class
//! client-observed latency percentiles next to the aggregate.

pub mod server;
pub mod virtual_time;

pub use server::{
    pick_replica, run_real, serve_real, ClassLatency, ClusterConfig, ClusterReport, Routing,
    ServeClusterConfig, ServeClusterReport,
};
pub use virtual_time::{model_step, model_step_injected, run_virtual, DelayInjector, NetModel};
