//! Synchronous data-parallel training — and admission-controlled serving —
//! with a shared parameter store.

use rdg_autodiff::build_training_module;
use rdg_data::{Dataset, Split};
use rdg_exec::{
    ExecError, Executor, GradStore, LatencyPercentiles, ParamStore, Priority, ServeConfig,
    ServeError, Session,
};
use rdg_models::{build_recursive, ModelConfig};
use rdg_nn::{Adagrad, Optimizer};
use rdg_tensor::ops;
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// Cluster experiment parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of simulated machines.
    pub n_machines: usize,
    /// Worker threads per machine's executor.
    pub threads_per_machine: usize,
    /// The per-machine model (its `batch` is the per-machine shard size).
    pub model: ModelConfig,
    /// Synchronous steps to run.
    pub steps: usize,
    /// Learning rate for the central Adagrad update.
    pub lr: f32,
}

/// Result of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Machines used.
    pub n_machines: usize,
    /// Training throughput, instances per second.
    pub instances_per_sec: f64,
    /// Mean per-step wall time, seconds.
    pub step_seconds: f64,
    /// Individual per-step compute times (seconds) of machine 0, for
    /// virtual-time calibration.
    pub machine0_compute: Vec<f64>,
    /// Final training loss observed (sanity: training must not diverge).
    pub final_loss: f32,
}

/// Runs synchronous data-parallel training with real threads.
///
/// Each machine trains `cfg.model.batch` instances per step on its own
/// executor as a **concurrent batch run**: the module is built for one
/// instance and the minibatch launches as `batch` concurrent root frames
/// ([`Session::run_training_batch`]), so a machine's worker threads stay
/// busy even on comb-shaped trees. Gradients are averaged across instances
/// and machines and applied centrally.
pub fn run_real(cfg: &ClusterConfig, data: &Dataset) -> Result<ClusterReport, ExecError> {
    // `cfg.model.batch` is the per-machine instances-per-step count; the
    // executed module itself is per-instance (cross-instance batching
    // happens in the runtime, not the graph).
    let mut per_instance = cfg.model.clone();
    per_instance.batch = 1;
    let module = build_recursive(&per_instance)?;
    let train = build_training_module(&module, module.main.outputs[0])?;
    // Shared "parameter server" store, initialized from the module specs.
    let params = Arc::new(ParamStore::from_module(&train));
    let n_params = train.params.len();
    let barrier = Arc::new(Barrier::new(cfg.n_machines));
    let merged = Arc::new(GradStore::new(n_params));
    let optimizer = Arc::new(Mutex::new(Adagrad::new(cfg.lr)));
    let losses = Arc::new(Mutex::new(vec![0.0f32; cfg.n_machines]));
    let compute_times = Arc::new(Mutex::new(Vec::<f64>::new()));

    let t0 = Instant::now();
    std::thread::scope(|scope| -> Result<(), ExecError> {
        let mut handles = Vec::new();
        for m in 0..cfg.n_machines {
            let train = train.clone();
            let params = Arc::clone(&params);
            let barrier = Arc::clone(&barrier);
            let merged = Arc::clone(&merged);
            let optimizer = Arc::clone(&optimizer);
            let losses = Arc::clone(&losses);
            let compute_times = Arc::clone(&compute_times);
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || -> Result<(), ExecError> {
                let exec = Executor::with_threads(cfg.threads_per_machine);
                let session = Session::with_params(exec, train, params)?;
                let shard: Vec<_> = data
                    .split(Split::Train)
                    .iter()
                    .skip(m)
                    .step_by(cfg.n_machines)
                    .cloned()
                    .collect();
                let per_step = cfg.model.batch;
                for step in 0..cfg.steps {
                    let lo = (step * per_step) % shard.len().max(1);
                    let mut batch = Vec::with_capacity(per_step);
                    for k in 0..per_step {
                        batch.push(shard[(lo + k) % shard.len()].clone());
                    }
                    let feeds_list = Dataset::feeds_per_instance(&batch);
                    let tc = Instant::now();
                    let outs = session.run_training_batch(feeds_list)?;
                    let compute = tc.elapsed().as_secs_f64();
                    if m == 0 {
                        compute_times.lock().expect("poisoned").push(compute);
                    }
                    let mean_loss = outs
                        .iter()
                        .map(|o| o[0].as_f32_scalar().unwrap_or(f32::NAN))
                        .sum::<f32>()
                        / per_step.max(1) as f32;
                    losses.lock().expect("poisoned")[m] = mean_loss;
                    // Contribute this machine's gradient sums (scaled to
                    // the global per-instance mean) to the merged store.
                    let scale = 1.0 / (cfg.n_machines * per_step.max(1)) as f32;
                    for pid in session.params().ids() {
                        if let Some(g) = session.grads().get(pid) {
                            let scaled = ops::scale(&g, scale).map_err(ExecError::optimizer)?;
                            merged
                                .accumulate(pid, &scaled)
                                .map_err(ExecError::optimizer)?;
                        }
                    }
                    // All gradients in: machine 0 applies the update.
                    barrier.wait();
                    if m == 0 {
                        optimizer
                            .lock()
                            .expect("poisoned")
                            .step(session.params(), &merged)
                            .map_err(ExecError::optimizer)?;
                        merged.clear();
                    }
                    // Update visible before the next step begins.
                    barrier.wait();
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| ExecError::internal("machine thread panicked"))??;
        }
        Ok(())
    })?;
    let wall = t0.elapsed().as_secs_f64();
    let total_instances = (cfg.steps * cfg.model.batch * cfg.n_machines) as f64;
    let final_loss = {
        let l = losses.lock().expect("poisoned");
        l.iter().sum::<f32>() / l.len() as f32
    };
    let machine0_compute = compute_times.lock().expect("poisoned").clone();
    Ok(ClusterReport {
        n_machines: cfg.n_machines,
        instances_per_sec: total_instances / wall,
        step_seconds: wall / cfg.steps as f64,
        machine0_compute,
        final_loss,
    })
}

/// Serving-cluster experiment parameters.
///
/// The serving twin of [`ClusterConfig`]: `n_machines` model replicas share
/// one parameter store (the inference face of the parameter server) and a
/// pool of client threads streams requests at them. Every machine fronts
/// its executor with an admission queue ([`rdg_exec::ServeQueue`] via
/// `Session::serve_with`) instead of bare `run_many`, so a client burst is
/// absorbed as backpressure rather than as unbounded in-flight root frames.
#[derive(Clone, Debug)]
pub struct ServeClusterConfig {
    /// Number of model-replica machines.
    pub n_machines: usize,
    /// Worker threads per machine's executor.
    pub threads_per_machine: usize,
    /// The served model (built per-instance; its `batch` field is ignored).
    pub model: ModelConfig,
    /// Client threads driving the request stream.
    pub n_clients: usize,
    /// Requests each client issues (closed loop: submit, wait, repeat).
    pub requests_per_client: usize,
    /// Admission-queue tuning applied to every machine (every replica
    /// gets its own per-class lanes, dispatcher, and wave controller).
    pub queue: ServeConfig,
    /// QoS class per client thread, assigned round-robin (`client c` uses
    /// `class_mix[c % len]`). Empty means all-`Interactive` — the
    /// class-blind single-lane workload.
    pub class_mix: Vec<Priority>,
}

/// Result of a serving-cluster run.
#[derive(Clone, Debug)]
pub struct ServeClusterReport {
    /// Machines used.
    pub n_machines: usize,
    /// Requests completed across all machines.
    pub completed: u64,
    /// `try_submit` bounces observed across all machines (backpressure).
    pub rejected: u64,
    /// Aggregate serving throughput, requests per second.
    pub requests_per_sec: f64,
    /// Client-observed end-to-end latency percentiles, microseconds
    /// (submit call → ticket delivered, i.e. including queue wait).
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Cluster-level per-class split of the same client-observed
    /// latencies (classes that saw no traffic are omitted). Each entry
    /// aggregates across *all* replicas, the way a fleet SLO is read.
    pub per_class: Vec<ClassLatency>,
}

/// Client-observed latency of one QoS class across the whole cluster.
#[derive(Clone, Debug)]
pub struct ClassLatency {
    /// The admission class.
    pub class: Priority,
    /// Requests this class completed across all replicas.
    pub completed: u64,
    /// Client-observed percentiles (submit → ticket), microseconds.
    pub percentiles: LatencyPercentiles,
}

/// Runs an admission-controlled serving cluster with real threads.
///
/// Each machine is an executor + session on the shared parameter store,
/// fronted by its own admission queue; each client thread round-robins its
/// requests across the machines through the queues' blocking `submit`
/// (backpressure, never load shedding) and waits for every answer.
/// Latency is measured at the client — queue wait included — which is the
/// number a serving SLO is written against.
pub fn serve_real(
    cfg: &ServeClusterConfig,
    data: &Dataset,
) -> Result<ServeClusterReport, ExecError> {
    let mut per_instance = cfg.model.clone();
    per_instance.batch = 1;
    let module = build_recursive(&per_instance)?;
    // Shared "parameter server" store: every replica validates against it
    // (Session::with_params checks count + dtype + shape up front).
    let params = Arc::new(ParamStore::from_module(&module));
    let mut clients = Vec::with_capacity(cfg.n_machines);
    for _ in 0..cfg.n_machines.max(1) {
        let exec = Executor::with_threads(cfg.threads_per_machine);
        let session = Session::with_params(exec, module.clone(), Arc::clone(&params))?;
        clients.push(session.serve_with(cfg.queue.clone()));
    }
    let requests = Dataset::feeds_per_instance(data.split(Split::Train));
    if requests.is_empty() {
        return Err(ExecError::internal("serving dataset has no instances"));
    }
    // Latency samples bucketed per class (the aggregate is their union).
    let latencies_ns = Arc::new(Mutex::new(vec![Vec::<u64>::new(); Priority::COUNT]));
    let t0 = Instant::now();
    std::thread::scope(|scope| -> Result<(), ExecError> {
        let mut handles = Vec::new();
        for c in 0..cfg.n_clients.max(1) {
            let clients = clients.clone();
            let requests = &requests;
            let latencies_ns = Arc::clone(&latencies_ns);
            let class = if cfg.class_mix.is_empty() {
                Priority::Interactive
            } else {
                cfg.class_mix[c % cfg.class_mix.len()]
            };
            handles.push(scope.spawn(move || -> Result<(), ExecError> {
                let mut mine = Vec::with_capacity(cfg.requests_per_client);
                for i in 0..cfg.requests_per_client {
                    let machine = (c + i) % clients.len();
                    let feeds = requests[(c * 31 + i) % requests.len()].clone();
                    let sent = Instant::now();
                    let result = clients[machine]
                        .submit_with(class, feeds)
                        .and_then(|ticket| ticket.wait());
                    match result {
                        Ok(_) => mine.push(sent.elapsed().as_nanos() as u64),
                        Err(ServeError::Exec(e)) => return Err(e),
                        Err(e) => return Err(ExecError::internal(e)),
                    }
                }
                latencies_ns.lock().expect("poisoned")[class.index()].extend(mine);
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| ExecError::internal("client thread panicked"))??;
        }
        Ok(())
    })?;
    let wall = t0.elapsed().as_secs_f64();
    // One stats snapshot per replica (each snapshot locks the queue and
    // clones the latency windows — don't take it once per counter read).
    let replica_stats: Vec<_> = clients.iter().map(|cl| cl.stats()).collect();
    let (completed, rejected) = replica_stats.iter().fold((0u64, 0u64), |(c, r), st| {
        (c + st.completed, r + st.rejected)
    });
    // Per-class completion counts, summed across every replica's ledger.
    let class_completed: Vec<u64> = Priority::ALL
        .iter()
        .map(|p| {
            replica_stats
                .iter()
                .map(|st| st.classes[p.index()].completed)
                .sum()
        })
        .collect();
    for client in &clients {
        client.shutdown();
    }
    let buckets = latencies_ns.lock().expect("poisoned").clone();
    // Same quantile rule as ServeStats, so cluster and per-machine numbers
    // stay comparable — for the aggregate and for every class.
    let mut all: Vec<u64> = buckets.iter().flatten().copied().collect();
    let total = all.len();
    let pct = LatencyPercentiles::from_ns_samples(&mut all);
    let per_class = Priority::ALL
        .into_iter()
        .filter(|p| !buckets[p.index()].is_empty())
        .map(|p| {
            let mut lat = buckets[p.index()].clone();
            ClassLatency {
                class: p,
                completed: class_completed[p.index()],
                percentiles: LatencyPercentiles::from_ns_samples(&mut lat),
            }
        })
        .collect();
    Ok(ServeClusterReport {
        n_machines: cfg.n_machines.max(1),
        completed,
        rejected,
        requests_per_sec: total as f64 / wall,
        p50_us: pct.p50_us,
        p95_us: pct.p95_us,
        p99_us: pct.p99_us,
        per_class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_data::DatasetConfig;
    use rdg_models::ModelKind;

    #[test]
    fn two_machine_sync_training_runs() {
        let data = Dataset::generate(DatasetConfig {
            vocab: 100,
            n_train: 32,
            n_valid: 0,
            min_len: 3,
            max_len: 8,
            ..DatasetConfig::default()
        });
        let cfg = ClusterConfig {
            n_machines: 2,
            threads_per_machine: 1,
            model: ModelConfig::tiny(ModelKind::TreeRnn, 2),
            steps: 3,
            lr: 0.05,
        };
        let report = run_real(&cfg, &data).unwrap();
        assert!(report.instances_per_sec > 0.0);
        assert!(report.final_loss.is_finite());
        assert_eq!(report.machine0_compute.len(), 3);
    }

    #[test]
    fn two_machine_serving_cluster_answers_every_request() {
        let data = Dataset::generate(DatasetConfig {
            vocab: 100,
            n_train: 24,
            n_valid: 0,
            min_len: 3,
            max_len: 8,
            ..DatasetConfig::default()
        });
        let cfg = ServeClusterConfig {
            n_machines: 2,
            threads_per_machine: 1,
            model: ModelConfig::tiny(ModelKind::TreeRnn, 1),
            n_clients: 3,
            requests_per_client: 10,
            queue: ServeConfig {
                capacity: 4,
                batch_multiple: 2,
                ..ServeConfig::default()
            },
            // Two interactive clients, one batch client: both classes
            // must show up in the cluster-level split.
            class_mix: vec![Priority::Interactive, Priority::Batch],
        };
        let report = serve_real(&cfg, &data).unwrap();
        assert_eq!(report.completed, 30, "no request lost");
        assert!(report.requests_per_sec > 0.0);
        assert!(report.p50_us > 0.0);
        assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
        // Per-class split: 2 of 3 clients were Interactive, 1 was Batch.
        assert_eq!(report.per_class.len(), 2);
        let by_class = |p: Priority| {
            report
                .per_class
                .iter()
                .find(|c| c.class == p)
                .expect("class present")
        };
        assert_eq!(by_class(Priority::Interactive).completed, 20);
        assert_eq!(by_class(Priority::Batch).completed, 10);
        for c in &report.per_class {
            let pc = &c.percentiles;
            assert!(pc.p50_us > 0.0 && pc.p50_us <= pc.p95_us && pc.p95_us <= pc.p99_us);
        }
    }

    #[test]
    fn single_machine_degenerates_to_plain_training() {
        let data = Dataset::generate(DatasetConfig {
            vocab: 100,
            n_train: 8,
            n_valid: 0,
            min_len: 3,
            max_len: 6,
            ..DatasetConfig::default()
        });
        let cfg = ClusterConfig {
            n_machines: 1,
            threads_per_machine: 2,
            model: ModelConfig::tiny(ModelKind::TreeRnn, 2),
            steps: 2,
            lr: 0.05,
        };
        let report = run_real(&cfg, &data).unwrap();
        assert_eq!(report.n_machines, 1);
        assert!(report.step_seconds > 0.0);
    }
}
