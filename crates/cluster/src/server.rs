//! Synchronous data-parallel training — and admission-controlled serving —
//! with a shared parameter store.

use rdg_autodiff::build_training_module;
use rdg_data::{Dataset, Split};
use rdg_exec::{
    ExecError, Executor, GradStore, LatencyPercentiles, ParamStore, Priority, ReplicaSnapshot,
    ServeConfig, ServeError, Session,
};
use rdg_models::{build_recursive, ModelConfig};
use rdg_nn::{Adagrad, Optimizer};
use rdg_tensor::ops;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Cluster experiment parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of simulated machines.
    pub n_machines: usize,
    /// Worker threads per machine's executor.
    pub threads_per_machine: usize,
    /// The per-machine model (its `batch` is the per-machine shard size).
    pub model: ModelConfig,
    /// Synchronous steps to run.
    pub steps: usize,
    /// Learning rate for the central Adagrad update.
    pub lr: f32,
}

/// Result of a cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Machines used.
    pub n_machines: usize,
    /// Training throughput, instances per second.
    pub instances_per_sec: f64,
    /// Mean per-step wall time, seconds.
    pub step_seconds: f64,
    /// Individual per-step compute times (seconds) of machine 0, for
    /// virtual-time calibration.
    pub machine0_compute: Vec<f64>,
    /// Final training loss observed (sanity: training must not diverge).
    pub final_loss: f32,
}

/// Runs synchronous data-parallel training with real threads.
///
/// Each machine trains `cfg.model.batch` instances per step on its own
/// executor as a **concurrent batch run**: the module is built for one
/// instance and the minibatch launches as `batch` concurrent root frames
/// ([`Session::run_training_batch`]), so a machine's worker threads stay
/// busy even on comb-shaped trees. Gradients are averaged across instances
/// and machines and applied centrally.
pub fn run_real(cfg: &ClusterConfig, data: &Dataset) -> Result<ClusterReport, ExecError> {
    // `cfg.model.batch` is the per-machine instances-per-step count; the
    // executed module itself is per-instance (cross-instance batching
    // happens in the runtime, not the graph).
    let mut per_instance = cfg.model.clone();
    per_instance.batch = 1;
    let module = build_recursive(&per_instance)?;
    let train = build_training_module(&module, module.main.outputs[0])?;
    // Shared "parameter server" store, initialized from the module specs.
    let params = Arc::new(ParamStore::from_module(&train));
    let n_params = train.params.len();
    let barrier = Arc::new(Barrier::new(cfg.n_machines));
    let merged = Arc::new(GradStore::new(n_params));
    let optimizer = Arc::new(Mutex::new(Adagrad::new(cfg.lr)));
    let losses = Arc::new(Mutex::new(vec![0.0f32; cfg.n_machines]));
    let compute_times = Arc::new(Mutex::new(Vec::<f64>::new()));

    let t0 = Instant::now();
    std::thread::scope(|scope| -> Result<(), ExecError> {
        let mut handles = Vec::new();
        for m in 0..cfg.n_machines {
            let train = train.clone();
            let params = Arc::clone(&params);
            let barrier = Arc::clone(&barrier);
            let merged = Arc::clone(&merged);
            let optimizer = Arc::clone(&optimizer);
            let losses = Arc::clone(&losses);
            let compute_times = Arc::clone(&compute_times);
            let cfg = cfg.clone();
            handles.push(scope.spawn(move || -> Result<(), ExecError> {
                let exec = Executor::with_threads(cfg.threads_per_machine);
                let session = Session::with_params(exec, train, params)?;
                let shard: Vec<_> = data
                    .split(Split::Train)
                    .iter()
                    .skip(m)
                    .step_by(cfg.n_machines)
                    .cloned()
                    .collect();
                let per_step = cfg.model.batch;
                for step in 0..cfg.steps {
                    let lo = (step * per_step) % shard.len().max(1);
                    let mut batch = Vec::with_capacity(per_step);
                    for k in 0..per_step {
                        batch.push(shard[(lo + k) % shard.len()].clone());
                    }
                    let feeds_list = Dataset::feeds_per_instance(&batch);
                    let tc = Instant::now();
                    let outs = session.run_training_batch(feeds_list)?;
                    let compute = tc.elapsed().as_secs_f64();
                    if m == 0 {
                        compute_times.lock().expect("poisoned").push(compute);
                    }
                    let mean_loss = outs
                        .iter()
                        .map(|o| o[0].as_f32_scalar().unwrap_or(f32::NAN))
                        .sum::<f32>()
                        / per_step.max(1) as f32;
                    losses.lock().expect("poisoned")[m] = mean_loss;
                    // Contribute this machine's gradient sums (scaled to
                    // the global per-instance mean) to the merged store.
                    let scale = 1.0 / (cfg.n_machines * per_step.max(1)) as f32;
                    for pid in session.params().ids() {
                        if let Some(g) = session.grads().get(pid) {
                            let scaled = ops::scale(&g, scale).map_err(ExecError::optimizer)?;
                            merged
                                .accumulate(pid, &scaled)
                                .map_err(ExecError::optimizer)?;
                        }
                    }
                    // All gradients in: machine 0 applies the update.
                    barrier.wait();
                    if m == 0 {
                        optimizer
                            .lock()
                            .expect("poisoned")
                            .step(session.params(), &merged)
                            .map_err(ExecError::optimizer)?;
                        merged.clear();
                    }
                    // Update visible before the next step begins.
                    barrier.wait();
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| ExecError::internal("machine thread panicked"))??;
        }
        Ok(())
    })?;
    let wall = t0.elapsed().as_secs_f64();
    let total_instances = (cfg.steps * cfg.model.batch * cfg.n_machines) as f64;
    let final_loss = {
        let l = losses.lock().expect("poisoned");
        l.iter().sum::<f32>() / l.len() as f32
    };
    let machine0_compute = compute_times.lock().expect("poisoned").clone();
    Ok(ClusterReport {
        n_machines: cfg.n_machines,
        instances_per_sec: total_instances / wall,
        step_seconds: wall / cfg.steps as f64,
        machine0_compute,
        final_loss,
    })
}

/// How clients pick a replica for each request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Routing {
    /// Static round-robin: request `i` of client `c` goes to machine
    /// `(c + i) % n`. Blind to load — a straggling replica keeps
    /// receiving its full share.
    RoundRobin,
    /// Join-shortest-queue over per-replica load snapshots: each request
    /// goes to the replica whose [`ReplicaSnapshot::predicted_wait_ns`]
    /// — queued + in-flight work times the observed service EWMA — is
    /// smallest (lowest index on ties). Snapshots are read fresh per
    /// request; see [`pick_replica`] for the staleness caveat.
    Jsq,
}

/// The join-shortest-queue decision: the index of the snapshot with the
/// smallest predicted wait, lowest index winning ties.
///
/// The snapshots are hints, not guarantees — a snapshot is stale the
/// moment it is taken. Frozen snapshots *herd*: every decision made from
/// the same vector lands on the same replica, which is exactly the
/// thundering-herd failure mode of snapshot-based routing. Callers must
/// re-read snapshots per decision (as [`serve_real`] does), which keeps
/// each decision's error bounded by one snapshot interval.
pub fn pick_replica(snaps: &[ReplicaSnapshot]) -> usize {
    snaps
        .iter()
        .enumerate()
        .min_by_key(|(i, s)| (s.predicted_wait_ns(), *i))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Serving-cluster experiment parameters.
///
/// The serving twin of [`ClusterConfig`]: `n_machines` model replicas share
/// one parameter store (the inference face of the parameter server) and a
/// pool of client threads streams requests at them. Every machine fronts
/// its executor with an admission queue ([`rdg_exec::ServeQueue`] via
/// `Session::serve_with`) instead of bare `run_many`, so a client burst is
/// absorbed as backpressure rather than as unbounded in-flight root frames.
#[derive(Clone, Debug)]
pub struct ServeClusterConfig {
    /// Number of model-replica machines.
    pub n_machines: usize,
    /// Worker threads per machine's executor.
    pub threads_per_machine: usize,
    /// The served model (built per-instance; its `batch` field is ignored).
    pub model: ModelConfig,
    /// Client threads driving the request stream.
    pub n_clients: usize,
    /// Requests each client issues (closed loop: submit, wait, repeat).
    pub requests_per_client: usize,
    /// Admission-queue tuning applied to every machine (every replica
    /// gets its own per-class lanes, dispatcher, and wave controller).
    pub queue: ServeConfig,
    /// QoS class per client thread, assigned round-robin (`client c` uses
    /// `class_mix[c % len]`). Empty means all-`Interactive` — the
    /// class-blind single-lane workload.
    pub class_mix: Vec<Priority>,
    /// How each request picks its replica.
    pub routing: Routing,
    /// End-to-end SLO attached to every request. `None` submits without
    /// deadlines (PR 5 behavior: backpressure only, never shedding);
    /// `Some` routes through `submit_slo_with`, so all three shed points
    /// — predictive admission, pop-time eviction, mid-service
    /// cancellation — are armed on every replica.
    pub slo: Option<Duration>,
}

/// Result of a serving-cluster run.
#[derive(Clone, Debug)]
pub struct ServeClusterReport {
    /// Machines used.
    pub n_machines: usize,
    /// Requests completed across all machines.
    pub completed: u64,
    /// `try_submit` bounces observed across all machines (backpressure).
    pub rejected: u64,
    /// Requests shed against their SLO across all machines, at any of the
    /// three shed points (pop-time eviction + mid-service cancellation +
    /// predictive admission). Always zero when
    /// [`ServeClusterConfig::slo`] is `None`.
    pub shed: u64,
    /// Aggregate serving throughput, requests per second.
    pub requests_per_sec: f64,
    /// Client-observed end-to-end latency percentiles, microseconds
    /// (submit call → ticket delivered, i.e. including queue wait).
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Cluster-level per-class split of the same client-observed
    /// latencies (classes that saw no traffic are omitted). Each entry
    /// aggregates across *all* replicas, the way a fleet SLO is read.
    pub per_class: Vec<ClassLatency>,
}

/// Client-observed latency of one QoS class across the whole cluster.
#[derive(Clone, Debug)]
pub struct ClassLatency {
    /// The admission class.
    pub class: Priority,
    /// Requests this class completed across all replicas.
    pub completed: u64,
    /// Requests this class shed against their SLO across all replicas
    /// (pop-time + mid-service + predictive, summed).
    pub shed: u64,
    /// Client-observed percentiles (submit → ticket), microseconds.
    pub percentiles: LatencyPercentiles,
}

/// Runs an admission-controlled serving cluster with real threads.
///
/// Each machine is an executor + session on the shared parameter store,
/// fronted by its own admission queue; each client thread round-robins its
/// requests across the machines through the queues' blocking `submit`
/// (backpressure, never load shedding) and waits for every answer.
/// Latency is measured at the client — queue wait included — which is the
/// number a serving SLO is written against.
pub fn serve_real(
    cfg: &ServeClusterConfig,
    data: &Dataset,
) -> Result<ServeClusterReport, ExecError> {
    let mut per_instance = cfg.model.clone();
    per_instance.batch = 1;
    let module = build_recursive(&per_instance)?;
    // Shared "parameter server" store: every replica validates against it
    // (Session::with_params checks count + dtype + shape up front).
    let params = Arc::new(ParamStore::from_module(&module));
    let mut clients = Vec::with_capacity(cfg.n_machines);
    for _ in 0..cfg.n_machines.max(1) {
        let exec = Executor::with_threads(cfg.threads_per_machine);
        let session = Session::with_params(exec, module.clone(), Arc::clone(&params))?;
        clients.push(session.serve_with(cfg.queue.clone()));
    }
    let requests = Dataset::feeds_per_instance(data.split(Split::Train));
    if requests.is_empty() {
        return Err(ExecError::internal("serving dataset has no instances"));
    }
    // Latency samples bucketed per class (the aggregate is their union).
    let latencies_ns = Arc::new(Mutex::new(vec![Vec::<u64>::new(); Priority::COUNT]));
    let t0 = Instant::now();
    std::thread::scope(|scope| -> Result<(), ExecError> {
        let mut handles = Vec::new();
        for c in 0..cfg.n_clients.max(1) {
            let clients = clients.clone();
            let requests = &requests;
            let latencies_ns = Arc::clone(&latencies_ns);
            let class = if cfg.class_mix.is_empty() {
                Priority::Interactive
            } else {
                cfg.class_mix[c % cfg.class_mix.len()]
            };
            handles.push(scope.spawn(move || -> Result<(), ExecError> {
                let mut mine = Vec::with_capacity(cfg.requests_per_client);
                for i in 0..cfg.requests_per_client {
                    let machine = match cfg.routing {
                        Routing::RoundRobin => (c + i) % clients.len(),
                        // A fresh snapshot per decision: routing from a
                        // cached vector herds every client onto the same
                        // replica (see `pick_replica`).
                        Routing::Jsq => {
                            let snaps: Vec<ReplicaSnapshot> =
                                clients.iter().map(|cl| cl.load_snapshot()).collect();
                            pick_replica(&snaps)
                        }
                    };
                    let feeds = requests[(c * 31 + i) % requests.len()].clone();
                    let sent = Instant::now();
                    let result = match cfg.slo {
                        Some(slo) => clients[machine]
                            .submit_slo_with(class, feeds, slo)
                            .and_then(|ticket| ticket.wait()),
                        None => clients[machine]
                            .submit_with(class, feeds)
                            .and_then(|ticket| ticket.wait()),
                    };
                    match result {
                        Ok(_) => mine.push(sent.elapsed().as_nanos() as u64),
                        // Shed or expired against the SLO: legal outcomes,
                        // tallied from the replica ledgers below.
                        Err(ServeError::Shed { .. }) | Err(ServeError::DeadlineExceeded) => {}
                        Err(ServeError::Exec(e)) => return Err(e),
                        Err(e) => return Err(ExecError::internal(e)),
                    }
                }
                latencies_ns.lock().expect("poisoned")[class.index()].extend(mine);
                Ok(())
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| ExecError::internal("client thread panicked"))??;
        }
        Ok(())
    })?;
    let wall = t0.elapsed().as_secs_f64();
    // One stats snapshot per replica (each snapshot locks the queue and
    // clones the latency windows — don't take it once per counter read).
    let replica_stats: Vec<_> = clients.iter().map(|cl| cl.stats()).collect();
    let (completed, rejected) = replica_stats.iter().fold((0u64, 0u64), |(c, r), st| {
        (c + st.completed, r + st.rejected)
    });
    let shed: u64 = replica_stats
        .iter()
        .map(|st| st.shed + st.shed_inflight + st.shed_predicted)
        .sum();
    // Per-class completion and shed counts, summed across every replica's
    // ledger.
    let class_completed: Vec<u64> = Priority::ALL
        .iter()
        .map(|p| {
            replica_stats
                .iter()
                .map(|st| st.classes[p.index()].completed)
                .sum()
        })
        .collect();
    let class_shed: Vec<u64> = Priority::ALL
        .iter()
        .map(|p| {
            replica_stats
                .iter()
                .map(|st| {
                    let c = &st.classes[p.index()];
                    c.shed + c.shed_inflight + c.shed_predicted
                })
                .sum()
        })
        .collect();
    for client in &clients {
        client.shutdown();
    }
    let buckets = latencies_ns.lock().expect("poisoned").clone();
    // Same quantile rule as ServeStats, so cluster and per-machine numbers
    // stay comparable — for the aggregate and for every class.
    let mut all: Vec<u64> = buckets.iter().flatten().copied().collect();
    let total = all.len();
    let pct = LatencyPercentiles::from_ns_samples(&mut all);
    let per_class = Priority::ALL
        .into_iter()
        .filter(|p| !buckets[p.index()].is_empty() || class_shed[p.index()] > 0)
        .map(|p| {
            let mut lat = buckets[p.index()].clone();
            ClassLatency {
                class: p,
                completed: class_completed[p.index()],
                shed: class_shed[p.index()],
                percentiles: LatencyPercentiles::from_ns_samples(&mut lat),
            }
        })
        .collect();
    Ok(ServeClusterReport {
        n_machines: cfg.n_machines.max(1),
        completed,
        rejected,
        shed,
        requests_per_sec: total as f64 / wall,
        p50_us: pct.p50_us,
        p95_us: pct.p95_us,
        p99_us: pct.p99_us,
        per_class,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_data::DatasetConfig;
    use rdg_models::ModelKind;

    #[test]
    fn two_machine_sync_training_runs() {
        let data = Dataset::generate(DatasetConfig {
            vocab: 100,
            n_train: 32,
            n_valid: 0,
            min_len: 3,
            max_len: 8,
            ..DatasetConfig::default()
        });
        let cfg = ClusterConfig {
            n_machines: 2,
            threads_per_machine: 1,
            model: ModelConfig::tiny(ModelKind::TreeRnn, 2),
            steps: 3,
            lr: 0.05,
        };
        let report = run_real(&cfg, &data).unwrap();
        assert!(report.instances_per_sec > 0.0);
        assert!(report.final_loss.is_finite());
        assert_eq!(report.machine0_compute.len(), 3);
    }

    #[test]
    fn two_machine_serving_cluster_answers_every_request() {
        let data = Dataset::generate(DatasetConfig {
            vocab: 100,
            n_train: 24,
            n_valid: 0,
            min_len: 3,
            max_len: 8,
            ..DatasetConfig::default()
        });
        let cfg = ServeClusterConfig {
            n_machines: 2,
            threads_per_machine: 1,
            model: ModelConfig::tiny(ModelKind::TreeRnn, 1),
            n_clients: 3,
            requests_per_client: 10,
            queue: ServeConfig {
                capacity: 4,
                batch_multiple: 2,
                ..ServeConfig::default()
            },
            // Two interactive clients, one batch client: both classes
            // must show up in the cluster-level split.
            class_mix: vec![Priority::Interactive, Priority::Batch],
            // JSQ with no SLO: load-aware routing must still answer every
            // request — routing never sheds, only deadlines do.
            routing: Routing::Jsq,
            slo: None,
        };
        let report = serve_real(&cfg, &data).unwrap();
        assert_eq!(report.completed, 30, "no request lost");
        assert_eq!(report.shed, 0, "no SLO attached, nothing may shed");
        assert!(report.requests_per_sec > 0.0);
        assert!(report.p50_us > 0.0);
        assert!(report.p50_us <= report.p95_us && report.p95_us <= report.p99_us);
        // Per-class split: 2 of 3 clients were Interactive, 1 was Batch.
        assert_eq!(report.per_class.len(), 2);
        let by_class = |p: Priority| {
            report
                .per_class
                .iter()
                .find(|c| c.class == p)
                .expect("class present")
        };
        assert_eq!(by_class(Priority::Interactive).completed, 20);
        assert_eq!(by_class(Priority::Batch).completed, 10);
        for c in &report.per_class {
            let pc = &c.percentiles;
            assert!(pc.p50_us > 0.0 && pc.p50_us <= pc.p95_us && pc.p95_us <= pc.p99_us);
            assert_eq!(c.shed, 0);
        }
    }

    fn snap(queue_depth: usize, in_flight: usize, ewma_ns: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            queue_depth,
            in_flight,
            service_ewma_ns: ewma_ns,
            workers: 1,
        }
    }

    #[test]
    fn pick_replica_minimizes_predicted_wait_with_index_tiebreak() {
        // Depth × EWMA ÷ workers, not raw depth: a deep-but-fast replica
        // can beat a shallow-but-slow one.
        assert_eq!(
            pick_replica(&[snap(3, 0, 0), snap(1, 0, 0), snap(2, 0, 0)]),
            1
        );
        // 4 × 1 ms < 1 × 10 ms: the deeper replica genuinely is the
        // shorter predicted wait.
        assert_eq!(
            pick_replica(&[snap(1, 0, 10_000_000), snap(4, 0, 1_000_000)]),
            1
        );
        // In-flight work counts against a replica like queued work.
        assert_eq!(pick_replica(&[snap(0, 2, 0), snap(1, 0, 0)]), 1);
        // Ties go to the lowest index, deterministically.
        assert_eq!(
            pick_replica(&[snap(2, 0, 0), snap(2, 0, 0), snap(2, 0, 0)]),
            0
        );
        // Workers divide the backlog: 4 queued on 4 workers beats 2 on 1.
        let mut wide = snap(4, 0, 0);
        wide.workers = 4;
        assert_eq!(pick_replica(&[snap(2, 0, 0), wide]), 1);
        assert_eq!(pick_replica(&[]), 0, "degenerate input stays in range");
    }

    #[test]
    fn stale_snapshots_herd_and_fresh_snapshots_spread() {
        // The staleness failure mode, pinned as a unit test: route ten
        // requests from one frozen snapshot vector and every single one
        // lands on the same replica (a thundering herd onto the least
        // loaded machine). Re-reading the snapshot after each decision —
        // what `serve_real` does by taking `load_snapshot()` per request
        // — spreads the same ten requests across all three replicas and
        // leaves their depths balanced.
        let frozen = vec![snap(3, 0, 0), snap(1, 0, 0), snap(2, 0, 0)];
        for _ in 0..10 {
            assert_eq!(pick_replica(&frozen), 1, "frozen snapshots herd");
        }
        let mut fresh = frozen.clone();
        let mut hits = [0usize; 3];
        for _ in 0..9 {
            let m = pick_replica(&fresh);
            hits[m] += 1;
            fresh[m].queue_depth += 1; // the re-read sees the enqueue
        }
        assert!(
            hits.iter().all(|&h| h >= 2),
            "fresh snapshots spread the load: {hits:?}"
        );
        let depths: Vec<usize> = fresh.iter().map(|s| s.queue_depth).collect();
        assert_eq!(
            depths.iter().max().unwrap() - depths.iter().min().unwrap(),
            0,
            "3+1+2 queued plus 9 routed balances exactly: {depths:?}"
        );
    }

    /// Drives three scripted single-worker replicas against a shared
    /// virtual clock: one request arrives per 1 ms tick (30 total), each
    /// costing 1 ms of service, with replica 0 stalled for 40 ms at the
    /// start via the [`DelayInjector`] straggler profile. Returns how
    /// many requests completed within the 42 ms horizon under `routing`.
    fn routed_completions(routing: Routing) -> u64 {
        use crate::virtual_time::DelayInjector;
        use rdg_exec::serve::test_support::ScriptedServe;
        use rdg_exec::WaveSizing;

        const TICK_NS: u64 = 1_000_000;
        const HORIZON_NS: u64 = 42_000_000;
        const N_REQS: u64 = 30;
        let injector = DelayInjector::from_stall_profile(&[(0, 40_000_000)], 3);
        let cfg = ServeConfig {
            capacity: 32,
            batch_multiple: 1,
            sizing: WaveSizing::Fixed,
            ..ServeConfig::default()
        };
        let mut reps: Vec<ScriptedServe> = (0..3).map(|_| ScriptedServe::new(1, &cfg)).collect();
        for (m, rep) in reps.iter_mut().enumerate() {
            let stall_ns = (injector.delay_for(m, 0) * 1e9).round() as u64;
            if stall_ns > 0 {
                rep.stall_worker(0, stall_ns);
            }
        }
        let mut done_within = 0u64;
        let mut next_id = 0u64;
        for tick in 0..64u64 {
            let now = tick * TICK_NS;
            // Idle replicas catch up to the cluster clock so their next
            // request is enqueued at arrival time, not in their past.
            for rep in reps.iter_mut() {
                if rep.queue_depth() == 0 && rep.now_ns() < now {
                    rep.advance(now - rep.now_ns());
                }
            }
            if next_id < N_REQS {
                let m = match routing {
                    Routing::RoundRobin => (next_id as usize) % reps.len(),
                    Routing::Jsq => {
                        // The same snapshot shape the live path reads:
                        // queued depth, whether the replica is still busy
                        // past the cluster clock, and its service EWMA.
                        let snaps: Vec<ReplicaSnapshot> = reps
                            .iter()
                            .map(|rep| ReplicaSnapshot {
                                queue_depth: rep.queue_depth(),
                                in_flight: usize::from(rep.now_ns() > now),
                                service_ewma_ns: rep.ewma_ns().map_or(0, |e| e.max(0.0) as u64),
                                workers: 1,
                            })
                            .collect();
                        pick_replica(&snaps)
                    }
                };
                assert!(reps[m].submit(Priority::Interactive, next_id));
                next_id += 1;
            }
            // A replica that has caught up to the cluster clock drains
            // its backlog; one still busy (mid-stall) must wait.
            for rep in reps.iter_mut() {
                while rep.queue_depth() > 0 && rep.now_ns() <= now {
                    let w = rep.run_wave(|_| TICK_NS).expect("queue is non-empty");
                    done_within += w
                        .requests
                        .iter()
                        .filter(|r| r.done_ns <= HORIZON_NS)
                        .count() as u64;
                }
            }
        }
        for rep in reps.iter_mut() {
            for w in rep.drain(|_| TICK_NS) {
                done_within += w
                    .requests
                    .iter()
                    .filter(|r| r.done_ns <= HORIZON_NS)
                    .count() as u64;
            }
        }
        done_within
    }

    #[test]
    fn jsq_routes_around_a_stalled_replica_and_beats_round_robin() {
        // Round-robin keeps feeding the stalled replica a third of the
        // stream; everything it receives finishes after the 40 ms stall,
        // so at most a trickle lands inside the horizon. JSQ eats the
        // first request blind (a stall is invisible until it bites), then
        // sees the replica's backlog-plus-busy signal in every later
        // snapshot and routes around it. Both runs are pure virtual
        // clock: exact counts, no sleeps.
        let rr = routed_completions(Routing::RoundRobin);
        let jsq = routed_completions(Routing::Jsq);
        assert!(
            jsq > rr,
            "JSQ must beat round-robin behind a straggler: {jsq} vs {rr}"
        );
        assert_eq!(jsq, 30, "JSQ serves the whole stream within the horizon");
        assert!(
            rr <= 22,
            "round-robin strands most of the straggler's share: {rr}"
        );
    }

    #[test]
    fn single_machine_degenerates_to_plain_training() {
        let data = Dataset::generate(DatasetConfig {
            vocab: 100,
            n_train: 8,
            n_valid: 0,
            min_len: 3,
            max_len: 6,
            ..DatasetConfig::default()
        });
        let cfg = ClusterConfig {
            n_machines: 1,
            threads_per_machine: 2,
            model: ModelConfig::tiny(ModelKind::TreeRnn, 2),
            steps: 2,
            lr: 0.05,
        };
        let report = run_real(&cfg, &data).unwrap();
        assert_eq!(report.n_machines, 1);
        assert!(report.step_seconds > 0.0);
    }
}
