//! Virtual-time cluster model, calibrated from real single-machine steps.

use crate::server::{run_real, ClusterConfig, ClusterReport};
use rdg_data::Dataset;
use rdg_exec::ExecError;

/// Parameter-server network model.
#[derive(Clone, Copy, Debug)]
pub struct NetModel {
    /// One-way latency per synchronization round, seconds.
    pub latency_s: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: f64,
}

impl Default for NetModel {
    fn default() -> Self {
        // 10 GbE with 100 µs RTT-ish latency: the class of hardware the
        // paper's testbed would have used.
        NetModel {
            latency_s: 100e-6,
            bandwidth_bps: 10e9 / 8.0,
        }
    }
}

impl NetModel {
    /// Synchronization cost of one step for `n` machines pushing gradients
    /// and pulling parameters of `param_bytes` each (classic PS: push + pull
    /// per machine, server link is the bottleneck; sharding across machines
    /// divides the serialized volume).
    pub fn sync_cost(&self, n: usize, param_bytes: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        // Sharded parameter server: each of the n servers handles 1/n of the
        // parameters for all n machines → per-step volume ≈ 2·param_bytes.
        2.0 * self.latency_s + 2.0 * param_bytes / self.bandwidth_bps
    }
}

/// The pure virtual-time model: step time for `n` synchronous machines from
/// measured single-machine compute samples.
///
/// `E[max of n samples]` (synchronous SGD waits for the straggler), averaged
/// over deterministic bootstrap windows, plus the network term. Returns
/// `(step_seconds, instances_per_sec)`.
pub fn model_step(
    samples: &[f64],
    n: usize,
    batch_per_machine: usize,
    net: &NetModel,
    param_bytes: f64,
) -> (f64, f64) {
    assert!(!samples.is_empty(), "need calibration samples");
    let mut max_sum = 0.0;
    for w in 0..samples.len() {
        let mut mx: f64 = 0.0;
        for k in 0..n {
            mx = mx.max(samples[(w + k * 7) % samples.len()]);
        }
        max_sum += mx;
    }
    let straggler_step = max_sum / samples.len() as f64;
    let step = straggler_step + net.sync_cost(n, param_bytes);
    let instances = (batch_per_machine * n) as f64;
    (step, instances / step)
}

/// Deterministic replica-level delay injection for the virtual-time
/// model: the cluster-side half of the serving stack's adversarial
/// schedule fuzzing (`rdg_exec::serve::fuzz`).
///
/// The fuzzer scripts worker stalls (`Event::Stall`) against the scripted
/// dispatcher; this injector carries the same idea to the cluster model —
/// a machine is slowed at deterministic `(machine, step)` points, and the
/// synchronous-SGD straggler effect (`E[max of n]`) propagates the delay
/// into step time. Everything is a pure function of the seed and the
/// profile: same injector → same delays → same modeled throughput, on
/// every host.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayInjector {
    /// Seed of the random-stall component.
    seed: u64,
    /// Probability, in thousandths, that a given `(machine, step)` point
    /// draws a random stall of `delay_s`.
    prob_milli: u32,
    /// Random-stall magnitude, seconds.
    delay_s: f64,
    /// Deterministic per-machine extra delay, seconds (index = machine;
    /// machines beyond the profile get zero). This is where a serving
    /// fuzz scenario's stall profile lands.
    extra_s: Vec<f64>,
}

impl DelayInjector {
    /// No injection: [`DelayInjector::delay_for`] is identically zero and
    /// [`model_step_injected`] reduces to [`model_step`] exactly.
    pub fn none() -> Self {
        DelayInjector {
            seed: 0,
            prob_milli: 0,
            delay_s: 0.0,
            extra_s: Vec::new(),
        }
    }

    /// Seeded random stalls: each `(machine, step)` point independently
    /// draws a `delay_s`-second stall with probability
    /// `prob_milli / 1000`, from a SplitMix64 hash of
    /// `(seed, machine, step)` — deterministic across platforms.
    pub fn random(seed: u64, prob_milli: u32, delay_s: f64) -> Self {
        DelayInjector {
            seed,
            prob_milli: prob_milli.min(1000),
            delay_s,
            extra_s: Vec::new(),
        }
    }

    /// Builds a per-machine delay profile from a serving-fuzzer stall
    /// script (`rdg_exec::serve::fuzz::Scenario::stall_events`): each
    /// `(lane, dur_ns)` event adds `dur_ns` to machine `lane % n_machines`,
    /// so a schedule the fuzzer found adversarial for the dispatcher can
    /// be replayed as a straggler pattern at cluster level.
    pub fn from_stall_profile(stalls: &[(usize, u64)], n_machines: usize) -> Self {
        let n = n_machines.max(1);
        let mut extra_s = vec![0.0f64; n];
        for &(lane, dur_ns) in stalls {
            extra_s[lane % n] += dur_ns as f64 * 1e-9;
        }
        DelayInjector {
            seed: 0,
            prob_milli: 0,
            delay_s: 0.0,
            extra_s,
        }
    }

    /// The injected delay, in seconds, machine `machine` suffers at step
    /// `step`: its deterministic profile entry plus the seeded random
    /// stall (if that point drew one). Pure — two calls always agree.
    pub fn delay_for(&self, machine: usize, step: usize) -> f64 {
        let profile = self.extra_s.get(machine).copied().unwrap_or(0.0);
        if self.prob_milli == 0 {
            return profile;
        }
        // SplitMix64 over (seed, machine, step).
        let mut z = self
            .seed
            .wrapping_add((machine as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((step as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if z % 1000 < self.prob_milli as u64 {
            profile + self.delay_s
        } else {
            profile
        }
    }

    /// Whether this injector can never add delay.
    pub fn is_none(&self) -> bool {
        self.prob_milli == 0 && self.extra_s.iter().all(|&d| d == 0.0)
    }
}

/// [`model_step`] with replica-level delay injection: machine `k`'s
/// bootstrap sample in window `w` is inflated by
/// [`DelayInjector::delay_for`]`(k, w)` before the straggler `max`, so an
/// injected stall on *one* machine stalls the whole synchronous step —
/// exactly the degradation mode the serving fuzzer's `Stall` event probes
/// on the dispatcher side. With [`DelayInjector::none`] this is
/// [`model_step`] exactly.
pub fn model_step_injected(
    samples: &[f64],
    n: usize,
    batch_per_machine: usize,
    net: &NetModel,
    param_bytes: f64,
    inj: &DelayInjector,
) -> (f64, f64) {
    assert!(!samples.is_empty(), "need calibration samples");
    let mut max_sum = 0.0;
    for w in 0..samples.len() {
        let mut mx: f64 = 0.0;
        for k in 0..n {
            let s = samples[(w + k * 7) % samples.len()] + inj.delay_for(k, w);
            mx = mx.max(s);
        }
        max_sum += mx;
    }
    let straggler_step = max_sum / samples.len() as f64;
    let step = straggler_step + net.sync_cost(n, param_bytes);
    let instances = (batch_per_machine * n) as f64;
    (step, instances / step)
}

/// Runs the calibration on one real machine, then models `n_machines`.
pub fn run_virtual(
    cfg: &ClusterConfig,
    data: &Dataset,
    net: &NetModel,
    param_bytes: f64,
) -> Result<ClusterReport, ExecError> {
    // Calibrate on a single real machine.
    let mut one = cfg.clone();
    one.n_machines = 1;
    let base = run_real(&one, data)?;
    let samples = &base.machine0_compute;
    if samples.is_empty() {
        return Err(ExecError::internal("no calibration samples"));
    }
    let (step, throughput) = model_step(samples, cfg.n_machines, cfg.model.batch, net, param_bytes);
    Ok(ClusterReport {
        n_machines: cfg.n_machines,
        instances_per_sec: throughput,
        step_seconds: step,
        machine0_compute: samples.clone(),
        final_loss: base.final_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_data::DatasetConfig;
    use rdg_models::{ModelConfig, ModelKind};

    #[test]
    fn sync_cost_is_zero_for_one_machine() {
        let net = NetModel::default();
        assert_eq!(net.sync_cost(1, 1e6), 0.0);
        assert!(net.sync_cost(8, 1e6) > 0.0);
    }

    #[test]
    fn model_scaling_is_nearly_linear_with_tight_samples() {
        // Deterministic samples with 5% jitter: the model must show the
        // paper's near-linear shape.
        let samples: Vec<f64> = (0..32)
            .map(|i| 0.10 + 0.005 * ((i * 13 % 7) as f64 / 7.0))
            .collect();
        let net = NetModel::default();
        let (_, t1) = model_step(&samples, 1, 10, &net, 1e6);
        let (_, t4) = model_step(&samples, 4, 10, &net, 1e6);
        let (_, t8) = model_step(&samples, 8, 10, &net, 1e6);
        let s4 = t4 / t1;
        let s8 = t8 / t1;
        assert!(s4 > 3.5, "4-machine speedup {s4:.2}");
        assert!(s8 > 6.5, "8-machine speedup {s8:.2}");
        assert!(s8 <= 8.0 + 1e-9, "speedup bounded by machine count");
    }

    #[test]
    fn straggler_variance_degrades_scaling() {
        // High-variance compute: max-of-n grows, scaling drops below linear.
        let tight: Vec<f64> = vec![0.1; 16];
        let loose: Vec<f64> = (0..16)
            .map(|i| if i % 4 == 0 { 0.2 } else { 0.05 })
            .collect();
        let net = NetModel {
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
        };
        let (_, tight8) = model_step(&tight, 8, 10, &net, 0.0);
        let (_, tight1) = model_step(&tight, 1, 10, &net, 0.0);
        let (_, loose8) = model_step(&loose, 8, 10, &net, 0.0);
        let (_, loose1) = model_step(&loose, 1, 10, &net, 0.0);
        assert!(
            (tight8 / tight1 - 8.0).abs() < 1e-9,
            "no variance → perfect scaling"
        );
        assert!(loose8 / loose1 < 8.0, "stragglers hurt");
    }

    #[test]
    fn no_injection_reduces_to_the_plain_model_exactly() {
        let samples: Vec<f64> = (0..24).map(|i| 0.08 + 0.01 * ((i % 5) as f64)).collect();
        let net = NetModel::default();
        for n in [1usize, 4, 8] {
            let plain = model_step(&samples, n, 10, &net, 1e6);
            let inj = model_step_injected(&samples, n, 10, &net, 1e6, &DelayInjector::none());
            assert_eq!(plain, inj, "n={n}: none() must be the identity");
        }
        assert!(DelayInjector::none().is_none());
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        let a = DelayInjector::random(42, 250, 0.05);
        let b = DelayInjector::random(42, 250, 0.05);
        let mut fired = 0usize;
        for m in 0..8 {
            for s in 0..64 {
                assert_eq!(a.delay_for(m, s), b.delay_for(m, s));
                if a.delay_for(m, s) > 0.0 {
                    fired += 1;
                }
            }
        }
        // ~25% of 512 points should stall; exact count is seed-pinned.
        assert!(fired > 64 && fired < 256, "fired {fired} of 512");
        assert_ne!(
            (0..64).map(|s| a.delay_for(0, s) > 0.0).collect::<Vec<_>>(),
            (0..64)
                .map(|s| DelayInjector::random(43, 250, 0.05).delay_for(0, s) > 0.0)
                .collect::<Vec<_>>(),
            "different seeds draw different stall patterns"
        );
    }

    #[test]
    fn injected_delays_degrade_scaling() {
        let samples: Vec<f64> = vec![0.1; 16];
        let net = NetModel {
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
        };
        let (_, clean1) = model_step(&samples, 1, 10, &net, 0.0);
        let (_, clean8) = model_step(&samples, 8, 10, &net, 0.0);
        let inj = DelayInjector::random(7, 300, 0.1);
        let (_, hurt8) = model_step_injected(&samples, 8, 10, &net, 0.0, &inj);
        assert!(
            (clean8 / clean1 - 8.0).abs() < 1e-9,
            "tight samples scale perfectly without injection"
        );
        assert!(
            hurt8 < clean8,
            "injected stalls must cost throughput ({hurt8:.2} vs {clean8:.2})"
        );
        // With 30% stall probability per machine-step and 8 machines,
        // nearly every window has a straggler: speedup collapses.
        assert!(hurt8 / clean1 < 6.0, "stalls should break near-linearity");
    }

    #[test]
    fn serving_fuzz_stall_profile_bridges_to_the_cluster_model() {
        // The cross-layer path the fuzzer satellite exists for: a serving
        // schedule's replica stalls, found adversarial for the dispatcher,
        // replayed as a straggler profile in the cluster model.
        use rdg_exec::serve::fuzz::{replay, Event, Scenario, SizingSpec};
        use rdg_exec::Priority;
        let scenario = Scenario {
            name: "stall-bridge".into(),
            seed: 0,
            workers: 2,
            capacity: 8,
            batch_multiple: 2,
            aging_step_ns: 1_000_000,
            sizing: SizingSpec::Fixed,
            expect_p99_ns: None,
            expect_shed: None,
            events: vec![
                Event::Submit(Priority::Interactive, 300_000),
                Event::Stall(0, 40_000_000), // lane 0: 40 ms straggler
                Event::Stall(1, 10_000_000), // lane 1: 10 ms — no free lane
                Event::Submit(Priority::Interactive, 300_000),
                Event::Wave,
            ],
        };
        // The same stalls hurt the dispatcher's tail…
        let out = replay(&scenario);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(
            out.interactive_p99_ns >= 10_000_000,
            "a stalled lane must show up in the serving tail (p99 {} ns)",
            out.interactive_p99_ns
        );
        // …and, bridged through the profile, the cluster model's step.
        let inj = DelayInjector::from_stall_profile(&scenario.stall_events(), 4);
        assert_eq!(inj.delay_for(0, 0), 0.04);
        assert_eq!(inj.delay_for(1, 3), 0.01);
        assert_eq!(inj.delay_for(2, 0), 0.0);
        let samples: Vec<f64> = vec![0.05; 8];
        let net = NetModel {
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
        };
        let (clean_step, _) = model_step(&samples, 4, 10, &net, 0.0);
        let (stalled_step, _) = model_step_injected(&samples, 4, 10, &net, 0.0, &inj);
        assert!(
            (stalled_step - (clean_step + 0.04)).abs() < 1e-12,
            "the 40 ms straggler dominates every synchronous step: \
             {stalled_step:.4} vs clean {clean_step:.4}"
        );
    }

    #[test]
    fn run_virtual_smoke() {
        let data = Dataset::generate(DatasetConfig {
            vocab: 100,
            n_train: 8,
            n_valid: 0,
            min_len: 3,
            max_len: 6,
            ..DatasetConfig::default()
        });
        let cfg = ClusterConfig {
            n_machines: 4,
            threads_per_machine: 1,
            model: ModelConfig::tiny(ModelKind::TreeRnn, 2),
            steps: 2,
            lr: 0.05,
        };
        let r = run_virtual(&cfg, &data, &NetModel::default(), 1e5).unwrap();
        assert!(r.instances_per_sec > 0.0);
        assert_eq!(r.n_machines, 4);
    }
}
