//! Virtual-time cluster model, calibrated from real single-machine steps.

use crate::server::{run_real, ClusterConfig, ClusterReport};
use rdg_data::Dataset;
use rdg_exec::ExecError;

/// Parameter-server network model.
#[derive(Clone, Copy, Debug)]
pub struct NetModel {
    /// One-way latency per synchronization round, seconds.
    pub latency_s: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth_bps: f64,
}

impl Default for NetModel {
    fn default() -> Self {
        // 10 GbE with 100 µs RTT-ish latency: the class of hardware the
        // paper's testbed would have used.
        NetModel {
            latency_s: 100e-6,
            bandwidth_bps: 10e9 / 8.0,
        }
    }
}

impl NetModel {
    /// Synchronization cost of one step for `n` machines pushing gradients
    /// and pulling parameters of `param_bytes` each (classic PS: push + pull
    /// per machine, server link is the bottleneck; sharding across machines
    /// divides the serialized volume).
    pub fn sync_cost(&self, n: usize, param_bytes: f64) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        // Sharded parameter server: each of the n servers handles 1/n of the
        // parameters for all n machines → per-step volume ≈ 2·param_bytes.
        2.0 * self.latency_s + 2.0 * param_bytes / self.bandwidth_bps
    }
}

/// The pure virtual-time model: step time for `n` synchronous machines from
/// measured single-machine compute samples.
///
/// `E[max of n samples]` (synchronous SGD waits for the straggler), averaged
/// over deterministic bootstrap windows, plus the network term. Returns
/// `(step_seconds, instances_per_sec)`.
pub fn model_step(
    samples: &[f64],
    n: usize,
    batch_per_machine: usize,
    net: &NetModel,
    param_bytes: f64,
) -> (f64, f64) {
    assert!(!samples.is_empty(), "need calibration samples");
    let mut max_sum = 0.0;
    for w in 0..samples.len() {
        let mut mx: f64 = 0.0;
        for k in 0..n {
            mx = mx.max(samples[(w + k * 7) % samples.len()]);
        }
        max_sum += mx;
    }
    let straggler_step = max_sum / samples.len() as f64;
    let step = straggler_step + net.sync_cost(n, param_bytes);
    let instances = (batch_per_machine * n) as f64;
    (step, instances / step)
}

/// Runs the calibration on one real machine, then models `n_machines`.
pub fn run_virtual(
    cfg: &ClusterConfig,
    data: &Dataset,
    net: &NetModel,
    param_bytes: f64,
) -> Result<ClusterReport, ExecError> {
    // Calibrate on a single real machine.
    let mut one = cfg.clone();
    one.n_machines = 1;
    let base = run_real(&one, data)?;
    let samples = &base.machine0_compute;
    if samples.is_empty() {
        return Err(ExecError::internal("no calibration samples"));
    }
    let (step, throughput) = model_step(samples, cfg.n_machines, cfg.model.batch, net, param_bytes);
    Ok(ClusterReport {
        n_machines: cfg.n_machines,
        instances_per_sec: throughput,
        step_seconds: step,
        machine0_compute: samples.clone(),
        final_loss: base.final_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_data::DatasetConfig;
    use rdg_models::{ModelConfig, ModelKind};

    #[test]
    fn sync_cost_is_zero_for_one_machine() {
        let net = NetModel::default();
        assert_eq!(net.sync_cost(1, 1e6), 0.0);
        assert!(net.sync_cost(8, 1e6) > 0.0);
    }

    #[test]
    fn model_scaling_is_nearly_linear_with_tight_samples() {
        // Deterministic samples with 5% jitter: the model must show the
        // paper's near-linear shape.
        let samples: Vec<f64> = (0..32)
            .map(|i| 0.10 + 0.005 * ((i * 13 % 7) as f64 / 7.0))
            .collect();
        let net = NetModel::default();
        let (_, t1) = model_step(&samples, 1, 10, &net, 1e6);
        let (_, t4) = model_step(&samples, 4, 10, &net, 1e6);
        let (_, t8) = model_step(&samples, 8, 10, &net, 1e6);
        let s4 = t4 / t1;
        let s8 = t8 / t1;
        assert!(s4 > 3.5, "4-machine speedup {s4:.2}");
        assert!(s8 > 6.5, "8-machine speedup {s8:.2}");
        assert!(s8 <= 8.0 + 1e-9, "speedup bounded by machine count");
    }

    #[test]
    fn straggler_variance_degrades_scaling() {
        // High-variance compute: max-of-n grows, scaling drops below linear.
        let tight: Vec<f64> = vec![0.1; 16];
        let loose: Vec<f64> = (0..16)
            .map(|i| if i % 4 == 0 { 0.2 } else { 0.05 })
            .collect();
        let net = NetModel {
            latency_s: 0.0,
            bandwidth_bps: f64::INFINITY,
        };
        let (_, tight8) = model_step(&tight, 8, 10, &net, 0.0);
        let (_, tight1) = model_step(&tight, 1, 10, &net, 0.0);
        let (_, loose8) = model_step(&loose, 8, 10, &net, 0.0);
        let (_, loose1) = model_step(&loose, 1, 10, &net, 0.0);
        assert!(
            (tight8 / tight1 - 8.0).abs() < 1e-9,
            "no variance → perfect scaling"
        );
        assert!(loose8 / loose1 < 8.0, "stragglers hurt");
    }

    #[test]
    fn run_virtual_smoke() {
        let data = Dataset::generate(DatasetConfig {
            vocab: 100,
            n_train: 8,
            n_valid: 0,
            min_len: 3,
            max_len: 6,
            ..DatasetConfig::default()
        });
        let cfg = ClusterConfig {
            n_machines: 4,
            threads_per_machine: 1,
            model: ModelConfig::tiny(ModelKind::TreeRnn, 2),
            steps: 2,
            lr: 0.05,
        };
        let r = run_virtual(&cfg, &data, &NetModel::default(), 1e5).unwrap();
        assert!(r.instances_per_sec > 0.0);
        assert_eq!(r.n_machines, 4);
    }
}
