//! `rdg` — recursive dataflow graphs for deep learning.
//!
//! A clean-room Rust implementation of the EuroSys '18 paper **"Improving
//! the Expressiveness of Deep Learning Frameworks with Recursion"** (Jeong,
//! Jeong, Kim, Yu, Chun): first-class recursion for embedded-control-flow
//! deep-learning frameworks via two abstractions,
//!
//! * **SubGraph** — a dataflow-graph fragment with a typed signature,
//!   semantically a function definition, declared with forward declarations
//!   and automatic outer-reference capture
//!   ([`rdg_graph::ModuleBuilder::declare_subgraph`]);
//! * **InvokeOp** — an ordinary graph operation whose kernel executes a
//!   SubGraph ([`rdg_graph::ModuleBuilder::invoke`]); a SubGraph invoking
//!   *itself* yields recursion inside a static graph, executed by the
//!   unmodified master/worker machinery ([`rdg_exec::Executor`]) with full
//!   sibling parallelism, and differentiated by synthesizing recursive
//!   gradient SubGraphs with mirrored call sites
//!   ([`rdg_autodiff::build_training_module`]).
//!
//! # Quickstart
//!
//! ```
//! use rdg_core::prelude::*;
//!
//! // fib(n) = n <= 1 ? n : fib(n-1) + fib(n-2), as a recursive graph.
//! let mut mb = ModuleBuilder::new();
//! let fib = mb.declare_subgraph("fib", &[DType::I32], &[DType::I32]);
//! mb.define_subgraph(&fib, |b| {
//!     let n = b.input(0)?;
//!     let one = b.const_i32(1);
//!     let base = b.ile(n, one)?;
//!     let out = b.cond1(base, DType::I32,
//!         |b| b.identity(n),
//!         |b| {
//!             let one = b.const_i32(1);
//!             let two = b.const_i32(2);
//!             let a = b.isub(n, one)?;
//!             let c = b.isub(n, two)?;
//!             let fa = b.invoke(&fib, &[a])?[0];
//!             let fc = b.invoke(&fib, &[c])?[0];
//!             b.iadd(fa, fc)
//!         })?;
//!     Ok(vec![out])
//! }).unwrap();
//! let n = mb.const_i32(10);
//! let out = mb.invoke(&fib, &[n]).unwrap();
//! mb.set_outputs(&[out[0]]).unwrap();
//!
//! let session = Session::new(Executor::with_threads(2), mb.finish().unwrap()).unwrap();
//! assert_eq!(session.run(vec![]).unwrap()[0].as_i32_scalar().unwrap(), 55);
//! ```
//!
//! # Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`rdg_tensor`] | dense tensors and kernels |
//! | [`rdg_graph`] | IR, SubGraphs, builder DSL |
//! | [`rdg_exec`] | parallel executor, backprop cache, virtual-time twin |
//! | [`rdg_autodiff`] | recursive reverse-mode differentiation |
//! | [`rdg_nn`] | cells, layers, optimizers |
//! | [`rdg_data`] | synthetic Large-Movie-Review substitute |
//! | [`rdg_models`] | TreeRNN / RNTN / TreeLSTM / TD-TreeLSTM × styles |
//! | [`rdg_fold`] | TensorFlow-Fold-style dynamic batching baseline |
//! | [`rdg_cluster`] | data-parallel multi-machine training |

pub use rdg_autodiff as autodiff;
pub use rdg_cluster as cluster;
pub use rdg_data as data;
pub use rdg_exec as exec;
pub use rdg_fold as fold;
pub use rdg_graph as graph;
pub use rdg_models as models;
pub use rdg_nn as nn;
pub use rdg_tensor as tensor;

/// The working set for typical users: builder, executor, autodiff, models.
pub mod prelude {
    pub use rdg_autodiff::{build_training_module, check_gradients};
    pub use rdg_data::{Dataset, DatasetConfig, Instance, Split, TreeShape};
    pub use rdg_exec::{
        ClassStats, Executor, Priority, SchedulerKind, ServeClient, ServeConfig, ServeError,
        ServeStats, Session, WaveSizing,
    };
    pub use rdg_graph::{GraphRef, Module, ModuleBuilder, ParamId, SubGraphHandle, Wire};
    pub use rdg_models::{
        build_iterative, build_recursive, build_td_iterative, build_td_recursive, ModelConfig,
        ModelKind, TdConfig, UnrolledModel,
    };
    pub use rdg_nn::{Adagrad, Adam, Optimizer, Sgd, Trainer};
    pub use rdg_tensor::{DType, Shape, Tensor};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_basic_flow_works() {
        let mut mb = ModuleBuilder::new();
        let x = mb.const_f32(2.0);
        let y = mb.scale(x, 3.0).unwrap();
        mb.set_outputs(&[y]).unwrap();
        let s = Session::new(Executor::with_threads(1), mb.finish().unwrap()).unwrap();
        assert_eq!(s.run(vec![]).unwrap()[0].as_f32_scalar().unwrap(), 6.0);
    }
}
