//! Reproducible synthetic corpora with splits and batching.

use crate::encode::TreeTensors;
use crate::sentiment::SentimentModel;
use crate::trees::{sample_length, Tree, TreeShape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdg_tensor::Tensor;

/// Which half of a dataset to read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Split {
    /// Training instances.
    Train,
    /// Held-out validation instances.
    Valid,
}

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct DatasetConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Number of training instances.
    pub n_train: usize,
    /// Number of validation instances.
    pub n_valid: usize,
    /// Minimum sentence length (words).
    pub min_len: usize,
    /// Maximum sentence length (words).
    pub max_len: usize,
    /// Parse-tree shape regime.
    pub shape: TreeShape,
    /// Master seed (teacher + sentences).
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            vocab: 2000,
            n_train: 512,
            n_valid: 128,
            min_len: 4,
            max_len: 64,
            shape: TreeShape::Moderate,
            seed: 42,
        }
    }
}

/// One labeled instance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The parse tree.
    pub tree: Tree,
    /// Tensor encoding of the tree.
    pub tensors: TreeTensors,
    /// Binary sentiment label.
    pub label: i32,
}

/// A reproducible synthetic corpus.
pub struct Dataset {
    /// Generation parameters.
    pub config: DatasetConfig,
    /// The labeling teacher.
    pub teacher: SentimentModel,
    train: Vec<Instance>,
    valid: Vec<Instance>,
}

impl Dataset {
    /// Generates the corpus deterministically from `config.seed`.
    pub fn generate(config: DatasetConfig) -> Dataset {
        let teacher = SentimentModel::new(config.vocab, config.seed ^ 0x7ea7);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut gen = |count: usize, salt: u64| -> Vec<Instance> {
            (0..count)
                .map(|i| {
                    let n = sample_length(&mut rng, config.min_len, config.max_len);
                    let words: Vec<i32> = (0..n)
                        .map(|_| rng.gen_range(0..config.vocab as i32))
                        .collect();
                    let tree = Tree::build(&words, config.shape, &mut rng);
                    let label = teacher.label(&tree, salt.wrapping_add(i as u64));
                    let tensors = TreeTensors::encode(&tree);
                    Instance {
                        tree,
                        tensors,
                        label,
                    }
                })
                .collect()
        };
        let train = gen(config.n_train, 0x1000_0000);
        let valid = gen(config.n_valid, 0x2000_0000);
        Dataset {
            config,
            teacher,
            train,
            valid,
        }
    }

    /// Generates a corpus where every sentence has exactly `len` words
    /// (Figure 11's per-length measurements).
    pub fn generate_fixed_length(mut config: DatasetConfig, len: usize) -> Dataset {
        config.min_len = len;
        config.max_len = len;
        Dataset::generate(config)
    }

    /// Instances of a split.
    pub fn split(&self, split: Split) -> &[Instance] {
        match split {
            Split::Train => &self.train,
            Split::Valid => &self.valid,
        }
    }

    /// Consecutive batches of `batch` instances (last partial batch
    /// dropped, as in the paper's fixed-batch measurements).
    pub fn batches(&self, split: Split, batch: usize) -> impl Iterator<Item = &[Instance]> {
        self.split(split).chunks_exact(batch)
    }

    /// Flattens a batch into the main-graph feed list models expect:
    /// per instance `(words, left, right, is_leaf, root)`, then all labels
    /// as one `i32[batch]` tensor.
    pub fn feeds_for(batch: &[Instance]) -> Vec<Tensor> {
        let mut feeds = Vec::with_capacity(batch.len() * TreeTensors::N_FEEDS + 1);
        for inst in batch {
            feeds.extend(inst.tensors.feeds());
        }
        let labels: Vec<i32> = batch.iter().map(|i| i.label).collect();
        feeds.push(Tensor::from_i32([labels.len()], labels).expect("len matches"));
        feeds
    }

    /// Feed lists for running a batch as **concurrent per-instance runs**
    /// on a `batch = 1` module (`Session::run_training_batch` /
    /// `run_many`): element `i` is `feeds_for(&batch[i..i+1])`, i.e. the
    /// instance's `(words, left, right, is_leaf, root)` tensors plus its
    /// one-element label tensor.
    pub fn feeds_per_instance(batch: &[Instance]) -> Vec<Vec<Tensor>> {
        batch
            .iter()
            .map(|inst| Self::feeds_for(std::slice::from_ref(inst)))
            .collect()
    }

    /// Mean sentence length of a split (diagnostics / reporting).
    pub fn mean_len(&self, split: Split) -> f32 {
        let s = self.split(split);
        if s.is_empty() {
            return 0.0;
        }
        s.iter().map(|i| i.tree.n_leaves()).sum::<usize>() as f32 / s.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DatasetConfig {
        DatasetConfig {
            vocab: 100,
            n_train: 32,
            n_valid: 16,
            min_len: 2,
            max_len: 12,
            shape: TreeShape::Moderate,
            seed: 1,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(small());
        let b = Dataset::generate(small());
        for (x, y) in a.split(Split::Train).iter().zip(b.split(Split::Train)) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.tree.nodes, y.tree.nodes);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::generate(small());
        let mut cfg = small();
        cfg.seed = 2;
        let b = Dataset::generate(cfg);
        let same = a
            .split(Split::Train)
            .iter()
            .zip(b.split(Split::Train))
            .filter(|(x, y)| x.tree.nodes == y.tree.nodes)
            .count();
        assert!(same < 8, "different seeds should give different trees");
    }

    #[test]
    fn splits_have_requested_sizes() {
        let d = Dataset::generate(small());
        assert_eq!(d.split(Split::Train).len(), 32);
        assert_eq!(d.split(Split::Valid).len(), 16);
    }

    #[test]
    fn batches_and_feeds() {
        let d = Dataset::generate(small());
        let batches: Vec<_> = d.batches(Split::Train, 10).collect();
        assert_eq!(batches.len(), 3, "32 / 10 → 3 full batches");
        let feeds = Dataset::feeds_for(batches[0]);
        assert_eq!(feeds.len(), 10 * TreeTensors::N_FEEDS + 1);
        let labels = &feeds[feeds.len() - 1];
        assert_eq!(labels.i32s().unwrap().len(), 10);
    }

    #[test]
    fn feeds_per_instance_matches_single_instance_feeds() {
        let d = Dataset::generate(small());
        let insts = &d.split(Split::Train)[..3];
        let per = Dataset::feeds_per_instance(insts);
        assert_eq!(per.len(), 3);
        for (feeds, inst) in per.iter().zip(insts) {
            assert_eq!(feeds.len(), TreeTensors::N_FEEDS + 1);
            let labels = feeds.last().unwrap().i32s().unwrap();
            assert_eq!(labels, &[inst.label]);
        }
    }

    #[test]
    fn fixed_length_corpus() {
        let d = Dataset::generate_fixed_length(small(), 9);
        for inst in d.split(Split::Train) {
            assert_eq!(inst.tree.n_leaves(), 9);
        }
    }

    #[test]
    fn lengths_respect_bounds() {
        let d = Dataset::generate(small());
        for inst in d.split(Split::Train).iter().chain(d.split(Split::Valid)) {
            let n = inst.tree.n_leaves();
            assert!((2..=12).contains(&n));
        }
    }
}
