//! Tensor encoding of parse trees.

use crate::trees::{Tree, TreeNode};
use rdg_tensor::Tensor;

/// A tree flattened into the tensor tables models consume.
///
/// All index tables follow the tree's topological order, so the iterative
/// baseline can simply process nodes `0..n` (paper Figure 1) while the
/// recursive implementation indexes `left`/`right` on demand (Figure 2).
#[derive(Clone, Debug)]
pub struct TreeTensors {
    /// Number of nodes.
    pub n_nodes: usize,
    /// `i32[n]`: word id at leaves, `-1` at internal nodes.
    pub words: Tensor,
    /// `i32[n]`: left child index, `-1` at leaves.
    pub left: Tensor,
    /// `i32[n]`: right child index, `-1` at leaves.
    pub right: Tensor,
    /// `i32[n]`: `1` at leaves, `0` at internal nodes.
    pub is_leaf: Tensor,
    /// `i32` scalar: root index.
    pub root: Tensor,
    /// `i32` scalar: node count.
    pub n_nodes_scalar: Tensor,
}

impl TreeTensors {
    /// Encodes a tree.
    pub fn encode(tree: &Tree) -> TreeTensors {
        let n = tree.len();
        let mut words = vec![-1i32; n];
        let mut left = vec![-1i32; n];
        let mut right = vec![-1i32; n];
        let mut is_leaf = vec![0i32; n];
        for (i, node) in tree.nodes.iter().enumerate() {
            match *node {
                TreeNode::Leaf { word } => {
                    words[i] = word;
                    is_leaf[i] = 1;
                }
                TreeNode::Internal { left: l, right: r } => {
                    left[i] = l as i32;
                    right[i] = r as i32;
                }
            }
        }
        TreeTensors {
            n_nodes: n,
            words: Tensor::from_i32([n], words).expect("len matches"),
            left: Tensor::from_i32([n], left).expect("len matches"),
            right: Tensor::from_i32([n], right).expect("len matches"),
            is_leaf: Tensor::from_i32([n], is_leaf).expect("len matches"),
            root: Tensor::scalar_i32(tree.root() as i32),
            n_nodes_scalar: Tensor::scalar_i32(n as i32),
        }
    }

    /// The five per-instance feed tensors in canonical order
    /// `(words, left, right, is_leaf, root)`.
    pub fn feeds(&self) -> Vec<Tensor> {
        vec![
            self.words.clone(),
            self.left.clone(),
            self.right.clone(),
            self.is_leaf.clone(),
            self.root.clone(),
        ]
    }

    /// Number of feed tensors per instance (see [`TreeTensors::feeds`]).
    pub const N_FEEDS: usize = 5;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::TreeShape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn encoding_round_trips_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let tree = Tree::build(&[10, 20, 30], TreeShape::Moderate, &mut rng);
        let tt = TreeTensors::encode(&tree);
        assert_eq!(tt.n_nodes, 5);
        let words = tt.words.i32s().unwrap();
        let left = tt.left.i32s().unwrap();
        let right = tt.right.i32s().unwrap();
        let is_leaf = tt.is_leaf.i32s().unwrap();
        for (i, n) in tree.nodes.iter().enumerate() {
            match *n {
                TreeNode::Leaf { word } => {
                    assert_eq!(words[i], word);
                    assert_eq!(is_leaf[i], 1);
                    assert_eq!(left[i], -1);
                }
                TreeNode::Internal { left: l, right: r } => {
                    assert_eq!(words[i], -1);
                    assert_eq!(is_leaf[i], 0);
                    assert_eq!(left[i], l as i32);
                    assert_eq!(right[i], r as i32);
                }
            }
        }
        assert_eq!(tt.root.as_i32_scalar().unwrap(), tree.root() as i32);
    }

    #[test]
    fn feeds_have_canonical_arity() {
        let mut rng = StdRng::seed_from_u64(2);
        let tree = Tree::build(&[1, 2], TreeShape::Balanced, &mut rng);
        let tt = TreeTensors::encode(&tree);
        assert_eq!(tt.feeds().len(), TreeTensors::N_FEEDS);
    }

    #[test]
    fn single_leaf_tree() {
        let mut rng = StdRng::seed_from_u64(3);
        let tree = Tree::build(&[42], TreeShape::Linear, &mut rng);
        let tt = TreeTensors::encode(&tree);
        assert_eq!(tt.n_nodes, 1);
        assert_eq!(tt.root.as_i32_scalar().unwrap(), 0);
        assert_eq!(tt.is_leaf.i32s().unwrap(), &[1]);
    }
}
