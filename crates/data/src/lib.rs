//! Synthetic movie-review data: the Large Movie Review stand-in.
//!
//! The paper evaluates on the Large Movie Review dataset (Maas et al.,
//! 2011) parsed into binary trees and labeled by a pre-trained network. The
//! corpus itself is immaterial to every experiment — what matters is
//! (a) the *shape distribution* of the parse trees (sentence lengths,
//! balancedness — Figures 7/8/11, Table 1) and (b) that the labels are
//! *learnable*, so convergence curves (Figure 9) are meaningful.
//!
//! This crate substitutes both:
//!
//! * [`trees`] — binary-tree generators over synthetic token sequences, with
//!   an IMDB-like sentence-length distribution and the paper's three shape
//!   regimes (balanced / moderate / linear, Table 1).
//! * [`sentiment`] — a fixed-seed *compositional teacher*: every vocabulary
//!   word carries a latent polarity, a small set of words act as negators
//!   that flip their sibling subtree, and a node's sentiment is the
//!   (possibly flipped) sum of its children. Root labels stand in for the
//!   paper's "pre-trained network used to label all nodes": deterministic,
//!   structured, and learnable by all three model families.
//! * [`encode`] — the tensor encoding models consume (topologically indexed
//!   node tables, as required by the iterative baseline in the paper's
//!   Figure 1).
//! * [`dataset`] — reproducible corpora with train/validation splits and
//!   batching.

pub mod dataset;
pub mod encode;
pub mod sentiment;
pub mod trees;

pub use dataset::{Dataset, DatasetConfig, Instance, Split};
pub use encode::TreeTensors;
pub use sentiment::SentimentModel;
pub use trees::{Tree, TreeNode, TreeShape};
