//! The compositional sentiment teacher.
//!
//! Stands in for the paper's "pre-trained network (for each model) to label
//! all nodes": a deterministic, seeded generative model that assigns every
//! tree node a sentiment score with genuinely *compositional* structure
//! (negator words flip their sibling subtree), so learning it requires the
//! tree computation the evaluated models perform — a bag-of-words shortcut
//! misclassifies negated subtrees.

use crate::trees::{Tree, TreeNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The teacher: per-word polarities plus a negator set.
pub struct SentimentModel {
    polarity: Vec<f32>,
    negator: Vec<bool>,
    /// Fraction of labels flipped at random (label noise).
    pub noise: f32,
}

impl SentimentModel {
    /// Builds a teacher for a vocabulary of `vocab` words from a seed.
    ///
    /// ~6% of words are negators; the rest carry polarity in `[-1, 1]`.
    pub fn new(vocab: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut polarity: Vec<f32> = (0..vocab).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // Center the polarities: otherwise the per-word bias accumulates
        // with sentence length and long sentences all share one label.
        let mean = polarity.iter().sum::<f32>() / vocab.max(1) as f32;
        for p in &mut polarity {
            *p -= mean;
        }
        let negator: Vec<bool> = (0..vocab).map(|_| rng.gen_bool(0.06)).collect();
        SentimentModel {
            polarity,
            negator,
            noise: 0.02,
        }
    }

    /// Whether `word` is a negator.
    pub fn is_negator(&self, word: i32) -> bool {
        self.negator.get(word as usize).copied().unwrap_or(false)
    }

    /// Per-node sentiment scores, in the tree's topological order.
    ///
    /// * Leaf: the word's polarity (0 for negators).
    /// * Internal: `s_l + s_r`, except when the left child is a negator
    ///   leaf, in which case the right subtree is flipped and amplified:
    ///   `-1.5·s_r`.
    pub fn scores(&self, tree: &Tree) -> Vec<f32> {
        let mut s = vec![0.0f32; tree.len()];
        for (i, n) in tree.nodes.iter().enumerate() {
            s[i] = match *n {
                TreeNode::Leaf { word } => {
                    if self.is_negator(word) {
                        0.0
                    } else {
                        self.polarity.get(word as usize).copied().unwrap_or(0.0)
                    }
                }
                TreeNode::Internal { left, right } => {
                    let left_is_negator = matches!(
                        tree.nodes[left],
                        TreeNode::Leaf { word } if self.is_negator(word)
                    );
                    if left_is_negator {
                        -1.5 * s[right]
                    } else {
                        s[left] + s[right]
                    }
                }
            };
        }
        s
    }

    /// Binary root label (1 = positive), with optional label noise driven by
    /// a per-tree deterministic hash so datasets stay reproducible.
    pub fn label(&self, tree: &Tree, tree_seed: u64) -> i32 {
        let s = self.scores(tree);
        let clean = (s[tree.root()] > 0.0) as i32;
        if self.noise > 0.0 {
            let mut rng = StdRng::seed_from_u64(tree_seed ^ 0x5eed_1abe1);
            if rng.gen_bool(self.noise as f64) {
                return 1 - clean;
            }
        }
        clean
    }

    /// Binary labels for every node (the paper labels all nodes).
    pub fn node_labels(&self, tree: &Tree) -> Vec<i32> {
        self.scores(tree)
            .iter()
            .map(|&x| (x > 0.0) as i32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::TreeShape;
    use rand::rngs::StdRng;

    fn teacher() -> SentimentModel {
        let mut t = SentimentModel::new(100, 7);
        t.noise = 0.0;
        t
    }

    #[test]
    fn scores_are_deterministic() {
        let t = teacher();
        let mut rng = StdRng::seed_from_u64(1);
        let tree = Tree::build(&[1, 2, 3, 4, 5], TreeShape::Moderate, &mut rng);
        assert_eq!(t.scores(&tree), t.scores(&tree));
        assert_eq!(t.label(&tree, 9), t.label(&tree, 9));
    }

    #[test]
    fn sum_composition_holds_without_negators() {
        let t = teacher();
        // Pick three non-negator words.
        let ws: Vec<i32> = (0..100).filter(|&w| !t.is_negator(w)).take(3).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let tree = Tree::build(&ws, TreeShape::Linear, &mut rng);
        let s = t.scores(&tree);
        let want: f32 = ws.iter().map(|&w| t.polarity[w as usize]).sum();
        assert!((s[tree.root()] - want).abs() < 1e-6);
    }

    #[test]
    fn negator_flips_sibling() {
        let t = teacher();
        let neg = (0..100).find(|&w| t.is_negator(w)).expect("some negator") as i32;
        let pos = (0..100)
            .find(|&w| !t.is_negator(w) && t.polarity[w as usize] > 0.3)
            .expect("some positive word") as i32;
        // Tree: (neg pos) — leaf neg is the left child.
        let tree = Tree {
            nodes: vec![
                TreeNode::Leaf { word: neg },
                TreeNode::Leaf { word: pos },
                TreeNode::Internal { left: 0, right: 1 },
            ],
        };
        let s = t.scores(&tree);
        assert!(s[2] < 0.0, "negated positive must be negative: {s:?}");
        assert!((s[2] + 1.5 * s[1]).abs() < 1e-6);
    }

    #[test]
    fn labels_roughly_balanced() {
        let t = teacher();
        let mut rng = StdRng::seed_from_u64(3);
        let mut pos = 0;
        for i in 0..500 {
            let n = crate::trees::sample_length(&mut rng, 2, 60);
            let words: Vec<i32> = (0..n).map(|_| rng.gen_range(0..100)).collect();
            let tree = Tree::build(&words, TreeShape::Moderate, &mut rng);
            pos += t.label(&tree, i);
        }
        assert!(
            (150..350).contains(&pos),
            "labels should be roughly balanced, got {pos}/500 positive"
        );
    }

    #[test]
    fn noise_flips_some_labels() {
        let mut noisy = SentimentModel::new(100, 7);
        noisy.noise = 0.5;
        let clean = teacher();
        let mut rng = StdRng::seed_from_u64(4);
        let mut diff = 0;
        for i in 0..200 {
            let words: Vec<i32> = (0..8).map(|_| rng.gen_range(0..100)).collect();
            let tree = Tree::build(&words, TreeShape::Moderate, &mut rng);
            if noisy.label(&tree, i) != clean.label(&tree, i) {
                diff += 1;
            }
        }
        assert!(diff > 50, "50% noise must flip many labels, flipped {diff}");
    }
}
