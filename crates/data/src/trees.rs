//! Binary parse trees and their generators.

use rand::Rng;

/// One node of a binary parse tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeNode {
    /// A word (leaf).
    Leaf {
        /// Vocabulary id.
        word: i32,
    },
    /// An internal node combining two children.
    Internal {
        /// Index of the left child (always `<` this node's index).
        left: usize,
        /// Index of the right child (always `<` this node's index).
        right: usize,
    },
}

/// A binary parse tree stored in **topological order**: every child index
/// precedes its parent, and the root is the last node.
///
/// This is exactly the preprocessing the paper's iterative implementation
/// requires (§2.2: "the input tree must be preprocessed so that its nodes
/// are assigned with topologically sorted indices"); the recursive
/// implementation only needs `left`/`right` and exploits the parent-child
/// structure instead.
#[derive(Clone, Debug)]
pub struct Tree {
    /// Nodes, children before parents.
    pub nodes: Vec<TreeNode>,
}

/// Shape regime of generated parse trees (paper Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeShape {
    /// Complete/balanced binary trees: maximal parallelism.
    Balanced,
    /// Uniformly random split points: moderately balanced (the natural
    /// parse-tree-like regime).
    Moderate,
    /// Left-spine combs: each internal node pairs one leaf with the rest —
    /// strictly sequential dependencies.
    Linear,
}

impl Tree {
    /// Number of leaves (words).
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, TreeNode::Leaf { .. }))
            .count()
    }

    /// Total node count (`2·leaves − 1` for binary trees).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for the empty tree (never produced by generators).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root node index (last in topological order).
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Height of the tree (leaf = 1).
    pub fn height(&self) -> usize {
        let mut h = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            h[i] = match n {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Internal { left, right } => 1 + h[*left].max(h[*right]),
            };
        }
        h[self.root()]
    }

    /// Validates the topological-order invariant.
    pub fn check(&self) -> bool {
        self.nodes.iter().enumerate().all(|(i, n)| match n {
            TreeNode::Leaf { .. } => true,
            TreeNode::Internal { left, right } => *left < i && *right < i && left != right,
        })
    }

    /// Builds a parse tree over `words` with the given shape.
    pub fn build(words: &[i32], shape: TreeShape, rng: &mut impl Rng) -> Tree {
        assert!(!words.is_empty(), "cannot parse an empty sentence");
        let mut nodes = Vec::with_capacity(2 * words.len() - 1);
        build_span(words, shape, rng, &mut nodes);
        let t = Tree { nodes };
        debug_assert!(t.check());
        t
    }
}

/// Recursively builds the span `words`, returning the root node index.
fn build_span(
    words: &[i32],
    shape: TreeShape,
    rng: &mut impl Rng,
    nodes: &mut Vec<TreeNode>,
) -> usize {
    if words.len() == 1 {
        nodes.push(TreeNode::Leaf { word: words[0] });
        return nodes.len() - 1;
    }
    let split = match shape {
        TreeShape::Balanced => words.len() / 2,
        TreeShape::Linear => 1,
        TreeShape::Moderate => rng.gen_range(1..words.len()),
    };
    let left = build_span(&words[..split], shape, rng, nodes);
    let right = build_span(&words[split..], shape, rng, nodes);
    nodes.push(TreeNode::Internal { left, right });
    nodes.len() - 1
}

/// Samples an IMDB-like sentence length: log-normal-ish, clamped to
/// `[min_len, max_len]`.
pub fn sample_length(rng: &mut impl Rng, min_len: usize, max_len: usize) -> usize {
    // Sum of uniforms approximates a normal in log space: exp(N(3.0, 0.7))
    // has median ~20 words, long right tail like review sentences.
    let z: f32 = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).sum::<f32>() * 0.5;
    let len = (3.0 + 0.7 * z).exp();
    (len as usize).clamp(min_len, max_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn words(n: usize) -> Vec<i32> {
        (0..n as i32).collect()
    }

    #[test]
    fn trees_have_binary_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        for shape in [TreeShape::Balanced, TreeShape::Moderate, TreeShape::Linear] {
            for n in [1usize, 2, 3, 7, 20, 63] {
                let t = Tree::build(&words(n), shape, &mut rng);
                assert_eq!(t.n_leaves(), n, "{shape:?} n={n}");
                assert_eq!(t.len(), 2 * n - 1, "binary tree node count");
                assert!(t.check(), "topological invariant");
            }
        }
    }

    #[test]
    fn balanced_trees_are_logarithmic() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tree::build(&words(64), TreeShape::Balanced, &mut rng);
        assert_eq!(t.height(), 7, "complete tree over 64 leaves");
    }

    #[test]
    fn linear_trees_are_combs() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tree::build(&words(10), TreeShape::Linear, &mut rng);
        assert_eq!(t.height(), 10, "comb height = leaf count");
    }

    #[test]
    fn moderate_between_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 128;
        let hb = Tree::build(&words(n), TreeShape::Balanced, &mut rng).height();
        let hm = Tree::build(&words(n), TreeShape::Moderate, &mut rng).height();
        let hl = Tree::build(&words(n), TreeShape::Linear, &mut rng).height();
        assert!(
            hb <= hm && hm <= hl,
            "heights ordered: {hb} <= {hm} <= {hl}"
        );
        assert!(hm < hl, "moderate strictly better than linear");
    }

    #[test]
    fn leaf_order_preserves_sentence() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = vec![5, 9, 2, 7];
        let t = Tree::build(&w, TreeShape::Moderate, &mut rng);
        // In-order traversal must recover the sentence.
        fn inorder(t: &Tree, i: usize, out: &mut Vec<i32>) {
            match t.nodes[i] {
                TreeNode::Leaf { word } => out.push(word),
                TreeNode::Internal { left, right } => {
                    inorder(t, left, out);
                    inorder(t, right, out);
                }
            }
        }
        let mut got = Vec::new();
        inorder(&t, t.root(), &mut got);
        assert_eq!(got, w);
    }

    #[test]
    fn sampled_lengths_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut total = 0usize;
        for _ in 0..1000 {
            let l = sample_length(&mut rng, 2, 250);
            assert!((2..=250).contains(&l));
            total += l;
        }
        let mean = total as f32 / 1000.0;
        assert!(
            mean > 8.0 && mean < 40.0,
            "review-like mean length, got {mean}"
        );
    }
}
