//! Dispatch-time batch fusion planning.
//!
//! When the serving dispatcher pops a wave of requests, their root frames
//! advance through the same model graph in rough lockstep, so the ready
//! queue naturally interleaves *the same graph node* from many concurrent
//! runs. This module holds the pure planning half of the fuser:
//!
//! * [`FuseKind`] — how a fusable op stacks: by rows (shared right-hand
//!   operand) or by columns (shared left-hand operand).
//! * [`fuse_kind`] — plan-build-time batchability classification, recorded
//!   per node in `ExecutionPlan::fuse` so dispatch-time grouping is a hash
//!   lookup, not a shape re-derivation.
//! * [`plan_groups`] — deterministic FIFO-preserving group formation over a
//!   popped batch of tasks, shared verbatim with the deterministic serving
//!   twin so fusion decisions replay exactly.
//! * Row/column stack-and-scatter tensor helpers used by the executor's
//!   group-execute path (`Executor`'s fused worker loop).
//!
//! The kernels in `rdg_tensor` compute every output row (for the row-stacked
//! ops) or every output column block (for `MatMulAT`) independently and in
//! the same flop order whether invoked on one instance or on a stack, so a
//! fused call is *bit-for-bit* identical to the scalar calls it replaces —
//! the same argument that makes `crates/fold`'s level grouping exact.

use std::collections::HashMap;
use std::hash::Hash;

use rdg_graph::{GraphRef, NodeId, OpKind};
use rdg_tensor::{Tensor, TensorError};

/// Default clamp on fused group size (members per stacked kernel call).
///
/// Bounds stacked-tensor size and keeps a fused call's latency close to the
/// scalar call it replaces; `ServeConfig::max_fuse_group` overrides it.
pub const DEFAULT_MAX_GROUP: usize = 16;

/// How a fusable op's operands stack across group members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseKind {
    /// Stack operand 0 by rows, share operand 1, scatter output rows.
    ///
    /// `MatMul`, `MatMulBT`, `AddBias`, and `Bilinear` all compute each
    /// output row from the matching input row alone, so members' inputs can
    /// be concatenated by rows around one shared second operand (the weight
    /// or bias parameter).
    RowsShared,
    /// Share operand 0, stack operand 1 by columns, scatter output columns.
    ///
    /// `MatMulAT` (`AᵀB`) sums over rows of both operands, so row-stacking
    /// would mix members; stacking `B` by columns against a shared `A`
    /// keeps every member's accumulation order untouched.
    ColsShared,
}

/// Plan-build-time batchability classification for one graph node.
///
/// Returns `None` for ops that are structural, not row/column separable, or
/// not worth fusing. Elementwise ops are deliberately excluded: they are
/// memory-bound and fusing them buys nothing over the scalar path.
pub fn fuse_kind(op: &OpKind) -> Option<FuseKind> {
    // Delegates to the static analyzer's classification so the lint-time
    // batchability prediction and the runtime fuse decision can never
    // drift apart: predicted-eligible ⊇ fused holds by construction.
    match rdg_graph::analyze::fuse_class(op)? {
        rdg_graph::analyze::FuseClass::RowsShared => Some(FuseKind::RowsShared),
        rdg_graph::analyze::FuseClass::ColsShared => Some(FuseKind::ColsShared),
    }
}

/// Static identity of a fusable task: same plan, same graph, same node ⇒
/// same op, same param wiring, same batchability signature.
///
/// `plan` is the `Arc::as_ptr` of the run's `ModulePlan`, so two runs group
/// only when they execute the *same compiled plan object* — which pins the
/// op kind and the `ParamId` operands without re-deriving either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupKey {
    /// `Arc::as_ptr` of the owning `ModulePlan`.
    pub plan: usize,
    /// Graph (main or subgraph) the node lives in.
    pub gref: GraphRef,
    /// Node within that graph.
    pub node: NodeId,
}

/// Deterministic FIFO-preserving group formation.
///
/// Given the group key of each popped task in pop order (`None` = not
/// fusable), returns index groups ordered by first occurrence. Unfusable
/// tasks become singleton groups in place. A key's group is chunked at
/// `max_group`: the clamp bounds stacked-tensor size and keeps worst-case
/// latency of a fused call close to scalar.
///
/// This function is pure and shared with the deterministic serving twin, so
/// live fusion decisions and twin replay agree by construction.
pub fn plan_groups<K: Eq + Hash + Copy>(keys: &[Option<K>], max_group: usize) -> Vec<Vec<usize>> {
    let max_group = max_group.max(1);
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut open: HashMap<K, usize> = HashMap::new();
    for (i, key) in keys.iter().enumerate() {
        match key {
            None => groups.push(vec![i]),
            Some(k) => match open.get(k) {
                Some(&g) if groups[g].len() < max_group => groups[g].push(i),
                _ => {
                    open.insert(*k, groups.len());
                    groups.push(vec![i]);
                }
            },
        }
    }
    groups
}

fn as_mat<'t>(t: &'t Tensor, ctx: &'static str) -> Result<(usize, usize, &'t [f32]), TensorError> {
    let (r, c) = t.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: t.rank(),
        ctx,
    })?;
    Ok((r, c, t.f32s()?))
}

/// Concatenates members' matrices by rows into one `[Σrᵢ, c]` tensor.
///
/// Every part must be f32 with the same column count (rank-1 parts count as
/// one row). Returns the stacked tensor and each part's row count for the
/// scatter step.
pub(crate) fn stack_rows(parts: &[&Tensor]) -> Result<(Tensor, Vec<usize>), TensorError> {
    let (_, c, _) = as_mat(parts[0], "batch stack_rows")?;
    let mut rows = Vec::with_capacity(parts.len());
    let mut total = 0usize;
    for p in parts {
        let (r, pc, _) = as_mat(p, "batch stack_rows")?;
        if pc != c {
            return Err(TensorError::ShapeMismatch {
                lhs: parts[0].shape().clone(),
                rhs: p.shape().clone(),
                ctx: "batch stack_rows",
            });
        }
        rows.push(r);
        total += r;
    }
    let mut buf = Vec::with_capacity(total * c);
    for p in parts {
        buf.extend_from_slice(p.f32s()?);
    }
    Ok((Tensor::from_f32([total, c], buf)?, rows))
}

/// Splits a fused `[Σrᵢ, c]` output back into per-member `[rᵢ, c]` tensors.
pub(crate) fn split_rows(fused: &Tensor, rows: &[usize]) -> Result<Vec<Tensor>, TensorError> {
    let (m, c, data) = as_mat(fused, "batch split_rows")?;
    debug_assert_eq!(m, rows.iter().sum::<usize>());
    let mut out = Vec::with_capacity(rows.len());
    let mut off = 0usize;
    for &r in rows {
        out.push(Tensor::from_f32(
            [r, c],
            data[off * c..(off + r) * c].to_vec(),
        )?);
        off += r;
    }
    Ok(out)
}

/// Concatenates members' matrices by columns into one `[r, Σcᵢ]` tensor.
///
/// Every part must be f32 rank-2 with the same row count.
pub(crate) fn stack_cols(parts: &[&Tensor]) -> Result<(Tensor, Vec<usize>), TensorError> {
    let (r, _, _) = as_mat(parts[0], "batch stack_cols")?;
    let mut cols = Vec::with_capacity(parts.len());
    let mut total = 0usize;
    let mut views = Vec::with_capacity(parts.len());
    for p in parts {
        let (pr, pc, pv) = as_mat(p, "batch stack_cols")?;
        if pr != r {
            return Err(TensorError::ShapeMismatch {
                lhs: parts[0].shape().clone(),
                rhs: p.shape().clone(),
                ctx: "batch stack_cols",
            });
        }
        cols.push(pc);
        total += pc;
        views.push((pc, pv));
    }
    let mut buf = Vec::with_capacity(r * total);
    for row in 0..r {
        for &(pc, pv) in &views {
            buf.extend_from_slice(&pv[row * pc..(row + 1) * pc]);
        }
    }
    Ok((Tensor::from_f32([r, total], buf)?, cols))
}

/// Splits a fused `[r, Σcᵢ]` output back into per-member `[r, cᵢ]` tensors.
pub(crate) fn split_cols(fused: &Tensor, cols: &[usize]) -> Result<Vec<Tensor>, TensorError> {
    let (r, total, data) = as_mat(fused, "batch split_cols")?;
    debug_assert_eq!(total, cols.iter().sum::<usize>());
    let mut out = Vec::with_capacity(cols.len());
    let mut off = 0usize;
    for &c in cols {
        let mut buf = Vec::with_capacity(r * c);
        for row in 0..r {
            let base = row * total + off;
            buf.extend_from_slice(&data[base..base + c]);
        }
        out.push(Tensor::from_f32([r, c], buf)?);
        off += c;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_tensor::ops;

    #[test]
    fn fuse_kind_classifies_matmul_family() {
        assert_eq!(fuse_kind(&OpKind::MatMul), Some(FuseKind::RowsShared));
        assert_eq!(fuse_kind(&OpKind::MatMulBT), Some(FuseKind::RowsShared));
        assert_eq!(fuse_kind(&OpKind::AddBias), Some(FuseKind::RowsShared));
        assert_eq!(fuse_kind(&OpKind::Bilinear), Some(FuseKind::RowsShared));
        assert_eq!(fuse_kind(&OpKind::MatMulAT), Some(FuseKind::ColsShared));
        assert_eq!(fuse_kind(&OpKind::Add), None);
        assert_eq!(fuse_kind(&OpKind::Tanh), None);
        assert_eq!(fuse_kind(&OpKind::Identity), None);
    }

    #[test]
    fn plan_groups_preserves_first_occurrence_order() {
        // keys: a b a c b a  -> groups [0,2,5] [1,4] [3]
        let keys = [Some(1u64), Some(2), Some(1), Some(3), Some(2), Some(1)];
        let groups = plan_groups(&keys, 16);
        assert_eq!(groups, vec![vec![0, 2, 5], vec![1, 4], vec![3]]);
    }

    #[test]
    fn plan_groups_none_keys_are_singletons_in_place() {
        let keys = [Some(7u64), None, Some(7), None];
        let groups = plan_groups(&keys, 16);
        assert_eq!(groups, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn plan_groups_chunks_at_max_group() {
        let keys = [Some(1u64); 7];
        let groups = plan_groups(&keys, 3);
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3, 4, 5], vec![6]]);
        // max_group of zero is clamped to singletons, not a panic
        assert_eq!(plan_groups(&keys[..2], 0).len(), 2);
    }

    #[test]
    fn stack_rows_round_trips() {
        let a = Tensor::from_f32([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_f32([3], vec![7., 8., 9.]).unwrap(); // rank-1 = one row
        let (fused, rows) = stack_rows(&[&a, &b]).unwrap();
        assert_eq!(fused.shape().dims(), &[3, 3]);
        assert_eq!(rows, vec![2, 1]);
        let parts = split_rows(&fused, &rows).unwrap();
        assert_eq!(parts[0].f32s().unwrap(), a.f32s().unwrap());
        assert_eq!(parts[1].f32s().unwrap(), b.f32s().unwrap());
    }

    #[test]
    fn stack_rows_rejects_col_mismatch() {
        let a = Tensor::from_f32([1, 3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_f32([1, 2], vec![4., 5.]).unwrap();
        assert!(stack_rows(&[&a, &b]).is_err());
    }

    #[test]
    fn stack_cols_round_trips() {
        let a = Tensor::from_f32([2, 2], vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_f32([2, 1], vec![5., 6.]).unwrap();
        let (fused, cols) = stack_cols(&[&a, &b]).unwrap();
        assert_eq!(fused.shape().dims(), &[2, 3]);
        assert_eq!(fused.f32s().unwrap(), &[1., 2., 5., 3., 4., 6.]);
        let parts = split_cols(&fused, &cols).unwrap();
        assert_eq!(parts[0].f32s().unwrap(), a.f32s().unwrap());
        assert_eq!(parts[1].f32s().unwrap(), b.f32s().unwrap());
    }

    #[test]
    fn fused_matmul_matches_scalar_bitwise() {
        let w = Tensor::from_f32(
            [3, 2],
            (0..6).map(|i| i as f32 * 0.37 - 1.0).collect::<Vec<_>>(),
        )
        .unwrap();
        let xs: Vec<Tensor> = (0..4)
            .map(|s| {
                Tensor::from_f32(
                    [1, 3],
                    (0..3)
                        .map(|i| ((s * 3 + i) as f32).sin())
                        .collect::<Vec<_>>(),
                )
                .unwrap()
            })
            .collect();
        let scalar: Vec<Tensor> = xs.iter().map(|x| ops::matmul(x, &w).unwrap()).collect();
        let (fused, rows) = stack_rows(&xs.iter().collect::<Vec<_>>()).unwrap();
        let out = ops::matmul(&fused, &w).unwrap();
        let parts = split_rows(&out, &rows).unwrap();
        for (p, s) in parts.iter().zip(&scalar) {
            assert_eq!(
                p.f32s().unwrap(),
                s.f32s().unwrap(),
                "row-stacked matmul must be bit-exact"
            );
        }
    }

    #[test]
    fn fused_matmul_at_matches_scalar_bitwise() {
        let a =
            Tensor::from_f32([3, 2], (0..6).map(|i| (i as f32).cos()).collect::<Vec<_>>()).unwrap();
        let bs: Vec<Tensor> = (0..3)
            .map(|s| {
                Tensor::from_f32(
                    [3, 2],
                    (0..6)
                        .map(|i| ((s * 7 + i) as f32).sin())
                        .collect::<Vec<_>>(),
                )
                .unwrap()
            })
            .collect();
        let scalar: Vec<Tensor> = bs.iter().map(|b| ops::matmul_at(&a, b).unwrap()).collect();
        let (fused, cols) = stack_cols(&bs.iter().collect::<Vec<_>>()).unwrap();
        let out = ops::matmul_at(&a, &fused).unwrap();
        let parts = split_cols(&out, &cols).unwrap();
        for (p, s) in parts.iter().zip(&scalar) {
            assert_eq!(
                p.f32s().unwrap(),
                s.f32s().unwrap(),
                "col-stacked matmul_at must be bit-exact"
            );
        }
    }
}
