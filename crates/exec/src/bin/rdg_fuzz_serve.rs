//! `rdg_fuzz_serve` — seeded adversarial schedule fuzzing for the serving
//! stack, from the command line / CI.
//!
//! Runs one deterministic campaign of `rdg_exec::serve::fuzz` and prints
//! the report: the worst interactive p99 found, the search trajectory,
//! and any oracle violations. Minimized findings (the worst-case scenario
//! and every violation reproducer) are written as RON-style scripts to
//! the output directory, ready to be committed into
//! `crates/exec/tests/corpus/serve_schedules/`.
//!
//! Configuration is via environment (CI-friendly; no CLI parsing):
//!
//! | variable         | default | meaning                                  |
//! |------------------|---------|------------------------------------------|
//! | `RDG_FUZZ_SEED`  | 0xF4E7  | master seed (decimal or 0x-hex)          |
//! | `RDG_FUZZ_ITERS` | 2000    | mutation iterations                      |
//! | `RDG_FUZZ_OUT`   | unset   | directory for minimized finding scripts  |
//!
//! Exit status: 0 when every schedule tried kept the serving invariants,
//! 1 when a violation was found (the minimized reproducer is printed and,
//! with `RDG_FUZZ_OUT`, written to disk — commit it to the corpus so the
//! regression stays fixed).
//!
//! The campaign runs entirely on the virtual clock: wall time is a few
//! hundred milliseconds for the default 2000 iterations, independent of
//! the scripted service durations.

use rdg_exec::serve::fuzz::{run_campaign, FuzzConfig};
use std::path::Path;

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => {
            let v = v.trim();
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse::<u64>(),
            };
            parsed.unwrap_or_else(|_| {
                eprintln!("rdg_fuzz_serve: ignoring unparsable {name}={v:?}");
                default
            })
        }
        Err(_) => default,
    }
}

fn main() {
    let defaults = FuzzConfig::default();
    let config = FuzzConfig {
        seed: env_u64("RDG_FUZZ_SEED", defaults.seed),
        iters: env_u64("RDG_FUZZ_ITERS", defaults.iters as u64) as usize,
        ..defaults
    };
    println!(
        "rdg_fuzz_serve: campaign seed={:#x} iters={} pool={} workers={}",
        config.seed, config.iters, config.pool, config.workers
    );
    let report = run_campaign(&config);
    println!("{}", report.summary());
    for (iter, p99) in &report.improvements {
        println!(
            "  improvement @ iter {iter}: interactive p99 {:.3} ms",
            *p99 as f64 / 1e6
        );
    }
    println!(
        "worst-case scenario: {} events, expect_p99_ns={:?}",
        report.worst.events.len(),
        report.worst.expect_p99_ns
    );
    match &report.worst_shed {
        Some(sc) => println!(
            "max-shed scenario: {} events, expect_shed={:?}, expect_p99_ns={:?}",
            sc.events.len(),
            sc.expect_shed,
            sc.expect_p99_ns
        ),
        None => println!("max-shed scenario: none (no schedule tried ever shed)"),
    }

    let out_dir = std::env::var("RDG_FUZZ_OUT").ok();
    if let Some(dir) = &out_dir {
        let dir = Path::new(dir);
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("rdg_fuzz_serve: cannot create {}: {e}", dir.display());
            std::process::exit(2);
        }
        let mut findings = vec![&report.worst];
        if let Some(sc) = &report.worst_shed {
            findings.push(sc);
        }
        for sc in findings {
            let path = dir.join(format!("{}.ron", sc.name));
            if let Err(e) = std::fs::write(&path, sc.to_ron()) {
                eprintln!("rdg_fuzz_serve: cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
            println!("wrote {}", path.display());
        }
    }

    if report.violations.is_empty() {
        println!("oracles held on every schedule tried");
        return;
    }
    eprintln!(
        "rdg_fuzz_serve: {} ORACLE VIOLATION(S) — minimized reproducers follow",
        report.violations.len()
    );
    for (i, v) in report.violations.iter().enumerate() {
        eprintln!("--- violation {i}: {}", v.detail);
        let mut sc = v.scenario.clone();
        sc.name = format!("fuzz-violation-{:08x}-{i}", report.config.seed);
        eprintln!("{}", sc.to_ron());
        if let Some(dir) = &out_dir {
            let path = Path::new(dir).join(format!("{}.ron", sc.name));
            if let Err(e) = std::fs::write(&path, sc.to_ron()) {
                eprintln!("rdg_fuzz_serve: cannot write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
    }
    std::process::exit(1);
}
