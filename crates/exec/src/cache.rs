//! The concurrent backpropagation cache (paper §5, Figure 6).
//!
//! During the forward phase of training, every frame stores the activations
//! that gradients will need, keyed by `(graph, invocation path, node, port)`.
//! Multiple instances of the same operation — recursion! — insert
//! concurrently; the backward phase performs concurrent lookups. The paper
//! uses a concurrent hash table for exactly this reason and notes that a
//! queue or stack would mis-route values under nondeterministic scheduling.
//!
//! [`ShardedMap`] is a small clean-room concurrent hash map: fixed shard
//! array, each shard a `parking_lot::Mutex<HashMap>`. Shard selection uses
//! the key's hash, so disjoint paths rarely contend.
//!
//! [`CacheKey`]s embed a hash-consed [`PathKey`]: a backward frame
//! re-deriving its forward twin's path gets the *same* interned node back,
//! so bucket comparisons inside a probe are pointer compares and the key's
//! hash is a precomputed load — the cache stays cheap even when recursion
//! makes paths thousands of sites deep.

use crate::path::PathKey;
use parking_lot::Mutex;
use rdg_graph::{GraphRef, NodeId};
use rdg_tensor::{Shape, Tensor};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};

const N_SHARDS: usize = 32;

/// A sharded concurrent hash map.
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hasher: RandomState,
    inserts: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Clone> ShardedMap<K, V> {
    /// Creates an empty map with the default shard count.
    pub fn new() -> Self {
        ShardedMap {
            shards: (0..N_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            inserts: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, k: &K) -> usize {
        let mut h = self.hasher.build_hasher();
        k.hash(&mut h);
        (h.finish() as usize) % N_SHARDS
    }

    /// Inserts a value (overwriting silently; forward re-execution of the
    /// same (path, node) writes identical data).
    pub fn insert(&self, k: K, v: V) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let s = self.shard_of(&k);
        self.shards[s].lock().insert(k, v);
    }

    /// Clones the value for `k`, if present.
    pub fn get(&self, k: &K) -> Option<V> {
        let s = self.shard_of(k);
        let got = self.shards[s].lock().get(k).cloned();
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Removes all entries (between training steps).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().clear();
        }
    }

    /// Total number of entries (locks every shard; diagnostics only).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime counters: `(inserts, hits, misses)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.inserts.load(Ordering::Relaxed),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

/// Key of one cached forward value.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Which graph the node belongs to.
    pub gref: GraphRef,
    /// The invocation path of the frame that produced the value.
    pub path: PathKey,
    /// The producing node.
    pub node: NodeId,
    /// The producing port.
    pub port: u16,
}

/// The backprop cache: full values plus a lighter shape-only table.
///
/// Shape entries serve gradient kernels that only need a *shape witness*
/// (`FwdZeros`), so large intermediates — e.g. the `[N, d]` state matrix the
/// iterative baseline threads through its loop — are not retained just to
/// recover their dimensions.
#[derive(Default)]
pub struct BackpropCache {
    /// Full tensor values.
    pub values: ShardedMap<CacheKey, Tensor>,
    /// Shape-only entries.
    pub shapes: ShardedMap<CacheKey, Shape>,
}

impl BackpropCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all entries (called between training steps).
    pub fn clear(&self) {
        self.values.clear();
        self.shapes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_graph::{CallSiteId, SubGraphId};
    use std::sync::Arc;

    fn key(site: u32, node: u32) -> CacheKey {
        CacheKey {
            gref: GraphRef::Sub(SubGraphId(0)),
            path: PathKey::root().child(CallSiteId(site)),
            node: NodeId(node),
            port: 0,
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let c = BackpropCache::new();
        c.values.insert(key(1, 2), Tensor::scalar_f32(3.5));
        let got = c.values.get(&key(1, 2)).unwrap();
        assert_eq!(got.as_f32_scalar().unwrap(), 3.5);
        assert!(c.values.get(&key(1, 3)).is_none());
        assert!(c.values.get(&key(2, 2)).is_none());
    }

    #[test]
    fn distinct_paths_do_not_alias() {
        let c = BackpropCache::new();
        let base = PathKey::root();
        let k1 = CacheKey {
            gref: GraphRef::Main,
            path: base.child(CallSiteId(1)).child(CallSiteId(2)),
            node: NodeId(0),
            port: 0,
        };
        let k2 = CacheKey {
            gref: GraphRef::Main,
            path: base.child(CallSiteId(2)).child(CallSiteId(1)),
            node: NodeId(0),
            port: 0,
        };
        c.values.insert(k1.clone(), Tensor::scalar_f32(1.0));
        c.values.insert(k2.clone(), Tensor::scalar_f32(2.0));
        assert_eq!(c.values.get(&k1).unwrap().as_f32_scalar().unwrap(), 1.0);
        assert_eq!(c.values.get(&k2).unwrap().as_f32_scalar().unwrap(), 2.0);
    }

    #[test]
    fn clear_empties_both_tables() {
        let c = BackpropCache::new();
        c.values.insert(key(1, 1), Tensor::scalar_f32(0.0));
        c.shapes.insert(key(1, 1), Shape::matrix(2, 2));
        assert_eq!(c.values.len() + c.shapes.len(), 2);
        c.clear();
        assert!(c.values.is_empty());
        assert!(c.shapes.is_empty());
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        // The paper's Figure 6 scenario: many frames writing and reading
        // concurrently. Every thread must read back exactly what it wrote.
        let c = Arc::new(BackpropCache::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u32 {
                    let k = key(t * 1000 + i, i);
                    c.values
                        .insert(k.clone(), Tensor::scalar_f32((t * 1000 + i) as f32));
                    let v = c.values.get(&k).expect("own write visible");
                    assert_eq!(v.as_f32_scalar().unwrap(), (t * 1000 + i) as f32);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.values.len(), 8 * 200);
        let (ins, hits, misses) = c.values.counters();
        assert_eq!(ins, 1600);
        assert_eq!(hits, 1600);
        assert_eq!(misses, 0);
    }

    #[test]
    fn overwrite_is_silent() {
        let c = ShardedMap::<u32, u32>::new();
        c.insert(1, 10);
        c.insert(1, 20);
        assert_eq!(c.get(&1), Some(20));
        assert_eq!(c.len(), 1);
    }
}
