//! Runtime errors raised by the executor.

use rdg_graph::GraphError;
use rdg_tensor::TensorError;
use std::fmt;

/// Errors surfaced by graph execution.
#[derive(Debug, Clone)]
pub enum ExecError {
    /// A tensor kernel failed; carries graph context.
    Kernel {
        /// Graph name (main or SubGraph).
        graph: String,
        /// Node name.
        node: String,
        /// The underlying kernel error.
        source: TensorError,
    },
    /// Structural graph problem detected at run time.
    Graph(GraphError),
    /// The run was fed the wrong number (or dtype) of inputs.
    BadFeed {
        /// Description of the mismatch.
        msg: String,
    },
    /// A shared [`crate::ParamStore`] does not match the module's parameter
    /// specs (wrong count, dtype, or shape). Raised by
    /// `Session::with_params` *before* any run starts, so a mismatched
    /// store fails at session construction instead of inside a kernel.
    ParamMismatch {
        /// Description of the mismatch (includes the parameter name).
        msg: String,
    },
    /// Two training calls that clear the gradient store
    /// (`Session::run_training` / `Session::run_training_batch`) overlapped
    /// on one session. The second clearer is rejected deterministically
    /// instead of silently corrupting the shared `GradStore`
    /// mid-accumulation; inference calls are unrestricted.
    TrainingOverlap,
    /// A `FwdValue`/`FwdZeros` lookup missed the backprop cache.
    CacheMiss {
        /// Description with key context.
        msg: String,
    },
    /// The executor has shut down.
    Shutdown,
    /// The run was cancelled before it produced a result
    /// (see `RunHandle::cancel`).
    Cancelled,
    /// An optimizer update or host-side gradient transform failed.
    Optimizer {
        /// The underlying tensor-math error.
        source: TensorError,
    },
    /// A run output did not have the form the caller required (e.g. the
    /// scalar-loss convention of `Trainer`).
    Output {
        /// Description of the mismatch.
        msg: String,
    },
    /// Something impossible happened (internal invariant violation).
    Internal {
        /// Description.
        msg: String,
    },
}

impl ExecError {
    /// Internal-invariant error helper.
    pub fn internal(msg: impl fmt::Display) -> Self {
        ExecError::Internal {
            msg: msg.to_string(),
        }
    }

    /// Wraps a tensor-math failure from an optimizer or gradient transform.
    pub fn optimizer(source: TensorError) -> Self {
        ExecError::Optimizer { source }
    }

    /// Output-convention error helper.
    pub fn output(msg: impl fmt::Display) -> Self {
        ExecError::Output {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Kernel {
                graph,
                node,
                source,
            } => {
                write!(f, "kernel failure at {graph}/{node}: {source}")
            }
            ExecError::Graph(e) => write!(f, "graph error: {e}"),
            ExecError::BadFeed { msg } => write!(f, "bad feed: {msg}"),
            ExecError::ParamMismatch { msg } => {
                write!(f, "shared parameter store mismatch: {msg}")
            }
            ExecError::TrainingOverlap => write!(
                f,
                "overlapping training step: run_training/run_training_batch \
                 clear the shared GradStore at step start and must not \
                 overlap on one session"
            ),
            ExecError::CacheMiss { msg } => write!(f, "backprop cache miss: {msg}"),
            ExecError::Shutdown => write!(f, "executor has shut down"),
            ExecError::Cancelled => write!(f, "run was cancelled"),
            ExecError::Optimizer { source } => write!(f, "optimizer failure: {source}"),
            ExecError::Output { msg } => write!(f, "bad run output: {msg}"),
            ExecError::Internal { msg } => write!(f, "internal executor error: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Kernel { source, .. } => Some(source),
            ExecError::Optimizer { source } => Some(source),
            ExecError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ExecError {
    fn from(e: GraphError) -> Self {
        ExecError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = ExecError::Kernel {
            graph: "TreeLSTM".into(),
            node: "matmul_7".into(),
            source: TensorError::invalid("boom"),
        };
        let s = e.to_string();
        assert!(s.contains("TreeLSTM") && s.contains("matmul_7") && s.contains("boom"));
    }

    #[test]
    fn graph_errors_convert() {
        let ge = GraphError::invalid("x");
        let ee: ExecError = ge.into();
        assert!(matches!(ee, ExecError::Graph(_)));
    }
}
