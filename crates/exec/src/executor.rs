//! The parallel dataflow executor (paper §4.1, Figure 4).
//!
//! The execution model matches the paper's description of embedded-control-
//! flow frameworks:
//!
//! 1. A run submits the main graph as the **root frame**; nodes with no
//!    unresolved inputs enter the global ready queue.
//! 2. Idle **execution threads** dequeue operations and run their kernels;
//!    when an operation completes, the dependents whose inputs are now all
//!    resolved are enqueued behind the existing work (FIFO).
//! 3. When an **InvokeOp** is dequeued, its associated SubGraph "is passed
//!    to and processed by the master, similar to step (1)": a child frame is
//!    spawned and its source nodes join the *same* ready queue, served by
//!    the *same* workers. The InvokeOp itself completes when the child frame
//!    delivers its outputs — no thread ever blocks waiting, so recursion
//!    depth is bounded by memory, not by threads or stack.
//! 4. Frames form a **tree**, not a stack (paper §4.1.2 "graph execution
//!    stack"): each frame holds a parent link (its return location), and one
//!    frame can have many live children executing concurrently — that is
//!    where the parallel speedup on recursive models comes from.
//! 5. The runtime is **multi-run**: [`Executor::submit`] starts a run
//!    without blocking and returns a [`RunHandle`]; every run threads its
//!    own [`RunContext`] (feeds, result slot, grad/cache handles, stats,
//!    cancel state) through its frames, so any number of root frames — a
//!    training minibatch, a stream of serving requests — share one worker
//!    pool, and sibling parallelism extends across runs.
//!
//! # Hot-path design
//!
//! Recursion must not tax the common case (paper §4.1.2), so the invoke
//! path is engineered down to near plain-op cost:
//!
//! * **Frame-core pooling** — a frame's pending counters and value slots
//!   are recycled through a per-graph free list on the [`ExecutionPlan`],
//!   so activating a SubGraph in the steady state allocates nothing but
//!   the `Frame` header itself.
//! * **Prelude publishing** — `Input` and `Const` nodes are resolved
//!   *while the frame spawns* (the plan precomputed them), so a typical
//!   invocation schedules only real operations through the queue.
//! * **Call continuations** — when spawning a child frame (or completing
//!   one) leaves exactly one operation runnable, the worker keeps executing
//!   it directly instead of taking a queue round-trip. Plain operations
//!   inside a frame still travel through the shared FIFO queue, preserving
//!   the paper's scheduling for sibling parallelism; only the call/return
//!   edges — where the old design paid ~2 extra queue cycles per invoke —
//!   are short-circuited. Continuations run in the worker's loop, not on
//!   its call stack, so tail recursion thousands of frames deep is safe.
//! * **Batched queue transfer** — waves of newly-ready operations are
//!   pushed (and popped) under one lock acquisition via
//!   [`ReadyQueue::push_batch`] / [`ReadyQueue::pop_batch`].

use crate::batch::{self, FuseKind, GroupKey};
use crate::cache::{BackpropCache, CacheKey};
use crate::error::ExecError;
use crate::kernel::{self, KernelCtx};
use crate::params::{GradStore, ParamStore};
use crate::path::PathKey;
use crate::plan::{ExecutionPlan, ModulePlan, PreludeValue};
use crate::queue::{ReadyQueue, SchedulerKind};
use crate::stats::{ExecStats, StatsSnapshot};
use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use rdg_graph::{GraphRef, NodeId, OpKind, PortRef};
use rdg_tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How many tasks a worker drains from the ready queue per lock round-trip.
const TASK_BATCH: usize = 8;

/// Drain size when cross-request fusion is on. Wider pops see more
/// concurrent frames at once, which is what creates fusable groups: the
/// serving dispatcher's wave interleaves N requests' identical graph nodes
/// through the FIFO queue in rough lockstep.
const FUSED_TASK_BATCH: usize = 32;

/// Continuation-chain length after which a worker releases any tasks still
/// claimed in its local batch back to the shared queue. Bounds how long a
/// deep call/return chain can starve claimed-but-unstarted siblings while
/// other workers idle, without taxing the short chains that dominate
/// fan-out workloads.
const CONT_RELEASE_AFTER: u32 = 64;

/// How many recycled frame cores each graph's plan may cache.
const CORE_POOL_CAP: usize = 64;

/// A node's published outputs. The single-output case — almost every node —
/// stays inline, so publishing does not allocate.
enum Outs {
    /// Not produced yet.
    Pending,
    /// One output port (`None` once moved out by its last reader).
    One(Option<Tensor>),
    /// Multi-output nodes fall back to a boxed slice.
    Many(Box<[Option<Tensor>]>),
}

/// One output slot: values plus the number of reads still expected.
///
/// The counter implements consumer refcounting: the final read *moves* the
/// tensor out instead of cloning, which is what lets copy-on-write kernels
/// downstream mutate buffers in place.
pub(crate) struct SlotInner {
    outs: Outs,
    takes_left: i64,
}

/// The reusable allocation behind one frame: pending counters and value
/// slots, both sized by the graph's plan.
pub(crate) struct FrameCore {
    pending: Box<[AtomicU32]>,
    slots: Box<[Mutex<SlotInner>]>,
}

impl Default for FrameCore {
    fn default() -> Self {
        FrameCore {
            pending: Box::new([]),
            slots: Box::new([]),
        }
    }
}

impl FrameCore {
    /// Builds a fresh core sized and seeded from `plan`.
    fn fresh(plan: &ExecutionPlan) -> Self {
        FrameCore {
            pending: plan.pending.iter().map(|&c| AtomicU32::new(c)).collect(),
            slots: plan
                .fetch_counts
                .iter()
                .map(|&fc| {
                    Mutex::new(SlotInner {
                        outs: Outs::Pending,
                        takes_left: fc as i64,
                    })
                })
                .collect(),
        }
    }

    /// Re-seeds a recycled core from `plan` (same graph, so same sizes).
    fn reset(&mut self, plan: &ExecutionPlan) {
        for (p, &c) in self.pending.iter().zip(plan.pending.iter()) {
            p.store(c, Ordering::Relaxed);
        }
        for (s, &fc) in self.slots.iter_mut().zip(plan.fetch_counts.iter()) {
            let inner = s.get_mut();
            inner.outs = Outs::Pending;
            inner.takes_left = fc as i64;
        }
    }
}

/// A free list of [`FrameCore`]s for one graph, owned by its plan.
#[derive(Default)]
pub(crate) struct CorePool(Mutex<Vec<FrameCore>>);

impl CorePool {
    /// Pops and re-seeds a recycled core, or builds a fresh one.
    fn acquire(&self, plan: &ExecutionPlan) -> FrameCore {
        let recycled = self.0.lock().pop();
        match recycled {
            Some(mut core) => {
                core.reset(plan);
                core
            }
            None => FrameCore::fresh(plan),
        }
    }

    /// Returns a core to the free list (bounded; extras are dropped).
    ///
    /// Slots are cleared *before* pooling so a recycled core never pins the
    /// previous activation's tensors (published-but-unread values survive a
    /// failed or cancelled run) while it sits idle in the free list.
    fn recycle(&self, mut core: FrameCore) {
        if core.pending.is_empty() && core.slots.is_empty() {
            return; // the empty default left behind by `Frame::drop`
        }
        for s in core.slots.iter_mut() {
            s.get_mut().outs = Outs::Pending;
        }
        let mut pool = self.0.lock();
        if pool.len() < CORE_POOL_CAP {
            pool.push(core);
        }
    }
}

/// Link from a child frame back to the Invoke/Cond node awaiting its result.
struct ParentLink {
    frame: Arc<Frame>,
    node: NodeId,
}

/// One activation of a graph: the paper's unit of (recursive) execution.
pub struct Frame {
    run: Arc<RunContext>,
    gref: GraphRef,
    path: PathKey,
    depth: u32,
    args: Vec<Tensor>,
    core: FrameCore,
    nodes_left: AtomicUsize,
    parent: Option<ParentLink>,
}

impl Drop for Frame {
    fn drop(&mut self) {
        let core = std::mem::take(&mut self.core);
        self.run.plan.plan(self.gref).pool.recycle(core);
        // Tear down an exclusively-owned ancestor chain iteratively. When a
        // deep run is cancelled mid-recursion, each parent's only remaining
        // reference is its child's `ParentLink`; letting the default drop
        // glue unwind that chain would recurse once per frame and overflow
        // the worker stack at the depths tail recursion reaches (20 000+).
        let mut link = self.parent.take();
        while let Some(l) = link {
            match Arc::try_unwrap(l.frame) {
                Ok(mut parent) => {
                    // Steal the grandparent first so dropping `parent` at
                    // the end of this iteration cannot recurse.
                    link = parent.parent.take();
                }
                Err(_) => break, // other holders remain; they clean up later
            }
        }
    }
}

/// A schedulable unit: one node of one frame.
pub struct Task {
    frame: Arc<Frame>,
    node: NodeId,
}

/// Shared state of one submitted run — the per-run half of the runtime.
///
/// Everything scoped to a single root frame lives here and is threaded
/// through that frame's tree: the module plan and parameters the run
/// executes against, the optional gradient/cache handles (training runs),
/// the output slot (`done_tx`), the error/cancel flags, and the run's own
/// [`ExecStats`]. Because tasks carry an `Arc<RunContext>`, any number of
/// root frames can be in flight on one worker pool without sharing any
/// mutable per-run state.
pub struct RunContext {
    plan: Arc<ModulePlan>,
    params: Arc<ParamStore>,
    grads: Option<Arc<GradStore>>,
    cache: Option<Arc<BackpropCache>>,
    finished: AtomicBool,
    cancelled: AtomicBool,
    done_tx: Sender<Result<Vec<Tensor>, ExecError>>,
    queue: Arc<ReadyQueue<Task>>,
    /// This run's private counters (exposed via [`RunHandle::stats`]).
    run_stats: Arc<ExecStats>,
    /// The owning executor's lifetime aggregate (absorbs `run_stats` at
    /// completion; also carries the kernel-profiling switch).
    exec_stats: Arc<ExecStats>,
    /// Snapshot of what the completion-time absorb folded into
    /// `exec_stats`, so the teardown fold in `Drop` takes only the
    /// straggler delta (`None` until the run delivers a result).
    absorbed: Mutex<Option<StatsSnapshot>>,
}

impl RunContext {
    fn fail(&self, e: ExecError) {
        self.cancelled.store(true, Ordering::Release);
        if !self.finished.swap(true, Ordering::AcqRel) {
            *self.absorbed.lock() = Some(self.exec_stats.absorb(&self.run_stats));
            let _ = self.done_tx.send(Err(e));
        }
    }

    fn finish_ok(&self, outs: Vec<Tensor>) {
        if !self.finished.swap(true, Ordering::AcqRel) {
            // Fold per-run counters into the lifetime aggregate *before*
            // publishing the result, so a caller that reads executor stats
            // right after `wait()` returns sees this run included. A failed
            // run's straggler tasks may still increment afterwards; the
            // `Drop` fold below picks up that delta at frame teardown.
            *self.absorbed.lock() = Some(self.exec_stats.absorb(&self.run_stats));
            let _ = self.done_tx.send(Ok(outs));
        }
    }

    fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

impl Drop for RunContext {
    /// Final frame teardown: every task holds its frame and every frame
    /// holds this context, so when the context drops no increment can
    /// follow — fold whatever accumulated past the completion-time absorb
    /// (straggler tasks of a failed/cancelled run draining after the error
    /// was reported, including their `cancelled_tasks` counts) into the
    /// executor-lifetime aggregate. A run that never delivered a result
    /// (e.g. its queue was torn down) folds in full here.
    fn drop(&mut self) {
        let base = self.absorbed.get_mut().take().unwrap_or_default();
        self.exec_stats.absorb_since(&self.run_stats, &base);
    }
}

/// A handle to an in-flight run submitted with [`Executor::submit`].
///
/// Dropping the handle does **not** cancel the run — it keeps executing
/// (and, for training runs, keeps accumulating gradients) detached; call
/// [`RunHandle::cancel`] first for a prompt teardown.
///
/// The handle keeps the executor (and so its worker pool) alive: a run can
/// outlive the `Session` — and even the last user-held `Arc<Executor>` —
/// that launched it, and [`RunHandle::wait`] still completes.
pub struct RunHandle {
    ctx: Arc<RunContext>,
    done_rx: Receiver<Result<Vec<Tensor>, ExecError>>,
    /// Keeps the worker pool running until the handle is resolved/dropped.
    _exec: Arc<Executor>,
}

impl RunHandle {
    /// Blocks until the run completes and returns its outputs.
    pub fn wait(self) -> Result<Vec<Tensor>, ExecError> {
        self.done_rx
            .recv()
            .map_err(|_| ExecError::internal("run channel closed without a result"))?
    }

    /// This run's private statistics.
    ///
    /// The counters are live while the run executes and final once
    /// [`RunHandle::wait`] has returned a success. After a failure or
    /// [`RunHandle::cancel`], the run's stray in-flight tasks may still be
    /// draining briefly, so late increments can trickle in; those
    /// stragglers are folded into the executor-lifetime aggregate when the
    /// run's last frame tears down, so `Executor::stats` eventually counts
    /// every task (`cancelled_tasks` included) exactly once. Clone the
    /// `Arc` out before calling `wait` (which consumes the handle) to
    /// inspect the counters afterwards; once the `Arc`'s only holders are
    /// external (strong count from the runtime reaches zero), the counters
    /// are final and fully folded.
    pub fn stats(&self) -> &Arc<ExecStats> {
        &self.ctx.run_stats
    }

    /// Requests cancellation: in-flight tasks drain without executing and
    /// [`RunHandle::wait`] returns [`ExecError::Cancelled`].
    ///
    /// A run that already finished keeps its original result.
    pub fn cancel(&self) {
        self.ctx.fail(ExecError::Cancelled);
    }

    /// Whether the run has delivered a result (ok, error, or cancelled).
    pub fn is_finished(&self) -> bool {
        self.ctx.finished.load(Ordering::Acquire)
    }
}

/// Runtime switch for cross-request batch fusion, shared with every worker.
///
/// Off by default so a bare [`Executor::run`] takes the scalar path
/// byte-for-byte; the serving stack turns it on at dispatcher start
/// (`ServeConfig::cross_request_batching`).
struct FusionCtl {
    enabled: AtomicBool,
    max_group: AtomicUsize,
}

/// The shared worker pool plus its ready queue.
///
/// One executor serves any number of concurrent runs and sessions, exactly
/// like a framework runtime: tasks carry their run state with them.
pub struct Executor {
    queue: Arc<ReadyQueue<Task>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ExecStats>,
    fusion: Arc<FusionCtl>,
    n_threads: usize,
}

impl Executor {
    /// Spawns `n_threads` execution threads with the given scheduler.
    pub fn new(n_threads: usize, kind: SchedulerKind) -> Arc<Self> {
        let n_threads = n_threads.max(1);
        let queue = Arc::new(ReadyQueue::new(kind));
        let stats = Arc::new(ExecStats::new());
        let fusion = Arc::new(FusionCtl {
            enabled: AtomicBool::new(false),
            max_group: AtomicUsize::new(batch::DEFAULT_MAX_GROUP),
        });
        let workers = (0..n_threads)
            .map(|i| {
                let q = Arc::clone(&queue);
                let fusion = Arc::clone(&fusion);
                std::thread::Builder::new()
                    .name(format!("rdg-worker-{i}"))
                    .spawn(move || {
                        let mut batch: Vec<Task> = Vec::with_capacity(FUSED_TASK_BATCH);
                        loop {
                            let fuse = fusion.enabled.load(Ordering::Relaxed);
                            let take = if fuse { FUSED_TASK_BATCH } else { TASK_BATCH };
                            if !q.pop_batch(&mut batch, take) {
                                break;
                            }
                            if fuse {
                                let max_group = fusion.max_group.load(Ordering::Relaxed);
                                run_batch_fused(&mut batch, max_group);
                                continue;
                            }
                            // Pop from the back = FIFO order within the batch.
                            batch.reverse();
                            while let Some(task) = batch.pop() {
                                let mut next = execute_task(task);
                                let mut chain = 0u32;
                                while let Some(t) = next {
                                    t.frame
                                        .run
                                        .run_stats
                                        .continuations
                                        .fetch_add(1, Ordering::Relaxed);
                                    chain += 1;
                                    if chain == CONT_RELEASE_AFTER && !batch.is_empty() {
                                        // This chain has proven long (it can
                                        // run as long as the recursion is
                                        // deep); claimed-but-unstarted
                                        // siblings must not wait it out in
                                        // this worker's private buffer while
                                        // other workers idle. Hand them back.
                                        // Short chains — the common case —
                                        // never reach this and pay nothing.
                                        batch.reverse();
                                        for t2 in batch.drain(..) {
                                            let d = t2.frame.depth as u64;
                                            q.push(d, t2);
                                        }
                                    }
                                    next = execute_task(t);
                                }
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Arc::new(Executor {
            queue,
            workers,
            stats,
            fusion,
            n_threads,
        })
    }

    /// Turns cross-request batch fusion on or off for this executor's
    /// workers and sets the fused-group size clamp.
    ///
    /// Fusion is **off** by default: a bare [`Executor::run`] executes the
    /// scalar path byte-for-byte. The serving dispatcher enables it when
    /// `ServeConfig::cross_request_batching` is set. The switch is safe to
    /// flip at any time — it only changes how workers drain the ready
    /// queue, never what a task computes.
    pub fn set_cross_request_fusion(&self, enabled: bool, max_group: usize) {
        self.fusion
            .max_group
            .store(max_group.max(1), Ordering::Relaxed);
        self.fusion.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether cross-request batch fusion is currently enabled.
    pub fn cross_request_fusion(&self) -> bool {
        self.fusion.enabled.load(Ordering::Relaxed)
    }

    /// FIFO executor with `n_threads` workers.
    pub fn with_threads(n_threads: usize) -> Arc<Self> {
        Self::new(n_threads, SchedulerKind::Fifo)
    }

    /// Number of execution threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &Arc<ExecStats> {
        &self.stats
    }

    /// Runs a planned module to completion (blocking).
    ///
    /// `feeds` are the main graph's inputs, positionally. Training runs pass
    /// `grads` and `cache`; inference runs pass `None` for both.
    pub fn run(
        self: &Arc<Self>,
        plan: &Arc<ModulePlan>,
        params: &Arc<ParamStore>,
        feeds: Vec<Tensor>,
        grads: Option<Arc<GradStore>>,
        cache: Option<Arc<BackpropCache>>,
    ) -> Result<Vec<Tensor>, ExecError> {
        self.submit(plan, params, feeds, grads, cache)?.wait()
    }

    /// Submits a run without blocking and returns its [`RunHandle`].
    ///
    /// Any number of runs may be in flight concurrently on one executor;
    /// their root frames all feed the same worker pool, so sibling
    /// parallelism extends across runs exactly as it does across the
    /// recursive calls inside one run. Feed validation happens here, so a
    /// malformed request fails fast without touching the queue.
    pub fn submit(
        self: &Arc<Self>,
        plan: &Arc<ModulePlan>,
        params: &Arc<ParamStore>,
        feeds: Vec<Tensor>,
        grads: Option<Arc<GradStore>>,
        cache: Option<Arc<BackpropCache>>,
    ) -> Result<RunHandle, ExecError> {
        let main = &plan.module.main;
        if feeds.len() != main.input_nodes.len() {
            return Err(ExecError::BadFeed {
                msg: format!(
                    "main graph has {} inputs, {} fed",
                    main.input_nodes.len(),
                    feeds.len()
                ),
            });
        }
        for (i, (&nid, t)) in main.input_nodes.iter().zip(feeds.iter()).enumerate() {
            let want = main.out_dtypes[nid.0 as usize][0];
            if t.dtype() != want {
                return Err(ExecError::BadFeed {
                    msg: format!("input {i} expects {want}, fed {}", t.dtype()),
                });
            }
        }
        let (done_tx, done_rx) = bounded(1);
        let run = Arc::new(RunContext {
            plan: Arc::clone(plan),
            params: Arc::clone(params),
            grads,
            cache,
            finished: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            done_tx,
            queue: Arc::clone(&self.queue),
            run_stats: Arc::new(ExecStats::new()),
            exec_stats: Arc::clone(&self.stats),
            absorbed: Mutex::new(None),
        });
        if let Some(t) = spawn_frame(&run, GraphRef::Main, PathKey::root(), feeds, None, 0) {
            self.queue.push(0, t);
        }
        Ok(RunHandle {
            ctx: run,
            done_rx,
            _exec: Arc::clone(self),
        })
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.queue.stop(self.workers.len());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Spawns a frame: publishes its prelude (inputs and constants) inline and
/// enqueues the remaining source nodes.
///
/// Returns at most one **continuation** — a task made runnable by the
/// prelude that the calling worker should execute next instead of paying a
/// queue round-trip. Any further runnable tasks are enqueued normally.
fn spawn_frame(
    run: &Arc<RunContext>,
    gref: GraphRef,
    path: PathKey,
    args: Vec<Tensor>,
    parent: Option<ParentLink>,
    depth: u32,
) -> Option<Task> {
    let plan = run.plan.plan(gref);
    run.run_stats.frames_spawned.fetch_add(1, Ordering::Relaxed);
    run.run_stats.observe_depth(depth as u64);
    if plan.is_empty() {
        // Degenerate empty graph: deliver empty outputs immediately.
        return match parent {
            None => {
                run.finish_ok(Vec::new());
                None
            }
            Some(link) => finish_node(run, link.frame, link.node, Vec::new(), true),
        };
    }
    let frame = Arc::new(Frame {
        run: Arc::clone(run),
        gref,
        path,
        depth,
        args,
        core: plan.pool.acquire(plan),
        nodes_left: AtomicUsize::new(plan.len()),
        parent,
    });
    let mut cont: Option<Task> = None;
    // Prelude: values known at spawn time are published without dispatch.
    if !plan.prelude.is_empty() {
        run.run_stats
            .ops_executed
            .fetch_add(plan.prelude.len() as u64, Ordering::Relaxed);
        run.run_stats
            .prelude_published
            .fetch_add(plan.prelude.len() as u64, Ordering::Relaxed);
        for entry in &plan.prelude {
            let out = match &entry.value {
                PreludeValue::Arg { index, dtype } => match frame.args.get(*index) {
                    Some(t) if t.dtype() == *dtype => t.clone(),
                    got => {
                        let source = match got {
                            Some(t) => rdg_tensor::TensorError::DTypeMismatch {
                                expected: *dtype,
                                got: t.dtype(),
                                ctx: "Input",
                            },
                            None => rdg_tensor::TensorError::invalid(format!(
                                "frame has no argument {index}"
                            )),
                        };
                        run.fail(ExecError::Kernel {
                            graph: run.plan.module.graph_name(frame.gref),
                            node: run
                                .plan
                                .module
                                .graph(frame.gref)
                                .node(entry.node)
                                .name
                                .clone(),
                            source,
                        });
                        return None;
                    }
                },
                PreludeValue::Const(t) => t.clone(),
            };
            match finish_node(run, Arc::clone(&frame), entry.node, vec![out], true) {
                Some(t) if cont.is_none() => cont = Some(t),
                Some(t) => run.queue.push(depth as u64, t),
                None => {}
            }
        }
    }
    // Everything else waits on the shared queue, pushed as one wave.
    match plan.queued_sources.len() {
        0 => {}
        1 => run.queue.push(
            depth as u64,
            Task {
                frame: Arc::clone(&frame),
                node: plan.queued_sources[0],
            },
        ),
        _ => run.queue.push_batch(
            depth as u64,
            plan.queued_sources.iter().map(|&s| Task {
                frame: Arc::clone(&frame),
                node: s,
            }),
        ),
    }
    cont
}

/// Reads one input port, implementing last-reader-takes semantics.
fn fetch(frame: &Frame, p: PortRef) -> Result<Tensor, ExecError> {
    let mut guard = frame.core.slots[p.node.0 as usize].lock();
    let inner = &mut *guard;
    if matches!(inner.outs, Outs::Pending) {
        return Err(ExecError::internal(format!(
            "value of {p} read before it was produced"
        )));
    }
    inner.takes_left -= 1;
    let port = p.port as usize;
    let got = if inner.takes_left <= 0 {
        // Last reader: move the tensor out (enables in-place reuse).
        match std::mem::replace(&mut inner.outs, Outs::Pending) {
            Outs::One(t) if port == 0 => t,
            Outs::One(_) => None,
            Outs::Many(mut v) => v.get_mut(port).and_then(Option::take),
            Outs::Pending => unreachable!("checked above"),
        }
    } else {
        match &inner.outs {
            Outs::One(t) if port == 0 => t.clone(),
            Outs::One(_) => None,
            Outs::Many(v) => v.get(port).cloned().flatten(),
            Outs::Pending => unreachable!("checked above"),
        }
    };
    got.ok_or_else(|| ExecError::internal(format!("port {p} missing or taken twice")))
}

/// Executes one scheduled node; may return a continuation task the worker
/// should run next (see the module docs on call continuations).
fn execute_task(task: Task) -> Option<Task> {
    let Task { frame, node } = task;
    let run = Arc::clone(&frame.run);
    if run.cancelled() {
        // Counted on the run's own stats only; the straggler delta past the
        // completion-time absorb reaches the lifetime aggregate exactly
        // once, in `RunContext::drop` at final frame teardown.
        run.run_stats
            .cancelled_tasks
            .fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let graph = run.plan.module.graph(frame.gref);
    let n = graph.node(node);

    let mut inputs = Vec::with_capacity(n.inputs.len());
    for &p in &n.inputs {
        match fetch(&frame, p) {
            Ok(t) => inputs.push(t),
            Err(e) => {
                run.fail(e);
                return None;
            }
        }
    }
    run.run_stats.ops_executed.fetch_add(1, Ordering::Relaxed);

    match &n.op {
        OpKind::Invoke { sub, site, .. } => {
            let child_path = frame.path.child(*site);
            let depth = frame.depth + 1;
            let link = ParentLink {
                frame: Arc::clone(&frame),
                node,
            };
            spawn_frame(
                &run,
                GraphRef::Sub(*sub),
                child_path,
                inputs,
                Some(link),
                depth,
            )
        }
        OpKind::Cond {
            sub_then,
            sub_else,
            site_then,
            site_else,
            n_then_in,
            ..
        } => {
            let pred = match inputs[0].as_i32_scalar() {
                Ok(v) => v,
                Err(e) => {
                    run.fail(ExecError::Kernel {
                        graph: run.plan.module.graph_name(frame.gref),
                        node: n.name.clone(),
                        source: e,
                    });
                    return None;
                }
            };
            let mut rest = inputs.split_off(1);
            let else_args = rest.split_off(*n_then_in as usize);
            let (sub, site, args) = if pred != 0 {
                (*sub_then, *site_then, rest)
            } else {
                (*sub_else, *site_else, else_args)
            };
            let child_path = frame.path.child(site);
            let depth = frame.depth + 1;
            let link = ParentLink {
                frame: Arc::clone(&frame),
                node,
            };
            spawn_frame(
                &run,
                GraphRef::Sub(sub),
                child_path,
                args,
                Some(link),
                depth,
            )
        }
        OpKind::FwdValue { of } => {
            let out = read_fwd(&run, &frame, *of, false);
            match out {
                Ok(t) => finish_node(&run, frame, node, vec![t], false),
                Err(e) => {
                    run.fail(e);
                    None
                }
            }
        }
        OpKind::FwdZeros { of } => {
            let out = read_fwd(&run, &frame, *of, true);
            match out {
                Ok(t) => finish_node(&run, frame, node, vec![t], false),
                Err(e) => {
                    run.fail(e);
                    None
                }
            }
        }
        op => {
            // Fusion-eligibility denominator: ticked for every batchable
            // node regardless of whether a partner was available, so the
            // fused fraction compares like against like in scalar A/B runs.
            if run.plan.plan(frame.gref).fuse[node.0 as usize].is_some() {
                run.run_stats.fusable_seen.fetch_add(1, Ordering::Relaxed);
            }
            let kctx = KernelCtx {
                args: &frame.args,
                params: &run.params,
                grads: run.grads.as_deref(),
                stats: &run.run_stats,
            };
            // Profiling is an executor-lifetime concern (the switch and the
            // sample table live on the aggregate), not a per-run counter.
            let result = if run.exec_stats.profiling() {
                let t0 = std::time::Instant::now();
                let r = kernel::execute(op, inputs, &kctx);
                run.exec_stats.record_kernel(op.mnemonic(), t0.elapsed());
                r
            } else {
                kernel::execute(op, inputs, &kctx)
            };
            match result {
                Ok(outs) => finish_node(&run, frame, node, outs, false),
                Err(e) => {
                    run.fail(ExecError::Kernel {
                        graph: run.plan.module.graph_name(frame.gref),
                        node: n.name.clone(),
                        source: e,
                    });
                    None
                }
            }
        }
    }
}

/// The static fusion identity of one ready task: `Some` iff its node is
/// batchable per the plan's precomputed `fuse` metadata. Same key ⇒ same
/// compiled plan object, graph, and node — hence same op and param wiring.
fn group_key(t: &Task) -> Option<GroupKey> {
    let plan = &t.frame.run.plan;
    plan.plan(t.frame.gref).fuse[t.node.0 as usize]?;
    Some(GroupKey {
        plan: Arc::as_ptr(plan) as usize,
        gref: t.frame.gref,
        node: t.node,
    })
}

/// Fused drain of one popped batch: the worker's group-execute entry point.
///
/// Rounds: group the claimed tasks with [`batch::plan_groups`], execute
/// singletons through the unchanged scalar path and groups through one
/// stacked kernel call each, then feed all continuations into the next
/// round — so same-request sibling nodes made ready together can fuse too.
/// Every claimed task executes within its round; nothing is parked.
fn run_batch_fused(batch: &mut Vec<Task>, max_group: usize) {
    let mut round: Vec<Task> = batch.drain(..).collect();
    let mut pending: Vec<Task> = Vec::new();
    while !round.is_empty() {
        let keys: Vec<Option<GroupKey>> = round.iter().map(group_key).collect();
        let groups = batch::plan_groups(&keys, max_group);
        let mut slots: Vec<Option<Task>> = round.drain(..).map(Some).collect();
        for g in groups {
            if g.len() == 1 {
                let t = slots[g[0]].take().expect("group indices are disjoint");
                if let Some(next) = execute_task(t) {
                    next.frame
                        .run
                        .run_stats
                        .continuations
                        .fetch_add(1, Ordering::Relaxed);
                    pending.push(next);
                }
            } else {
                let members: Vec<Task> = g
                    .iter()
                    .map(|&i| slots[i].take().expect("group indices are disjoint"))
                    .collect();
                execute_group(members, &mut pending);
            }
        }
        std::mem::swap(&mut round, &mut pending);
    }
}

/// A claimed task whose inputs have already been fetched.
struct Fetched {
    task: Task,
    inputs: Vec<Tensor>,
}

/// Runtime fusion signature, checked after fetch: members may share one
/// stacked kernel call only when their shared operand is the *same buffer*
/// with the same view (parameter reads from one store clone the `Arc`, so
/// this is a pointer compare) and their stacked operands agree on the
/// non-stacked dimension.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Sig {
    shared_ptr: usize,
    shared_rank: usize,
    shared_dims: [usize; 3],
    lane: usize,
}

fn buf_ptr(t: &Tensor) -> usize {
    match t.buffer() {
        rdg_tensor::Buffer::F32(a) => Arc::as_ptr(a) as usize,
        rdg_tensor::Buffer::I32(a) => Arc::as_ptr(a) as usize,
    }
}

fn sig_of(kind: FuseKind, stacked: &Tensor, shared: &Tensor) -> Option<Sig> {
    if !matches!(stacked.buffer(), rdg_tensor::Buffer::F32(_)) {
        return None;
    }
    let (r, c) = stacked.shape().as_matrix()?;
    let lane = match kind {
        FuseKind::RowsShared => c,
        FuseKind::ColsShared => r,
    };
    let dims = shared.shape().dims();
    if dims.len() > 3 {
        return None;
    }
    let mut shared_dims = [usize::MAX; 3];
    shared_dims[..dims.len()].copy_from_slice(dims);
    Some(Sig {
        shared_ptr: buf_ptr(shared),
        shared_rank: dims.len(),
        shared_dims,
        lane,
    })
}

/// Executes one claimed task whose inputs are already fetched: the scalar
/// tail of the fused path, used for validation fallbacks, singleton
/// subgroups, and per-member isolation after a fused kernel error. Runs the
/// identical `kernel::execute` + `finish_node` sequence as `execute_task`.
fn execute_fetched(task: Task, inputs: Vec<Tensor>, pending: &mut Vec<Task>) {
    let Task { frame, node } = task;
    let run = Arc::clone(&frame.run);
    let n = run.plan.module.graph(frame.gref).node(node);
    let kctx = KernelCtx {
        args: &frame.args,
        params: &run.params,
        grads: run.grads.as_deref(),
        stats: &run.run_stats,
    };
    match kernel::execute(&n.op, inputs, &kctx) {
        Ok(outs) => {
            if let Some(next) = finish_node(&run, frame, node, outs, false) {
                next.frame
                    .run
                    .run_stats
                    .continuations
                    .fetch_add(1, Ordering::Relaxed);
                pending.push(next);
            }
        }
        Err(e) => {
            run.fail(ExecError::Kernel {
                graph: run.plan.module.graph_name(frame.gref),
                node: n.name.clone(),
                source: e,
            });
        }
    }
}

/// Executes a same-node group of tasks, fusing as many members as the
/// runtime signatures allow into single stacked kernel calls.
///
/// All members share `(plan, gref, node)`, so op and graph metadata come
/// from the first member. Per-request semantics are fully preserved:
/// cancellation and fetch errors are handled per member before stacking,
/// and a fused kernel error falls back to per-member scalar execution so a
/// failing instance fails only its own run.
fn execute_group(members: Vec<Task>, pending: &mut Vec<Task>) {
    let (op, in_ports, kind) = {
        let f0 = &members[0].frame;
        let g = f0.run.plan.module.graph(f0.gref);
        let n = g.node(members[0].node);
        let kind = f0.run.plan.plan(f0.gref).fuse[members[0].node.0 as usize]
            .expect("grouped tasks are batchable by construction");
        (n.op.clone(), n.inputs.clone(), kind)
    };
    let (stack_idx, shared_idx) = match kind {
        FuseKind::RowsShared => (0usize, 1usize),
        FuseKind::ColsShared => (1, 0),
    };

    let mut fetched: Vec<Fetched> = Vec::with_capacity(members.len());
    for task in members {
        let run = Arc::clone(&task.frame.run);
        if run.cancelled() {
            run.run_stats
                .cancelled_tasks
                .fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let mut inputs = Vec::with_capacity(in_ports.len());
        let mut ok = true;
        for &p in &in_ports {
            match fetch(&task.frame, p) {
                Ok(t) => inputs.push(t),
                Err(e) => {
                    run.fail(e);
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        run.run_stats.ops_executed.fetch_add(1, Ordering::Relaxed);
        run.run_stats.fusable_seen.fetch_add(1, Ordering::Relaxed);
        fetched.push(Fetched { task, inputs });
    }
    if fetched.is_empty() {
        return;
    }

    let sigs: Vec<Option<Sig>> = fetched
        .iter()
        .map(|m| sig_of(kind, &m.inputs[stack_idx], &m.inputs[shared_idx]))
        .collect();
    let subgroups = batch::plan_groups(&sigs, usize::MAX);
    let mut slots: Vec<Option<Fetched>> = fetched.into_iter().map(Some).collect();
    for sub in subgroups {
        if sub.len() == 1 {
            let m = slots[sub[0]].take().expect("subgroup indices are disjoint");
            execute_fetched(m.task, m.inputs, pending);
            continue;
        }
        let group: Vec<Fetched> = sub
            .iter()
            .map(|&i| slots[i].take().expect("subgroup indices are disjoint"))
            .collect();
        execute_fused_subgroup(&op, kind, group, stack_idx, shared_idx, pending);
    }
}

/// One stacked kernel call over ≥2 signature-matched members, plus the
/// scatter back into each member's frame slot.
fn execute_fused_subgroup(
    op: &OpKind,
    kind: FuseKind,
    group: Vec<Fetched>,
    stack_idx: usize,
    shared_idx: usize,
    pending: &mut Vec<Task>,
) {
    let parts: Vec<&Tensor> = group.iter().map(|m| &m.inputs[stack_idx]).collect();
    let fused = match kind {
        FuseKind::RowsShared => batch::stack_rows(&parts),
        FuseKind::ColsShared => batch::stack_cols(&parts),
    }
    .and_then(|(stacked, sizes)| {
        let out = kernel::execute_stacked(op, &stacked, &group[0].inputs[shared_idx])?;
        match kind {
            FuseKind::RowsShared => batch::split_rows(&out, &sizes),
            FuseKind::ColsShared => batch::split_cols(&out, &sizes),
        }
    });
    match fused {
        Ok(outs) => {
            debug_assert_eq!(outs.len(), group.len());
            group[0]
                .task
                .frame
                .run
                .run_stats
                .fused_groups
                .fetch_add(1, Ordering::Relaxed);
            for (m, mut out) in group.into_iter().zip(outs) {
                // AddBias preserves its input's shape; a rank-1 member came
                // back as `[1, n]`, so restore the original view (the buffer
                // is untouched — reshape is metadata only).
                if matches!(op, OpKind::AddBias) && out.shape() != m.inputs[0].shape() {
                    match out.reshape(m.inputs[0].shape().clone()) {
                        Ok(t) => out = t,
                        Err(_) => {
                            execute_fetched(m.task, m.inputs, pending);
                            continue;
                        }
                    }
                }
                let run = Arc::clone(&m.task.frame.run);
                run.run_stats.fused_tasks.fetch_add(1, Ordering::Relaxed);
                let Task { frame, node } = m.task;
                if let Some(next) = finish_node(&run, frame, node, vec![out], false) {
                    next.frame
                        .run
                        .run_stats
                        .continuations
                        .fetch_add(1, Ordering::Relaxed);
                    pending.push(next);
                }
            }
        }
        Err(_) => {
            // Error isolation: a fused failure must not smear across runs.
            // Re-run every member scalar with its own (already fetched)
            // inputs so only genuinely failing instances fail their runs.
            for m in group {
                execute_fetched(m.task, m.inputs, pending);
            }
        }
    }
}

/// Resolves a `FwdValue`/`FwdZeros` read against the backprop cache.
fn read_fwd(
    run: &Arc<RunContext>,
    frame: &Frame,
    of: PortRef,
    zeros: bool,
) -> Result<Tensor, ExecError> {
    let fwd_gref = match frame.gref {
        GraphRef::Sub(id) => {
            let sg = run.plan.module.subgraph(id);
            GraphRef::Sub(sg.grad_of.ok_or_else(|| {
                ExecError::internal(format!("FwdValue in non-gradient SubGraph '{}'", sg.name))
            })?)
        }
        GraphRef::Main => {
            return Err(ExecError::internal("FwdValue in the main graph"));
        }
    };
    let cache = run
        .cache
        .as_ref()
        .ok_or_else(|| ExecError::internal("FwdValue outside a training run"))?;
    let key = CacheKey {
        gref: fwd_gref,
        path: frame.path.clone(),
        node: of.node,
        port: of.port,
    };
    run.run_stats.cache_reads.fetch_add(1, Ordering::Relaxed);
    if zeros {
        let shape = cache.shapes.get(&key).ok_or_else(|| ExecError::CacheMiss {
            msg: format!("shape of {of} at path {}", frame.path),
        })?;
        Ok(Tensor::zeros(shape))
    } else {
        cache.values.get(&key).ok_or_else(|| ExecError::CacheMiss {
            msg: format!("value of {of} at path {}", frame.path),
        })
    }
}

/// Publishes a node's outputs, notifies dependents, and cascades frame
/// completions up the frame tree (iteratively — tail-recursive frames can be
/// thousands deep).
///
/// Returns at most one continuation task for the caller to execute inline.
/// A continuation is taken only where a queue round-trip would serialize a
/// call edge: on the first hop when `allow_cont` is set (prelude publishes
/// and empty-frame returns), and on every later hop (a completed frame
/// delivering its results to the parent's Invoke/Cond node). Plain
/// intra-frame dataflow always goes through the shared queue, preserving
/// the paper's FIFO scheduling for sibling parallelism.
fn finish_node(
    run: &Arc<RunContext>,
    mut frame: Arc<Frame>,
    mut node: NodeId,
    mut outs: Vec<Tensor>,
    allow_cont: bool,
) -> Option<Task> {
    let mut cont: Option<Task> = None;
    let mut hop = 0u32;
    loop {
        let plan = run.plan.plan(frame.gref);
        // Backprop cache writes (training mode only).
        if let Some(cache) = &run.cache {
            let ni = node.0 as usize;
            if plan.keep_value[ni] {
                for (port, t) in outs.iter().enumerate() {
                    cache.values.insert(
                        CacheKey {
                            gref: frame.gref,
                            path: frame.path.clone(),
                            node,
                            port: port as u16,
                        },
                        t.clone(),
                    );
                    run.run_stats.cache_writes.fetch_add(1, Ordering::Relaxed);
                }
            }
            if plan.keep_shape[ni] {
                for (port, t) in outs.iter().enumerate() {
                    cache.shapes.insert(
                        CacheKey {
                            gref: frame.gref,
                            path: frame.path.clone(),
                            node,
                            port: port as u16,
                        },
                        t.shape().clone(),
                    );
                }
            }
        }
        // Publish outputs (single-output nodes stay allocation-free).
        {
            let published = if outs.len() == 1 {
                Outs::One(outs.pop())
            } else {
                Outs::Many(outs.drain(..).map(Some).collect())
            };
            let mut guard = frame.core.slots[node.0 as usize].lock();
            guard.outs = published;
        }
        // Notify dependents whose inputs are now fully resolved.
        let take_cont = cont.is_none() && (allow_cont || hop > 0);
        let mut first_ready: Option<NodeId> = None;
        let mut more_ready: Vec<NodeId> = Vec::new();
        for &c in &plan.consumers[node.0 as usize] {
            if frame.core.pending[c.0 as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                if first_ready.is_none() {
                    first_ready = Some(c);
                } else {
                    more_ready.push(c);
                }
            }
        }
        if let Some(first) = first_ready {
            if take_cont {
                cont = Some(Task {
                    frame: Arc::clone(&frame),
                    node: first,
                });
                if !more_ready.is_empty() {
                    run.queue.push_batch(
                        frame.depth as u64,
                        more_ready.drain(..).map(|c| Task {
                            frame: Arc::clone(&frame),
                            node: c,
                        }),
                    );
                }
            } else if more_ready.is_empty() {
                run.queue.push(
                    frame.depth as u64,
                    Task {
                        frame: Arc::clone(&frame),
                        node: first,
                    },
                );
            } else {
                run.queue.push_batch(
                    frame.depth as u64,
                    std::iter::once(first)
                        .chain(more_ready.drain(..))
                        .map(|c| Task {
                            frame: Arc::clone(&frame),
                            node: c,
                        }),
                );
            }
        }
        // Frame countdown.
        if frame.nodes_left.fetch_sub(1, Ordering::AcqRel) != 1 {
            return cont;
        }
        // Frame complete: gather its outputs and deliver to the parent
        // Invoke/Cond node (its "return location"), or finish the run.
        let g = run.plan.module.graph(frame.gref);
        let mut fouts = Vec::with_capacity(g.outputs.len());
        for &p in &g.outputs {
            match fetch(&frame, p) {
                Ok(t) => fouts.push(t),
                Err(e) => {
                    run.fail(e);
                    return cont;
                }
            }
        }
        match &frame.parent {
            None => {
                run.finish_ok(fouts);
                return cont;
            }
            Some(link) => {
                let parent_frame = Arc::clone(&link.frame);
                node = link.node;
                outs = fouts;
                frame = parent_frame;
                hop += 1;
            }
        }
    }
}
