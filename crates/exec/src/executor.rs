//! The parallel dataflow executor (paper §4.1, Figure 4).
//!
//! The execution model matches the paper's description of embedded-control-
//! flow frameworks:
//!
//! 1. A run submits the main graph as the **root frame**; nodes with no
//!    unresolved inputs enter the global ready queue.
//! 2. Idle **execution threads** dequeue operations and run their kernels;
//!    when an operation completes, the dependents whose inputs are now all
//!    resolved are enqueued behind the existing work (FIFO).
//! 3. When an **InvokeOp** is dequeued, its associated SubGraph "is passed
//!    to and processed by the master, similar to step (1)": a child frame is
//!    spawned and its source nodes join the *same* ready queue, served by
//!    the *same* workers. The InvokeOp itself completes when the child frame
//!    delivers its outputs — no thread ever blocks waiting, so recursion
//!    depth is bounded by memory, not by threads or stack.
//! 4. Frames form a **tree**, not a stack (paper §4.1.2 "graph execution
//!    stack"): each frame holds a parent link (its return location), and one
//!    frame can have many live children executing concurrently — that is
//!    where the parallel speedup on recursive models comes from.

use crate::cache::{BackpropCache, CacheKey};
use crate::error::ExecError;
use crate::kernel::{self, KernelCtx};
use crate::params::{GradStore, ParamStore};
use crate::path::PathKey;
use crate::plan::ModulePlan;
use crate::queue::{ReadyQueue, SchedulerKind};
use crate::stats::ExecStats;
use crossbeam_channel::{bounded, Sender};
use parking_lot::Mutex;
use rdg_graph::{GraphRef, NodeId, OpKind, PortRef};
use rdg_tensor::Tensor;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One output slot: values plus the number of reads still expected.
///
/// The counter implements consumer refcounting: the final read *moves* the
/// tensor out instead of cloning, which is what lets copy-on-write kernels
/// downstream mutate buffers in place.
struct SlotInner {
    outs: Option<Vec<Option<Tensor>>>,
    takes_left: i64,
}

/// Link from a child frame back to the Invoke/Cond node awaiting its result.
struct ParentLink {
    frame: Arc<Frame>,
    node: NodeId,
}

/// One activation of a graph: the paper's unit of (recursive) execution.
pub struct Frame {
    gref: GraphRef,
    path: PathKey,
    depth: u32,
    args: Vec<Tensor>,
    pending: Vec<AtomicU32>,
    slots: Vec<Mutex<SlotInner>>,
    nodes_left: AtomicUsize,
    parent: Option<ParentLink>,
}

/// A schedulable unit: one node of one frame.
pub struct Task {
    run: Arc<RunState>,
    frame: Arc<Frame>,
    node: NodeId,
}

/// Shared state of one `run()` call.
pub struct RunState {
    plan: Arc<ModulePlan>,
    params: Arc<ParamStore>,
    grads: Option<Arc<GradStore>>,
    cache: Option<Arc<BackpropCache>>,
    finished: AtomicBool,
    cancelled: AtomicBool,
    done_tx: Sender<Result<Vec<Tensor>, ExecError>>,
    queue: Arc<ReadyQueue<Task>>,
    stats: Arc<ExecStats>,
}

impl RunState {
    fn fail(&self, e: ExecError) {
        self.cancelled.store(true, Ordering::Release);
        if !self.finished.swap(true, Ordering::AcqRel) {
            let _ = self.done_tx.send(Err(e));
        }
    }

    fn finish_ok(&self, outs: Vec<Tensor>) {
        if !self.finished.swap(true, Ordering::AcqRel) {
            let _ = self.done_tx.send(Ok(outs));
        }
    }

    fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// The shared worker pool plus its ready queue.
///
/// One executor serves any number of concurrent runs and sessions, exactly
/// like a framework runtime: tasks carry their run state with them.
pub struct Executor {
    queue: Arc<ReadyQueue<Task>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ExecStats>,
    n_threads: usize,
}

impl Executor {
    /// Spawns `n_threads` execution threads with the given scheduler.
    pub fn new(n_threads: usize, kind: SchedulerKind) -> Arc<Self> {
        let n_threads = n_threads.max(1);
        let queue = Arc::new(ReadyQueue::new(kind));
        let stats = Arc::new(ExecStats::new());
        let workers = (0..n_threads)
            .map(|i| {
                let q = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("rdg-worker-{i}"))
                    .spawn(move || {
                        while let Some(task) = q.pop() {
                            execute_task(task);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Arc::new(Executor {
            queue,
            workers,
            stats,
            n_threads,
        })
    }

    /// FIFO executor with `n_threads` workers.
    pub fn with_threads(n_threads: usize) -> Arc<Self> {
        Self::new(n_threads, SchedulerKind::Fifo)
    }

    /// Number of execution threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> &Arc<ExecStats> {
        &self.stats
    }

    /// Runs a planned module to completion.
    ///
    /// `feeds` are the main graph's inputs, positionally. Training runs pass
    /// `grads` and `cache`; inference runs pass `None` for both.
    pub fn run(
        &self,
        plan: &Arc<ModulePlan>,
        params: &Arc<ParamStore>,
        feeds: Vec<Tensor>,
        grads: Option<Arc<GradStore>>,
        cache: Option<Arc<BackpropCache>>,
    ) -> Result<Vec<Tensor>, ExecError> {
        let main = &plan.module.main;
        if feeds.len() != main.input_nodes.len() {
            return Err(ExecError::BadFeed {
                msg: format!(
                    "main graph has {} inputs, {} fed",
                    main.input_nodes.len(),
                    feeds.len()
                ),
            });
        }
        for (i, (&nid, t)) in main.input_nodes.iter().zip(feeds.iter()).enumerate() {
            let want = main.out_dtypes[nid.0 as usize][0];
            if t.dtype() != want {
                return Err(ExecError::BadFeed {
                    msg: format!("input {i} expects {want}, fed {}", t.dtype()),
                });
            }
        }
        let (done_tx, done_rx) = bounded(1);
        let run = Arc::new(RunState {
            plan: Arc::clone(plan),
            params: Arc::clone(params),
            grads,
            cache,
            finished: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            done_tx,
            queue: Arc::clone(&self.queue),
            stats: Arc::clone(&self.stats),
        });
        spawn_frame(&run, GraphRef::Main, PathKey::root(), feeds, None, 0);
        done_rx
            .recv()
            .map_err(|_| ExecError::internal("run channel closed without a result"))?
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.queue.stop(self.workers.len());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Spawns a frame and enqueues its source nodes.
fn spawn_frame(
    run: &Arc<RunState>,
    gref: GraphRef,
    path: PathKey,
    args: Vec<Tensor>,
    parent: Option<ParentLink>,
    depth: u32,
) {
    let plan = run.plan.plan(gref);
    let g = run.plan.module.graph(gref);
    run.stats.frames_spawned.fetch_add(1, Ordering::Relaxed);
    run.stats.observe_depth(depth as u64);
    let frame = Arc::new(Frame {
        gref,
        path,
        depth,
        args,
        pending: plan.pending.iter().map(|&c| AtomicU32::new(c)).collect(),
        slots: plan
            .fetch_counts
            .iter()
            .map(|&fc| {
                Mutex::new(SlotInner {
                    outs: None,
                    takes_left: fc as i64,
                })
            })
            .collect(),
        nodes_left: AtomicUsize::new(g.len()),
        parent,
    });
    if g.is_empty() {
        // Degenerate empty graph: deliver empty outputs immediately.
        match &frame.parent {
            None => run.finish_ok(Vec::new()),
            Some(link) => finish_node(run, link.frame.clone(), link.node, Vec::new()),
        }
        return;
    }
    for &s in &plan.sources {
        run.queue.push(
            depth as u64,
            Task {
                run: Arc::clone(run),
                frame: Arc::clone(&frame),
                node: s,
            },
        );
    }
}

/// Reads one input port, implementing last-reader-takes semantics.
fn fetch(frame: &Frame, p: PortRef) -> Result<Tensor, ExecError> {
    let mut guard = frame.slots[p.node.0 as usize].lock();
    let inner = &mut *guard;
    if inner.outs.is_none() {
        return Err(ExecError::internal(format!(
            "value of {p} read before it was produced"
        )));
    }
    inner.takes_left -= 1;
    if inner.takes_left <= 0 {
        let mut v = inner.outs.take().expect("checked above");
        v.get_mut(p.port as usize)
            .and_then(Option::take)
            .ok_or_else(|| ExecError::internal(format!("port {p} taken twice")))
    } else {
        inner.outs.as_ref().expect("checked above")[p.port as usize]
            .clone()
            .ok_or_else(|| ExecError::internal(format!("port {p} missing")))
    }
}

/// Executes one scheduled node.
fn execute_task(task: Task) {
    let Task { run, frame, node } = task;
    if run.cancelled() {
        run.stats.cancelled_tasks.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let graph = run.plan.module.graph(frame.gref);
    let n = graph.node(node);

    let mut inputs = Vec::with_capacity(n.inputs.len());
    for &p in &n.inputs {
        match fetch(&frame, p) {
            Ok(t) => inputs.push(t),
            Err(e) => {
                run.fail(e);
                return;
            }
        }
    }
    run.stats.ops_executed.fetch_add(1, Ordering::Relaxed);

    match &n.op {
        OpKind::Invoke { sub, site, .. } => {
            let child_path = frame.path.child(*site);
            let depth = frame.depth + 1;
            let link = ParentLink {
                frame: Arc::clone(&frame),
                node,
            };
            spawn_frame(
                &run,
                GraphRef::Sub(*sub),
                child_path,
                inputs,
                Some(link),
                depth,
            );
        }
        OpKind::Cond {
            sub_then,
            sub_else,
            site_then,
            site_else,
            n_then_in,
            ..
        } => {
            let pred = match inputs[0].as_i32_scalar() {
                Ok(v) => v,
                Err(e) => {
                    run.fail(ExecError::Kernel {
                        graph: run.plan.module.graph_name(frame.gref),
                        node: n.name.clone(),
                        source: e,
                    });
                    return;
                }
            };
            let mut rest = inputs.split_off(1);
            let else_args = rest.split_off(*n_then_in as usize);
            let (sub, site, args) = if pred != 0 {
                (*sub_then, *site_then, rest)
            } else {
                (*sub_else, *site_else, else_args)
            };
            let child_path = frame.path.child(site);
            let depth = frame.depth + 1;
            let link = ParentLink {
                frame: Arc::clone(&frame),
                node,
            };
            spawn_frame(
                &run,
                GraphRef::Sub(sub),
                child_path,
                args,
                Some(link),
                depth,
            );
        }
        OpKind::FwdValue { of } => {
            let out = read_fwd(&run, &frame, *of, false);
            match out {
                Ok(t) => finish_node(&run, frame, node, vec![t]),
                Err(e) => run.fail(e),
            }
        }
        OpKind::FwdZeros { of } => {
            let out = read_fwd(&run, &frame, *of, true);
            match out {
                Ok(t) => finish_node(&run, frame, node, vec![t]),
                Err(e) => run.fail(e),
            }
        }
        op => {
            let kctx = KernelCtx {
                args: &frame.args,
                params: &run.params,
                grads: run.grads.as_deref(),
                stats: &run.stats,
            };
            let result = if run.stats.profiling() {
                let t0 = std::time::Instant::now();
                let r = kernel::execute(op, inputs, &kctx);
                run.stats.record_kernel(op.mnemonic(), t0.elapsed());
                r
            } else {
                kernel::execute(op, inputs, &kctx)
            };
            match result {
                Ok(outs) => finish_node(&run, frame, node, outs),
                Err(e) => run.fail(ExecError::Kernel {
                    graph: run.plan.module.graph_name(frame.gref),
                    node: n.name.clone(),
                    source: e,
                }),
            }
        }
    }
}

/// Resolves a `FwdValue`/`FwdZeros` read against the backprop cache.
fn read_fwd(
    run: &Arc<RunState>,
    frame: &Frame,
    of: PortRef,
    zeros: bool,
) -> Result<Tensor, ExecError> {
    let fwd_gref = match frame.gref {
        GraphRef::Sub(id) => {
            let sg = run.plan.module.subgraph(id);
            GraphRef::Sub(sg.grad_of.ok_or_else(|| {
                ExecError::internal(format!("FwdValue in non-gradient SubGraph '{}'", sg.name))
            })?)
        }
        GraphRef::Main => {
            return Err(ExecError::internal("FwdValue in the main graph"));
        }
    };
    let cache = run
        .cache
        .as_ref()
        .ok_or_else(|| ExecError::internal("FwdValue outside a training run"))?;
    let key = CacheKey {
        gref: fwd_gref,
        path: frame.path.clone(),
        node: of.node,
        port: of.port,
    };
    run.stats.cache_reads.fetch_add(1, Ordering::Relaxed);
    if zeros {
        let shape = cache.shapes.get(&key).ok_or_else(|| ExecError::CacheMiss {
            msg: format!("shape of {of} at path {}", frame.path),
        })?;
        Ok(Tensor::zeros(shape))
    } else {
        cache.values.get(&key).ok_or_else(|| ExecError::CacheMiss {
            msg: format!("value of {of} at path {}", frame.path),
        })
    }
}

/// Publishes a node's outputs, notifies dependents, and cascades frame
/// completions up the frame tree (iteratively — tail-recursive frames can be
/// thousands deep).
fn finish_node(
    run: &Arc<RunState>,
    mut frame: Arc<Frame>,
    mut node: NodeId,
    mut outs: Vec<Tensor>,
) {
    loop {
        let plan = run.plan.plan(frame.gref);
        // Backprop cache writes (training mode only).
        if let Some(cache) = &run.cache {
            let ni = node.0 as usize;
            if plan.keep_value[ni] {
                for (port, t) in outs.iter().enumerate() {
                    cache.values.insert(
                        CacheKey {
                            gref: frame.gref,
                            path: frame.path.clone(),
                            node,
                            port: port as u16,
                        },
                        t.clone(),
                    );
                    run.stats.cache_writes.fetch_add(1, Ordering::Relaxed);
                }
            }
            if plan.keep_shape[ni] {
                for (port, t) in outs.iter().enumerate() {
                    cache.shapes.insert(
                        CacheKey {
                            gref: frame.gref,
                            path: frame.path.clone(),
                            node,
                            port: port as u16,
                        },
                        t.shape().clone(),
                    );
                }
            }
        }
        // Publish outputs.
        {
            let mut guard = frame.slots[node.0 as usize].lock();
            guard.outs = Some(outs.into_iter().map(Some).collect());
        }
        // Notify dependents whose inputs are now fully resolved.
        for &c in &plan.consumers[node.0 as usize] {
            if frame.pending[c.0 as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                run.queue.push(
                    frame.depth as u64,
                    Task {
                        run: Arc::clone(run),
                        frame: Arc::clone(&frame),
                        node: c,
                    },
                );
            }
        }
        // Frame countdown.
        if frame.nodes_left.fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        // Frame complete: gather its outputs and deliver to the parent
        // Invoke/Cond node (its "return location"), or finish the run.
        let g = run.plan.module.graph(frame.gref);
        let mut fouts = Vec::with_capacity(g.outputs.len());
        for &p in &g.outputs {
            match fetch(&frame, p) {
                Ok(t) => fouts.push(t),
                Err(e) => {
                    run.fail(e);
                    return;
                }
            }
        }
        match &frame.parent {
            None => {
                run.finish_ok(fouts);
                return;
            }
            Some(link) => {
                let parent_frame = Arc::clone(&link.frame);
                node = link.node;
                outs = fouts;
                frame = parent_frame;
            }
        }
    }
}
