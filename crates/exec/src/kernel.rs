//! Kernel dispatch: maps non-structural [`OpKind`]s onto tensor kernels.
//!
//! Structural ops (`Invoke`, `Cond`, `FwdValue`, `FwdZeros`) are interpreted
//! by the executor itself because they need frames, paths, and the backprop
//! cache; everything else funnels through [`execute`].

use crate::params::{GradStore, ParamStore};
use crate::stats::ExecStats;
use rdg_graph::OpKind;
use rdg_tensor::{ops, Tensor, TensorError};
use std::sync::atomic::Ordering;

/// Ambient state a kernel may need besides its tensor inputs.
pub struct KernelCtx<'a> {
    /// The enclosing frame's arguments (serves `Input` nodes).
    pub args: &'a [Tensor],
    /// Trainable parameters (serves `Param` nodes).
    pub params: &'a ParamStore,
    /// Gradient accumulators (serves `GradSink*`; absent during inference).
    pub grads: Option<&'a GradStore>,
    /// Statistics sink.
    pub stats: &'a ExecStats,
}

/// Executes a non-structural op.
///
/// Inputs are passed *by value*: the executor's consumer refcounting hands
/// the last consumer the original tensor, letting copy-on-write kernels
/// (`SetRow`) mutate in place.
pub fn execute(
    op: &OpKind,
    mut inputs: Vec<Tensor>,
    ctx: &KernelCtx<'_>,
) -> Result<Vec<Tensor>, TensorError> {
    let one = |t: Tensor| -> Result<Vec<Tensor>, TensorError> { Ok(vec![t]) };
    match op {
        OpKind::Input { index, dtype } => {
            let v = ctx
                .args
                .get(*index)
                .ok_or_else(|| TensorError::invalid(format!("frame has no argument {index}")))?;
            if v.dtype() != *dtype {
                return Err(TensorError::DTypeMismatch {
                    expected: *dtype,
                    got: v.dtype(),
                    ctx: "Input",
                });
            }
            one(v.clone())
        }
        OpKind::Const(t) => one(t.clone()),
        OpKind::Param(p) => one(ctx.params.read(*p)),
        OpKind::Identity => one(inputs.remove(0)),

        OpKind::Add => one(ops::add(&inputs[0], &inputs[1])?),
        OpKind::Sub => one(ops::sub(&inputs[0], &inputs[1])?),
        OpKind::Mul => one(ops::mul(&inputs[0], &inputs[1])?),
        OpKind::Div => one(ops::div(&inputs[0], &inputs[1])?),
        OpKind::Neg => one(ops::neg(&inputs[0])?),
        OpKind::Scale(s) => one(ops::scale(&inputs[0], *s)?),
        OpKind::AddConst(c) => one(ops::add_const(&inputs[0], *c)?),
        OpKind::ScalarMul => one(ops::scalar_mul(&inputs[0], &inputs[1])?),
        OpKind::MatMul => one(ops::matmul(&inputs[0], &inputs[1])?),
        OpKind::MatMulAT => one(ops::matmul_at(&inputs[0], &inputs[1])?),
        OpKind::MatMulBT => one(ops::matmul_bt(&inputs[0], &inputs[1])?),
        OpKind::AddBias => one(ops::add_bias(&inputs[0], &inputs[1])?),
        OpKind::Bilinear => one(ops::bilinear(&inputs[0], &inputs[1])?),

        OpKind::Tanh => one(ops::tanh(&inputs[0])?),
        OpKind::Sigmoid => one(ops::sigmoid(&inputs[0])?),
        OpKind::Relu => one(ops::relu(&inputs[0])?),
        OpKind::Softmax => one(ops::softmax(&inputs[0])?),
        OpKind::LogSoftmax => one(ops::log_softmax(&inputs[0])?),

        OpKind::ConcatCols => one(ops::concat_cols(&inputs[0], &inputs[1])?),
        OpKind::SliceCols { lo, hi } => one(ops::slice_cols(&inputs[0], *lo, *hi)?),
        OpKind::Transpose => one(ops::transpose2d(&inputs[0])?),
        OpKind::StackRows => {
            let refs: Vec<&Tensor> = inputs.iter().collect();
            one(ops::stack_rows(&refs)?)
        }

        OpKind::SumAll => one(ops::sum_all(&inputs[0])?),
        OpKind::MeanAll => one(ops::mean_all(&inputs[0])?),
        OpKind::SumAxis0 => one(ops::sum_axis0(&inputs[0])?),

        OpKind::GatherRows => one(ops::gather_rows(&inputs[0], &inputs[1])?),
        OpKind::GetRow => one(ops::get_row(&inputs[0], &inputs[1])?),
        OpKind::SetRow => {
            let row = inputs.pop().expect("setrow arity");
            let i = inputs.pop().expect("setrow arity");
            let mat = inputs.pop().expect("setrow arity");
            if mat.is_unique() {
                ctx.stats.inplace_updates.fetch_add(1, Ordering::Relaxed);
            }
            one(ops::set_row(mat, &i, &row)?)
        }
        OpKind::OneHot { classes } => one(ops::onehot(&inputs[0], *classes)?),
        OpKind::ArgmaxRows => one(ops::argmax_rows(&inputs[0])?),
        OpKind::SoftmaxXent => one(ops::softmax_xent(&inputs[0], &inputs[1])?),

        OpKind::IAdd => one(ops::iadd(&inputs[0], &inputs[1])?),
        OpKind::ISub => one(ops::isub(&inputs[0], &inputs[1])?),
        OpKind::IMul => one(ops::imul(&inputs[0], &inputs[1])?),
        OpKind::IDiv => one(ops::idiv(&inputs[0], &inputs[1])?),
        OpKind::ILt => one(ops::ilt(&inputs[0], &inputs[1])?),
        OpKind::ILe => one(ops::ile(&inputs[0], &inputs[1])?),
        OpKind::IGt => one(ops::igt(&inputs[0], &inputs[1])?),
        OpKind::IGe => one(ops::ige(&inputs[0], &inputs[1])?),
        OpKind::IEq => one(ops::ieq(&inputs[0], &inputs[1])?),
        OpKind::And => one(ops::logical_and(&inputs[0], &inputs[1])?),
        OpKind::Or => one(ops::logical_or(&inputs[0], &inputs[1])?),
        OpKind::Not => one(ops::logical_not(&inputs[0])?),
        OpKind::GatherScalarI32 => one(ops::gather_scalar_i32(&inputs[0], &inputs[1])?),
        OpKind::Len => one(Tensor::scalar_i32(inputs[0].numel() as i32)),
        OpKind::FGtConst(c) => one(Tensor::scalar_i32((inputs[0].as_f32_scalar()? > *c) as i32)),
        OpKind::ZerosDyn { cols } => {
            let n = inputs[0].as_i32_scalar()?;
            if n < 0 {
                return Err(TensorError::invalid("ZerosDyn: negative row count"));
            }
            one(Tensor::zeros([n as usize, *cols]))
        }

        OpKind::GradSink { param } => {
            let gs = ctx
                .grads
                .ok_or_else(|| TensorError::invalid("GradSink outside a training run"))?;
            gs.accumulate(*param, &inputs[0])?;
            one(Tensor::scalar_f32(0.0))
        }
        OpKind::GradSinkRows { param } => {
            let gs = ctx
                .grads
                .ok_or_else(|| TensorError::invalid("GradSinkRows outside a training run"))?;
            let like = ctx.params.read(*param);
            gs.accumulate_rows(*param, &like, &inputs[0], &inputs[1])?;
            one(Tensor::scalar_f32(0.0))
        }
        OpKind::ZerosLike => one(Tensor::zeros_like(&inputs[0])),
        OpKind::OnesLike => one(Tensor::full(inputs[0].shape().clone(), 1.0)),

        OpKind::TanhGrad => one(ops::tanh_grad(&inputs[0], &inputs[1])?),
        OpKind::SigmoidGrad => one(ops::sigmoid_grad(&inputs[0], &inputs[1])?),
        OpKind::ReluGrad => one(ops::relu_grad(&inputs[0], &inputs[1])?),
        OpKind::SoftmaxGrad => one(ops::softmax_grad(&inputs[0], &inputs[1])?),
        OpKind::LogSoftmaxGrad => one(ops::log_softmax_grad(&inputs[0], &inputs[1])?),
        OpKind::SoftmaxXentGrad => one(ops::softmax_xent_grad(&inputs[0], &inputs[1], &inputs[2])?),
        OpKind::MeanAllGrad => one(ops::mean_all_grad(&inputs[0], &inputs[1])?),
        OpKind::FillLike => one(ops::fill_like(&inputs[0], &inputs[1])?),
        OpKind::BroadcastRowsLike => one(ops::broadcast_rows_like(&inputs[0], &inputs[1])?),
        OpKind::PadColsLike { lo } => one(ops::pad_cols_like(&inputs[0], &inputs[1], *lo)?),
        OpKind::SliceColsLike { take_second } => {
            let wa = inputs[0]
                .shape()
                .as_matrix()
                .ok_or_else(|| TensorError::invalid("SliceColsLike: rank-2 witness required"))?
                .1;
            let wb = inputs[1]
                .shape()
                .as_matrix()
                .ok_or_else(|| TensorError::invalid("SliceColsLike: rank-2 witness required"))?
                .1;
            let dy = &inputs[2];
            if *take_second {
                one(ops::slice_cols(dy, wa, wa + wb)?)
            } else {
                one(ops::slice_cols(dy, 0, wa)?)
            }
        }
        OpKind::ScatterRowsLike => one(ops::scatter_rows_like(&inputs[0], &inputs[1], &inputs[2])?),
        OpKind::ScatterRowLike => {
            // (mat_like, i, dy_row): zero matrix with one row set.
            let zeros = Tensor::zeros_like(&inputs[0]);
            one(ops::set_row(zeros, &inputs[1], &inputs[2])?)
        }
        OpKind::BilinearGradX => one(ops::bilinear_grad_x(&inputs[0], &inputs[1], &inputs[2])?),
        OpKind::BilinearGradV => one(ops::bilinear_grad_v(&inputs[0], &inputs[1], &inputs[2])?),

        OpKind::Invoke { .. }
        | OpKind::Cond { .. }
        | OpKind::FwdValue { .. }
        | OpKind::FwdZeros { .. } => Err(TensorError::invalid(format!(
            "structural op {} reached the kernel dispatcher",
            op.mnemonic()
        ))),
    }
}

/// Executes one *fused* kernel over a stack of group members' inputs.
///
/// `stacked` is the members' varying operand concatenated along the fuse
/// axis (rows for [`crate::batch::FuseKind::RowsShared`], columns for
/// `ColsShared`); `shared` is the operand common to every member (typically
/// a parameter read). The op's kernel computes each output row (or column
/// block) independently and in the scalar flop order, so the caller can
/// slice the result back per member bit-for-bit.
pub fn execute_stacked(
    op: &OpKind,
    stacked: &Tensor,
    shared: &Tensor,
) -> Result<Tensor, TensorError> {
    match op {
        OpKind::MatMul => ops::matmul(stacked, shared),
        OpKind::MatMulBT => ops::matmul_bt(stacked, shared),
        OpKind::AddBias => ops::add_bias(stacked, shared),
        OpKind::Bilinear => ops::bilinear(stacked, shared),
        // AᵀB stacks B by columns against a shared A, so the shared tensor
        // is the *first* operand here.
        OpKind::MatMulAT => ops::matmul_at(shared, stacked),
        _ => Err(TensorError::invalid(format!(
            "op {} has no stacked execution path",
            op.mnemonic()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_graph::{Module, ParamId};
    use rdg_tensor::DType;

    fn ctx_fixture() -> (ParamStore, GradStore, ExecStats, Vec<Tensor>) {
        let mut module = Module::default();
        module.params.push(rdg_graph::ParamSpec {
            name: "w".into(),
            init: Tensor::from_f32([2], vec![5.0, 6.0]).unwrap(),
        });
        let ps = ParamStore::from_module(&module);
        let gs = GradStore::new(1);
        let stats = ExecStats::new();
        let args = vec![Tensor::scalar_f32(42.0)];
        (ps, gs, stats, args)
    }

    #[test]
    fn input_const_param_identity() {
        let (ps, gs, stats, args) = ctx_fixture();
        let ctx = KernelCtx {
            args: &args,
            params: &ps,
            grads: Some(&gs),
            stats: &stats,
        };

        let v = execute(
            &OpKind::Input {
                index: 0,
                dtype: DType::F32,
            },
            vec![],
            &ctx,
        )
        .unwrap();
        assert_eq!(v[0].as_f32_scalar().unwrap(), 42.0);

        let v = execute(&OpKind::Const(Tensor::scalar_i32(7)), vec![], &ctx).unwrap();
        assert_eq!(v[0].as_i32_scalar().unwrap(), 7);

        let v = execute(&OpKind::Param(ParamId(0)), vec![], &ctx).unwrap();
        assert_eq!(v[0].f32s().unwrap(), &[5.0, 6.0]);

        let v = execute(&OpKind::Identity, vec![Tensor::scalar_f32(1.5)], &ctx).unwrap();
        assert_eq!(v[0].as_f32_scalar().unwrap(), 1.5);
    }

    #[test]
    fn input_dtype_checked() {
        let (ps, gs, stats, args) = ctx_fixture();
        let ctx = KernelCtx {
            args: &args,
            params: &ps,
            grads: Some(&gs),
            stats: &stats,
        };
        let r = execute(
            &OpKind::Input {
                index: 0,
                dtype: DType::I32,
            },
            vec![],
            &ctx,
        );
        assert!(r.is_err());
        let r = execute(
            &OpKind::Input {
                index: 5,
                dtype: DType::F32,
            },
            vec![],
            &ctx,
        );
        assert!(r.is_err());
    }

    #[test]
    fn gradsink_accumulates_and_requires_training() {
        let (ps, gs, stats, args) = ctx_fixture();
        let ctx = KernelCtx {
            args: &args,
            params: &ps,
            grads: Some(&gs),
            stats: &stats,
        };
        execute(
            &OpKind::GradSink { param: ParamId(0) },
            vec![Tensor::from_f32([2], vec![1.0, 2.0]).unwrap()],
            &ctx,
        )
        .unwrap();
        assert_eq!(gs.get(ParamId(0)).unwrap().f32s().unwrap(), &[1.0, 2.0]);

        let ctx_inf = KernelCtx {
            args: &args,
            params: &ps,
            grads: None,
            stats: &stats,
        };
        let r = execute(
            &OpKind::GradSink { param: ParamId(0) },
            vec![Tensor::zeros([2])],
            &ctx_inf,
        );
        assert!(r.is_err(), "GradSink must fail outside training");
    }

    #[test]
    fn structural_ops_rejected() {
        let (ps, gs, stats, args) = ctx_fixture();
        let ctx = KernelCtx {
            args: &args,
            params: &ps,
            grads: Some(&gs),
            stats: &stats,
        };
        let op = OpKind::FwdValue {
            of: rdg_graph::PortRef {
                node: rdg_graph::NodeId(0),
                port: 0,
            },
        };
        assert!(execute(&op, vec![], &ctx).is_err());
    }

    #[test]
    fn setrow_tracks_inplace() {
        let (ps, gs, stats, args) = ctx_fixture();
        let ctx = KernelCtx {
            args: &args,
            params: &ps,
            grads: Some(&gs),
            stats: &stats,
        };
        let mat = Tensor::zeros([2, 2]);
        let i = Tensor::scalar_i32(0);
        let row = Tensor::ones([2]);
        execute(&OpKind::SetRow, vec![mat, i, row], &ctx).unwrap();
        assert_eq!(stats.inplace_updates.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scatter_row_like_zeroes_everything_else() {
        let (ps, gs, stats, args) = ctx_fixture();
        let ctx = KernelCtx {
            args: &args,
            params: &ps,
            grads: Some(&gs),
            stats: &stats,
        };
        let like = Tensor::ones([2, 2]);
        let i = Tensor::scalar_i32(1);
        let row = Tensor::from_f32([2], vec![3.0, 4.0]).unwrap();
        let out = execute(&OpKind::ScatterRowLike, vec![like, i, row], &ctx).unwrap();
        assert_eq!(out[0].f32s().unwrap(), &[0.0, 0.0, 3.0, 4.0]);
    }
}
