//! The `rdg` runtime: a parallel dataflow executor with first-class
//! support for recursive graphs.
//!
//! This crate implements the system-design half of the EuroSys '18 paper
//! "Improving the Expressiveness of Deep Learning Frameworks with
//! Recursion" (§4–§5):
//!
//! * [`executor::Executor`] — master/worker execution: a global ready queue
//!   ([`queue::ReadyQueue`]) feeding a pool of execution threads, with
//!   dependency-count scheduling. `InvokeOp` execution spawns a child frame
//!   whose operations join the *same* queue — recursive graphs run on the
//!   unmodified machinery (paper §4.1.2). The invoke hot path is engineered
//!   down to near plain-op cost: frame cores are pooled, `Input`/`Const`
//!   nodes resolve while the frame spawns, and call/return edges continue
//!   on the executing worker instead of paying queue round-trips (see the
//!   [`executor`] module docs). The executor is a **multi-run runtime**:
//!   [`executor::Executor::submit`] starts a run without blocking and
//!   returns a [`executor::RunHandle`]; every run carries its own
//!   [`executor::RunContext`] (feeds, result slot, grad/cache handles,
//!   stats, cancel state), so many root frames — a training minibatch, or
//!   a stream of serving requests — share one worker pool.
//! * [`plan::ModulePlan`] / [`plan::ExecutionPlan`] — per-graph scheduling
//!   metadata (topological order, in-degree counts, consumer wiring,
//!   spawn-time-resolvable prelude), precompiled once per module and reused
//!   by every frame.
//! * [`path::PathKey`] — hash-consed invocation paths (call-site chains),
//!   the keys of the backprop cache; child-key creation is an interner
//!   lookup and equality is a pointer compare.
//! * [`cache::BackpropCache`] — the concurrent hash table that carries
//!   forward activations to the mirrored backward frames (paper §5,
//!   Figure 6), sharded for concurrent insert/lookup.
//! * [`params::ParamStore`] / [`params::GradStore`] — parameters live
//!   outside the graph; gradients accumulate concurrently from many frames.
//! * [`session::Session`] — a planned module bound to parameters.
//! * [`serve::ServeQueue`] — QoS-aware admission-controlled serving:
//!   per-class bounded lanes ([`serve::Priority`]) with backpressure in
//!   front of the executor, an aged strict-priority pick (starvation is
//!   bounded by the aging step), a dispatcher whose wave size adapts to
//!   observed service times ([`serve::WaveSizing`]), and per-request
//!   latency percentiles aggregate and per class ([`serve::ServeStats`]).
//!   Entered via [`session::Session::serve`].
//! * [`sim`] — a virtual-time (discrete-event) twin of the executor used to
//!   reproduce the paper's resource-dependent results on hardware smaller
//!   than the authors' 36-core testbed.
//!
//! # Quick start
//!
//! Build a module with [`rdg_graph::ModuleBuilder`], wrap it in a
//! [`Session`], and run it on an [`Executor`]:
//!
//! ```
//! use rdg_exec::{Executor, Session};
//! use rdg_graph::ModuleBuilder;
//! use rdg_tensor::DType;
//!
//! // sum(n) = n == 0 ? 0 : n + sum(n - 1), as a self-invoking SubGraph.
//! let mut mb = ModuleBuilder::new();
//! let h = mb.declare_subgraph("sum", &[DType::I32], &[DType::I32]);
//! mb.define_subgraph(&h, |b| {
//!     let n = b.input(0)?;
//!     let zero = b.const_i32(0);
//!     let p = b.igt(n, zero)?;
//!     let out = b.cond1(
//!         p,
//!         DType::I32,
//!         |b| {
//!             let one = b.const_i32(1);
//!             let m = b.isub(n, one)?;
//!             let rec = b.invoke(&h, &[m])?[0];
//!             b.iadd(n, rec)
//!         },
//!         |b| b.identity(zero),
//!     )?;
//!     Ok(vec![out])
//! })
//! .unwrap();
//! let start = mb.const_i32(10);
//! let out = mb.invoke(&h, &[start]).unwrap();
//! mb.set_outputs(&[out[0]]).unwrap();
//!
//! let exec = Executor::with_threads(2);
//! let session = Session::new(exec, mb.finish().unwrap()).unwrap();
//! let result = session.run(vec![]).unwrap();
//! assert_eq!(result[0].as_i32_scalar().unwrap(), 55);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod error;
pub mod executor;
pub mod kernel;
pub mod params;
pub mod path;
pub mod plan;
pub mod queue;
pub mod serve;
pub mod session;
pub mod sim;
pub mod stats;

pub use batch::{fuse_kind, plan_groups, FuseKind, GroupKey};
pub use cache::{BackpropCache, CacheKey, ShardedMap};
pub use error::ExecError;
pub use executor::{Executor, RunHandle};
pub use params::{GradStore, ParamStore};
pub use path::PathKey;
pub use plan::specialize::{Provenance, SpecializeOptions};
pub use plan::{ExecutionPlan, ModulePlan, SpecKey, SpecStats};
pub use queue::SchedulerKind;
pub use serve::{
    ClassStats, LatencyPercentiles, Priority, ReplicaSnapshot, ServeClient, ServeConfig,
    ServeError, ServeQueue, ServeStats, ServeTicket, WaveRecord, WaveSizing,
};
pub use session::Session;
pub use stats::{ExecStats, StatsSnapshot};
