//! The `rdg` runtime: a parallel dataflow executor with first-class
//! support for recursive graphs.
//!
//! This crate implements the system-design half of the EuroSys '18 paper
//! "Improving the Expressiveness of Deep Learning Frameworks with
//! Recursion" (§4–§5):
//!
//! * [`executor::Executor`] — master/worker execution: a global ready queue
//!   ([`queue::ReadyQueue`]) feeding a pool of execution threads, with
//!   dependency-count scheduling. `InvokeOp` execution spawns a child frame
//!   whose operations join the *same* queue — recursive graphs run on the
//!   unmodified machinery (paper §4.1.2).
//! * [`path::PathKey`] — invocation paths (call-site chains), the keys of
//!   the backprop cache.
//! * [`cache::BackpropCache`] — the concurrent hash table that carries
//!   forward activations to the mirrored backward frames (paper §5,
//!   Figure 6), sharded for concurrent insert/lookup.
//! * [`params::ParamStore`] / [`params::GradStore`] — parameters live
//!   outside the graph; gradients accumulate concurrently from many frames.
//! * [`session::Session`] — a planned module bound to parameters.
//! * [`sim`] — a virtual-time (discrete-event) twin of the executor used to
//!   reproduce the paper's resource-dependent results on hardware smaller
//!   than the authors' 36-core testbed.

pub mod cache;
pub mod error;
pub mod executor;
pub mod kernel;
pub mod params;
pub mod path;
pub mod plan;
pub mod queue;
pub mod session;
pub mod sim;
pub mod stats;

pub use cache::{BackpropCache, CacheKey, ShardedMap};
pub use error::ExecError;
pub use executor::Executor;
pub use params::{GradStore, ParamStore};
pub use path::PathKey;
pub use plan::ModulePlan;
pub use queue::SchedulerKind;
pub use session::Session;
pub use stats::ExecStats;
