//! Parameter and gradient stores.
//!
//! Parameters live outside the dataflow graphs (like TensorFlow variables):
//! `Param` nodes read them, `GradSink` / `GradSinkRows` nodes accumulate
//! gradients, and optimizers apply updates between steps. Because many
//! frames of a recursive graph read and contribute gradients to the *same*
//! parameter concurrently, reads are lock-free clones of `Arc`-backed
//! tensors and accumulation takes a short per-parameter mutex.

use parking_lot::{Mutex, RwLock};
use rdg_graph::{Module, ParamId};
use rdg_tensor::{ops, Tensor, TensorError};

/// Shared storage for trainable parameters.
pub struct ParamStore {
    names: Vec<String>,
    values: Vec<RwLock<Tensor>>,
}

impl ParamStore {
    /// Initializes the store from a module's parameter specs.
    pub fn from_module(m: &Module) -> Self {
        ParamStore {
            names: m.params.iter().map(|p| p.name.clone()).collect(),
            values: m
                .params
                .iter()
                .map(|p| RwLock::new(p.init.clone()))
                .collect(),
        }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cheap snapshot read (clones the `Arc`, not the data).
    pub fn read(&self, p: ParamId) -> Tensor {
        self.values[p.0 as usize].read().clone()
    }

    /// Replaces a parameter value (optimizer updates).
    pub fn write(&self, p: ParamId, t: Tensor) {
        *self.values[p.0 as usize].write() = t;
    }

    /// Parameter name (diagnostics).
    pub fn name(&self, p: ParamId) -> &str {
        &self.names[p.0 as usize]
    }

    /// Iterates over all parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len() as u32).map(ParamId)
    }

    /// Total number of scalar elements across all parameters.
    pub fn total_elems(&self) -> usize {
        self.values.iter().map(|v| v.read().numel()).sum()
    }
}

/// Gradient accumulation buffers, one per parameter.
///
/// Accumulation happens concurrently from many frames; each slot has its own
/// mutex and is lazily initialized to zeros on first contribution.
pub struct GradStore {
    slots: Vec<Mutex<Option<Tensor>>>,
}

impl GradStore {
    /// Creates an empty store sized for `n` parameters.
    pub fn new(n: usize) -> Self {
        GradStore {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of parameter slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when sized for zero parameters.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Adds a dense gradient contribution for `p`.
    pub fn accumulate(&self, p: ParamId, g: &Tensor) -> Result<(), TensorError> {
        let mut slot = self.slots[p.0 as usize].lock();
        match slot.as_mut() {
            None => {
                *slot = Some(g.clone());
            }
            Some(acc) => {
                if acc.shape() != g.shape() {
                    return Err(TensorError::ShapeMismatch {
                        lhs: acc.shape().clone(),
                        rhs: g.shape().clone(),
                        ctx: "GradStore::accumulate",
                    });
                }
                // In-place add: the accumulator is uniquely owned by the slot
                // unless a snapshot was taken mid-step (then CoW copies).
                let gv = g.f32s()?;
                let av = acc.make_f32_mut()?;
                for (a, &x) in av.iter_mut().zip(gv.iter()) {
                    *a += x;
                }
            }
        }
        Ok(())
    }

    /// Adds a row-sparse gradient contribution (embedding tables).
    ///
    /// `like` provides the dense shape for lazy initialization.
    pub fn accumulate_rows(
        &self,
        p: ParamId,
        like: &Tensor,
        ids: &Tensor,
        rows: &Tensor,
    ) -> Result<(), TensorError> {
        let mut slot = self.slots[p.0 as usize].lock();
        if slot.is_none() {
            *slot = Some(Tensor::zeros(like.shape().clone()));
        }
        let acc = slot.as_mut().expect("just initialized");
        ops::scatter_add_rows(acc, ids, rows)
    }

    /// Reads the accumulated gradient for `p` (zero contributions ⇒ `None`).
    pub fn get(&self, p: ParamId) -> Option<Tensor> {
        self.slots[p.0 as usize].lock().clone()
    }

    /// Clears all accumulators (start of a step).
    pub fn clear(&self) {
        for s in &self.slots {
            *s.lock() = None;
        }
    }

    /// Scales every accumulated gradient in place by `factor`.
    ///
    /// Batched training accumulates raw per-instance sums (equal to the
    /// sequential sum up to floating-point reordering — concurrent slot
    /// updates land in nondeterministic order); callers that want the
    /// minibatch *mean* divide once here before the optimizer step
    /// instead of paying a scale per instance.
    pub fn scale_all(&self, factor: f32) -> Result<(), TensorError> {
        for s in &self.slots {
            let mut slot = s.lock();
            if let Some(acc) = slot.as_mut() {
                for a in acc.make_f32_mut()?.iter_mut() {
                    *a *= factor;
                }
            }
        }
        Ok(())
    }

    /// Takes all gradients out, leaving the store cleared.
    pub fn take_all(&self) -> Vec<Option<Tensor>> {
        self.slots.iter().map(|s| s.lock().take()).collect()
    }

    /// Global L2 norm over all accumulated gradients.
    pub fn global_norm(&self) -> f32 {
        let mut acc = 0.0f64;
        for s in &self.slots {
            if let Some(g) = s.lock().as_ref() {
                if let Ok(v) = g.f32s() {
                    acc += v.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
                }
            }
        }
        acc.sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn dense_accumulation_sums() {
        let gs = GradStore::new(1);
        let p = ParamId(0);
        gs.accumulate(p, &Tensor::from_f32([2], vec![1.0, 2.0]).unwrap())
            .unwrap();
        gs.accumulate(p, &Tensor::from_f32([2], vec![10.0, 20.0]).unwrap())
            .unwrap();
        let g = gs.get(p).unwrap();
        assert_eq!(g.f32s().unwrap(), &[11.0, 22.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let gs = GradStore::new(1);
        let p = ParamId(0);
        gs.accumulate(p, &Tensor::zeros([2])).unwrap();
        assert!(gs.accumulate(p, &Tensor::zeros([3])).is_err());
    }

    #[test]
    fn sparse_rows_accumulate() {
        let gs = GradStore::new(1);
        let p = ParamId(0);
        let like = Tensor::zeros([4, 2]);
        let ids = Tensor::from_i32([2], vec![1, 1]).unwrap();
        let rows = Tensor::from_f32([2, 2], vec![1.0, 1.0, 2.0, 2.0]).unwrap();
        gs.accumulate_rows(p, &like, &ids, &rows).unwrap();
        let g = gs.get(p).unwrap();
        assert_eq!(g.f32s().unwrap(), &[0.0, 0.0, 3.0, 3.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn concurrent_accumulation_is_complete() {
        let gs = Arc::new(GradStore::new(1));
        let p = ParamId(0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let gs = Arc::clone(&gs);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    gs.accumulate(p, &Tensor::ones([4])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let g = gs.get(p).unwrap();
        assert!(g.f32s().unwrap().iter().all(|&x| x == 800.0));
    }

    #[test]
    fn scale_all_rescales_every_slot() {
        let gs = GradStore::new(2);
        gs.accumulate(ParamId(0), &Tensor::from_f32([2], vec![2.0, 4.0]).unwrap())
            .unwrap();
        gs.accumulate(ParamId(1), &Tensor::from_f32([1], vec![8.0]).unwrap())
            .unwrap();
        gs.scale_all(0.25).unwrap();
        assert_eq!(gs.get(ParamId(0)).unwrap().f32s().unwrap(), &[0.5, 1.0]);
        assert_eq!(gs.get(ParamId(1)).unwrap().f32s().unwrap(), &[2.0]);
    }

    #[test]
    fn take_all_clears() {
        let gs = GradStore::new(2);
        gs.accumulate(ParamId(1), &Tensor::ones([1])).unwrap();
        let all = gs.take_all();
        assert!(all[0].is_none());
        assert!(all[1].is_some());
        assert!(gs.get(ParamId(1)).is_none());
    }

    #[test]
    fn global_norm_is_l2() {
        let gs = GradStore::new(2);
        gs.accumulate(ParamId(0), &Tensor::from_f32([2], vec![3.0, 0.0]).unwrap())
            .unwrap();
        gs.accumulate(ParamId(1), &Tensor::from_f32([1], vec![4.0]).unwrap())
            .unwrap();
        assert!((gs.global_norm() - 5.0).abs() < 1e-5);
    }
}
