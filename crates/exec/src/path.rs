//! Invocation paths: hash-consed chains of call sites.
//!
//! The paper (§5, "Backpropagation cache implementation") keys each cached
//! forward value by "the InvokeOp's topological position within the SubGraph
//! combined with the key of the parent InvokeOp, guaranteeing uniqueness".
//! [`PathKey`] is exactly that: a persistent linked list of
//! [`CallSiteId`]s from the root frame, with a precomputed running hash so
//! map lookups don't walk the chain. Gradient SubGraphs reuse the forward
//! call-site ids, so a backward frame reconstructs the identical path and
//! finds its forward twin's activations.
//!
//! # Hash-consing
//!
//! Path nodes are **interned** in a process-wide table keyed by
//! `(parent pointer, call site)`. [`PathKey::child`] is therefore a sharded
//! table lookup: extending the same parent with the same site twice returns
//! the *same* `Arc` both times, so
//!
//! * structurally equal paths are **pointer-equal** — equality and backprop
//!   cache probes never walk the chain;
//! * the steady state of a training loop (same module, same recursion
//!   shape, step after step) allocates **zero** path nodes — child-key
//!   creation is a lookup, not an allocation + rehash;
//! * deep chains are never dropped recursively (the interner keeps one
//!   strong reference to every node it ever produced), so a 20 000-deep
//!   tail recursion cannot overflow the stack on teardown.
//!
//! Left alone, the table grows with the number of **distinct paths ever
//! observed, across all runs and all modules** — a trie of every call-site
//! chain executed so far, at roughly a hundred bytes per node. Re-running
//! the same shapes (a training loop over a fixed module, the steady state
//! this design optimizes) adds nothing, but workloads whose recursion
//! shape varies per input (e.g. a treebank where every tree is a new
//! shape) keep adding the union of their paths.
//! [`PathKey::flush_interner`] reclaims that growth at quiescent points
//! (between epochs, at serve shutdown): it evicts every node no live key
//! references and cascades up each retired chain **iteratively** on a
//! worklist, so flushing a 20 000-deep retired chain never recurses. Keys
//! still held anywhere outside the interner — and all their ancestors —
//! are left untouched, and the structural-equality backstop in
//! [`PartialEq`] keeps any key that survives a flush comparable with
//! freshly re-interned twins. [`PathKey::interner_len`] exposes the
//! current size for diagnostics, tests, and leak monitoring.
//!
//! # Example
//!
//! ```
//! use rdg_exec::PathKey;
//! use rdg_graph::CallSiteId;
//!
//! let fwd = PathKey::root().child(CallSiteId(3)).child(CallSiteId(7));
//! // The backward pass rebuilds the path from scratch…
//! let bwd = PathKey::root().child(CallSiteId(3)).child(CallSiteId(7));
//! // …and gets the identical interned node back.
//! assert_eq!(fwd, bwd);
//! assert_eq!(fwd.hash_value(), bwd.hash_value());
//! assert_eq!(fwd.sites(), vec![CallSiteId(3), CallSiteId(7)]);
//! ```

use parking_lot::Mutex;
use rdg_graph::CallSiteId;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// Quiescent points counted since the last epoch flush (see
/// [`PathKey::note_run_quiescent`]).
static QUIESCENT_POINTS: AtomicU32 = AtomicU32::new(0);

/// Flush the interner after this many quiescent points regardless of size.
const FLUSH_EVERY_QUIESCENT: u32 = 64;
/// Minimum quiescent points before a size-triggered flush (avoids
/// thrashing a workload that legitimately holds a big live path set).
const FLUSH_MIN_QUIESCENT: u32 = 8;
/// Size-triggered flush threshold, in interned path nodes.
const FLUSH_LEN_TRIGGER: usize = 4096;

#[derive(Debug)]
struct PathNode {
    parent: PathKey,
    site: CallSiteId,
    hash: u64,
    len: u32,
}

/// An invocation path: the chain of call sites from the root frame.
///
/// Cheap to clone (one `Arc` bump) and to extend (one interner lookup);
/// structurally equal paths are pointer-equal (see the module docs), so
/// equality is a pointer compare and hashing reads a precomputed value.
#[derive(Clone, Debug, Default)]
pub struct PathKey(Option<Arc<PathNode>>);

/// Identity for the root path's hash (FNV-1a offset basis).
const ROOT_HASH: u64 = 0xcbf29ce484222325;

/// Shard count for the interner (must be a power of two).
const N_SHARDS: usize = 64;

/// Interner key: the parent node's address (0 for the root) plus the site.
type InternKey = (usize, u32);

/// A multiplicative hasher for [`InternKey`]s — the keys are already
/// well-distributed pointers, so SipHash would be wasted work on the
/// invoke hot path.
#[derive(Default)]
struct FxLiteHasher(u64);

impl Hasher for FxLiteHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0xff51afd7ed558ccd);
    }
}

struct Interner {
    shards: Vec<Mutex<HashMap<InternKey, PathKey, BuildHasherDefault<FxLiteHasher>>>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: (0..N_SHARDS)
            .map(|_| Mutex::new(HashMap::default()))
            .collect(),
    })
}

impl Interner {
    fn shard(
        &self,
        key: &InternKey,
    ) -> &Mutex<HashMap<InternKey, PathKey, BuildHasherDefault<FxLiteHasher>>> {
        // Pointers are aligned: shift off the low zero bits before mixing
        // so consecutive allocations land in different shards.
        let mixed = ((key.0 as u64 >> 4) ^ (key.1 as u64).wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_mul(0xff51afd7ed558ccd);
        &self.shards[(mixed >> 32) as usize & (N_SHARDS - 1)]
    }
}

impl PathKey {
    /// The root path (the main graph's frame).
    pub fn root() -> Self {
        PathKey(None)
    }

    /// Extends this path with one call site.
    ///
    /// Hash-consed: extending the same parent with the same site returns
    /// the same interned node, so this is a table lookup in the steady
    /// state and allocates only the first time a path is ever seen.
    pub fn child(&self, site: CallSiteId) -> Self {
        let parent_ptr = self.0.as_ref().map_or(0usize, |a| Arc::as_ptr(a) as usize);
        let key: InternKey = (parent_ptr, site.0);
        let shard = interner().shard(&key);
        let mut map = shard.lock();
        if let Some(k) = map.get(&key) {
            return k.clone();
        }
        let parent_hash = self.hash_value();
        // Mixing function: a 64-bit FNV-style combine keeps chains cheap and
        // collision-resistant enough for a cache (equality still verifies).
        let hash = parent_hash
            .wrapping_mul(0x100000001b3)
            .wrapping_add(0x9e3779b97f4a7c15 ^ (site.0 as u64).wrapping_mul(0xff51afd7ed558ccd));
        let k = PathKey(Some(Arc::new(PathNode {
            parent: self.clone(),
            site,
            hash,
            len: self.len() + 1,
        })));
        map.insert(key, k.clone());
        k
    }

    /// Number of call sites in the path (0 for the root).
    pub fn len(&self) -> u32 {
        self.0.as_ref().map_or(0, |n| n.len)
    }

    /// Returns `true` for the root path.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// The precomputed chain hash.
    pub fn hash_value(&self) -> u64 {
        self.0.as_ref().map_or(ROOT_HASH, |n| n.hash)
    }

    /// The sites from root to leaf (diagnostics; allocates).
    pub fn sites(&self) -> Vec<CallSiteId> {
        let mut out = Vec::with_capacity(self.len() as usize);
        let mut cur = &self.0;
        while let Some(n) = cur {
            out.push(n.site);
            cur = &n.parent.0;
        }
        out.reverse();
        out
    }

    /// Total number of path nodes held by the process-wide interner
    /// (diagnostics; locks every shard).
    pub fn interner_len() -> usize {
        interner().shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Flushes retired nodes from the process-wide interner, returning the
    /// number of nodes reclaimed.
    ///
    /// A node is retired when nothing outside the interner references it:
    /// no live [`PathKey`] held by a frame, cache, or caller, and no
    /// interned child whose `parent` link pins it. Retired leaves are
    /// evicted first; each eviction may retire its parent in turn, and
    /// that cascade runs on an explicit worklist — never by recursive
    /// `Drop` — so flushing arbitrarily deep retired chains is
    /// stack-safe.
    ///
    /// Safe to call at any time: live keys (and every ancestor on their
    /// spine) are never touched, and a key that races a flush simply
    /// re-interns its path on next extension, with the structural
    /// fallback in `PartialEq` keeping old and new nodes equal. Intended
    /// for quiescent points — between training epochs or when a serving
    /// session shuts down — where varied-shape workloads would otherwise
    /// grow the table without bound.
    pub fn flush_interner() -> usize {
        let it = interner();
        let mut worklist: Vec<Arc<PathNode>> = Vec::new();
        // Phase 1: sweep each shard for nodes only the interner still
        // holds (strong count 1: the map's own clone). An interned child
        // pins its parent through `PathNode::parent`, so this set is
        // exactly the retired leaves.
        for shard in &it.shards {
            let mut map = shard.lock();
            let dead: Vec<InternKey> = map
                .iter()
                .filter(|(_, v)| v.0.as_ref().map_or(false, |a| Arc::strong_count(a) == 1))
                .map(|(k, _)| *k)
                .collect();
            for k in dead {
                if let Some(PathKey(Some(node))) = map.remove(&k) {
                    worklist.push(node);
                }
            }
        }
        // Phase 2: tear down each retired node and cascade to its parent
        // iteratively. Stealing the parent link before the node drops is
        // what keeps deep chains off the call stack.
        let mut flushed = 0usize;
        while let Some(node) = worklist.pop() {
            let Ok(mut inner) = Arc::try_unwrap(node) else {
                // Lost a race to a concurrent re-reference; the clone we
                // dropped leaves the node alive for its new holder.
                continue;
            };
            flushed += 1;
            let parent = std::mem::replace(&mut inner.parent, PathKey::root());
            drop(inner);
            if let Some(parent_arc) = parent.0 {
                let gp_ptr = parent_arc
                    .parent
                    .0
                    .as_ref()
                    .map_or(0usize, |a| Arc::as_ptr(a) as usize);
                let key: InternKey = (gp_ptr, parent_arc.site.0);
                let shard = it.shard(&key);
                let mut map = shard.lock();
                // Retire the parent only if the map still holds this very
                // node and the only references left are the map's clone
                // plus ours — i.e. we just dropped its last child.
                let retired = matches!(
                    map.get(&key),
                    Some(PathKey(Some(e)))
                        if Arc::ptr_eq(e, &parent_arc) && Arc::strong_count(&parent_arc) == 2
                );
                if retired {
                    map.remove(&key);
                    drop(map);
                    worklist.push(parent_arc);
                }
            }
        }
        flushed
    }

    /// Notes that a run (or wave of runs) has fully completed — a
    /// *quiescent point* where no frame holds a [`PathKey`] — and
    /// periodically flushes the interner.
    ///
    /// Long-lived sessions doing bare `run`/`run_many` never pass a serve
    /// shutdown, so without this hook every distinct recursion shape they
    /// ever executed stays interned for the life of the process
    /// (value-dependent `Cond` branching makes paths effectively
    /// per-input, so varied workloads grow the table without bound). The
    /// flush is epoch-scoped: it runs every `FLUSH_EVERY_QUIESCENT`
    /// quiescent points, or sooner once the table exceeds
    /// `FLUSH_LEN_TRIGGER` nodes, and reclaims only retired chains —
    /// paths shared with in-flight runs survive untouched.
    pub fn note_run_quiescent() {
        let n = QUIESCENT_POINTS.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= FLUSH_EVERY_QUIESCENT
            || (n >= FLUSH_MIN_QUIESCENT && Self::interner_len() > FLUSH_LEN_TRIGGER)
        {
            QUIESCENT_POINTS.store(0, Ordering::Relaxed);
            Self::flush_interner();
        }
    }

    /// Returns `true` when `self` and `other` share the same interned node
    /// (or are both the root). Because every non-root key is produced by
    /// [`PathKey::child`], this coincides with structural equality.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl PartialEq for PathKey {
    fn eq(&self, other: &Self) -> bool {
        // Interning makes pointer equality complete, but keep the
        // structural walk as a correctness backstop so `Eq` never depends
        // on every key having gone through the interner.
        if self.ptr_eq(other) {
            return true;
        }
        if self.hash_value() != other.hash_value() || self.len() != other.len() {
            return false;
        }
        let (mut a, mut b) = (&self.0, &other.0);
        loop {
            match (a, b) {
                (None, None) => return true,
                (Some(x), Some(y)) => {
                    if Arc::ptr_eq(x, y) {
                        return true;
                    }
                    if x.site != y.site {
                        return false;
                    }
                    a = &x.parent.0;
                    b = &y.parent.0;
                }
                _ => return false,
            }
        }
    }
}

impl Eq for PathKey {}

impl Hash for PathKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash_value());
    }
}

impl std::fmt::Display for PathKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "/")?;
        for s in self.sites() {
            write!(f, "{}/", s.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_empty() {
        let r = PathKey::root();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r, PathKey::root());
    }

    #[test]
    fn children_extend_and_differ() {
        let r = PathKey::root();
        let a = r.child(CallSiteId(1));
        let b = r.child(CallSiteId(2));
        assert_eq!(a.len(), 1);
        assert_ne!(a, b);
        assert_ne!(a, r);
        let aa = a.child(CallSiteId(2));
        let bb = b.child(CallSiteId(1));
        // Different orderings of the same sites must differ.
        assert_ne!(aa, bb);
    }

    #[test]
    fn reconstructed_paths_are_equal() {
        // The backward pass rebuilds paths from scratch; equality must hold
        // structurally, not just by pointer.
        let fwd = PathKey::root().child(CallSiteId(3)).child(CallSiteId(7));
        let bwd = PathKey::root().child(CallSiteId(3)).child(CallSiteId(7));
        assert_eq!(fwd, bwd);
        assert_eq!(fwd.hash_value(), bwd.hash_value());
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |p: &PathKey| {
            let mut s = DefaultHasher::new();
            p.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&fwd), h(&bwd));
    }

    #[test]
    fn interning_makes_paths_pointer_equal() {
        let a = PathKey::root().child(CallSiteId(41)).child(CallSiteId(42));
        let b = PathKey::root().child(CallSiteId(41)).child(CallSiteId(42));
        assert!(a.ptr_eq(&b), "interned twins must share the node");
        // Clones stay pointer-equal, of course.
        assert!(a.clone().ptr_eq(&b));
        // And re-creating the key does not grow the interner. (Compare
        // with <=: a concurrent serve-shutdown flush elsewhere in this
        // binary may shrink the table between the two measurements.)
        let before = PathKey::interner_len();
        let _c = PathKey::root().child(CallSiteId(41)).child(CallSiteId(42));
        assert!(PathKey::interner_len() <= before);
    }

    #[test]
    fn sites_round_trip() {
        let p = PathKey::root()
            .child(CallSiteId(1))
            .child(CallSiteId(5))
            .child(CallSiteId(9));
        assert_eq!(p.sites(), vec![CallSiteId(1), CallSiteId(5), CallSiteId(9)]);
        assert_eq!(p.to_string(), "/1/5/9/");
    }

    #[test]
    fn deep_paths_do_not_collide() {
        // Build many distinct deep paths and check pairwise inequality via a
        // set (hash collisions would surface as set collisions + eq failure).
        use std::collections::HashSet;
        let mut set = HashSet::new();
        for i in 0..100u32 {
            let mut p = PathKey::root();
            for j in 0..20u32 {
                p = p.child(CallSiteId(i * 31 + j));
            }
            assert!(set.insert(p));
        }
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        // Many threads racing to intern the same chain must all observe
        // pointer-equal keys.
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    let mut p = PathKey::root();
                    for j in 0..64u32 {
                        p = p.child(CallSiteId(7_000_000 + j));
                    }
                    p
                })
            })
            .collect();
        let keys: Vec<PathKey> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for k in &keys[1..] {
            assert!(keys[0].ptr_eq(k));
        }
    }
}
