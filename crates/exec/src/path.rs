//! Invocation paths: hash-consed chains of call sites.
//!
//! The paper (§5, "Backpropagation cache implementation") keys each cached
//! forward value by "the InvokeOp's topological position within the SubGraph
//! combined with the key of the parent InvokeOp, guaranteeing uniqueness".
//! [`PathKey`] is exactly that: a persistent linked list of
//! [`CallSiteId`]s from the root frame, with a precomputed running hash so
//! map lookups don't walk the chain. Gradient SubGraphs reuse the forward
//! call-site ids, so a backward frame reconstructs the identical path and
//! finds its forward twin's activations.

use rdg_graph::CallSiteId;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

#[derive(Debug)]
struct PathNode {
    parent: PathKey,
    site: CallSiteId,
    hash: u64,
    len: u32,
}

/// An invocation path: the chain of call sites from the root frame.
///
/// Cheap to clone (one `Arc` bump) and to extend (one allocation); equality
/// first compares the precomputed hashes and lengths, then walks.
#[derive(Clone, Debug, Default)]
pub struct PathKey(Option<Arc<PathNode>>);

impl PathKey {
    /// The root path (the main graph's frame).
    pub fn root() -> Self {
        PathKey(None)
    }

    /// Extends this path with one call site.
    pub fn child(&self, site: CallSiteId) -> Self {
        let parent_hash = self.hash_value();
        // Mixing function: a 64-bit FNV-style combine keeps chains cheap and
        // collision-resistant enough for a cache (equality still verifies).
        let hash = parent_hash
            .wrapping_mul(0x100000001b3)
            .wrapping_add(0x9e3779b97f4a7c15 ^ (site.0 as u64).wrapping_mul(0xff51afd7ed558ccd));
        PathKey(Some(Arc::new(PathNode {
            parent: self.clone(),
            site,
            hash,
            len: self.len() + 1,
        })))
    }

    /// Number of call sites in the path (0 for the root).
    pub fn len(&self) -> u32 {
        self.0.as_ref().map_or(0, |n| n.len)
    }

    /// Returns `true` for the root path.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// The precomputed chain hash.
    pub fn hash_value(&self) -> u64 {
        self.0.as_ref().map_or(0xcbf29ce484222325, |n| n.hash)
    }

    /// The sites from root to leaf (diagnostics; allocates).
    pub fn sites(&self) -> Vec<CallSiteId> {
        let mut out = Vec::with_capacity(self.len() as usize);
        let mut cur = &self.0;
        while let Some(n) = cur {
            out.push(n.site);
            cur = &n.parent.0;
        }
        out.reverse();
        out
    }
}

impl PartialEq for PathKey {
    fn eq(&self, other: &Self) -> bool {
        if self.hash_value() != other.hash_value() || self.len() != other.len() {
            return false;
        }
        // Hashes agree: verify by walking (pointer-equality shortcuts the
        // common shared-prefix case).
        let (mut a, mut b) = (&self.0, &other.0);
        loop {
            match (a, b) {
                (None, None) => return true,
                (Some(x), Some(y)) => {
                    if Arc::ptr_eq(x, y) {
                        return true;
                    }
                    if x.site != y.site {
                        return false;
                    }
                    a = &x.parent.0;
                    b = &y.parent.0;
                }
                _ => return false,
            }
        }
    }
}

impl Eq for PathKey {}

impl Hash for PathKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash_value());
    }
}

impl std::fmt::Display for PathKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "/")?;
        for s in self.sites() {
            write!(f, "{}/", s.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_empty() {
        let r = PathKey::root();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r, PathKey::root());
    }

    #[test]
    fn children_extend_and_differ() {
        let r = PathKey::root();
        let a = r.child(CallSiteId(1));
        let b = r.child(CallSiteId(2));
        assert_eq!(a.len(), 1);
        assert_ne!(a, b);
        assert_ne!(a, r);
        let aa = a.child(CallSiteId(2));
        let bb = b.child(CallSiteId(1));
        // Different orderings of the same sites must differ.
        assert_ne!(aa, bb);
    }

    #[test]
    fn reconstructed_paths_are_equal() {
        // The backward pass rebuilds paths from scratch; equality must hold
        // structurally, not just by pointer.
        let fwd = PathKey::root().child(CallSiteId(3)).child(CallSiteId(7));
        let bwd = PathKey::root().child(CallSiteId(3)).child(CallSiteId(7));
        assert_eq!(fwd, bwd);
        assert_eq!(fwd.hash_value(), bwd.hash_value());
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |p: &PathKey| {
            let mut s = DefaultHasher::new();
            p.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&fwd), h(&bwd));
    }

    #[test]
    fn sites_round_trip() {
        let p = PathKey::root()
            .child(CallSiteId(1))
            .child(CallSiteId(5))
            .child(CallSiteId(9));
        assert_eq!(p.sites(), vec![CallSiteId(1), CallSiteId(5), CallSiteId(9)]);
        assert_eq!(p.to_string(), "/1/5/9/");
    }

    #[test]
    fn deep_paths_do_not_collide() {
        // Build many distinct deep paths and check pairwise inequality via a
        // set (hash collisions would surface as set collisions + eq failure).
        use std::collections::HashSet;
        let mut set = HashSet::new();
        for i in 0..100u32 {
            let mut p = PathKey::root();
            for j in 0..20u32 {
                p = p.child(CallSiteId(i * 31 + j));
            }
            assert!(set.insert(p));
        }
        assert_eq!(set.len(), 100);
    }
}
