//! Precompiled scheduling metadata: one [`ExecutionPlan`] per graph.
//!
//! A [`ModulePlan`] is computed **once** per module and shared by every
//! frame that ever activates one of its graphs. This is the "precompile the
//! per-invocation bookkeeping" lesson of recursive dataflow systems: a
//! recursive model invokes the same SubGraph thousands of times per step,
//! so anything derivable from the graph alone — topological order,
//! in-degree counts, consumer lists, port fetch counts, spawn-time
//! resolvable nodes — must be derived once here, never per frame.
//!
//! Concretely, an [`ExecutionPlan`] precomputes:
//!
//! * `consumers` / `pending` / `fetch_counts` — the dependency-counting
//!   wiring the executor uses to decide readiness and when an output's last
//!   reader may *move* the tensor out (consumer refcounting).
//! * `topo` — a topological order of the graph (diagnostics, deterministic
//!   iteration, and the order in which the prelude publishes).
//! * `prelude` — the source nodes whose value is known at frame-spawn time
//!   without running a kernel: `Input` (the frame's argument) and `Const`
//!   (the planned tensor). The executor publishes these directly while it
//!   spawns the frame, so an invocation of a typical SubGraph enqueues only
//!   the first *real* operation instead of a wave of trivial ones.
//! * `queued_sources` — the remaining zero-input nodes (e.g. `Param`
//!   reads), scheduled through the ready queue as usual.
//! * keep flags — which node outputs training runs must write to the
//!   backprop cache.
//! * a pooled free-list of frame cores (pending counters + value slots),
//!   so frame activation reuses allocations across invocations and runs.
//!
//! # Example
//!
//! ```
//! use rdg_exec::ModulePlan;
//! use rdg_graph::{GraphRef, ModuleBuilder};
//! use std::sync::Arc;
//!
//! let mut mb = ModuleBuilder::new();
//! let a = mb.const_f32(2.0);
//! let b = mb.add_const(a, 1.0).unwrap();
//! mb.set_outputs(&[b]).unwrap();
//! let plan = ModulePlan::new(Arc::new(mb.finish().unwrap())).unwrap();
//!
//! let main = plan.plan(GraphRef::Main);
//! assert_eq!(main.topo.len(), 2);
//! assert_eq!(main.prelude.len(), 1); // the constant resolves at spawn
//! assert!(main.queued_sources.is_empty());
//! ```

use rdg_graph::{GraphRef, Module, NodeId, OpKind, SubGraphId};
use rdg_tensor::{DType, Tensor};
use std::sync::Arc;

/// How one prelude node's outputs are produced at frame-spawn time.
pub enum PreludeValue {
    /// A graph `Input`: cloned from the frame's argument vector.
    Arg {
        /// Position in the frame's argument list.
        index: usize,
        /// Declared element type (validated against the fed tensor).
        dtype: DType,
    },
    /// A graph `Const`: the tensor is captured here at plan time.
    Const(Tensor),
}

/// One node the executor resolves inline while spawning a frame.
pub struct PreludeEntry {
    /// The node whose (single) output is published.
    pub node: NodeId,
    /// Where its value comes from.
    pub value: PreludeValue,
}

/// Per-graph scheduling metadata, computed once and reused by every frame.
pub struct ExecutionPlan {
    /// For each node, the distinct nodes consuming any of its outputs.
    pub consumers: Vec<Vec<NodeId>>,
    /// For each node, the number of distinct producers it waits on
    /// (the in-degree counts seeding each frame's countdown).
    pub pending: Vec<u32>,
    /// For each node, the total number of value fetches it will receive
    /// (input references across all consumers plus graph-output reads).
    pub fetch_counts: Vec<u32>,
    /// A topological order of the graph. `prelude` and `queued_sources`
    /// are derived in this order, so spawn-time publishing is
    /// deterministic.
    pub topo: Vec<NodeId>,
    /// Nodes with no producers: ready the moment the frame spawns.
    pub sources: Vec<NodeId>,
    /// The subset of `sources` resolved inline at spawn (`Input`/`Const`).
    pub prelude: Vec<PreludeEntry>,
    /// The subset of `sources` that still goes through the ready queue.
    pub queued_sources: Vec<NodeId>,
    /// Nodes whose output values must be written to the backprop cache.
    pub keep_value: Vec<bool>,
    /// Nodes whose output shapes must be written to the shape cache.
    pub keep_shape: Vec<bool>,
    /// Per-node batchability: `Some` iff the op is row/column stackable
    /// across concurrent frames (see [`crate::batch::fuse_kind`]). Computed
    /// here so dispatch-time grouping is an index, not a shape derivation.
    pub fuse: Vec<Option<crate::batch::FuseKind>>,
    /// Statically inferred abstract shape per node output port, from the
    /// plan-time analyzer's interprocedural fixpoint. `Known` dims here are
    /// guaranteed by the analysis; consumers may specialize on them.
    pub shapes: Vec<Vec<rdg_graph::analyze::AbsShape>>,
    /// Pooled frame cores (pending counters + value slots) recycled across
    /// activations of this graph.
    pub(crate) pool: crate::executor::CorePool,
}

impl ExecutionPlan {
    fn build(module: &Module, gref: GraphRef) -> rdg_graph::Result<Self> {
        let g = module.graph(gref);
        let n = g.len();
        let consumers = g.consumers();
        let pending = g.pending_counts();
        let topo = g.topo_order(&module.graph_name(gref))?;
        let mut fetch_counts = vec![0u32; n];
        for node in &g.nodes {
            for inp in &node.inputs {
                fetch_counts[inp.node.0 as usize] += 1;
            }
        }
        for out in &g.outputs {
            fetch_counts[out.node.0 as usize] += 1;
        }
        let sources: Vec<NodeId> = (0..n)
            .filter(|&i| pending[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        // Split the sources into spawn-resolvable prelude nodes and the
        // rest, in topological order (the order the executor publishes the
        // prelude at spawn). Only ops whose value is a pure function of the
        // plan or the frame's arguments qualify; `Param` reads stay queued
        // because the store mutates between runs.
        let mut prelude = Vec::new();
        let mut queued_sources = Vec::new();
        for &s in topo.iter().filter(|&&n| pending[n.0 as usize] == 0) {
            match &g.node(s).op {
                OpKind::Input { index, dtype } => prelude.push(PreludeEntry {
                    node: s,
                    value: PreludeValue::Arg {
                        index: *index,
                        dtype: *dtype,
                    },
                }),
                OpKind::Const(t) => prelude.push(PreludeEntry {
                    node: s,
                    value: PreludeValue::Const(t.clone()),
                }),
                _ => queued_sources.push(s),
            }
        }
        let mut keep_value = vec![false; n];
        if let Some(set) = module.keep_sets.get(&gref) {
            for &(node, _port) in set {
                keep_value[node.0 as usize] = true;
            }
        }
        let mut keep_shape = vec![false; n];
        if let Some(set) = module.shape_keep_sets.get(&gref) {
            for &(node, _port) in set {
                keep_shape[node.0 as usize] = true;
            }
        }
        let fuse = g
            .nodes
            .iter()
            .map(|node| crate::batch::fuse_kind(&node.op))
            .collect();
        Ok(ExecutionPlan {
            consumers,
            pending,
            fetch_counts,
            topo,
            sources,
            prelude,
            queued_sources,
            keep_value,
            keep_shape,
            fuse,
            shapes: Vec::new(),
            pool: crate::executor::CorePool::default(),
        })
    }

    /// Number of nodes in the planned graph.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` for the degenerate empty graph.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// All plans for a module, plus the module itself.
pub struct ModulePlan {
    /// The planned module.
    pub module: Arc<Module>,
    main: ExecutionPlan,
    subs: Vec<ExecutionPlan>,
}

impl ModulePlan {
    /// Validates and statically analyzes the module, then computes every
    /// graph's plan. Analyzer *errors* (definite shape/dtype mismatches,
    /// ill-founded recursion, double publishes) reject the module before a
    /// single frame spawns; the inferred abstract shapes are recorded on
    /// each [`ExecutionPlan`] for downstream specialization.
    pub fn new(module: Arc<Module>) -> rdg_graph::Result<Arc<Self>> {
        module.validate()?;
        let report = rdg_graph::analyze::check_module(
            &module,
            &rdg_graph::analyze::AnalysisConfig::default(),
        )?;
        let mut main = ExecutionPlan::build(&module, GraphRef::Main)?;
        main.shapes = report.shapes.graph_shapes(GraphRef::Main).clone();
        let mut subs = (0..module.subgraphs.len())
            .map(|i| ExecutionPlan::build(&module, GraphRef::Sub(SubGraphId(i as u32))))
            .collect::<rdg_graph::Result<Vec<_>>>()?;
        for (i, sub) in subs.iter_mut().enumerate() {
            sub.shapes = report
                .shapes
                .graph_shapes(GraphRef::Sub(SubGraphId(i as u32)))
                .clone();
        }
        Ok(Arc::new(ModulePlan { module, main, subs }))
    }

    /// The plan for one graph.
    pub fn plan(&self, gref: GraphRef) -> &ExecutionPlan {
        match gref {
            GraphRef::Main => &self.main,
            GraphRef::Sub(id) => &self.subs[id.0 as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_graph::ModuleBuilder;
    use rdg_tensor::Tensor;

    #[test]
    fn plan_counts_match_simple_graph() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(1.0);
        let b = mb.const_f32(2.0);
        let c = mb.add(a, b).unwrap();
        let d = mb.mul(c, c).unwrap(); // two references to c, one consumer
        mb.set_outputs(&[d]).unwrap();
        let m = Arc::new(mb.finish().unwrap());
        let plan = ModulePlan::new(m).unwrap();
        let p = plan.plan(GraphRef::Main);
        // a, b are sources — and both are constants, so they are prelude.
        assert_eq!(p.sources.len(), 2);
        assert_eq!(p.prelude.len(), 2);
        assert!(p.queued_sources.is_empty());
        // c has one distinct consumer (d) but two fetches.
        assert_eq!(p.consumers[2].len(), 1);
        assert_eq!(p.fetch_counts[2], 2);
        // d is fetched once: as the graph output.
        assert_eq!(p.fetch_counts[3], 1);
        assert_eq!(p.pending[3], 1, "d waits on one distinct producer");
        // The topological order covers the graph and starts at a source.
        assert_eq!(p.topo.len(), 4);
        assert!(p.topo[0] == NodeId(0) || p.topo[0] == NodeId(1));
    }

    #[test]
    fn param_sources_stay_queued() {
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(1.0)).unwrap();
        let c = mb.const_f32(2.0);
        let y = mb.mul(w, c).unwrap();
        mb.set_outputs(&[y]).unwrap();
        let plan = ModulePlan::new(Arc::new(mb.finish().unwrap())).unwrap();
        let p = plan.plan(GraphRef::Main);
        // The constant resolves at spawn; the parameter read must not (its
        // value changes between runs).
        assert_eq!(p.prelude.len(), 1);
        assert_eq!(p.queued_sources.len(), 1);
        assert_eq!(p.sources.len(), 2);
    }

    #[test]
    fn keep_flags_come_from_module() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(1.0);
        let b = mb.neg(a).unwrap();
        mb.set_outputs(&[b]).unwrap();
        let mut m = mb.finish().unwrap();
        m.keep_sets
            .entry(GraphRef::Main)
            .or_default()
            .insert((NodeId(0), 0));
        let plan = ModulePlan::new(Arc::new(m)).unwrap();
        let p = plan.plan(GraphRef::Main);
        assert!(p.keep_value[0]);
        assert!(!p.keep_value[1]);
    }

    #[test]
    fn invalid_module_is_rejected() {
        let mut m = Module::default();
        // Forge an invalid main graph: op referencing a dangling node.
        m.main.push_node(
            rdg_graph::OpKind::Neg,
            vec![rdg_graph::PortRef {
                node: NodeId(9),
                port: 0,
            }],
            vec![rdg_tensor::DType::F32],
        );
        assert!(ModulePlan::new(Arc::new(m)).is_err());
        let _ = Tensor::zeros([1]); // silence unused import in some cfgs
    }
}
