//! Precomputed scheduling metadata, one plan per graph.
//!
//! A [`ModulePlan`] is computed once per module and shared by all frames:
//! consumer lists (who to notify on completion), pending counts (how many
//! distinct producers each node waits on), fetch counts (how many times each
//! node's outputs will be read — the consumer-refcounting that enables
//! in-place copy-on-write updates), source nodes (enqueued at frame spawn),
//! and keep flags (which nodes the training mode must cache).

use rdg_graph::{GraphRef, Module, NodeId, SubGraphId};
use std::sync::Arc;

/// Per-graph scheduling metadata.
pub struct GraphPlan {
    /// For each node, the distinct nodes consuming any of its outputs.
    pub consumers: Vec<Vec<NodeId>>,
    /// For each node, the number of distinct producers it waits on.
    pub pending: Vec<u32>,
    /// For each node, the total number of value fetches it will receive
    /// (input references across all consumers plus graph-output reads).
    pub fetch_counts: Vec<u32>,
    /// Nodes with no producers: enqueued when the frame spawns.
    pub sources: Vec<NodeId>,
    /// Nodes whose output values must be written to the backprop cache.
    pub keep_value: Vec<bool>,
    /// Nodes whose output shapes must be written to the shape cache.
    pub keep_shape: Vec<bool>,
}

impl GraphPlan {
    fn build(module: &Module, gref: GraphRef) -> Self {
        let g = module.graph(gref);
        let n = g.len();
        let consumers = g.consumers();
        let pending = g.pending_counts();
        let mut fetch_counts = vec![0u32; n];
        for node in &g.nodes {
            for inp in &node.inputs {
                fetch_counts[inp.node.0 as usize] += 1;
            }
        }
        for out in &g.outputs {
            fetch_counts[out.node.0 as usize] += 1;
        }
        let sources = (0..n)
            .filter(|&i| pending[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        let mut keep_value = vec![false; n];
        if let Some(set) = module.keep_sets.get(&gref) {
            for &(node, _port) in set {
                keep_value[node.0 as usize] = true;
            }
        }
        let mut keep_shape = vec![false; n];
        if let Some(set) = module.shape_keep_sets.get(&gref) {
            for &(node, _port) in set {
                keep_shape[node.0 as usize] = true;
            }
        }
        GraphPlan {
            consumers,
            pending,
            fetch_counts,
            sources,
            keep_value,
            keep_shape,
        }
    }
}

/// All plans for a module, plus the module itself.
pub struct ModulePlan {
    /// The planned module.
    pub module: Arc<Module>,
    main: GraphPlan,
    subs: Vec<GraphPlan>,
}

impl ModulePlan {
    /// Validates the module and computes every graph's plan.
    pub fn new(module: Arc<Module>) -> rdg_graph::Result<Arc<Self>> {
        module.validate()?;
        let main = GraphPlan::build(&module, GraphRef::Main);
        let subs = (0..module.subgraphs.len())
            .map(|i| GraphPlan::build(&module, GraphRef::Sub(SubGraphId(i as u32))))
            .collect();
        Ok(Arc::new(ModulePlan { module, main, subs }))
    }

    /// The plan for one graph.
    pub fn plan(&self, gref: GraphRef) -> &GraphPlan {
        match gref {
            GraphRef::Main => &self.main,
            GraphRef::Sub(id) => &self.subs[id.0 as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_graph::ModuleBuilder;
    use rdg_tensor::Tensor;

    #[test]
    fn plan_counts_match_simple_graph() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(1.0);
        let b = mb.const_f32(2.0);
        let c = mb.add(a, b).unwrap();
        let d = mb.mul(c, c).unwrap(); // two references to c, one consumer
        mb.set_outputs(&[d]).unwrap();
        let m = Arc::new(mb.finish().unwrap());
        let plan = ModulePlan::new(m).unwrap();
        let p = plan.plan(GraphRef::Main);
        // a, b are sources.
        assert_eq!(p.sources.len(), 2);
        // c has one distinct consumer (d) but two fetches.
        assert_eq!(p.consumers[2].len(), 1);
        assert_eq!(p.fetch_counts[2], 2);
        // d is fetched once: as the graph output.
        assert_eq!(p.fetch_counts[3], 1);
        assert_eq!(p.pending[3], 1, "d waits on one distinct producer");
    }

    #[test]
    fn keep_flags_come_from_module() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(1.0);
        let b = mb.neg(a).unwrap();
        mb.set_outputs(&[b]).unwrap();
        let mut m = mb.finish().unwrap();
        m.keep_sets
            .entry(GraphRef::Main)
            .or_default()
            .insert((NodeId(0), 0));
        let plan = ModulePlan::new(Arc::new(m)).unwrap();
        let p = plan.plan(GraphRef::Main);
        assert!(p.keep_value[0]);
        assert!(!p.keep_value[1]);
    }

    #[test]
    fn invalid_module_is_rejected() {
        let mut m = Module::default();
        // Forge an invalid main graph: op referencing a dangling node.
        m.main.push_node(
            rdg_graph::OpKind::Neg,
            vec![rdg_graph::PortRef {
                node: NodeId(9),
                port: 0,
            }],
            vec![rdg_tensor::DType::F32],
        );
        assert!(ModulePlan::new(Arc::new(m)).is_err());
        let _ = Tensor::zeros([1]); // silence unused import in some cfgs
    }
}
