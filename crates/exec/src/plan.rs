//! Precompiled scheduling metadata: one [`ExecutionPlan`] per graph.
//!
//! A [`ModulePlan`] is computed **once** per module and shared by every
//! frame that ever activates one of its graphs. This is the "precompile the
//! per-invocation bookkeeping" lesson of recursive dataflow systems: a
//! recursive model invokes the same SubGraph thousands of times per step,
//! so anything derivable from the graph alone — topological order,
//! in-degree counts, consumer lists, port fetch counts, spawn-time
//! resolvable nodes — must be derived once here, never per frame.
//!
//! Concretely, an [`ExecutionPlan`] precomputes:
//!
//! * `consumers` / `pending` / `fetch_counts` — the dependency-counting
//!   wiring the executor uses to decide readiness and when an output's last
//!   reader may *move* the tensor out (consumer refcounting).
//! * `topo` — a topological order of the graph (diagnostics, deterministic
//!   iteration, and the order in which the prelude publishes).
//! * `prelude` — the source nodes whose value is known at frame-spawn time
//!   without running a kernel: `Input` (the frame's argument) and `Const`
//!   (the planned tensor). The executor publishes these directly while it
//!   spawns the frame, so an invocation of a typical SubGraph enqueues only
//!   the first *real* operation instead of a wave of trivial ones.
//! * `queued_sources` — the remaining zero-input nodes (e.g. `Param`
//!   reads), scheduled through the ready queue as usual.
//! * keep flags — which node outputs training runs must write to the
//!   backprop cache.
//! * a pooled free-list of frame cores (pending counters + value slots),
//!   so frame activation reuses allocations across invocations and runs.
//!
//! # Example
//!
//! ```
//! use rdg_exec::ModulePlan;
//! use rdg_graph::{GraphRef, ModuleBuilder};
//! use std::sync::Arc;
//!
//! let mut mb = ModuleBuilder::new();
//! let a = mb.const_f32(2.0);
//! let b = mb.add_const(a, 1.0).unwrap();
//! mb.set_outputs(&[b]).unwrap();
//! let plan = ModulePlan::new(Arc::new(mb.finish().unwrap())).unwrap();
//!
//! let main = plan.plan(GraphRef::Main);
//! assert_eq!(main.topo.len(), 2);
//! assert_eq!(main.prelude.len(), 1); // the constant resolves at spawn
//! assert!(main.queued_sources.is_empty());
//! ```

pub mod specialize;

use rdg_graph::{GraphRef, Module, NodeId, OpKind, SubGraphId};
use rdg_tensor::{DType, Tensor};
use specialize::{Provenance, SpecializeOptions};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How one prelude node's outputs are produced at frame-spawn time.
pub enum PreludeValue {
    /// A graph `Input`: cloned from the frame's argument vector.
    Arg {
        /// Position in the frame's argument list.
        index: usize,
        /// Declared element type (validated against the fed tensor).
        dtype: DType,
    },
    /// A graph `Const`: the tensor is captured here at plan time.
    Const(Tensor),
}

/// One node the executor resolves inline while spawning a frame.
pub struct PreludeEntry {
    /// The node whose (single) output is published.
    pub node: NodeId,
    /// Where its value comes from.
    pub value: PreludeValue,
}

/// Per-graph scheduling metadata, computed once and reused by every frame.
pub struct ExecutionPlan {
    /// For each node, the distinct nodes consuming any of its outputs.
    pub consumers: Vec<Vec<NodeId>>,
    /// For each node, the number of distinct producers it waits on
    /// (the in-degree counts seeding each frame's countdown).
    pub pending: Vec<u32>,
    /// For each node, the total number of value fetches it will receive
    /// (input references across all consumers plus graph-output reads).
    pub fetch_counts: Vec<u32>,
    /// A topological order of the graph. `prelude` and `queued_sources`
    /// are derived in this order, so spawn-time publishing is
    /// deterministic.
    pub topo: Vec<NodeId>,
    /// Nodes with no producers: ready the moment the frame spawns.
    pub sources: Vec<NodeId>,
    /// The subset of `sources` resolved inline at spawn (`Input`/`Const`).
    pub prelude: Vec<PreludeEntry>,
    /// The subset of `sources` that still goes through the ready queue.
    pub queued_sources: Vec<NodeId>,
    /// Nodes whose output values must be written to the backprop cache.
    pub keep_value: Vec<bool>,
    /// Nodes whose output shapes must be written to the shape cache.
    pub keep_shape: Vec<bool>,
    /// Per-node batchability: `Some` iff the op is row/column stackable
    /// across concurrent frames (see [`crate::batch::fuse_kind`]). Computed
    /// here so dispatch-time grouping is an index, not a shape derivation.
    pub fuse: Vec<Option<crate::batch::FuseKind>>,
    /// Statically inferred abstract shape per node output port, from the
    /// plan-time analyzer's interprocedural fixpoint. `Known` dims here are
    /// guaranteed by the analysis; consumers may specialize on them.
    pub shapes: Vec<Vec<rdg_graph::analyze::AbsShape>>,
    /// Pooled frame cores (pending counters + value slots) recycled across
    /// activations of this graph.
    pub(crate) pool: crate::executor::CorePool,
}

impl ExecutionPlan {
    fn build(module: &Module, gref: GraphRef) -> rdg_graph::Result<Self> {
        let g = module.graph(gref);
        let n = g.len();
        let consumers = g.consumers();
        let pending = g.pending_counts();
        let topo = g.topo_order(&module.graph_name(gref))?;
        let mut fetch_counts = vec![0u32; n];
        for node in &g.nodes {
            for inp in &node.inputs {
                fetch_counts[inp.node.0 as usize] += 1;
            }
        }
        for out in &g.outputs {
            fetch_counts[out.node.0 as usize] += 1;
        }
        let sources: Vec<NodeId> = (0..n)
            .filter(|&i| pending[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        // Split the sources into spawn-resolvable prelude nodes and the
        // rest, in topological order (the order the executor publishes the
        // prelude at spawn). Only ops whose value is a pure function of the
        // plan or the frame's arguments qualify; `Param` reads stay queued
        // because the store mutates between runs.
        let mut prelude = Vec::new();
        let mut queued_sources = Vec::new();
        for &s in topo.iter().filter(|&&n| pending[n.0 as usize] == 0) {
            match &g.node(s).op {
                OpKind::Input { index, dtype } => prelude.push(PreludeEntry {
                    node: s,
                    value: PreludeValue::Arg {
                        index: *index,
                        dtype: *dtype,
                    },
                }),
                OpKind::Const(t) => prelude.push(PreludeEntry {
                    node: s,
                    value: PreludeValue::Const(t.clone()),
                }),
                _ => queued_sources.push(s),
            }
        }
        let mut keep_value = vec![false; n];
        if let Some(set) = module.keep_sets.get(&gref) {
            for &(node, _port) in set {
                keep_value[node.0 as usize] = true;
            }
        }
        let mut keep_shape = vec![false; n];
        if let Some(set) = module.shape_keep_sets.get(&gref) {
            for &(node, _port) in set {
                keep_shape[node.0 as usize] = true;
            }
        }
        let fuse = g
            .nodes
            .iter()
            .map(|node| crate::batch::fuse_kind(&node.op))
            .collect();
        Ok(ExecutionPlan {
            consumers,
            pending,
            fetch_counts,
            topo,
            sources,
            prelude,
            queued_sources,
            keep_value,
            keep_shape,
            fuse,
            shapes: Vec::new(),
            pool: crate::executor::CorePool::default(),
        })
    }

    /// Number of nodes in the planned graph.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` for the degenerate empty graph.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// A promoted-but-unobserved feed signature, handed back by
/// [`ModulePlan::resolve_for_feeds`] so the caller can report the run's
/// frame count via [`ModulePlan::observe_run`] once it completes.
pub struct SpecKey(Vec<u8>);

/// Counters describing what the plan-time specializer has done for one
/// [`ModulePlan`] so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// `Invoke` nodes eliminated by inlining at plan build.
    pub inlined_invokes: usize,
    /// Runs dispatched to a promoted (specialized) plan.
    pub hits: u64,
    /// Runs that took the general frame machinery.
    pub misses: u64,
    /// Feed signatures promoted to specialized plans.
    pub promotions: u64,
    /// Specialized plans currently cached.
    pub promoted_plans: usize,
    /// Call frames (`Invoke` + statically resolved `Cond`) expanded away at
    /// plan time across all promotions.
    pub unrolled_frames: u64,
    /// Ops constant-folded through the kernels across all promotions.
    pub folded_ops: u64,
    /// Residual `Invoke`/`Cond` frames left in promoted plans (the general
    /// fallback edges inside otherwise-flat plans).
    pub residual_frames: u64,
}

/// One profiled feed signature: how often it recurred and (when a session
/// observed a completed run) how many frames the general path spawned for
/// it — the `PathKey`-derived signal that promotion is worth it.
#[derive(Default)]
struct ProfEntry {
    count: u32,
    max_frames: u64,
}

#[derive(Default)]
struct SpecTable {
    profile: HashMap<Vec<u8>, ProfEntry>,
    promoted: HashMap<Vec<u8>, Arc<ModulePlan>>,
    blacklist: HashSet<Vec<u8>>,
}

/// Feed signatures profiled before the table stops admitting new ones
/// (bounds memory under adversarial feed streams).
const PROFILE_CAP: usize = 4096;

/// Mutable specializer state attached to a plan built with specialization
/// enabled. Promoted plans live and die with the owning [`ModulePlan`] —
/// dropping the plan drops its whole specialized cache, so invalidation is
/// keyed exactly like the plan itself.
struct SpecState {
    opts: SpecializeOptions,
    inlined: usize,
    unrollable: bool,
    table: Mutex<SpecTable>,
    hits: AtomicU64,
    misses: AtomicU64,
    promotions: AtomicU64,
    unrolled_frames: AtomicU64,
    folded_ops: AtomicU64,
    residual_frames: AtomicU64,
}

impl SpecState {
    fn new(opts: SpecializeOptions, inlined: usize) -> Self {
        SpecState {
            opts,
            inlined,
            unrollable: false,
            table: Mutex::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            unrolled_frames: AtomicU64::new(0),
            folded_ops: AtomicU64::new(0),
            residual_frames: AtomicU64::new(0),
        }
    }
}

/// All plans for a module, plus the module itself.
pub struct ModulePlan {
    /// The planned module.
    pub module: Arc<Module>,
    main: ExecutionPlan,
    subs: Vec<ExecutionPlan>,
    /// Node provenance when this plan's graphs were rewritten by the
    /// specializer (inlined, or an unrolled promotion).
    provenance: Option<Provenance>,
    /// Specializer state; `None` when built with specialization disabled
    /// (and on promoted plans, which must not re-specialize).
    spec: Option<SpecState>,
}

impl ModulePlan {
    /// Validates and statically analyzes the module, then computes every
    /// graph's plan. Analyzer *errors* (definite shape/dtype mismatches,
    /// ill-founded recursion, double publishes) reject the module before a
    /// single frame spawns; the inferred abstract shapes are recorded on
    /// each [`ExecutionPlan`] for downstream specialization.
    ///
    /// Plan-time specialization runs with the environment-default options
    /// ([`SpecializeOptions::from_env`], i.e. the `RDG_SPECIALIZE` toggle);
    /// use [`ModulePlan::with_options`] to pin behavior programmatically.
    pub fn new(module: Arc<Module>) -> rdg_graph::Result<Arc<Self>> {
        Self::with_options(module, SpecializeOptions::from_env())
    }

    /// Like [`ModulePlan::new`], with explicit specializer options.
    pub fn with_options(
        module: Arc<Module>,
        opts: SpecializeOptions,
    ) -> rdg_graph::Result<Arc<Self>> {
        module.validate()?;
        let mut plan = if opts.inline {
            match specialize::inline_trivial_invokes(&module) {
                // The inlined module must independently survive validation
                // and analysis; if it somehow does not, the original module
                // is planned unchanged (inlining is an optimization, never
                // a new failure mode).
                Some(outcome) => {
                    let inlined_module = Arc::new(outcome.module);
                    match inlined_module
                        .validate()
                        .and_then(|()| Self::build_graphs(&inlined_module))
                    {
                        Ok((main, subs)) => ModulePlan {
                            module: inlined_module,
                            main,
                            subs,
                            provenance: Some(outcome.provenance),
                            spec: Some(SpecState::new(opts.clone(), outcome.inlined)),
                        },
                        Err(_) => Self::build_plain(module)?,
                    }
                }
                None => Self::build_plain(module)?,
            }
        } else {
            Self::build_plain(module)?
        };
        if opts.enabled() {
            let unrollable = opts.unroll && specialize::unroll_eligible(&plan.module);
            match &mut plan.spec {
                Some(s) => s.unrollable = unrollable,
                None => {
                    let mut s = SpecState::new(opts, 0);
                    s.unrollable = unrollable;
                    plan.spec = Some(s);
                }
            }
        }
        Ok(Arc::new(plan))
    }

    /// Plans a module with no specializer state attached.
    fn build_plain(module: Arc<Module>) -> rdg_graph::Result<ModulePlan> {
        let (main, subs) = Self::build_graphs(&module)?;
        Ok(ModulePlan {
            module,
            main,
            subs,
            provenance: None,
            spec: None,
        })
    }

    /// Analysis + per-graph plan construction (shared by every path).
    fn build_graphs(
        module: &Arc<Module>,
    ) -> rdg_graph::Result<(ExecutionPlan, Vec<ExecutionPlan>)> {
        let report = rdg_graph::analyze::check_module(
            module,
            &rdg_graph::analyze::AnalysisConfig::default(),
        )?;
        let mut main = ExecutionPlan::build(module, GraphRef::Main)?;
        main.shapes = report.shapes.graph_shapes(GraphRef::Main).clone();
        let mut subs = (0..module.subgraphs.len())
            .map(|i| ExecutionPlan::build(module, GraphRef::Sub(SubGraphId(i as u32))))
            .collect::<rdg_graph::Result<Vec<_>>>()?;
        for (i, sub) in subs.iter_mut().enumerate() {
            sub.shapes = report
                .shapes
                .graph_shapes(GraphRef::Sub(SubGraphId(i as u32)))
                .clone();
        }
        Ok((main, subs))
    }

    /// The plan for one graph.
    pub fn plan(&self, gref: GraphRef) -> &ExecutionPlan {
        match gref {
            GraphRef::Main => &self.main,
            GraphRef::Sub(id) => &self.subs[id.0 as usize],
        }
    }

    /// Node provenance for graphs the specializer rewrote: for each node of
    /// a rewritten graph, the `(graph, node)` of the original-module node it
    /// was copied from (`None` for synthesized nodes, e.g. materialized
    /// fold results). `None` when nothing was rewritten.
    pub fn provenance(&self) -> Option<&Provenance> {
        self.provenance.as_ref()
    }

    /// Resolves the plan to execute for one feed vector.
    ///
    /// With unrolling enabled, a feed signature that has recurred
    /// [`SpecializeOptions::hot_after`] times is promoted: the module is
    /// expanded for that signature (`specialize::unroll_for_feeds`) and
    /// the resulting flat plan is cached on this plan, so subsequent equal
    /// signatures dispatch with zero call/return frames. Everything else —
    /// cold signatures, blacklisted ones, failed expansions — takes the
    /// general frame machinery (`self`).
    ///
    /// The returned [`SpecKey`], when present, should be passed to
    /// [`ModulePlan::observe_run`] with the completed run's spawned-frame
    /// count; the profile uses it to skip signatures too small to pay for
    /// specialization.
    pub fn resolve_for_feeds(
        self: &Arc<Self>,
        feeds: &[Tensor],
    ) -> (Arc<ModulePlan>, Option<SpecKey>) {
        let Some(spec) = &self.spec else {
            return (Arc::clone(self), None);
        };
        if !spec.unrollable {
            return (Arc::clone(self), None);
        }
        let key = specialize::spec_key(feeds);
        let mut t = spec.table.lock().expect("spec table");
        if let Some(p) = t.promoted.get(&key) {
            spec.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(p), None);
        }
        if t.blacklist.contains(&key) {
            spec.misses.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(self), None);
        }
        if t.profile.len() >= PROFILE_CAP && !t.profile.contains_key(&key) {
            spec.misses.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(self), None);
        }
        let entry = t.profile.entry(key.clone()).or_default();
        entry.count += 1;
        let hot = entry.count >= spec.opts.hot_after
            // A signature whose observed general-path runs spawn fewer than
            // two frames has nothing to unroll; an unobserved one (serve
            // path) is given the benefit of the doubt — the worthwhileness
            // check below rejects frame-free expansions anyway.
            && (entry.max_frames >= 2 || entry.max_frames == 0);
        if hot && t.promoted.len() < spec.opts.max_promoted {
            // The expander recurses one Rust frame per plan-time call-chain
            // level (bounded, but deep × debug-size frames can exceed a
            // 2 MB caller stack), so the one-time expansion runs on a
            // dedicated big-stack thread.
            let expanded = std::thread::scope(|s| {
                std::thread::Builder::new()
                    .name("rdg-specialize".into())
                    .stack_size(16 * 1024 * 1024)
                    .spawn_scoped(s, || specialize::unroll_for_feeds(self, feeds, &spec.opts))
                    .map_or(None, |h| match h.join() {
                        Ok(outcome) => outcome,
                        Err(p) => std::panic::resume_unwind(p),
                    })
            });
            let promoted = expanded.and_then(|outcome| {
                let counters = outcome.counters();
                let module = Arc::new(outcome.module);
                Self::with_options(module, SpecializeOptions::disabled())
                    .ok()
                    .map(|p| (p, outcome.provenance, counters))
            });
            match promoted {
                Some((plan, prov, (frames, folded, residuals))) => {
                    // Attach provenance to the freshly built plan (sole
                    // owner at this point, so the mutation is safe).
                    let mut plan = plan;
                    if let Some(p) = Arc::get_mut(&mut plan) {
                        let mut map = Provenance::new();
                        map.insert(GraphRef::Main, prov);
                        p.provenance = Some(map);
                    }
                    spec.promotions.fetch_add(1, Ordering::Relaxed);
                    spec.hits.fetch_add(1, Ordering::Relaxed);
                    spec.unrolled_frames.fetch_add(frames, Ordering::Relaxed);
                    spec.folded_ops.fetch_add(folded, Ordering::Relaxed);
                    spec.residual_frames.fetch_add(residuals, Ordering::Relaxed);
                    t.promoted.insert(key, Arc::clone(&plan));
                    return (plan, None);
                }
                None => {
                    t.blacklist.insert(key);
                    spec.misses.fetch_add(1, Ordering::Relaxed);
                    return (Arc::clone(self), None);
                }
            }
        }
        spec.misses.fetch_add(1, Ordering::Relaxed);
        (Arc::clone(self), Some(SpecKey(key)))
    }

    /// Feeds a completed general-path run's spawned-frame count back into
    /// the shape profile (see [`ModulePlan::resolve_for_feeds`]).
    pub fn observe_run(&self, key: SpecKey, frames_spawned: u64) {
        if let Some(spec) = &self.spec {
            let mut t = spec.table.lock().expect("spec table");
            if let Some(e) = t.profile.get_mut(&key.0) {
                e.max_frames = e.max_frames.max(frames_spawned);
            }
        }
    }

    /// Specializer counters for this plan (all zero when specialization is
    /// disabled).
    pub fn spec_stats(&self) -> SpecStats {
        match &self.spec {
            None => SpecStats::default(),
            Some(s) => SpecStats {
                inlined_invokes: s.inlined,
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                promotions: s.promotions.load(Ordering::Relaxed),
                promoted_plans: s.table.lock().expect("spec table").promoted.len(),
                unrolled_frames: s.unrolled_frames.load(Ordering::Relaxed),
                folded_ops: s.folded_ops.load(Ordering::Relaxed),
                residual_frames: s.residual_frames.load(Ordering::Relaxed),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_graph::ModuleBuilder;
    use rdg_tensor::Tensor;

    #[test]
    fn plan_counts_match_simple_graph() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(1.0);
        let b = mb.const_f32(2.0);
        let c = mb.add(a, b).unwrap();
        let d = mb.mul(c, c).unwrap(); // two references to c, one consumer
        mb.set_outputs(&[d]).unwrap();
        let m = Arc::new(mb.finish().unwrap());
        let plan = ModulePlan::new(m).unwrap();
        let p = plan.plan(GraphRef::Main);
        // a, b are sources — and both are constants, so they are prelude.
        assert_eq!(p.sources.len(), 2);
        assert_eq!(p.prelude.len(), 2);
        assert!(p.queued_sources.is_empty());
        // c has one distinct consumer (d) but two fetches.
        assert_eq!(p.consumers[2].len(), 1);
        assert_eq!(p.fetch_counts[2], 2);
        // d is fetched once: as the graph output.
        assert_eq!(p.fetch_counts[3], 1);
        assert_eq!(p.pending[3], 1, "d waits on one distinct producer");
        // The topological order covers the graph and starts at a source.
        assert_eq!(p.topo.len(), 4);
        assert!(p.topo[0] == NodeId(0) || p.topo[0] == NodeId(1));
    }

    #[test]
    fn param_sources_stay_queued() {
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(1.0)).unwrap();
        let c = mb.const_f32(2.0);
        let y = mb.mul(w, c).unwrap();
        mb.set_outputs(&[y]).unwrap();
        let plan = ModulePlan::new(Arc::new(mb.finish().unwrap())).unwrap();
        let p = plan.plan(GraphRef::Main);
        // The constant resolves at spawn; the parameter read must not (its
        // value changes between runs).
        assert_eq!(p.prelude.len(), 1);
        assert_eq!(p.queued_sources.len(), 1);
        assert_eq!(p.sources.len(), 2);
    }

    #[test]
    fn keep_flags_come_from_module() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(1.0);
        let b = mb.neg(a).unwrap();
        mb.set_outputs(&[b]).unwrap();
        let mut m = mb.finish().unwrap();
        m.keep_sets
            .entry(GraphRef::Main)
            .or_default()
            .insert((NodeId(0), 0));
        let plan = ModulePlan::new(Arc::new(m)).unwrap();
        let p = plan.plan(GraphRef::Main);
        assert!(p.keep_value[0]);
        assert!(!p.keep_value[1]);
    }

    #[test]
    fn invalid_module_is_rejected() {
        let mut m = Module::default();
        // Forge an invalid main graph: op referencing a dangling node.
        m.main.push_node(
            rdg_graph::OpKind::Neg,
            vec![rdg_graph::PortRef {
                node: NodeId(9),
                port: 0,
            }],
            vec![rdg_tensor::DType::F32],
        );
        assert!(ModulePlan::new(Arc::new(m)).is_err());
        let _ = Tensor::zeros([1]); // silence unused import in some cfgs
    }
}
