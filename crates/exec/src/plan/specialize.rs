//! Plan-time specialization: trivial-invoke inlining and hot-shape
//! unrolling.
//!
//! The paper's recursive `invoke` pays a frame (spawn + argument passing +
//! return delivery) per activation. Cortex and the TF recursive-functions
//! line of work both make the same observation: most of that cost is
//! *compilable away* once the plan, not the frame, is the unit of
//! optimization. This module implements the two plan-time passes:
//!
//! 1. **Trivial-invoke inlining** (`inline_trivial_invokes`) — a SubGraph
//!    body that is straight-line (op-only: no control flow, no
//!    path-dependent or effectful autodiff ops — see
//!    [`rdg_graph::analyze::body_is_straight_line`]) is spliced into its
//!    caller at plan build, so the call costs zero frames. Runs to a
//!    fixpoint so a sub that *becomes* straight-line after its own callees
//!    inline is inlined in a later pass.
//! 2. **Hot-shape unrolling** (`unroll_for_feeds`) — given a concrete
//!    feed signature (shapes always; values for small `i32` feeds), the
//!    whole recursion is abstract-interpreted at plan time: every `Invoke`
//!    is expanded in place, every `Cond` whose predicate folds to a known
//!    constant is resolved to its taken branch, and every op whose operands
//!    are all known is constant-folded through the *same* kernels the
//!    executor runs (so folded results are bit-exact). What cannot be
//!    decided statically is left behind as a *residual* `Invoke`/`Cond`
//!    (fresh call sites, general frame machinery) — the fallback path.
//!
//! Both passes preserve op kinds verbatim on every surviving node, so the
//! serving executor's cross-request fuse signature
//! ([`crate::batch::fuse_kind`], keyed per plan by `GroupKey`) classifies a
//! specialized node exactly like its general-plan twin. The [`Provenance`]
//! maps record which original node each specialized node descends from;
//! the regression suite uses them to assert that fuse-class agreement.
//!
//! # Safety rules (what is *never* rewritten)
//!
//! Node ids are load-bearing in three places, so graphs where they escape
//! are frozen against rewriting:
//!
//! * graphs with non-empty keep-sets or shape-keep-sets (the sets name
//!   `(node, port)` pairs the backprop cache interns per invocation path);
//! * forward graphs that are some gradient SubGraph's `grad_of` target
//!   (their node ids are referenced by `FwdValue`/`FwdZeros` in the
//!   gradient twin, and their activations are cached per forward frame —
//!   which also means an `Invoke` *of* such a SubGraph is never inlined:
//!   the forward frame must actually spawn for the cache to fill);
//! * a main graph containing `FwdValue`/`FwdZeros` (self-referential ids).
//!
//! Unrolling is stricter still: it requires a module with no keeps, no
//! gradient twins, and no autodiff ops anywhere — the training path always
//! takes the general frame machinery (and still benefits from inlining).

use crate::plan::ModulePlan;
use rdg_graph::analyze::{body_is_straight_line, AbsDim, AbsShape};
use rdg_graph::{CallSiteId, Graph, GraphRef, Module, NodeId, OpKind, PortRef, SubGraphId};
use rdg_tensor::{DType, Tensor};
use std::collections::{HashMap, HashSet};

/// Largest straight-line body the inliner will splice per call site.
const MAX_INLINE_NODES: usize = 32;
/// Deepest invocation chain the unroller will expand before leaving a
/// residual frame (also the plan-time recursion bound of the expander).
const MAX_UNROLL_DEPTH: usize = 512;
/// Abstract-interpretation step budget for one unroll attempt.
const MAX_UNROLL_VISITED: usize = 500_000;
/// `i32` feeds up to this many elements contribute their *values* to the
/// specialization key (and are therefore foldable); larger tensors and all
/// `f32` feeds contribute shape only.
const MAX_VALUE_KEY_ELEMS: usize = 64;

/// Per-graph node provenance: for each node of a rewritten graph, the
/// `(graph, node)` in the original module it was copied from (`None` for
/// synthesized nodes such as materialized fold results).
pub type Provenance = HashMap<GraphRef, Vec<Option<(GraphRef, NodeId)>>>;

/// Knobs for the plan-time specializer. The environment default is read
/// from `RDG_SPECIALIZE` (see [`SpecializeOptions::from_env`]); tests and
/// benches pin behavior programmatically via `ModulePlan::with_options` /
/// `Session::with_options`.
#[derive(Clone, Debug)]
pub struct SpecializeOptions {
    /// Splice straight-line SubGraph bodies into callers at plan build.
    pub inline: bool,
    /// Promote recurring feed signatures to pre-expanded flat plans.
    pub unroll: bool,
    /// Promote a feed signature after it has been seen this many times.
    pub hot_after: u32,
    /// Maximum number of promoted (specialized) plans kept per module plan.
    pub max_promoted: usize,
    /// Node budget for one unrolled main graph; an expansion that would
    /// exceed it is abandoned and the signature blacklisted.
    pub max_nodes: usize,
}

impl Default for SpecializeOptions {
    fn default() -> Self {
        SpecializeOptions {
            inline: true,
            unroll: true,
            hot_after: 2,
            max_promoted: 8,
            max_nodes: 50_000,
        }
    }
}

impl SpecializeOptions {
    /// Both passes off: plans behave exactly as before this module existed.
    pub fn disabled() -> Self {
        SpecializeOptions {
            inline: false,
            unroll: false,
            ..SpecializeOptions::default()
        }
    }

    /// Reads `RDG_SPECIALIZE`: `0`/`off`/`false` disables both passes,
    /// `inline` or `unroll` enables only that pass, anything else (or the
    /// variable being unset) enables both.
    pub fn from_env() -> Self {
        match std::env::var("RDG_SPECIALIZE").as_deref() {
            Ok("0") | Ok("off") | Ok("false") => Self::disabled(),
            Ok("inline") => SpecializeOptions {
                unroll: false,
                ..SpecializeOptions::default()
            },
            Ok("unroll") => SpecializeOptions {
                inline: false,
                ..SpecializeOptions::default()
            },
            _ => SpecializeOptions::default(),
        }
    }

    /// `true` when any pass is active.
    pub fn enabled(&self) -> bool {
        self.inline || self.unroll
    }
}

// ---------------------------------------------------------------------
// Pass 1: trivial-invoke inlining
// ---------------------------------------------------------------------

/// Result of the inline pass.
pub(crate) struct InlineOutcome {
    /// The rewritten module (unchanged graphs are cloned as-is).
    pub module: Module,
    /// Number of `Invoke` nodes eliminated across all graphs and passes.
    pub inlined: usize,
    /// Node provenance for every rewritten graph.
    pub provenance: Provenance,
}

/// Graphs whose node ids escape the graph (see module docs) and must not
/// be renumbered — and whose frames must actually spawn.
fn frozen_graphs(m: &Module) -> HashSet<GraphRef> {
    let mut frozen = HashSet::new();
    for (gref, set) in &m.keep_sets {
        if !set.is_empty() {
            frozen.insert(*gref);
        }
    }
    for (gref, set) in &m.shape_keep_sets {
        if !set.is_empty() {
            frozen.insert(*gref);
        }
    }
    for s in &m.subgraphs {
        if let Some(fwd) = s.grad_of {
            frozen.insert(GraphRef::Sub(fwd));
        }
    }
    let self_referential = |g: &Graph| {
        g.nodes
            .iter()
            .any(|n| matches!(n.op, OpKind::FwdValue { .. } | OpKind::FwdZeros { .. }))
    };
    if self_referential(&m.main) {
        frozen.insert(GraphRef::Main);
    }
    frozen
}

/// Per-SubGraph inlinability under the current module shape.
fn inlinable_subs(m: &Module, frozen: &HashSet<GraphRef>) -> Vec<bool> {
    m.subgraphs
        .iter()
        .enumerate()
        .map(|(i, s)| {
            !frozen.contains(&GraphRef::Sub(SubGraphId(i as u32)))
                && s.grad_of.is_none()
                && s.graph.len() <= MAX_INLINE_NODES
                && body_is_straight_line(&s.graph)
        })
        .collect()
}

/// Splices every inlinable `Invoke` of `gref` in place. Returns `None`
/// when the graph has nothing to inline (or an edge pattern the splicer
/// does not handle, in which case the graph is left untouched).
fn splice_graph(
    m: &Module,
    gref: GraphRef,
    inlinable: &[bool],
) -> Option<(Graph, Vec<Option<(GraphRef, NodeId)>>, usize)> {
    let g = m.graph(gref);
    let has_work = g.nodes.iter().any(|n| {
        matches!(&n.op, OpKind::Invoke { sub, mirror: false, .. }
                 if inlinable[sub.0 as usize])
    });
    if !has_work {
        return None;
    }

    let mut out = Graph::new();
    let mut prov: Vec<Option<(GraphRef, NodeId)>> = Vec::new();
    // For each original node, its output ports in the rewritten graph.
    let mut port_map: Vec<Vec<PortRef>> = Vec::with_capacity(g.len());
    let map_port = |pm: &[Vec<PortRef>], p: &PortRef| -> Option<PortRef> {
        pm.get(p.node.0 as usize)
            .and_then(|v| v.get(p.port as usize))
            .copied()
    };
    let mut inlined = 0usize;

    for (idx, node) in g.nodes.iter().enumerate() {
        let mapped: Option<Vec<PortRef>> =
            node.inputs.iter().map(|p| map_port(&port_map, p)).collect();
        // Builder graphs are push-ordered; a forward edge means this is not
        // a graph we know how to rewrite. Leave it untouched.
        let mapped = mapped?;
        match &node.op {
            OpKind::Invoke {
                sub, mirror: false, ..
            } if inlinable[sub.0 as usize] => {
                let body = &m.subgraph(*sub).graph;
                let mut bmap: Vec<Vec<PortRef>> = Vec::with_capacity(body.len());
                for (bidx, bn) in body.nodes.iter().enumerate() {
                    if let OpKind::Input { index, .. } = &bn.op {
                        bmap.push(vec![*mapped.get(*index)?]);
                        continue;
                    }
                    let bi: Option<Vec<PortRef>> =
                        bn.inputs.iter().map(|p| map_port(&bmap, p)).collect();
                    let nid = out.push_node(bn.op.clone(), bi?, body.out_dtypes[bidx].clone());
                    out.nodes[nid.0 as usize].name = format!("{}.{}", node.name, bn.name);
                    prov.push(Some((GraphRef::Sub(*sub), NodeId(bidx as u32))));
                    bmap.push(ports_of(&out, nid));
                }
                let outs: Option<Vec<PortRef>> =
                    body.outputs.iter().map(|p| map_port(&bmap, p)).collect();
                port_map.push(outs?);
                inlined += 1;
            }
            op => {
                let nid = out.push_node(op.clone(), mapped, g.out_dtypes[idx].clone());
                out.nodes[nid.0 as usize].name = node.name.clone();
                prov.push(Some((gref, NodeId(idx as u32))));
                port_map.push(ports_of(&out, nid));
            }
        }
    }
    let outs: Option<Vec<PortRef>> = g.outputs.iter().map(|p| map_port(&port_map, p)).collect();
    out.outputs = outs?;
    Some((out, prov, inlined))
}

fn ports_of(g: &Graph, n: NodeId) -> Vec<PortRef> {
    (0..g.out_dtypes[n.0 as usize].len())
        .map(|p| PortRef {
            node: n,
            port: p as u16,
        })
        .collect()
}

/// Follows provenance transitively back to the original module.
fn resolve_prov(prov: &Provenance, gref: GraphRef, node: NodeId) -> Option<(GraphRef, NodeId)> {
    match prov.get(&gref) {
        Some(v) => v[node.0 as usize],
        None => Some((gref, node)),
    }
}

/// Runs the inline pass to a fixpoint (bounded). Returns `None` when
/// nothing was inlined.
pub(crate) fn inline_trivial_invokes(module: &Module) -> Option<InlineOutcome> {
    let mut m = module.clone();
    let mut total = 0usize;
    let mut provenance: Provenance = HashMap::new();
    for _pass in 0..8 {
        let frozen = frozen_graphs(&m);
        let inlinable = inlinable_subs(&m, &frozen);
        if !inlinable.iter().any(|&b| b) {
            break;
        }
        let mut pass_inlined = 0usize;
        let mut rewrites: Vec<(GraphRef, Graph, Vec<Option<(GraphRef, NodeId)>>)> = Vec::new();
        let grefs = std::iter::once(GraphRef::Main)
            .chain((0..m.subgraphs.len()).map(|i| GraphRef::Sub(SubGraphId(i as u32))));
        for gref in grefs {
            if frozen.contains(&gref) {
                continue;
            }
            if let Some((g, prov, n)) = splice_graph(&m, gref, &inlinable) {
                // Compose this pass's provenance through the accumulated
                // map so entries always point at *original* module nodes.
                let composed = prov
                    .into_iter()
                    .map(|e| e.and_then(|(g2, n2)| resolve_prov(&provenance, g2, n2)))
                    .collect();
                rewrites.push((gref, g, composed));
                pass_inlined += n;
            }
        }
        if pass_inlined == 0 {
            break;
        }
        for (gref, g, prov) in rewrites {
            match gref {
                GraphRef::Main => m.main = g,
                GraphRef::Sub(id) => m.subgraphs[id.0 as usize].graph = g,
            }
            provenance.insert(gref, prov);
        }
        total += pass_inlined;
    }
    if total == 0 {
        return None;
    }
    Some(InlineOutcome {
        module: m,
        inlined: total,
        provenance,
    })
}

// ---------------------------------------------------------------------
// Pass 2: hot-shape unrolling (feed-signature specialization)
// ---------------------------------------------------------------------

/// `true` when the module is safe to unroll at all (see module docs) and
/// unrolling could plausibly pay (it has at least one call site).
pub(crate) fn unroll_eligible(m: &Module) -> bool {
    let clean = |g: &Graph| {
        !g.nodes.iter().any(|n| {
            matches!(
                n.op,
                OpKind::FwdValue { .. }
                    | OpKind::FwdZeros { .. }
                    | OpKind::GradSink { .. }
                    | OpKind::GradSinkRows { .. }
            )
        })
    };
    let has_calls = |g: &Graph| g.nodes.iter().any(|n| n.op.is_control_flow());
    m.keep_sets.values().all(|s| s.is_empty())
        && m.shape_keep_sets.values().all(|s| s.is_empty())
        && m.subgraphs.iter().all(|s| s.grad_of.is_none())
        && clean(&m.main)
        && m.subgraphs.iter().all(|s| clean(&s.graph))
        && (has_calls(&m.main) || m.subgraphs.iter().any(|s| has_calls(&s.graph)))
}

/// The specialization key of a feed vector: per feed, dtype + dims always,
/// plus raw values for small `i32` tensors (the recursion drivers —
/// depths, topologies, token ids). Two runs with equal keys are guaranteed
/// to take identical control-flow paths through the module.
pub(crate) fn spec_key(feeds: &[Tensor]) -> Vec<u8> {
    let mut k = Vec::with_capacity(feeds.len() * 16);
    for t in feeds {
        k.push(match t.dtype() {
            DType::F32 => 0u8,
            DType::I32 => 1u8,
        });
        let dims = t.shape().dims();
        k.extend((dims.len() as u32).to_le_bytes());
        for &d in dims {
            k.extend((d as u64).to_le_bytes());
        }
        if value_keyed(t) {
            k.push(1);
            for v in t.i32s().expect("i32 feed") {
                k.extend(v.to_le_bytes());
            }
        } else {
            k.push(0);
        }
    }
    k
}

/// `true` when a feed's *values* (not just shape) enter the key.
fn value_keyed(t: &Tensor) -> bool {
    t.dtype() == DType::I32 && t.numel() <= MAX_VALUE_KEY_ELEMS
}

/// Result of one unroll attempt.
pub(crate) struct UnrollOutcome {
    /// The specialized module: the original SubGraphs (residual targets)
    /// plus a flattened main graph.
    pub module: Module,
    /// Provenance of the flattened main graph.
    pub provenance: Vec<Option<(GraphRef, NodeId)>>,
    /// `Invoke` frames expanded away at plan time.
    pub invokes_expanded: usize,
    /// `Cond` frames resolved to a statically taken branch.
    pub conds_resolved: usize,
    /// Ops constant-folded through the real kernels.
    pub folded: usize,
    /// Residual `Invoke`/`Cond` frames left for the general machinery.
    pub residuals: usize,
}

impl UnrollOutcome {
    /// `(frames expanded, ops folded, residual frames)` for the stats
    /// counters.
    pub(crate) fn counters(&self) -> (u64, u64, u64) {
        (
            (self.invokes_expanded + self.conds_resolved) as u64,
            self.folded as u64,
            self.residuals as u64,
        )
    }
}

/// One abstract value during expansion: possibly a plan-time tensor,
/// possibly a port in the output graph, always an abstract shape.
#[derive(Clone)]
struct Slot {
    known: Option<Tensor>,
    port: Option<PortRef>,
    abs: AbsShape,
}

impl Slot {
    fn unknown(port: PortRef, abs: AbsShape) -> Self {
        Slot {
            known: None,
            port: Some(port),
            abs,
        }
    }

    fn known(t: Tensor) -> Self {
        let abs = AbsShape::from_dims(t.shape().dims());
        Slot {
            known: Some(t),
            port: None,
            abs,
        }
    }
}

/// Expansion abandoned (budget, depth, or an op the pass cannot handle);
/// the caller falls back to the general plan and blacklists the key.
struct Abort;

struct Expander<'a> {
    m: &'a Module,
    plan: &'a ModulePlan,
    opts: &'a SpecializeOptions,
    out: Graph,
    prov: Vec<Option<(GraphRef, NodeId)>>,
    next_site: u32,
    visited: usize,
    invokes_expanded: usize,
    conds_resolved: usize,
    folded: usize,
    residuals: usize,
    fold_params: crate::params::ParamStore,
    fold_stats: crate::stats::ExecStats,
}

impl<'a> Expander<'a> {
    fn tick(&mut self) -> Result<(), Abort> {
        self.visited += 1;
        if self.visited > MAX_UNROLL_VISITED || self.out.len() > self.opts.max_nodes {
            return Err(Abort);
        }
        Ok(())
    }

    fn emit(
        &mut self,
        op: OpKind,
        inputs: Vec<PortRef>,
        dtypes: Vec<DType>,
        from: Option<(GraphRef, NodeId)>,
    ) -> NodeId {
        let nid = self.out.push_node(op, inputs, dtypes);
        self.prov.push(from);
        nid
    }

    fn fresh_site(&mut self) -> CallSiteId {
        let s = CallSiteId(self.next_site);
        self.next_site += 1;
        s
    }

    /// Ensures a slot has a port in the output graph, materializing folded
    /// values as `Const` nodes on demand.
    fn materialize(&mut self, slot: &mut Slot) -> Result<PortRef, Abort> {
        if let Some(p) = slot.port {
            return Ok(p);
        }
        let t = slot.known.clone().ok_or(Abort)?;
        let dt = t.dtype();
        let nid = self.emit(OpKind::Const(t), Vec::new(), vec![dt], None);
        let p = PortRef::of(nid);
        slot.port = Some(p);
        Ok(p)
    }

    /// Constant-folds one op through the executor's kernels.
    fn fold(&mut self, op: &OpKind, inputs: Vec<Tensor>) -> Result<Tensor, Abort> {
        let ctx = crate::kernel::KernelCtx {
            args: &[],
            params: &self.fold_params,
            grads: None,
            stats: &self.fold_stats,
        };
        let mut outs = crate::kernel::execute(op, inputs, &ctx).map_err(|_| Abort)?;
        if outs.len() != 1 {
            return Err(Abort);
        }
        self.folded += 1;
        Ok(outs.pop().expect("one output"))
    }

    /// Expands one graph body given abstract arguments; returns the slots
    /// of the graph's declared outputs.
    fn expand_graph(
        &mut self,
        gref: GraphRef,
        args: &[Slot],
        depth: usize,
    ) -> Result<Vec<Slot>, Abort> {
        let g = self.m.graph(gref);
        let shapes = &self.plan.plan(gref).shapes;
        let mut slots: Vec<Vec<Slot>> = Vec::with_capacity(g.len());
        for (idx, node) in g.nodes.iter().enumerate() {
            self.tick()?;
            let static_abs = |port: usize| -> AbsShape {
                shapes
                    .get(idx)
                    .and_then(|v| v.get(port))
                    .cloned()
                    .unwrap_or(AbsShape::Top)
            };
            let mut ins: Vec<Slot> = Vec::with_capacity(node.inputs.len());
            for p in &node.inputs {
                ins.push(take_slot(&slots, p)?);
            }
            let row: Vec<Slot> = match &node.op {
                OpKind::Input { index, dtype } => match gref {
                    // The specialized main keeps the exact input signature
                    // (the executor validates feeds against `input_nodes`),
                    // so main inputs are always emitted — their *values*
                    // may still be known from the key.
                    GraphRef::Main => {
                        let nid = self.emit(
                            OpKind::Input {
                                index: *index,
                                dtype: *dtype,
                            },
                            Vec::new(),
                            vec![*dtype],
                            Some((gref, NodeId(idx as u32))),
                        );
                        let mut s = args.get(*index).cloned().ok_or(Abort)?;
                        s.port = Some(PortRef::of(nid));
                        vec![s]
                    }
                    GraphRef::Sub(_) => vec![args.get(*index).cloned().ok_or(Abort)?],
                },
                OpKind::Const(t) => vec![Slot::known(t.clone())],
                OpKind::Identity => vec![ins[0].clone()],
                OpKind::Invoke { sub, n_out, .. } => {
                    if depth >= MAX_UNROLL_DEPTH {
                        self.residual_invoke(*sub, *n_out, ins, &static_abs)?
                    } else {
                        self.invokes_expanded += 1;
                        self.expand_graph(GraphRef::Sub(*sub), &ins, depth + 1)?
                    }
                }
                OpKind::Cond {
                    sub_then,
                    sub_else,
                    n_then_in,
                    n_out,
                    ..
                } => {
                    let pred = ins[0].known.as_ref().and_then(|t| t.as_i32_scalar().ok());
                    match pred {
                        Some(p) if depth < MAX_UNROLL_DEPTH => {
                            self.conds_resolved += 1;
                            let n_then = *n_then_in as usize;
                            let (sub, branch_args) = if p != 0 {
                                (*sub_then, &ins[1..1 + n_then])
                            } else {
                                (*sub_else, &ins[1 + n_then..])
                            };
                            self.expand_graph(GraphRef::Sub(sub), branch_args, depth + 1)?
                        }
                        _ => self.residual_cond(
                            *sub_then,
                            *sub_else,
                            *n_then_in,
                            *n_out,
                            ins,
                            &static_abs,
                        )?,
                    }
                }
                OpKind::FwdValue { .. }
                | OpKind::FwdZeros { .. }
                | OpKind::GradSink { .. }
                | OpKind::GradSinkRows { .. } => return Err(Abort),
                OpKind::Param(_) => {
                    let nid = self.emit(
                        node.op.clone(),
                        Vec::new(),
                        g.out_dtypes[idx].clone(),
                        Some((gref, NodeId(idx as u32))),
                    );
                    vec![Slot::unknown(PortRef::of(nid), static_abs(0))]
                }
                op => {
                    if ins.iter().all(|s| s.known.is_some()) {
                        let tensors: Vec<Tensor> = ins
                            .iter()
                            .map(|s| s.known.clone().expect("known"))
                            .collect();
                        vec![Slot::known(self.fold(op, tensors)?)]
                    } else if matches!(op, OpKind::Len) {
                        // The analyzer's static shape can decide `Len` even
                        // when the value cannot be folded.
                        match numel_of(&ins[0].abs) {
                            Some(n) => {
                                self.folded += 1;
                                vec![Slot::known(Tensor::scalar_i32(n as i32))]
                            }
                            None => self.emit_op(gref, idx, node, ins, &static_abs)?,
                        }
                    } else {
                        self.emit_op(gref, idx, node, ins, &static_abs)?
                    }
                }
            };
            slots.push(row);
        }
        let mut outs = Vec::with_capacity(g.outputs.len());
        for p in &g.outputs {
            outs.push(take_slot(&slots, p)?);
        }
        Ok(outs)
    }

    /// Emits a surviving (unfoldable) plain op, materializing its inputs.
    fn emit_op(
        &mut self,
        gref: GraphRef,
        idx: usize,
        node: &rdg_graph::Node,
        mut ins: Vec<Slot>,
        static_abs: &dyn Fn(usize) -> AbsShape,
    ) -> Result<Vec<Slot>, Abort> {
        let mut ports = Vec::with_capacity(ins.len());
        for s in &mut ins {
            ports.push(self.materialize(s)?);
        }
        let g = self.m.graph(gref);
        let nid = self.emit(
            node.op.clone(),
            ports,
            g.out_dtypes[idx].clone(),
            Some((gref, NodeId(idx as u32))),
        );
        Ok((0..g.out_dtypes[idx].len())
            .map(|p| {
                Slot::unknown(
                    PortRef {
                        node: nid,
                        port: p as u16,
                    },
                    static_abs(p),
                )
            })
            .collect())
    }

    fn residual_invoke(
        &mut self,
        sub: SubGraphId,
        n_out: u16,
        mut ins: Vec<Slot>,
        static_abs: &dyn Fn(usize) -> AbsShape,
    ) -> Result<Vec<Slot>, Abort> {
        let mut ports = Vec::with_capacity(ins.len());
        for s in &mut ins {
            ports.push(self.materialize(s)?);
        }
        let site = self.fresh_site();
        let dtypes = self.m.subgraph(sub).output_dtypes.clone();
        let nid = self.emit(
            OpKind::Invoke {
                sub,
                site,
                n_out,
                mirror: false,
            },
            ports,
            dtypes,
            None,
        );
        self.residuals += 1;
        Ok((0..n_out as usize)
            .map(|p| {
                Slot::unknown(
                    PortRef {
                        node: nid,
                        port: p as u16,
                    },
                    static_abs(p),
                )
            })
            .collect())
    }

    #[allow(clippy::too_many_arguments)]
    fn residual_cond(
        &mut self,
        sub_then: SubGraphId,
        sub_else: SubGraphId,
        n_then_in: u16,
        n_out: u16,
        mut ins: Vec<Slot>,
        static_abs: &dyn Fn(usize) -> AbsShape,
    ) -> Result<Vec<Slot>, Abort> {
        let mut ports = Vec::with_capacity(ins.len());
        for s in &mut ins {
            ports.push(self.materialize(s)?);
        }
        let site_then = self.fresh_site();
        let site_else = self.fresh_site();
        let dtypes = self.m.subgraph(sub_then).output_dtypes.clone();
        let nid = self.emit(
            OpKind::Cond {
                sub_then,
                sub_else,
                site_then,
                site_else,
                n_then_in,
                n_out,
                mirror: false,
            },
            ports,
            dtypes,
            None,
        );
        self.residuals += 1;
        Ok((0..n_out as usize)
            .map(|p| {
                Slot::unknown(
                    PortRef {
                        node: nid,
                        port: p as u16,
                    },
                    static_abs(p),
                )
            })
            .collect())
    }
}

/// Looks up an already-expanded slot; a miss means a forward edge the
/// expander cannot handle (builder graphs are push-ordered, so this only
/// trips on hand-forged graphs).
fn take_slot(slots: &[Vec<Slot>], p: &PortRef) -> Result<Slot, Abort> {
    slots
        .get(p.node.0 as usize)
        .and_then(|v| v.get(p.port as usize))
        .cloned()
        .ok_or(Abort)
}

/// Product of a fully known abstract shape, or `None`.
fn numel_of(abs: &AbsShape) -> Option<usize> {
    match abs {
        AbsShape::Dims(dims) => {
            let mut n = 1usize;
            for d in dims {
                match d {
                    AbsDim::Known(k) => n = n.checked_mul(*k)?,
                    _ => return None,
                }
            }
            Some(n)
        }
        _ => None,
    }
}

/// Attempts to expand `plan.module`'s main graph for one concrete feed
/// signature. Returns `None` when the expansion aborts (budget, depth, an
/// unhandled pattern, or a kernel error during folding — the general path
/// reproduces any such error at run time) or turns out not to eliminate a
/// single call frame.
pub(crate) fn unroll_for_feeds(
    plan: &ModulePlan,
    feeds: &[Tensor],
    opts: &SpecializeOptions,
) -> Option<UnrollOutcome> {
    let m = &plan.module;
    if m.main.input_nodes.len() != feeds.len() {
        return None;
    }
    let args: Vec<Slot> = feeds
        .iter()
        .map(|t| Slot {
            known: value_keyed(t).then(|| t.clone()),
            port: None,
            abs: AbsShape::from_dims(t.shape().dims()),
        })
        .collect();
    let mut ex = Expander {
        m,
        plan,
        opts,
        out: Graph::new(),
        prov: Vec::new(),
        next_site: m.n_sites,
        visited: 0,
        invokes_expanded: 0,
        conds_resolved: 0,
        folded: 0,
        residuals: 0,
        fold_params: crate::params::ParamStore::from_module(&Module::default()),
        fold_stats: crate::stats::ExecStats::default(),
    };
    let mut outs = ex.expand_graph(GraphRef::Main, &args, 0).ok()?;
    for slot in &mut outs {
        let p = ex.materialize(slot).ok()?;
        ex.out.outputs.push(p);
    }
    if ex.invokes_expanded + ex.conds_resolved == 0 {
        return None;
    }
    let module = Module {
        subgraphs: m.subgraphs.clone(),
        main: ex.out,
        params: m.params.clone(),
        n_sites: ex.next_site,
        keep_sets: HashMap::new(),
        shape_keep_sets: HashMap::new(),
    };
    Some(UnrollOutcome {
        module,
        provenance: ex.prov,
        invokes_expanded: ex.invokes_expanded,
        conds_resolved: ex.conds_resolved,
        folded: ex.folded,
        residuals: ex.residuals,
    })
}
