//! The worker ready queue (paper Figure 4).
//!
//! Two scheduling policies are provided:
//!
//! * [`SchedulerKind::Fifo`] — the paper's policy: operations enter a global
//!   FIFO ready queue as their dependencies resolve and idle execution
//!   threads dequeue from the front.
//! * [`SchedulerKind::DepthPriority`] — the paper's §4.1.2 *future work*
//!   suggestion, implemented here as an extension: deeper frames first, so
//!   inner recursive work that unblocks many outer operations is preferred
//!   when threads are scarce. An ablation bench compares the two.
//!
//! Both policies expose **batched** transfer: [`ReadyQueue::push_batch`]
//! enqueues a whole wave of newly-ready operations under one lock
//! acquisition, and [`ReadyQueue::pop_batch`] lets a worker drain several
//! runnable operations per round-trip. On the executor's hot path this
//! replaces one lock/notify cycle *per operation* with one per wave.

use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, VecDeque};

/// Scheduling policy selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Global FIFO ready queue (the paper's design).
    #[default]
    Fifo,
    /// Deeper-frame-first priority queue (paper's future-work extension).
    DepthPriority,
}

/// Items carried by the queue: a task payload with a scheduling priority.
pub struct Prioritized<T> {
    /// Larger = scheduled earlier under `DepthPriority`.
    pub priority: u64,
    /// Monotone sequence number: FIFO tie-break inside a priority class.
    pub seq: u64,
    /// The payload.
    pub item: T,
}

impl<T> PartialEq for Prioritized<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Prioritized<T> {}
impl<T> PartialOrd for Prioritized<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Prioritized<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on priority; FIFO (smaller seq first) within a class.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct FifoState<T> {
    queue: VecDeque<T>,
    stop_tokens: usize,
    /// Workers currently blocked in `wait` (for fair batch splitting).
    waiting: usize,
}

struct PrioState<T> {
    heap: BinaryHeap<Prioritized<T>>,
    next_seq: u64,
    stop_tokens: usize,
    /// Workers currently blocked in `wait` (for fair batch splitting).
    waiting: usize,
}

/// How many tasks one `pop_batch` may claim from a queue of `len` tasks
/// when `waiting` other workers are blocked on the same queue.
///
/// A greedy drain would let one worker walk off with an entire sibling
/// wave and serialize work the other workers should run in parallel, so
/// the batch is capped at a fair share: the queue is split among the known
/// waiters plus the caller, and never less than half is left behind when
/// there is more than one task (covering workers that are momentarily busy
/// rather than parked).
fn fair_take(len: usize, waiting: usize, max: usize) -> usize {
    let shares = (waiting + 1).max(2);
    max.min(len).min(len.div_ceil(shares).max(1))
}

enum Impl<T> {
    Fifo {
        state: Mutex<FifoState<T>>,
        cond: Condvar,
    },
    Prio {
        heap: Mutex<PrioState<T>>,
        cond: Condvar,
    },
}

/// A multi-producer multi-consumer ready queue with blocking pop and
/// batched push/pop.
pub struct ReadyQueue<T> {
    inner: Impl<T>,
}

impl<T> ReadyQueue<T> {
    /// Creates a queue with the given policy.
    pub fn new(kind: SchedulerKind) -> Self {
        let inner = match kind {
            SchedulerKind::Fifo => Impl::Fifo {
                state: Mutex::new(FifoState {
                    queue: VecDeque::new(),
                    stop_tokens: 0,
                    waiting: 0,
                }),
                cond: Condvar::new(),
            },
            SchedulerKind::DepthPriority => Impl::Prio {
                heap: Mutex::new(PrioState {
                    heap: BinaryHeap::new(),
                    next_seq: 0,
                    stop_tokens: 0,
                    waiting: 0,
                }),
                cond: Condvar::new(),
            },
        };
        ReadyQueue { inner }
    }

    /// Enqueues a task with a scheduling priority (ignored under FIFO).
    pub fn push(&self, priority: u64, item: T) {
        match &self.inner {
            Impl::Fifo { state, cond } => {
                state.lock().queue.push_back(item);
                cond.notify_one();
            }
            Impl::Prio { heap, cond } => {
                let mut st = heap.lock();
                let seq = st.next_seq;
                st.next_seq += 1;
                st.heap.push(Prioritized {
                    priority,
                    seq,
                    item,
                });
                drop(st);
                cond.notify_one();
            }
        }
    }

    /// Enqueues a wave of tasks of equal priority under **one** lock
    /// acquisition, waking as many workers as there are new tasks.
    pub fn push_batch(&self, priority: u64, items: impl IntoIterator<Item = T>) {
        match &self.inner {
            Impl::Fifo { state, cond } => {
                let mut st = state.lock();
                let before = st.queue.len();
                st.queue.extend(items);
                let pushed = st.queue.len() - before;
                drop(st);
                match pushed {
                    0 => {}
                    1 => {
                        cond.notify_one();
                    }
                    _ => {
                        cond.notify_all();
                    }
                }
            }
            Impl::Prio { heap, cond } => {
                let mut st = heap.lock();
                let mut pushed = 0usize;
                for item in items {
                    let seq = st.next_seq;
                    st.next_seq += 1;
                    st.heap.push(Prioritized {
                        priority,
                        seq,
                        item,
                    });
                    pushed += 1;
                }
                drop(st);
                match pushed {
                    0 => {}
                    1 => {
                        cond.notify_one();
                    }
                    _ => {
                        cond.notify_all();
                    }
                }
            }
        }
    }

    /// Blocking pop; `None` means a stop token was consumed (worker exits).
    pub fn pop(&self) -> Option<T> {
        match &self.inner {
            Impl::Fifo { state, cond } => {
                let mut st = state.lock();
                loop {
                    if let Some(t) = st.queue.pop_front() {
                        return Some(t);
                    }
                    if st.stop_tokens > 0 {
                        st.stop_tokens -= 1;
                        return None;
                    }
                    st.waiting += 1;
                    cond.wait(&mut st);
                    st.waiting -= 1;
                }
            }
            Impl::Prio { heap, cond } => {
                let mut st = heap.lock();
                loop {
                    if let Some(p) = st.heap.pop() {
                        return Some(p.item);
                    }
                    if st.stop_tokens > 0 {
                        st.stop_tokens -= 1;
                        return None;
                    }
                    st.waiting += 1;
                    cond.wait(&mut st);
                    st.waiting -= 1;
                }
            }
        }
    }

    /// Blocking batched pop: waits for work, then drains a **fair share**
    /// of the queue — at most `max` tasks, and never more than the caller's
    /// split of the available work given the other blocked workers — into
    /// `buf` under the single lock acquisition.
    /// Returns `false` iff a stop token was consumed instead (in which case
    /// `buf` is untouched).
    ///
    /// Stop tokens are only consumed when no work is available, so a
    /// `false` return always means `buf` received nothing.
    pub fn pop_batch(&self, buf: &mut Vec<T>, max: usize) -> bool {
        let max = max.max(1);
        match &self.inner {
            Impl::Fifo { state, cond } => {
                let mut st = state.lock();
                loop {
                    if !st.queue.is_empty() {
                        let take = fair_take(st.queue.len(), st.waiting, max);
                        buf.extend(st.queue.drain(..take));
                        return true;
                    }
                    if st.stop_tokens > 0 {
                        st.stop_tokens -= 1;
                        return false;
                    }
                    st.waiting += 1;
                    cond.wait(&mut st);
                    st.waiting -= 1;
                }
            }
            Impl::Prio { heap, cond } => {
                let mut st = heap.lock();
                loop {
                    if !st.heap.is_empty() {
                        let take = fair_take(st.heap.len(), st.waiting, max);
                        for _ in 0..take {
                            match st.heap.pop() {
                                Some(p) => buf.push(p.item),
                                None => break,
                            }
                        }
                        return true;
                    }
                    if st.stop_tokens > 0 {
                        st.stop_tokens -= 1;
                        return false;
                    }
                    st.waiting += 1;
                    cond.wait(&mut st);
                    st.waiting -= 1;
                }
            }
        }
    }

    /// Sends `n` stop tokens, releasing `n` blocked workers.
    pub fn stop(&self, n: usize) {
        match &self.inner {
            Impl::Fifo { state, cond } => {
                state.lock().stop_tokens += n;
                cond.notify_all();
            }
            Impl::Prio { heap, cond } => {
                heap.lock().stop_tokens += n;
                cond.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_preserves_order() {
        let q = ReadyQueue::new(SchedulerKind::Fifo);
        q.push(0, 1);
        q.push(9, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn priority_pops_deepest_first() {
        let q = ReadyQueue::new(SchedulerKind::DepthPriority);
        q.push(1, "shallow");
        q.push(5, "deep");
        q.push(3, "mid");
        assert_eq!(q.pop(), Some("deep"));
        assert_eq!(q.pop(), Some("mid"));
        assert_eq!(q.pop(), Some("shallow"));
    }

    #[test]
    fn priority_is_fifo_within_class() {
        let q = ReadyQueue::new(SchedulerKind::DepthPriority);
        q.push(2, "a");
        q.push(2, "b");
        q.push(2, "c");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
    }

    #[test]
    fn push_batch_preserves_fifo_order() {
        let q = ReadyQueue::new(SchedulerKind::Fifo);
        q.push(0, 1);
        q.push_batch(0, [2, 3, 4]);
        for want in 1..=4 {
            assert_eq!(q.pop(), Some(want));
        }
    }

    #[test]
    fn fair_take_splits_work() {
        // A lone caller still leaves half behind (momentarily-busy peers).
        assert_eq!(fair_take(8, 0, 8), 4);
        // Known waiters shrink the share further.
        assert_eq!(fair_take(8, 3, 8), 2);
        // `max` caps the share; a single task is always takeable.
        assert_eq!(fair_take(10, 0, 4), 4);
        assert_eq!(fair_take(1, 5, 8), 1);
        assert_eq!(fair_take(2, 0, 8), 1);
    }

    #[test]
    fn pop_batch_drains_fair_shares_in_order() {
        for kind in [SchedulerKind::Fifo, SchedulerKind::DepthPriority] {
            let q = ReadyQueue::new(kind);
            q.push_batch(0, 0..10);
            let mut buf = Vec::new();
            assert!(q.pop_batch(&mut buf, 4));
            assert!(
                !buf.is_empty() && buf.len() <= 4,
                "first batch is bounded by max, got {}",
                buf.len()
            );
            while buf.len() < 10 {
                assert!(q.pop_batch(&mut buf, 100));
            }
            assert_eq!(buf.len(), 10, "repeated pops drain everything");
            if kind == SchedulerKind::Fifo {
                assert_eq!(buf, (0..10).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn pop_batch_consumes_stop_token_only_when_empty() {
        let q = ReadyQueue::new(SchedulerKind::Fifo);
        q.push(0, 7);
        q.stop(1);
        let mut buf = Vec::new();
        assert!(q.pop_batch(&mut buf, 8), "work is served before the stop");
        assert_eq!(buf, vec![7]);
        buf.clear();
        assert!(!q.pop_batch(&mut buf, 8));
        assert!(buf.is_empty());
    }

    #[test]
    fn stop_tokens_release_workers() {
        for kind in [SchedulerKind::Fifo, SchedulerKind::DepthPriority] {
            let q = Arc::new(ReadyQueue::<u32>::new(kind));
            let q2 = Arc::clone(&q);
            let h = std::thread::spawn(move || q2.pop());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.stop(1);
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_consumers_drain_everything() {
        let q = Arc::new(ReadyQueue::<u64>::new(SchedulerKind::Fifo));
        let mut producers = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    q.push(0, t * 1000 + i);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = 0u64;
                let mut buf = Vec::new();
                while q.pop_batch(&mut buf, 8) {
                    got += buf.len() as u64;
                    buf.clear();
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.stop(4);
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
