//! The worker ready queue (paper Figure 4).
//!
//! Two scheduling policies are provided:
//!
//! * [`SchedulerKind::Fifo`] — the paper's policy: operations enter a global
//!   FIFO ready queue as their dependencies resolve and idle execution
//!   threads dequeue from the front.
//! * [`SchedulerKind::DepthPriority`] — the paper's §4.1.2 *future work*
//!   suggestion, implemented here as an extension: deeper frames first, so
//!   inner recursive work that unblocks many outer operations is preferred
//!   when threads are scarce. An ablation bench compares the two.

use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::BinaryHeap;

/// Scheduling policy selector.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Global FIFO ready queue (the paper's design).
    #[default]
    Fifo,
    /// Deeper-frame-first priority queue (paper's future-work extension).
    DepthPriority,
}

/// Items carried by the queue: a task payload with a scheduling priority.
pub struct Prioritized<T> {
    /// Larger = scheduled earlier under `DepthPriority`.
    pub priority: u64,
    /// Monotone sequence number: FIFO tie-break inside a priority class.
    pub seq: u64,
    /// The payload.
    pub item: T,
}

impl<T> PartialEq for Prioritized<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Prioritized<T> {}
impl<T> PartialOrd for Prioritized<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Prioritized<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on priority; FIFO (smaller seq first) within a class.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

enum Impl<T> {
    Fifo {
        tx: Sender<Msg<T>>,
        rx: Receiver<Msg<T>>,
    },
    Prio {
        heap: Mutex<PrioState<T>>,
        cond: Condvar,
    },
}

struct PrioState<T> {
    heap: BinaryHeap<Prioritized<T>>,
    next_seq: u64,
    stop_tokens: usize,
}

enum Msg<T> {
    Task(T),
    Stop,
}

/// A multi-producer multi-consumer ready queue with blocking pop.
pub struct ReadyQueue<T> {
    inner: Impl<T>,
}

impl<T> ReadyQueue<T> {
    /// Creates a queue with the given policy.
    pub fn new(kind: SchedulerKind) -> Self {
        let inner = match kind {
            SchedulerKind::Fifo => {
                let (tx, rx) = unbounded();
                Impl::Fifo { tx, rx }
            }
            SchedulerKind::DepthPriority => Impl::Prio {
                heap: Mutex::new(PrioState {
                    heap: BinaryHeap::new(),
                    next_seq: 0,
                    stop_tokens: 0,
                }),
                cond: Condvar::new(),
            },
        };
        ReadyQueue { inner }
    }

    /// Enqueues a task with a scheduling priority (ignored under FIFO).
    pub fn push(&self, priority: u64, item: T) {
        match &self.inner {
            Impl::Fifo { tx, .. } => {
                let _ = tx.send(Msg::Task(item));
            }
            Impl::Prio { heap, cond } => {
                let mut st = heap.lock();
                let seq = st.next_seq;
                st.next_seq += 1;
                st.heap.push(Prioritized {
                    priority,
                    seq,
                    item,
                });
                drop(st);
                cond.notify_one();
            }
        }
    }

    /// Blocking pop; `None` means a stop token was consumed (worker exits).
    pub fn pop(&self) -> Option<T> {
        match &self.inner {
            Impl::Fifo { rx, .. } => match rx.recv() {
                Ok(Msg::Task(t)) => Some(t),
                Ok(Msg::Stop) | Err(_) => None,
            },
            Impl::Prio { heap, cond } => {
                let mut st = heap.lock();
                loop {
                    if let Some(p) = st.heap.pop() {
                        return Some(p.item);
                    }
                    if st.stop_tokens > 0 {
                        st.stop_tokens -= 1;
                        return None;
                    }
                    cond.wait(&mut st);
                }
            }
        }
    }

    /// Sends `n` stop tokens, releasing `n` blocked workers.
    pub fn stop(&self, n: usize) {
        match &self.inner {
            Impl::Fifo { tx, .. } => {
                for _ in 0..n {
                    let _ = tx.send(Msg::Stop);
                }
            }
            Impl::Prio { heap, cond } => {
                heap.lock().stop_tokens += n;
                cond.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_preserves_order() {
        let q = ReadyQueue::new(SchedulerKind::Fifo);
        q.push(0, 1);
        q.push(9, 2);
        q.push(5, 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn priority_pops_deepest_first() {
        let q = ReadyQueue::new(SchedulerKind::DepthPriority);
        q.push(1, "shallow");
        q.push(5, "deep");
        q.push(3, "mid");
        assert_eq!(q.pop(), Some("deep"));
        assert_eq!(q.pop(), Some("mid"));
        assert_eq!(q.pop(), Some("shallow"));
    }

    #[test]
    fn priority_is_fifo_within_class() {
        let q = ReadyQueue::new(SchedulerKind::DepthPriority);
        q.push(2, "a");
        q.push(2, "b");
        q.push(2, "c");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
    }

    #[test]
    fn stop_tokens_release_workers() {
        for kind in [SchedulerKind::Fifo, SchedulerKind::DepthPriority] {
            let q = Arc::new(ReadyQueue::<u32>::new(kind));
            let q2 = Arc::clone(&q);
            let h = std::thread::spawn(move || q2.pop());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.stop(1);
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_consumers_drain_everything() {
        let q = Arc::new(ReadyQueue::<u64>::new(SchedulerKind::Fifo));
        let mut producers = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    q.push(0, t * 1000 + i);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = 0u64;
                while q.pop().is_some() {
                    got += 1;
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.stop(4);
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 400);
    }
}
