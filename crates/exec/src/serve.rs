//! Admission-controlled serving: a bounded request queue in front of the
//! executor.
//!
//! [`Session::run_many`](crate::Session::run_many) launches every request
//! it is handed as a concurrent root frame — fine for a caller that already
//! sized its batch, wrong for a *server*: a burst of clients would put
//! hundreds of frame trees in flight at once, and on a small worker pool
//! the surplus concurrency buys nothing but cache thrash (the measured
//! ~20% locality tax at concurrency 32 on one core — see PERFORMANCE.md).
//! This module adds the serving rung on top of the multi-run runtime:
//!
//! ```text
//! client threads ──submit──▶ bounded queue ──▶ dispatcher ──▶ root frames
//!      ▲                    (backpressure)     (waves sized     on the
//!      └────── ServeTicket::wait ◀── results ── by workers)   worker pool
//! ```
//!
//! * **Admission queue** — a bounded MPMC queue. [`ServeClient::try_submit`]
//!   fails fast with [`ServeError::QueueFull`]; [`ServeClient::submit`]
//!   blocks until a slot frees (backpressure); [`ServeClient::submit_deadline`]
//!   bounds that wait and returns [`ServeError::DeadlineExceeded`].
//! * **Dispatcher** — one long-lived thread drains the queue in **waves
//!   sized from the executor's worker count** (`workers ×
//!   [`ServeConfig::batch_multiple`]`), submits the wave as concurrent root
//!   frames, and joins it before admitting the next. In-flight frames stay
//!   at a small multiple of the workers no matter how many clients push.
//! * **Latency accounting** — every request carries its
//!   enqueue → dispatch → complete timestamps; [`ServeClient::stats`]
//!   snapshots queue-wait, service, and total latency as p50/p95/p99
//!   ([`ServeStats`]), plus admission counters (submitted / rejected /
//!   expired / completed / failed).
//! * **Shutdown** — [`ServeClient::shutdown`] (or dropping the last
//!   client) stops admission, drains every already-accepted request, and
//!   joins the dispatcher. No accepted request is ever lost.
//!
//! The usual entry point is [`crate::Session::serve`] /
//! [`crate::Session::serve_with`], which wire a session's plan, parameters,
//! and executor into [`ServeQueue::start`].
//!
//! # Example
//!
//! ```
//! use rdg_exec::{Executor, Session};
//! use rdg_graph::ModuleBuilder;
//! use rdg_tensor::{DType, Tensor};
//!
//! let mut mb = ModuleBuilder::new();
//! let x = mb.main_input(DType::F32);
//! let y = mb.scale(x, 2.0).unwrap();
//! mb.set_outputs(&[y]).unwrap();
//! let session = Session::new(Executor::with_threads(2), mb.finish().unwrap()).unwrap();
//!
//! let client = session.serve();
//! let ticket = client.submit(vec![Tensor::scalar_f32(21.0)]).unwrap();
//! assert_eq!(ticket.wait().unwrap()[0].as_f32_scalar().unwrap(), 42.0);
//! assert_eq!(client.stats().completed, 1);
//! client.shutdown();
//! ```

use crate::error::ExecError;
use crate::executor::{Executor, RunHandle};
use crate::params::ParamStore;
use crate::plan::ModulePlan;
use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, MutexGuard};
use rdg_tensor::Tensor;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for one serving loop.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bounded queue slots. A full queue rejects `try_submit` and blocks
    /// `submit` — this is the backpressure surface clients observe.
    pub capacity: usize,
    /// Dispatch-wave size as a multiple of the executor's worker count:
    /// in-flight root frames stay ≈ `workers × batch_multiple`. Small
    /// multiples keep the per-core working set tight (the locality tax at
    /// high raw concurrency is what this queue exists to avoid); larger
    /// ones amortize dispatch overhead when requests are tiny.
    pub batch_multiple: usize,
    /// Sliding-window size (samples) of each latency distribution kept for
    /// percentile snapshots.
    pub latency_window: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            capacity: 256,
            batch_multiple: 4,
            latency_window: 4096,
        }
    }
}

/// Errors surfaced by the serving client.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// `try_submit` on a full queue: the caller should back off or retry
    /// with the blocking `submit`.
    QueueFull,
    /// `submit_deadline` waited out its deadline on a full queue.
    DeadlineExceeded,
    /// The serving loop no longer accepts requests (explicit shutdown or
    /// every client handle was dropped).
    Shutdown,
    /// The request was admitted and executed, but the run failed.
    Exec(ExecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "admission queue full"),
            ServeError::DeadlineExceeded => {
                write!(f, "admission deadline exceeded while queue was full")
            }
            ServeError::Shutdown => write!(f, "serving loop has shut down"),
            ServeError::Exec(e) => write!(f, "request execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

/// Percentile snapshot of one latency distribution, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyPercentiles {
    /// Observations recorded over the loop's lifetime (the percentiles are
    /// computed over the most recent [`ServeConfig::latency_window`]).
    pub count: u64,
    /// Lifetime mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
}

impl LatencyPercentiles {
    /// Computes the nearest-rank p50/p95/p99 (and mean) over a set of
    /// nanosecond samples. Sorts `samples` in place; an empty set yields
    /// the all-zero snapshot.
    ///
    /// This is *the* quantile rule of the serving stack — `ServeStats`
    /// snapshots and `rdg_cluster::serve_real`'s client-observed report
    /// both go through it, so their numbers stay comparable.
    pub fn from_ns_samples(samples: &mut Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyPercentiles::default();
        }
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&ns| ns as u128).sum();
        let q = |p: f64| -> f64 {
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx] as f64 / 1_000.0
        };
        LatencyPercentiles {
            count: samples.len() as u64,
            mean_us: (sum as f64 / samples.len() as f64) / 1_000.0,
            p50_us: q(0.50),
            p95_us: q(0.95),
            p99_us: q(0.99),
        }
    }
}

/// One latency distribution: a sliding sample window plus lifetime
/// count/sum, recorded by the dispatcher and snapshotted on demand.
struct LatencyTrack {
    inner: Mutex<LatRing>,
}

struct LatRing {
    samples: Vec<u64>, // nanoseconds
    next: usize,
    count: u64,
    sum_ns: u128,
    cap: usize,
}

impl LatencyTrack {
    fn new(cap: usize) -> Self {
        LatencyTrack {
            inner: Mutex::new(LatRing {
                samples: Vec::new(),
                next: 0,
                count: 0,
                sum_ns: 0,
                cap: cap.max(1),
            }),
        }
    }

    fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let mut r = self.inner.lock();
        r.count += 1;
        r.sum_ns += ns as u128;
        if r.samples.len() < r.cap {
            r.samples.push(ns);
        } else {
            let i = r.next;
            r.samples[i] = ns;
            r.next = (i + 1) % r.cap;
        }
    }

    fn percentiles(&self) -> LatencyPercentiles {
        let r = self.inner.lock();
        if r.samples.is_empty() {
            return LatencyPercentiles::default();
        }
        let mut v = r.samples.clone();
        let mut p = LatencyPercentiles::from_ns_samples(&mut v);
        // Count and mean are lifetime figures, wider than the window.
        p.count = r.count;
        p.mean_us = (r.sum_ns as f64 / r.count as f64) / 1_000.0;
        p
    }
}

/// Snapshot of one serving loop's counters and latency percentiles.
///
/// Counter fields are monotone across snapshots of a live loop (they only
/// ever increase); within one snapshot `p50 ≤ p95 ≤ p99` holds for every
/// distribution by construction.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// `try_submit` calls bounced off a full queue (backpressure events).
    pub rejected: u64,
    /// `submit_deadline` calls that waited out their deadline.
    pub expired: u64,
    /// Requests that completed with a successful run.
    pub completed: u64,
    /// Requests that completed with an execution error.
    pub failed: u64,
    /// Dispatch waves formed.
    pub batches: u64,
    /// Requests sitting in the queue right now.
    pub queue_depth: usize,
    /// Root frames in flight right now.
    pub in_flight: usize,
    /// The loop's wave size (`workers × batch_multiple`).
    pub batch_target: usize,
    /// enqueue → dispatch (time spent queued).
    pub wait: LatencyPercentiles,
    /// dispatch → complete (time spent executing, including wave joins).
    pub service: LatencyPercentiles,
    /// enqueue → complete (what the client observes).
    pub total: LatencyPercentiles,
}

impl ServeStats {
    /// One-line human-readable summary (serving-loop progress printing).
    pub fn summary(&self) -> String {
        format!(
            "submitted={} completed={} failed={} rejected={} expired={} \
             depth={} in_flight={} total_p50={:.0}µs p95={:.0}µs p99={:.0}µs",
            self.submitted,
            self.completed,
            self.failed,
            self.rejected,
            self.expired,
            self.queue_depth,
            self.in_flight,
            self.total.p50_us,
            self.total.p95_us,
            self.total.p99_us,
        )
    }
}

/// One queued request: feeds in, result channel out, enqueue timestamp for
/// the latency split.
struct Request {
    feeds: Vec<Tensor>,
    enqueued: Instant,
    tx: Sender<Result<Vec<Tensor>, ExecError>>,
}

struct QueueState {
    queue: VecDeque<Request>,
    /// `false` once shutdown began: submits are rejected, the dispatcher
    /// drains what was already accepted and exits.
    open: bool,
    /// Live `ServeClient` handles; the last drop initiates shutdown.
    clients: usize,
}

struct StatsInner {
    submitted: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    in_flight: AtomicUsize,
    wait: LatencyTrack,
    service: LatencyTrack,
    total: LatencyTrack,
}

/// The admission-control subsystem: bounded queue + dispatcher + stats.
///
/// `ServeQueue` itself is not held by users — [`ServeQueue::start`] spawns
/// the dispatcher and hands back the first [`ServeClient`]; the loop lives
/// as long as any client (or undelivered ticket) needs it.
pub struct ServeQueue {
    capacity: usize,
    batch_target: usize,
    state: Mutex<QueueState>,
    /// Signals the dispatcher: work arrived, or shutdown began.
    not_empty: Condvar,
    /// Signals blocked submitters: a slot freed, or shutdown began.
    not_full: Condvar,
    stats: StatsInner,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl ServeQueue {
    /// Spawns a serving loop over `(plan, params)` on `exec` and returns
    /// its first client handle.
    ///
    /// [`crate::Session::serve`] is the ergonomic entry point; this level
    /// exists for callers composing their own plan/params pairs (replica
    /// serving on a shared store, tests).
    pub fn start(
        exec: Arc<Executor>,
        plan: Arc<ModulePlan>,
        params: Arc<ParamStore>,
        config: ServeConfig,
    ) -> ServeClient {
        let capacity = config.capacity.max(1);
        let batch_target = (exec.n_threads() * config.batch_multiple.max(1)).max(1);
        let shared = Arc::new(ServeQueue {
            capacity,
            batch_target,
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(capacity.min(1024)),
                open: true,
                clients: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            stats: StatsInner {
                submitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                expired: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                in_flight: AtomicUsize::new(0),
                wait: LatencyTrack::new(config.latency_window),
                service: LatencyTrack::new(config.latency_window),
                total: LatencyTrack::new(config.latency_window),
            },
            dispatcher: Mutex::new(None),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rdg-serve-dispatch".into())
                .spawn(move || dispatcher_loop(&shared, &exec, &plan, &params))
                .expect("spawn serve dispatcher")
        };
        *shared.dispatcher.lock() = Some(worker);
        ServeClient { shared }
    }
}

/// The dispatcher: drains the admission queue in worker-sized waves,
/// launches each wave as concurrent root frames, joins it, and answers the
/// tickets. Runs until shutdown *and* an empty queue — every accepted
/// request is answered before the thread exits.
fn dispatcher_loop(
    shared: &Arc<ServeQueue>,
    exec: &Arc<Executor>,
    plan: &Arc<ModulePlan>,
    params: &Arc<ParamStore>,
) {
    let mut wave: Vec<Request> = Vec::with_capacity(shared.batch_target);
    loop {
        {
            let mut st = shared.state.lock();
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if !st.open {
                    return;
                }
                shared.not_empty.wait(&mut st);
            }
            let take = shared.batch_target.min(st.queue.len());
            wave.extend(st.queue.drain(..take));
        }
        // Slots freed: wake every blocked submitter (they re-check space).
        shared.not_full.notify_all();
        let dispatched = Instant::now();
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        shared.stats.in_flight.store(wave.len(), Ordering::Relaxed);
        // Submit the whole wave before joining any of it: the wave's root
        // frames execute concurrently, and in-flight work is bounded by
        // the wave size — that is the admission-control contract.
        let in_flight: Vec<(Instant, Sender<Result<Vec<Tensor>, ExecError>>, _)> = wave
            .drain(..)
            .map(|req| {
                let Request {
                    feeds,
                    enqueued,
                    tx,
                } = req;
                shared
                    .stats
                    .wait
                    .record(dispatched.duration_since(enqueued));
                let submitted: Result<RunHandle, ExecError> =
                    exec.submit(plan, params, feeds, None, None);
                (enqueued, tx, submitted)
            })
            .collect();
        for (enqueued, tx, submitted) in in_flight {
            let result = match submitted {
                Ok(handle) => handle.wait(),
                Err(e) => Err(e),
            };
            let done = Instant::now();
            shared.stats.service.record(done.duration_since(dispatched));
            shared.stats.total.record(done.duration_since(enqueued));
            match &result {
                Ok(_) => shared.stats.completed.fetch_add(1, Ordering::Relaxed),
                Err(_) => shared.stats.failed.fetch_add(1, Ordering::Relaxed),
            };
            shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
            // A dropped ticket is fine: the send just goes nowhere.
            let _ = tx.send(result);
        }
    }
}

/// A cloneable handle to an admission-controlled serving loop.
///
/// Clones share one queue, one dispatcher, and one stats ledger — hand a
/// clone to every client thread. The loop shuts down when the last clone
/// drops or [`ServeClient::shutdown`] is called; after that every submit
/// returns [`ServeError::Shutdown`], while already-accepted requests still
/// complete and their tickets still deliver.
pub struct ServeClient {
    shared: Arc<ServeQueue>,
}

impl Clone for ServeClient {
    fn clone(&self) -> Self {
        self.shared.state.lock().clients += 1;
        ServeClient {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        let last = {
            let mut st = self.shared.state.lock();
            st.clients -= 1;
            st.clients == 0
        };
        if last {
            // Last client gone: stop admission and let the dispatcher
            // drain accepted requests, detached (drop must not block).
            self.shared.state.lock().open = false;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
    }
}

impl ServeClient {
    /// Non-blocking admission: rejects immediately with
    /// [`ServeError::QueueFull`] when the queue has no free slot.
    pub fn try_submit(&self, feeds: Vec<Tensor>) -> Result<ServeTicket, ServeError> {
        let st = self.shared.state.lock();
        if !st.open {
            return Err(ServeError::Shutdown);
        }
        if st.queue.len() >= self.shared.capacity {
            drop(st);
            self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull);
        }
        Ok(self.enqueue(st, feeds))
    }

    /// Blocking admission: waits for a queue slot (backpressure), however
    /// long that takes. Returns [`ServeError::Shutdown`] if the loop stops
    /// accepting while this call is blocked.
    pub fn submit(&self, feeds: Vec<Tensor>) -> Result<ServeTicket, ServeError> {
        let mut st = self.shared.state.lock();
        loop {
            if !st.open {
                return Err(ServeError::Shutdown);
            }
            if st.queue.len() < self.shared.capacity {
                return Ok(self.enqueue(st, feeds));
            }
            self.shared.not_full.wait(&mut st);
        }
    }

    /// Blocking admission with a deadline: waits at most `deadline` for a
    /// queue slot, then gives up with [`ServeError::DeadlineExceeded`].
    pub fn submit_deadline(
        &self,
        feeds: Vec<Tensor>,
        deadline: Duration,
    ) -> Result<ServeTicket, ServeError> {
        let t0 = Instant::now();
        let mut st = self.shared.state.lock();
        loop {
            if !st.open {
                return Err(ServeError::Shutdown);
            }
            if st.queue.len() < self.shared.capacity {
                return Ok(self.enqueue(st, feeds));
            }
            let elapsed = t0.elapsed();
            if elapsed >= deadline {
                drop(st);
                self.shared.stats.expired.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded);
            }
            let _ = self.shared.not_full.wait_for(&mut st, deadline - elapsed);
        }
    }

    /// Convenience closed loop: blocking submit, then wait for the result.
    pub fn call(&self, feeds: Vec<Tensor>) -> Result<Vec<Tensor>, ServeError> {
        self.submit(feeds)?.wait()
    }

    fn enqueue(&self, mut st: MutexGuard<'_, QueueState>, feeds: Vec<Tensor>) -> ServeTicket {
        let (tx, rx) = bounded(1);
        st.queue.push_back(Request {
            feeds,
            enqueued: Instant::now(),
            tx,
        });
        // Count before releasing the lock: the dispatcher cannot pop (and
        // so cannot complete) this request until the lock drops, which
        // keeps `submitted ≥ completed + failed` in every stats snapshot.
        self.shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.shared.not_empty.notify_one();
        ServeTicket { rx }
    }

    /// The dispatch-wave size this loop runs with
    /// (`workers × batch_multiple`).
    pub fn batch_target(&self) -> usize {
        self.shared.batch_target
    }

    /// The admission queue's slot count.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Snapshot of the loop's counters and latency percentiles.
    pub fn stats(&self) -> ServeStats {
        let queue_depth = self.shared.state.lock().queue.len();
        let s = &self.shared.stats;
        ServeStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            expired: s.expired.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            queue_depth,
            in_flight: s.in_flight.load(Ordering::Relaxed),
            batch_target: self.shared.batch_target,
            wait: s.wait.percentiles(),
            service: s.service.percentiles(),
            total: s.total.percentiles(),
        }
    }

    /// Stops admission, waits for every accepted request to complete, and
    /// joins the dispatcher thread.
    ///
    /// Idempotent across clients: the first caller joins the dispatcher,
    /// later callers (and later submits) observe [`ServeError::Shutdown`].
    pub fn shutdown(&self) {
        self.shared.state.lock().open = false;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        let handle = self.shared.dispatcher.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// The response slot of one admitted request.
///
/// Independent of the [`ServeClient`] that produced it: a ticket delivers
/// even after every client is dropped (accepted requests are drained on
/// shutdown, never discarded).
pub struct ServeTicket {
    rx: Receiver<Result<Vec<Tensor>, ExecError>>,
}

impl fmt::Debug for ServeTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeTicket").finish_non_exhaustive()
    }
}

impl ServeTicket {
    /// Blocks until the request completes and returns its outputs.
    pub fn wait(self) -> Result<Vec<Tensor>, ServeError> {
        match self.rx.recv() {
            Ok(result) => result.map_err(ServeError::Exec),
            // The dispatcher answers every accepted request before it
            // exits; a closed channel therefore means the process is
            // tearing the loop down around us.
            Err(_) => Err(ServeError::Shutdown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.capacity >= 1 && c.batch_multiple >= 1 && c.latency_window >= 1);
    }

    #[test]
    fn latency_percentiles_are_ordered_and_windowed() {
        let t = LatencyTrack::new(8);
        for us in [100u64, 200, 300, 400, 500, 600, 700, 800] {
            t.record(Duration::from_micros(us));
        }
        let p = t.percentiles();
        assert_eq!(p.count, 8);
        assert!(p.p50_us <= p.p95_us && p.p95_us <= p.p99_us);
        assert!((p.mean_us - 450.0).abs() < 1.0);
        // The ring slides: 8 huge samples push the small ones out.
        for _ in 0..8 {
            t.record(Duration::from_micros(10_000));
        }
        let p = t.percentiles();
        assert_eq!(p.count, 16, "count is lifetime");
        assert!(p.p50_us >= 9_999.0, "window slid to the recent samples");
    }

    #[test]
    fn empty_track_snapshots_zero() {
        let t = LatencyTrack::new(4);
        assert_eq!(t.percentiles(), LatencyPercentiles::default());
    }
}
