//! Per-class admission lanes with a deterministic aged-priority pop.
//!
//! The admission queue is not one deque but one per [`Priority`] class.
//! Arrival order within a class is FIFO; *across* classes the dispatcher
//! picks by **effective class**: a request's class index, minus one
//! promotion for every `aging_step` it has waited. Strict priority for
//! fresh requests, bounded starvation for old ones — a `Batch` request
//! left behind by a hot `Interactive` stream promotes itself one class
//! per aging step until it competes at `Interactive` level, where the
//! earliest-enqueued request wins.
//!
//! The pop rule is a pure function of `(queue contents, now_ns)` — no
//! clock is read in here — which is what lets the scripted harness in
//! [`super::test_support`] assert dispatch decisions exactly.

use super::Priority;
use std::collections::VecDeque;

/// One queued entry: the payload plus everything the pop rule and the
/// latency split need to know about it.
pub(crate) struct Queued<T> {
    /// The request payload (feeds + ticket channel in the live queue,
    /// a bare id in the scripted harness).
    pub item: T,
    /// Admission class, fixed at submit time.
    pub class: Priority,
    /// Enqueue timestamp, nanoseconds on the owning queue's clock.
    pub enqueued_ns: u64,
    /// Global admission sequence number (total order on submissions).
    pub seq: u64,
    /// Absolute end-to-end deadline on the owning queue's clock, if the
    /// request carries an SLO. The pop rule ignores it — eviction of
    /// expired entries is the *dispatcher's* decision at pop time, so the
    /// live loop and the scripted twin shed at exactly the same point.
    pub deadline_ns: Option<u64>,
}

/// The per-class lanes. FIFO within a lane; aged strict priority across
/// lanes. All timestamps are caller-supplied nanoseconds, so the same
/// structure runs under the real clock and the tests' virtual one.
pub(crate) struct ClassQueues<T> {
    lanes: [VecDeque<Queued<T>>; Priority::COUNT],
    /// Nanoseconds of queue wait that promote a request one class.
    /// `0` collapses every lane to effective class 0 — global FIFO by
    /// enqueue time, i.e. the class-blind PR 4 queue.
    aging_step_ns: u64,
    next_seq: u64,
}

impl<T> ClassQueues<T> {
    pub(crate) fn new(aging_step_ns: u64) -> Self {
        ClassQueues {
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            aging_step_ns,
            next_seq: 0,
        }
    }

    /// Queued entries in `class`'s lane (each lane has its own capacity).
    pub(crate) fn len_class(&self, class: Priority) -> usize {
        self.lanes[class.index()].len()
    }

    /// Queued entries across all lanes.
    pub(crate) fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }

    /// Appends to `class`'s lane, stamping `now_ns` and the next global
    /// sequence number.
    pub(crate) fn push(&mut self, class: Priority, item: T, now_ns: u64) {
        self.push_deadline(class, item, now_ns, None);
    }

    /// [`ClassQueues::push`] with an absolute end-to-end deadline for
    /// SLO-carrying requests.
    pub(crate) fn push_deadline(
        &mut self,
        class: Priority,
        item: T,
        now_ns: u64,
        deadline_ns: Option<u64>,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.lanes[class.index()].push_back(Queued {
            item,
            class,
            enqueued_ns: now_ns,
            seq,
            deadline_ns,
        });
    }

    /// Effective class index of a queued entry at `now_ns`: the nominal
    /// index minus one promotion per full aging step waited, floored at
    /// class 0 (`Interactive`).
    fn effective(&self, q: &Queued<T>, now_ns: u64) -> usize {
        if self.aging_step_ns == 0 {
            return 0;
        }
        let waited = now_ns.saturating_sub(q.enqueued_ns);
        q.class
            .index()
            .saturating_sub((waited / self.aging_step_ns) as usize)
    }

    /// Pops the next request to dispatch at `now_ns`.
    ///
    /// Deterministic selection among the lane *heads* (FIFO makes each
    /// head the oldest — and therefore most-aged — entry of its lane):
    /// lowest effective class wins; ties go to the earliest enqueue
    /// timestamp, then the lowest sequence number. Consequences, proved
    /// over arbitrary traces by `tests/serve_qos.rs`:
    ///
    /// * a request never dispatches after a *later-submitted* request of
    ///   an equal or lower class (strict priority + class FIFO);
    /// * once a request has waited `class_index × aging_step`, nothing
    ///   submitted after that point — any class — can pass it (the
    ///   anti-starvation bound).
    pub(crate) fn pop_next(&mut self, now_ns: u64) -> Option<Queued<T>> {
        let mut best: Option<(usize, (usize, u64, u64))> = None;
        for (lane, dq) in self.lanes.iter().enumerate() {
            if let Some(head) = dq.front() {
                let key = (self.effective(head, now_ns), head.enqueued_ns, head.seq);
                if best.as_ref().map_or(true, |(_, k)| key < *k) {
                    best = Some((lane, key));
                }
            }
        }
        best.map(|(lane, _)| self.lanes[lane].pop_front().expect("non-empty lane"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Priority::{Batch, BestEffort, Interactive};

    const STEP: u64 = 1_000;

    #[test]
    fn strict_priority_between_fresh_lanes() {
        let mut q = ClassQueues::new(STEP);
        q.push(Batch, "b", 0);
        q.push(BestEffort, "e", 1);
        q.push(Interactive, "i", 2);
        assert_eq!(q.pop_next(3).unwrap().item, "i");
        assert_eq!(q.pop_next(3).unwrap().item, "b");
        assert_eq!(q.pop_next(3).unwrap().item, "e");
        assert!(q.pop_next(3).is_none());
    }

    #[test]
    fn fifo_within_a_class() {
        let mut q = ClassQueues::new(STEP);
        for i in 0..4u32 {
            q.push(Batch, i, i as u64);
        }
        for i in 0..4u32 {
            assert_eq!(q.pop_next(10).unwrap().item, i);
        }
    }

    #[test]
    fn aged_batch_overtakes_fresh_interactive() {
        let mut q = ClassQueues::new(STEP);
        q.push(Batch, "old-batch", 0);
        q.push(Interactive, "fresh", STEP + 5);
        // At STEP+5 the batch head has one promotion: effective class 0,
        // and the earlier enqueue time wins the tie.
        assert_eq!(q.pop_next(STEP + 5).unwrap().item, "old-batch");
        assert_eq!(q.pop_next(STEP + 5).unwrap().item, "fresh");
    }

    #[test]
    fn best_effort_needs_two_steps_to_reach_interactive() {
        let mut q = ClassQueues::new(STEP);
        q.push(BestEffort, "be", 0);
        q.push(Interactive, "i1", STEP + 1);
        // One step waited: effective 1 — still behind Interactive.
        assert_eq!(q.pop_next(STEP + 2).unwrap().item, "i1");
        q.push(Interactive, "i2", 2 * STEP + 1);
        // Two steps waited: effective 0, earlier enqueue wins.
        assert_eq!(q.pop_next(2 * STEP + 2).unwrap().item, "be");
        assert_eq!(q.pop_next(2 * STEP + 2).unwrap().item, "i2");
    }

    #[test]
    fn zero_aging_step_is_global_fifo() {
        let mut q = ClassQueues::new(0);
        q.push(BestEffort, "first", 0);
        q.push(Interactive, "second", 1);
        q.push(Batch, "third", 2);
        assert_eq!(q.pop_next(2).unwrap().item, "first");
        assert_eq!(q.pop_next(2).unwrap().item, "second");
        assert_eq!(q.pop_next(2).unwrap().item, "third");
    }

    #[test]
    fn deadlines_ride_through_push_and_pop_untouched() {
        let mut q = ClassQueues::new(STEP);
        q.push(Interactive, "plain", 0);
        q.push_deadline(Batch, "slo", 1, Some(5_000));
        let first = q.pop_next(2).unwrap();
        assert_eq!(first.item, "plain");
        assert_eq!(first.deadline_ns, None);
        // The pop rule never looks at the deadline: an expired entry is
        // still *popped* (and then evicted by the dispatcher), so lane
        // order stays a pure function of (class, enqueue time, seq).
        let second = q.pop_next(10_000).unwrap();
        assert_eq!(second.item, "slo");
        assert_eq!(second.deadline_ns, Some(5_000));
    }

    #[test]
    fn lane_lengths_track_pushes_and_pops() {
        let mut q: ClassQueues<u8> = ClassQueues::new(STEP);
        assert!(q.is_empty());
        q.push(Interactive, 1, 0);
        q.push(Interactive, 2, 0);
        q.push(Batch, 3, 0);
        assert_eq!(q.len_class(Interactive), 2);
        assert_eq!(q.len_class(Batch), 1);
        assert_eq!(q.len_class(BestEffort), 0);
        assert_eq!(q.len(), 3);
        q.pop_next(0);
        assert_eq!(q.len_class(Interactive), 1);
        assert_eq!(q.len(), 2);
    }
}
