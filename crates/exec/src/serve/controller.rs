//! Dynamic wave sizing: an EWMA service-time controller for the
//! dispatcher's wave target.
//!
//! PR 4 sized every dispatch wave `workers × batch_multiple` — a fixed
//! guess. The right wave size depends on how long requests actually take:
//! tiny requests want big waves (amortize the dispatch handoff), slow
//! requests want small ones (a wave is joined as a unit, so its drain time
//! is the latency floor for everything queued behind it). The controller
//! closes that loop: it keeps an exponentially weighted moving average of
//! observed per-request service time and picks the largest wave whose
//! predicted drain time `(wave / workers) × ewma` still fits a configured
//! wall-clock budget, clamped to `[workers, workers × max_multiple]`.
//!
//! The controller is a pure fold over observed durations — no clock, no
//! locks — so [`super::test_support::ScriptedServe`] and the unit tests
//! below drive it with scripted service times and assert the resulting
//! targets exactly.

use super::WaveSizing;

/// EWMA wave-target controller. Owned and driven by the dispatcher
/// thread; the rest of the world sees its decisions through the
/// `wave_target` atomic in the stats ledger.
pub(crate) struct WaveController {
    sizing: WaveSizing,
    /// Wave target when sizing is fixed, and the dynamic controller's
    /// starting point before any observation arrives.
    initial: usize,
    workers: usize,
    /// EWMA of per-request service time, nanoseconds. `None` until the
    /// first observation.
    ewma_ns: Option<f64>,
}

impl WaveController {
    pub(crate) fn new(sizing: WaveSizing, batch_multiple: usize, workers: usize) -> Self {
        let workers = workers.max(1);
        let initial = match sizing {
            WaveSizing::Fixed => workers * batch_multiple.max(1),
            WaveSizing::Dynamic { max_multiple, .. } => {
                (workers * batch_multiple.max(1)).clamp(workers, workers * max_multiple.max(1))
            }
        };
        WaveController {
            sizing,
            initial,
            workers,
            ewma_ns: None,
        }
    }

    /// Feeds one completed wave: its request count and its wall-clock
    /// drain time (dispatch → last completion, nanoseconds). A no-op
    /// under fixed sizing.
    ///
    /// The controller deliberately observes at wave granularity, not per
    /// request: the dispatcher joins a wave in submission order, so a
    /// later request's individual dispatch→complete latency includes the
    /// wait for every earlier join and would double-count intra-wave
    /// queueing (inflating the EWMA and collapsing the target below the
    /// budget-optimal wave). The drain time divided by the wave's
    /// parallelism — `min(workers, wave_len)` busy lanes — is an
    /// unbiased per-request service estimate whatever the wave size.
    pub(crate) fn observe_wave(&mut self, wave_len: usize, drain_ns: u64) {
        let alpha = match self.sizing {
            WaveSizing::Fixed => return,
            WaveSizing::Dynamic { ewma_alpha, .. } => ewma_alpha.clamp(0.0, 1.0),
        };
        if wave_len == 0 {
            return;
        }
        let busy = self.workers.min(wave_len) as f64;
        // Floor at 1ns: a zero-drain wave (clock granularity, or a wave of
        // instantly-failing submissions) is "immeasurably fast", not free.
        // Feeding a raw 0 would decay the EWMA toward 0, pinning `target()`
        // at the hi clamp and publishing a 0ns estimate — which readers
        // treat as the "no estimate yet" sentinel.
        let sample = (drain_ns as f64 * busy / wave_len as f64).max(1.0);
        self.ewma_ns = Some(match self.ewma_ns {
            None => sample,
            Some(prev) => alpha * sample + (1.0 - alpha) * prev,
        });
    }

    /// The EWMA the controller currently holds, nanoseconds (`None`
    /// before the first observation, or under fixed sizing).
    pub(crate) fn ewma_ns(&self) -> Option<f64> {
        self.ewma_ns
    }

    /// The wave target the next dispatch wave should use.
    pub(crate) fn target(&self) -> usize {
        match self.sizing {
            WaveSizing::Fixed => self.initial,
            WaveSizing::Dynamic {
                max_multiple,
                wave_budget,
                ..
            } => {
                let ewma = match self.ewma_ns {
                    // Nothing observed yet: start from the configured
                    // multiple and let the first waves teach us.
                    None => return self.initial,
                    Some(ns) => ns,
                };
                let lo = self.workers;
                let hi = self.workers * max_multiple.max(1);
                if ewma <= 0.0 {
                    return hi;
                }
                // Largest wave whose predicted drain (wave/workers × ewma)
                // fits the budget.
                let budget_ns = wave_budget.as_nanos() as f64;
                let ideal = (self.workers as f64 * budget_ns / ewma).floor() as usize;
                ideal.clamp(lo, hi)
            }
        }
    }
}

/// Predicted queue wait for a request entering a lane `depth` deep when
/// the per-request service EWMA is `ewma_ns` and `workers` lanes drain
/// concurrently: `depth × ewma ÷ workers`, saturating.
///
/// This is the one prediction rule of the serving stack — predictive
/// admission shedding ([`super::ServeClient::submit_slo_with`]), the
/// scripted twin, and the cluster's join-shortest-queue routing all call
/// it, so their decisions agree on what "too late to bother" means.
pub(crate) fn predicted_wait_ns(depth: usize, ewma_ns: u64, workers: usize) -> u64 {
    let w = workers.max(1) as u128;
    (depth as u128 * ewma_ns as u128 / w).min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const MS: u64 = 1_000_000;

    #[test]
    fn predicted_wait_scales_with_depth_and_workers() {
        assert_eq!(predicted_wait_ns(0, MS, 2), 0, "empty lane waits nothing");
        assert_eq!(predicted_wait_ns(4, MS, 1), 4 * MS);
        assert_eq!(predicted_wait_ns(4, MS, 2), 2 * MS);
        assert_eq!(
            predicted_wait_ns(4, MS, 0),
            4 * MS,
            "zero workers clamps to 1"
        );
        // Saturates instead of wrapping on absurd inputs.
        assert_eq!(predicted_wait_ns(usize::MAX, u64::MAX, 1), u64::MAX);
    }

    fn dynamic(max_multiple: usize, budget_ms: u64, alpha: f64) -> WaveSizing {
        WaveSizing::Dynamic {
            max_multiple,
            wave_budget: Duration::from_millis(budget_ms),
            ewma_alpha: alpha,
        }
    }

    /// Drives the controller through waves of its *own* chosen size over
    /// a uniform true per-request service time: each wave's drain is what
    /// 2 greedy workers would take, i.e. `ceil(wave/2) × service`.
    fn drive_uniform(c: &mut WaveController, service_ns: u64, waves: usize) {
        for _ in 0..waves {
            let wave = c.target();
            let drain = (wave as u64).div_ceil(2) * service_ns;
            c.observe_wave(wave, drain);
        }
    }

    #[test]
    fn fixed_sizing_ignores_observations() {
        let mut c = WaveController::new(WaveSizing::Fixed, 4, 2);
        assert_eq!(c.target(), 8);
        for _ in 0..100 {
            c.observe_wave(8, 50 * MS);
        }
        assert_eq!(c.target(), 8, "fixed mode never adapts");
        assert_eq!(c.ewma_ns(), None);
    }

    #[test]
    fn dynamic_starts_from_the_configured_multiple() {
        let c = WaveController::new(dynamic(8, 5, 0.25), 4, 2);
        assert_eq!(c.target(), 8, "workers × batch_multiple before data");
    }

    #[test]
    fn fast_requests_converge_to_the_upper_clamp() {
        // 2 workers, 5 ms budget, 50 µs requests: the ideal wave is
        // 2 × 5ms / 50µs = 200, clamped to workers × max_multiple = 16.
        let mut c = WaveController::new(dynamic(8, 5, 0.25), 4, 2);
        drive_uniform(&mut c, 50_000, 64);
        assert_eq!(c.target(), 16);
        let ewma = c.ewma_ns().unwrap();
        assert!((ewma - 50_000.0).abs() < 1.0, "EWMA converged: {ewma}");
    }

    #[test]
    fn slow_requests_converge_to_the_lower_clamp() {
        // 20 ms requests against a 5 ms budget: ideal wave 0.5, clamped
        // up to the worker count — never below one request per worker.
        let mut c = WaveController::new(dynamic(8, 5, 0.25), 4, 2);
        drive_uniform(&mut c, 20 * MS, 64);
        assert_eq!(c.target(), 2);
    }

    #[test]
    fn moderate_requests_land_between_the_clamps() {
        // 2 ms requests, 5 ms budget, 2 workers: the continuous ideal is
        // 2 × 5/2 = 5. Waves of 5 on 2 workers drain in 3 slots (6 ms),
        // so the estimator reads 2.4 ms and settles one below — the
        // ceil-rounding bias is toward the budget, never past the clamps.
        let mut c = WaveController::new(dynamic(8, 5, 0.25), 4, 2);
        drive_uniform(&mut c, 2 * MS, 64);
        assert_eq!(c.target(), 4);
    }

    #[test]
    fn wave_observation_is_unbiased_by_join_order() {
        // The regression the wave-granularity observation exists for: a
        // 16-wave of 1 ms requests on 2 workers drains in 8 ms. Per-
        // request join-order latencies would average ~4.5 ms and collapse
        // the target to 2; the drain-based estimate recovers the true
        // 1 ms service and keeps the target at the budget-optimal 10.
        let mut c = WaveController::new(dynamic(8, 5, 1.0), 8, 2);
        assert_eq!(c.target(), 16);
        c.observe_wave(16, 8 * MS);
        assert_eq!(c.ewma_ns().unwrap(), MS as f64);
        assert_eq!(c.target(), 10);
    }

    #[test]
    fn single_request_waves_use_actual_parallelism() {
        // A 1-request wave keeps only one worker busy: the estimate must
        // divide by min(workers, wave_len), not workers, or every small
        // wave would double-count the idle lanes.
        let mut c = WaveController::new(dynamic(8, 5, 1.0), 4, 2);
        c.observe_wave(1, 500_000); // 0.5 ms true service
        assert_eq!(c.ewma_ns().unwrap(), 500_000.0);
        assert_eq!(c.target(), 16, "2 × 5ms / 0.5ms = 20, clamped to 16");
    }

    #[test]
    fn bimodal_service_times_track_the_ewma_fixed_point() {
        // Alternating 1 ms / 9 ms regimes with α = 0.5 (full 2-wide waves
        // so the estimate equals the true service): the EWMA oscillates
        // around 5 ms with a ±2 ms swing; the target must stay inside the
        // clamps and inside the band the two pure regimes would produce,
        // for every step after warmup.
        let mut c = WaveController::new(dynamic(8, 5, 0.5), 4, 2);
        let fast_target = {
            let mut f = WaveController::new(dynamic(8, 5, 0.5), 4, 2);
            f.observe_wave(2, MS);
            f.target()
        };
        let slow_target = {
            let mut s = WaveController::new(dynamic(8, 5, 0.5), 4, 2);
            s.observe_wave(2, 9 * MS);
            s.target()
        };
        assert!(slow_target < fast_target);
        for i in 0..128 {
            c.observe_wave(2, if i % 2 == 0 { MS } else { 9 * MS });
            if i >= 8 {
                let t = c.target();
                assert!(
                    (slow_target..=fast_target).contains(&t),
                    "step {i}: target {t} outside [{slow_target}, {fast_target}]"
                );
            }
        }
        // The fixed point: after a slow sample the EWMA sits near
        // (9 + 5)/2 = 7 ms → target 1 (clamped to 2); after a fast one
        // near (1 + 7)/2 = 3 ms → target 3.
        let ewma = c.ewma_ns().unwrap();
        assert!(
            (2.5 * MS as f64..=7.5 * MS as f64).contains(&ewma),
            "{ewma}"
        );
    }

    #[test]
    fn convergence_is_monotone_toward_a_regime_change() {
        // Switch from slow to fast mid-stream: the target must move
        // toward the new regime without overshooting the clamps.
        let mut c = WaveController::new(dynamic(8, 5, 0.25), 4, 2);
        drive_uniform(&mut c, 20 * MS, 32);
        assert_eq!(c.target(), 2);
        let mut last = c.target();
        for _ in 0..64 {
            let wave = c.target();
            let drain = (wave as u64).div_ceil(2) * 100_000;
            c.observe_wave(wave, drain);
            let t = c.target();
            assert!(t >= last, "target shrank during speed-up: {last} → {t}");
            assert!(t <= 16);
            last = t;
        }
        assert_eq!(last, 16, "fully converged to the upper clamp");
    }

    #[test]
    fn degenerate_configs_are_clamped_sane() {
        // Zero multiples and zero workers all collapse to ≥ 1; empty
        // waves are ignored.
        let c = WaveController::new(WaveSizing::Fixed, 0, 0);
        assert_eq!(c.target(), 1);
        let mut c = WaveController::new(dynamic(1, 5, 0.25), 0, 3);
        c.observe_wave(0, 1_000);
        assert_eq!(c.ewma_ns(), None, "empty wave is no observation");
        for _ in 0..8 {
            c.observe_wave(3, 3);
        }
        assert_eq!(c.target(), 3, "max_multiple 1 pins the wave to workers");
    }

    #[test]
    fn zero_drain_waves_keep_the_ewma_positive() {
        // A run of zero-drain waves (timer granularity) must not decay the
        // EWMA to 0: downstream publication truncates the EWMA to a u64
        // where 0 doubles as the "no estimate" sentinel, and `target()`
        // must keep returning something inside the clamps.
        let mut c = WaveController::new(dynamic(8, 5, 1.0), 4, 2);
        c.observe_wave(2, MS); // establish a real estimate first
        for _ in 0..64 {
            c.observe_wave(2, 0);
        }
        let ewma = c.ewma_ns().unwrap();
        assert!(ewma >= 1.0, "EWMA floored at 1ns, got {ewma}");
        let t = c.target();
        assert!((2..=16).contains(&t), "target stays clamped: {t}");
    }

    #[test]
    fn cold_start_zero_drain_does_not_panic_or_zero_the_target() {
        // First-ever observation is degenerate: no panic, no zero wave.
        let mut c = WaveController::new(dynamic(8, 5, 0.25), 4, 2);
        c.observe_wave(4, 0);
        assert_eq!(c.ewma_ns(), Some(1.0), "zero-drain sample floors to 1ns");
        let t = c.target();
        assert!(t >= 2, "target never collapses to zero: {t}");
    }

    #[test]
    fn empty_wave_is_a_no_op_even_after_observations() {
        // wave_len == 0 must not touch the EWMA (division by zero would
        // produce NaN and poison every later fold).
        let mut c = WaveController::new(dynamic(8, 5, 0.5), 4, 2);
        c.observe_wave(2, MS);
        let before = c.ewma_ns().unwrap();
        c.observe_wave(0, 0);
        c.observe_wave(0, 7 * MS);
        assert_eq!(c.ewma_ns().unwrap(), before, "empty waves are ignored");
        assert!(c.ewma_ns().unwrap().is_finite());
    }
}
