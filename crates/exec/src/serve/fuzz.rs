//! Adversarial schedule fuzzing for the serving stack (FRET-style).
//!
//! The QoS machinery of this module's parent — aged-priority pop, EWMA
//! wave sizing, per-class backpressure, drain-on-shutdown — is exercised
//! by hand-written scripts and random property tests, but neither
//! *searches* for worst cases: the tail behavior that matters at scale
//! (an interactive request's p99 under a hostile arrival pattern) is only
//! ever sampled. FRET ("Dynamic Fuzzing-Based Whole-System Timing
//! Analysis", SNIPPETS.md §2) showed that fuzzing **schedules** — arrival
//! times and service durations, not payloads — finds worst-case timings
//! no hand-written stress test reaches. This module is that idea applied
//! to the serving dispatcher:
//!
//! * a [`Scenario`] is a complete, serializable serving schedule: queue
//!   configuration plus an event list of class-tagged submissions with
//!   scripted service durations, virtual-clock gaps, dispatch waves,
//!   replica-level worker stalls, client clone/drop points, and a
//!   shutdown point;
//! * [`replay`] runs a scenario through the deterministic
//!   [`ScriptedServe`] twin — entirely
//!   under the virtual clock, zero sleeps — and scores it by observed
//!   **interactive p99** while checking the **invariant oracles** (class
//!   FIFO, strict priority for fresh submits, the aging starvation bound,
//!   no-loss/no-dup ticket conservation, the wave-target clamp and
//!   budget);
//! * [`replay_fused`] replays the same scenario under the wave-granularity
//!   model of the executor's cross-request batch fuser (same
//!   `batch::plan_groups`, group service = member max), so every oracle is
//!   also checked on fused completion schedules — without touching the
//!   [`Scenario`] format or any scalar corpus pin;
//! * [`run_campaign`] is the seeded, fully deterministic search loop:
//!   scenarios that raise the worst observed p99 or get nearer an oracle
//!   boundary seed the next generation (score-guided mutation in the FRET
//!   sense — the virtual clock is the coverage signal);
//! * [`minimize`] delta-debugs any finding down to a small reproducer,
//!   and the RON-style [`Scenario::to_ron`] / [`Scenario::from_ron`]
//!   round-trip lets findings live as committed corpus files under
//!   `crates/exec/tests/corpus/serve_schedules/` that a plain
//!   `cargo test` replays exactly.
//!
//! The `rdg_fuzz_serve` binary drives a campaign from the command line /
//! CI; `tests/serve_fuzz.rs` pins determinism and the oracles, and
//! `tests/serve_fuzz_corpus.rs` replays the committed corpus.
//!
//! Everything here is a pure function of the seed: no wall clock, no
//! thread scheduling, no global state. Same seed → same scenarios, same
//! worst case, same report, on every host.

use super::test_support::{ScriptedAdmission, ScriptedRequest, ScriptedServe, ScriptedShed};
use super::{Priority, ServeConfig, WaveSizing};
use std::fmt;
use std::time::Duration;

// ---------------------------------------------------------------------
// Deterministic RNG (SplitMix64, self-contained so the fuzzer adds no
// dependency to the runtime crate).
// ---------------------------------------------------------------------

/// The fuzzer's seeded generator: SplitMix64. Deterministic across
/// platforms; every random decision of a campaign flows from one seed.
#[derive(Clone, Debug)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FuzzRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n = 0` yields 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

// ---------------------------------------------------------------------
// Scenario model
// ---------------------------------------------------------------------

/// Upper bound on any scripted duration (service, gap, stall): 50 ms of
/// virtual time. Without a cap the search degenerates to "make every
/// number bigger"; with it, worst cases come from *structure* — arrival
/// order, class mixes, aging interplay — which is what the oracles and
/// the p99 score are meant to probe.
pub const MAX_DUR_NS: u64 = 50_000_000;

/// Wave-sizing spec of a scenario — [`WaveSizing`] with every field an
/// integer so serialization is exact (`alpha` is stored in thousandths).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizingSpec {
    /// Fixed waves of `workers × batch_multiple`.
    Fixed,
    /// The EWMA controller (see [`WaveSizing::Dynamic`]).
    Dynamic {
        /// Upper clamp as a multiple of the worker count.
        max_multiple: usize,
        /// Wave drain budget, nanoseconds.
        budget_ns: u64,
        /// EWMA smoothing factor in thousandths (250 = α 0.25).
        alpha_milli: u32,
    },
}

impl SizingSpec {
    /// The [`WaveSizing`] this spec denotes.
    pub fn to_wave_sizing(self) -> WaveSizing {
        match self {
            SizingSpec::Fixed => WaveSizing::Fixed,
            SizingSpec::Dynamic {
                max_multiple,
                budget_ns,
                alpha_milli,
            } => WaveSizing::Dynamic {
                max_multiple,
                wave_budget: Duration::from_nanos(budget_ns),
                ewma_alpha: alpha_milli as f64 / 1000.0,
            },
        }
    }
}

/// One step of a serving schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// Advance the virtual clock by `ns` (an arrival gap).
    Advance(u64),
    /// Submit a request of `class` whose scripted service duration is
    /// `service_ns`. Request ids are assigned in event order.
    Submit(Priority, u64),
    /// Submit a request of `class` with scripted service duration
    /// `service_ns` and an end-to-end SLO of `slo_ns`: the request
    /// carries the absolute deadline `now + slo_ns` and is subject to all
    /// three shed points (predictive admission, pop-time eviction,
    /// mid-service cancellation). Ids share the `Submit` sequence.
    SubmitSlo(Priority, u64, u64),
    /// Form and run one dispatch wave (no-op on an empty queue).
    Wave,
    /// Replica-level delay injection: worker lane `lane % workers` is
    /// busy with non-request work for `dur_ns` from now (the scripted
    /// analogue of a straggling replica in `rdg_cluster::virtual_time`).
    Stall(usize, u64),
    /// Clone a client handle.
    CloneClient,
    /// Drop a client handle; dropping the last one closes admission.
    DropClient,
    /// Explicit shutdown: admission closes, queued work still drains.
    Shutdown,
}

/// A complete serving schedule: configuration plus event list. The unit
/// the fuzzer generates, mutates, scores, minimizes, and serializes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Corpus slug (file-name stem; provenance note for humans).
    pub name: String,
    /// The campaign seed that produced this scenario (provenance).
    pub seed: u64,
    /// Simulated worker count.
    pub workers: usize,
    /// Per-class lane capacity.
    pub capacity: usize,
    /// Starting wave multiple (exact wave size under [`SizingSpec::Fixed`]).
    pub batch_multiple: usize,
    /// Anti-starvation aging step, nanoseconds.
    pub aging_step_ns: u64,
    /// Wave-sizing policy.
    pub sizing: SizingSpec,
    /// Interactive total-latency p99 this scenario is expected to
    /// reproduce exactly on replay (`None` until recorded). The corpus
    /// suite asserts equality — virtual time makes "exactly" meaningful.
    pub expect_p99_ns: Option<u64>,
    /// Total shed count (pop-time evictions + mid-service cancellations +
    /// predictive admission sheds) this scenario is expected to reproduce
    /// exactly on replay. `None` for schedules without SLO traffic; the
    /// serializer omits the field when unset so pre-SLO corpus files stay
    /// byte-identical.
    pub expect_shed: Option<u64>,
    /// The schedule itself.
    pub events: Vec<Event>,
}

impl Scenario {
    /// The [`ServeConfig`] this scenario's queue parameters denote.
    pub fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            capacity: self.capacity,
            batch_multiple: self.batch_multiple,
            sizing: self.sizing.to_wave_sizing(),
            aging_step: Duration::from_nanos(self.aging_step_ns),
            ..ServeConfig::default()
        }
    }

    /// The scenario's replica-stall events as `(lane, dur_ns)` pairs —
    /// the delay profile `rdg_cluster::virtual_time`'s injector consumes
    /// when a schedule found here is replayed at cluster level.
    pub fn stall_events(&self) -> Vec<(usize, u64)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Stall(lane, dur) => Some((lane, dur)),
                _ => None,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Replay + oracles
// ---------------------------------------------------------------------

/// Submission metadata the oracles reason over (mirrors what the QoS
/// property suite tracks by hand).
#[derive(Clone, Copy, Debug)]
pub struct SubmitMeta {
    /// Request id (index among `Submit` events).
    pub id: u64,
    /// Admission class.
    pub class: Priority,
    /// Virtual enqueue time.
    pub enqueued_ns: u64,
    /// Absolute deadline (`enqueue + slo`) for SLO-carrying submissions.
    pub deadline_ns: Option<u64>,
    /// Admission order among *accepted* requests.
    pub seq: usize,
}

/// Everything one deterministic replay of a [`Scenario`] produced.
#[derive(Clone, Debug, Default)]
pub struct ReplayOutcome {
    /// Accepted submissions, in admission order.
    pub accepted: Vec<SubmitMeta>,
    /// Submissions rejected (full lane or closed admission).
    pub rejected: u64,
    /// The dispatch trace, in dispatch order across all waves. Includes
    /// mid-service-shed requests (marked `shed_inflight`); excludes
    /// pop-time evictions (see [`ReplayOutcome::evicted`]).
    pub trace: Vec<ScriptedRequest>,
    /// Requests evicted at pop time (deadline already passed), in pop
    /// order across all waves.
    pub evicted: Vec<ScriptedShed>,
    /// Submissions shed predictively at admission (never accepted).
    pub shed_predicted: u64,
    /// Per wave: the controller target when it formed and the dispatched
    /// request ids in pop order.
    pub waves: Vec<(usize, Vec<u64>)>,
    /// Nearest-rank p99 of interactive total latency (enqueue →
    /// completion), nanoseconds; 0 if no interactive request completed.
    pub interactive_p99_ns: u64,
    /// Worst queue wait observed by any request, nanoseconds.
    pub worst_wait_ns: u64,
    /// How close the run came to an oracle boundary without crossing it,
    /// in `[0, 1]` — the score-guidance signal (see [`replay`]).
    pub proximity: f64,
    /// Oracle violations, human-readable. Empty means the invariants
    /// held on this schedule.
    pub violations: Vec<String>,
}

impl ReplayOutcome {
    /// Every shed, whatever the lifecycle point: pop-time evictions +
    /// mid-service cancellations + predictive admission sheds. The number
    /// a corpus scenario's [`Scenario::expect_shed`] pins exactly.
    pub fn shed_total(&self) -> u64 {
        self.evicted.len() as u64
            + self.trace.iter().filter(|r| r.shed_inflight).count() as u64
            + self.shed_predicted
    }
}

/// Nearest-rank p99 over unsorted nanosecond samples (integer arithmetic
/// so replay scores are bit-exact across hosts).
fn p99_ns(samples: &mut Vec<u64>) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) * 99 + 50) / 100;
    samples[idx]
}

/// Replays `scenario` through the [`ScriptedServe`] twin and checks every
/// oracle. Pure and deterministic: two calls on one scenario return
/// identical outcomes.
///
/// The proximity score rewards schedules that stress a boundary without
/// crossing it: waits approaching the aging bound, lanes filling toward
/// capacity (or bouncing off it), and wave targets pinned at a clamp.
/// Campaigns use it as the secondary selection signal, so the population
/// drifts toward the oracle edges where violations would live.
pub fn replay(scenario: &Scenario) -> ReplayOutcome {
    replay_with(scenario, None)
}

/// [`replay`] with the executor's cross-request batch fuser modeled at
/// wave granularity: requests whose scripted service durations are equal
/// stand in for "same kernel shape" and group through the same
/// `batch::plan_groups` the live fused worker loop uses, chunked at
/// `max_group`; a group's service is the max of its members' and every
/// member completes when the group does.
///
/// Every admission-order, shed, conservation, and controller oracle is
/// checked exactly as in scalar replay — fusion reshapes completion
/// *times*, never pop order or shed decisions, so the oracles must stay
/// green on any schedule they hold for scalar. Completion times (and so
/// the interactive p99) legitimately differ from scalar replay: a
/// scenario's `expect_p99_ns` / `expect_shed` pins are scalar-mode
/// contracts and are **not** compared here.
pub fn replay_fused(scenario: &Scenario, max_group: usize) -> ReplayOutcome {
    replay_with(scenario, Some(max_group))
}

/// Shared replay body. `fused: None` is the scalar twin; `Some(max_group)`
/// runs every wave through [`ScriptedServe::run_wave_grouped`] with the
/// service duration as the fusion signature.
fn replay_with(scenario: &Scenario, fused: Option<usize>) -> ReplayOutcome {
    let config = scenario.serve_config();
    let mut s = ScriptedServe::new(scenario.workers, &config);
    let mut out = ReplayOutcome::default();
    let mut services: Vec<u64> = Vec::new();
    let mut seq = 0usize;
    let mut max_fill = 0.0f64;
    let mut saw_reject = false;

    let clamp = match scenario.sizing {
        SizingSpec::Fixed => {
            let t = scenario.workers.max(1) * scenario.batch_multiple.max(1);
            (t, t)
        }
        SizingSpec::Dynamic { max_multiple, .. } => (
            scenario.workers.max(1),
            scenario.workers.max(1) * max_multiple.max(1),
        ),
    };

    // One wave step in the requested mode. In fused mode the scripted
    // service duration doubles as the fusion signature: equal durations
    // model equal kernel shapes, so duplicated-burst schedules (the
    // mutator's span copies and the hand baselines) actually form groups.
    let step = |s: &mut ScriptedServe, services: &[u64]| match fused {
        None => s.run_wave(|id| services[id as usize]),
        Some(mg) => s.run_wave_grouped(
            |id| services[id as usize],
            |id| Some(services[id as usize]),
            mg,
        ),
    };

    let check_wave = |s: &ScriptedServe,
                      out: &mut ReplayOutcome,
                      wave: Option<crate::serve::test_support::ScriptedWave>|
     -> bool {
        let Some(wave) = wave else { return false };
        if wave.requests.len() > wave.target {
            out.violations.push(format!(
                "wave of {} exceeds target {}",
                wave.requests.len(),
                wave.target
            ));
        }
        if !(clamp.0..=clamp.1).contains(&wave.target) {
            out.violations.push(format!(
                "wave target {} outside clamp [{}, {}]",
                wave.target, clamp.0, clamp.1
            ));
        }
        // Budget oracle: whenever the dynamic controller sizes above the
        // lower clamp, the predicted drain of the *next* wave must fit
        // the budget (floor rounding means `target × ewma ≤ workers ×
        // budget` exactly, up to f64 slack).
        if let SizingSpec::Dynamic { budget_ns, .. } = scenario.sizing {
            let next = s.wave_target();
            if !(clamp.0..=clamp.1).contains(&next) {
                out.violations.push(format!(
                    "next wave target {next} outside clamp [{}, {}]",
                    clamp.0, clamp.1
                ));
            }
            if let Some(ewma) = s.ewma_ns() {
                if next > clamp.0 && ewma > 0.0 {
                    let predicted = next as f64 * ewma;
                    let allowed = scenario.workers.max(1) as f64 * budget_ns as f64;
                    if predicted > allowed * (1.0 + 1e-9) + 1.0 {
                        out.violations.push(format!(
                            "budget exceeded: target {next} × ewma {ewma:.0} ns > \
                             {} workers × {budget_ns} ns budget",
                            scenario.workers
                        ));
                    }
                }
            }
        }
        for r in &wave.requests {
            out.worst_wait_ns = out.worst_wait_ns.max(r.wait_ns);
        }
        out.waves
            .push((wave.target, wave.requests.iter().map(|r| r.id).collect()));
        out.trace.extend(wave.requests);
        out.evicted.extend(wave.evicted);
        true
    };

    for ev in &scenario.events {
        match *ev {
            Event::Advance(ns) => s.advance(ns.min(MAX_DUR_NS)),
            Event::Submit(class, service) => {
                let id = services.len() as u64;
                services.push(service.min(MAX_DUR_NS));
                if s.submit(class, id) {
                    out.accepted.push(SubmitMeta {
                        id,
                        class,
                        enqueued_ns: s.now_ns(),
                        deadline_ns: None,
                        seq,
                    });
                    seq += 1;
                    let fill = s.queue_depth_class(class) as f64 / scenario.capacity.max(1) as f64;
                    max_fill = max_fill.max(fill);
                } else {
                    out.rejected += 1;
                    saw_reject = true;
                }
            }
            Event::SubmitSlo(class, service, slo) => {
                let id = services.len() as u64;
                services.push(service.min(MAX_DUR_NS));
                let slo = slo.min(MAX_DUR_NS);
                match s.submit_deadline(class, id, slo) {
                    ScriptedAdmission::Admitted => {
                        out.accepted.push(SubmitMeta {
                            id,
                            class,
                            enqueued_ns: s.now_ns(),
                            deadline_ns: Some(s.now_ns().saturating_add(slo)),
                            seq,
                        });
                        seq += 1;
                        let fill =
                            s.queue_depth_class(class) as f64 / scenario.capacity.max(1) as f64;
                        max_fill = max_fill.max(fill);
                    }
                    ScriptedAdmission::Rejected => {
                        out.rejected += 1;
                        saw_reject = true;
                    }
                    // Counted from the twin's tally after the run (the
                    // predictive shed is the only shed that never
                    // produces a trace or eviction entry).
                    ScriptedAdmission::Shed => {}
                }
            }
            Event::Wave => {
                let wave = step(&mut s, &services);
                check_wave(&s, &mut out, wave);
            }
            Event::Stall(lane, dur) => s.stall_worker(lane, dur.min(MAX_DUR_NS)),
            Event::CloneClient => s.clone_client(),
            Event::DropClient => s.drop_client(),
            Event::Shutdown => s.shutdown(),
        }
    }
    // Final drain: whether the schedule shut down mid-storm or simply
    // ended, every accepted request must still dispatch (the live
    // dispatcher's drain-then-exit contract).
    loop {
        let wave = step(&mut s, &services);
        if !check_wave(&s, &mut out, wave) {
            break;
        }
    }

    out.shed_predicted = s.shed_predicted().iter().sum();
    check_order_oracles(scenario, &mut out);

    // Shed requests never completed: the p99 scores *answers delivered
    // within the lifecycle*, so only non-shed completions count (also
    // keeps pre-SLO corpus pins byte-stable — no-deadline schedules have
    // no shed requests to exclude).
    let mut interactive: Vec<u64> = out
        .trace
        .iter()
        .filter(|r| r.class == Priority::Interactive && !r.shed_inflight)
        .map(|r| r.done_ns - r.enqueued_ns)
        .collect();
    out.interactive_p99_ns = p99_ns(&mut interactive);

    // Oracle proximity: how hard did this schedule lean on a boundary?
    let aging_frac = if scenario.aging_step_ns > 0 {
        out.trace
            .iter()
            .filter(|r| r.class.index() > 0)
            .map(|r| {
                let bound = r.class.index() as u64 * scenario.aging_step_ns;
                (r.wait_ns as f64 / bound as f64).min(1.0)
            })
            .fold(0.0f64, f64::max)
    } else {
        0.0
    };
    let fill_frac = if saw_reject { 1.0 } else { max_fill };
    let clamp_frac = if out
        .waves
        .iter()
        .any(|(t, _)| *t == clamp.0 || *t == clamp.1)
    {
        1.0
    } else {
        0.0
    };
    out.proximity = aging_frac.max(fill_frac).max(0.5 * clamp_frac);
    out
}

/// The admission-order oracles (class FIFO, strict priority, aging
/// bound, conservation), plus the shed oracles: no ticket both shed and
/// dispatched, no phantom shed (every shed request carried a deadline),
/// and no early shed (eviction/cancellation at or after the deadline).
/// Checked on a finished replay.
fn check_order_oracles(scenario: &Scenario, out: &mut ReplayOutcome) {
    // Shed conservation: accepted ⇔ (dispatched ∪ evicted) exactly once,
    // with the two sides disjoint — a request is dispatched or shed at
    // pop, never both, and never lost.
    let mut accepted_ids: Vec<u64> = out.accepted.iter().map(|m| m.id).collect();
    let mut resolved: Vec<u64> = out
        .trace
        .iter()
        .map(|r| r.id)
        .chain(out.evicted.iter().map(|e| e.id))
        .collect();
    accepted_ids.sort_unstable();
    resolved.sort_unstable();
    if accepted_ids != resolved {
        out.violations.push(format!(
            "conservation broken: {} accepted vs {} dispatched + {} evicted \
             (lost, duplicated, or both shed and dispatched)",
            accepted_ids.len(),
            out.trace.len(),
            out.evicted.len()
        ));
        return; // positional oracles are meaningless on a broken trace
    }
    let meta = |id: u64| out.accepted.iter().find(|m| m.id == id);
    for e in &out.evicted {
        match meta(e.id).and_then(|m| m.deadline_ns) {
            // Phantom shed: only SLO-carrying requests may be evicted.
            None => out
                .violations
                .push(format!("phantom shed: id {} had no deadline", e.id)),
            Some(d) => {
                if e.shed_ns < d {
                    out.violations.push(format!(
                        "early eviction: id {} shed at {} before deadline {d}",
                        e.id, e.shed_ns
                    ));
                }
            }
        }
    }
    for r in out.trace.iter().filter(|r| r.shed_inflight) {
        match r.deadline_ns {
            None => out.violations.push(format!(
                "phantom in-flight shed: id {} had no deadline",
                r.id
            )),
            Some(d) => {
                if r.done_ns < d {
                    out.violations.push(format!(
                        "early in-flight shed: id {} cancelled at {} before deadline {d}",
                        r.id, r.done_ns
                    ));
                }
            }
        }
    }
    // Positional oracles range over *dispatched* requests only: an
    // evicted request has no dispatch position (its slot in the pop
    // order is exactly where it was discarded).
    let pos = |id: u64| out.trace.iter().position(|r| r.id == id);
    for a in &out.accepted {
        let Some(pa) = pos(a.id) else { continue };
        for b in &out.accepted {
            if a.seq >= b.seq {
                continue;
            }
            let Some(pb) = pos(b.id) else { continue };
            // Class FIFO + strict priority: `a` submitted before `b` and
            // at least as urgent ⇒ dispatched first.
            if a.class.index() <= b.class.index() && pa > pb {
                out.violations.push(format!(
                    "priority inversion: id {} (class {}, seq {}) after later, \
                     less-urgent id {} (class {}, seq {})",
                    a.id, a.class, a.seq, b.id, b.class, b.seq
                ));
            }
            // Aging bound: once `a` has waited class_index × aging_step,
            // nothing submitted after that instant may pass it.
            let bound = a.class.index() as u64 * scenario.aging_step_ns;
            if b.enqueued_ns >= a.enqueued_ns.saturating_add(bound) && pa > pb {
                out.violations.push(format!(
                    "starvation past the aging bound: id {} (class {}) passed by \
                     later id {} (class {})",
                    a.id, a.class, b.id, b.class
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Generation and mutation
// ---------------------------------------------------------------------

/// Generates a random scenario from `rng` (the campaign's initial
/// population and the fall-back when a mutation empties a schedule).
pub fn generate(rng: &mut FuzzRng, seed: u64, max_events: usize, workers: usize) -> Scenario {
    let capacity = *rng.pick(&[2usize, 4, 8, 16]);
    let batch_multiple = *rng.pick(&[1usize, 2, 4]);
    let aging_step_ns = *rng.pick(&[250_000u64, 1_000_000, 4_000_000]);
    let sizing = if rng.chance(7, 10) {
        SizingSpec::Dynamic {
            max_multiple: *rng.pick(&[2usize, 4, 8]),
            budget_ns: *rng.pick(&[500_000u64, 2_000_000, 8_000_000]),
            alpha_milli: *rng.pick(&[100u32, 250, 500, 1000]),
        }
    } else {
        SizingSpec::Fixed
    };
    let n = rng.range(8, max_events.max(9) as u64) as usize;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(random_event(rng, aging_step_ns, workers));
    }
    Scenario {
        name: String::new(),
        seed,
        workers,
        capacity,
        batch_multiple,
        aging_step_ns,
        sizing,
        expect_p99_ns: None,
        expect_shed: None,
        events,
    }
}

/// One random event, weighted toward submissions (the schedule's meat).
/// A quarter of the submissions carry an SLO, so every campaign
/// exercises all three shed points alongside plain traffic.
fn random_event(rng: &mut FuzzRng, aging_step_ns: u64, workers: usize) -> Event {
    match rng.below(100) {
        0..=39 => Event::Submit(*rng.pick(&Priority::ALL), random_service_ns(rng)),
        40..=54 => Event::SubmitSlo(
            *rng.pick(&Priority::ALL),
            random_service_ns(rng),
            rng.range(200_000, 30_000_000),
        ),
        55..=74 => Event::Wave,
        75..=89 => Event::Advance(rng.below(4 * aging_step_ns.max(1))),
        90..=93 => Event::Stall(
            rng.below(workers.max(1) as u64) as usize,
            rng.range(100_000, 20_000_000),
        ),
        94..=95 => Event::CloneClient,
        96..=97 => Event::DropClient,
        _ => Event::Shutdown,
    }
}

/// A scripted service duration: mostly sub-millisecond, with a heavy
/// tail of multi-millisecond spikes and occasional zero-duration
/// requests (the degenerate case the controller must survive).
fn random_service_ns(rng: &mut FuzzRng) -> u64 {
    match rng.below(10) {
        0 => 0,
        1..=6 => rng.range(50_000, 1_200_000),
        7..=8 => rng.range(1_200_000, 8_000_000),
        _ => rng.range(8_000_000, MAX_DUR_NS),
    }
}

/// Mutates `parent` into a child schedule: 1–3 random operators from the
/// FRET repertoire (perturb a duration, flip a class, insert/delete/
/// duplicate an event span, move the shutdown point, splice in a donor's
/// suffix when one is provided).
pub fn mutate(parent: &Scenario, donor: Option<&Scenario>, rng: &mut FuzzRng) -> Scenario {
    let mut sc = parent.clone();
    sc.expect_p99_ns = None;
    sc.name.clear();
    let ops = 1 + rng.below(3);
    for _ in 0..ops {
        mutate_once(&mut sc, donor, rng);
    }
    if sc.events.is_empty() {
        sc.events
            .push(random_event(rng, sc.aging_step_ns, sc.workers));
    }
    sc
}

fn mutate_once(sc: &mut Scenario, donor: Option<&Scenario>, rng: &mut FuzzRng) {
    let n = sc.events.len();
    match rng.below(10) {
        // Perturb one duration field (service, gap, or stall).
        0 | 1 => {
            if n == 0 {
                return;
            }
            let i = rng.below(n as u64) as usize;
            let scale = |rng: &mut FuzzRng, v: u64| -> u64 {
                match rng.below(5) {
                    0 => 0,
                    1 => v / 2,
                    2 => v.saturating_mul(2).min(MAX_DUR_NS),
                    3 => v.saturating_mul(10).min(MAX_DUR_NS),
                    _ => random_service_ns(rng),
                }
            };
            match &mut sc.events[i] {
                Event::Submit(_, service) => *service = scale(rng, *service),
                Event::SubmitSlo(_, service, slo) => {
                    if rng.chance(1, 2) {
                        *service = scale(rng, *service);
                    } else {
                        *slo = scale(rng, *slo);
                    }
                }
                Event::Advance(gap) => *gap = scale(rng, *gap),
                Event::Stall(_, dur) => *dur = scale(rng, *dur),
                _ => {}
            }
        }
        // Flip a submission's class.
        2 => {
            if let Some(ev) = sc
                .events
                .iter_mut()
                .filter(|e| matches!(e, Event::Submit(..) | Event::SubmitSlo(..)))
                .nth(rng.below(16) as usize)
            {
                let flipped = *rng.pick(&Priority::ALL);
                match ev {
                    Event::Submit(class, _) | Event::SubmitSlo(class, _, _) => *class = flipped,
                    _ => unreachable!("filtered to submissions"),
                }
            }
        }
        // Insert a random event.
        3 | 4 => {
            let at = rng.below(n as u64 + 1) as usize;
            let ev = random_event(rng, sc.aging_step_ns, sc.workers);
            sc.events.insert(at, ev);
        }
        // Delete a small span.
        5 => {
            if n == 0 {
                return;
            }
            let at = rng.below(n as u64) as usize;
            let len = (1 + rng.below(4) as usize).min(n - at);
            sc.events.drain(at..at + len);
        }
        // Duplicate a span (burst amplification).
        6 | 7 => {
            if n == 0 {
                return;
            }
            let at = rng.below(n as u64) as usize;
            let len = (1 + rng.below(6) as usize).min(n - at);
            let span: Vec<Event> = sc.events[at..at + len].to_vec();
            let insert_at = rng.below(sc.events.len() as u64 + 1) as usize;
            for (k, ev) in span.into_iter().enumerate() {
                sc.events.insert(insert_at + k, ev);
            }
            sc.events.truncate(512); // schedules stay replayable in µs
        }
        // Move (or toggle) the shutdown point.
        8 => {
            sc.events.retain(|e| !matches!(e, Event::Shutdown));
            if rng.chance(2, 3) {
                let at = rng.below(sc.events.len() as u64 + 1) as usize;
                sc.events.insert(at, Event::Shutdown);
            }
        }
        // Crossover: keep a prefix, splice in the donor's suffix.
        _ => {
            if let Some(d) = donor {
                if n > 0 && !d.events.is_empty() {
                    let cut = rng.below(n as u64) as usize;
                    let dcut = rng.below(d.events.len() as u64) as usize;
                    sc.events.truncate(cut);
                    sc.events.extend_from_slice(&d.events[dcut..]);
                    sc.events.truncate(512);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Minimization (delta debugging)
// ---------------------------------------------------------------------

/// Delta-debugs `scenario` down while `keep` stays true: repeatedly
/// drops event chunks (halving granularity, classic ddmin), then shrinks
/// surviving durations toward zero. `keep` is called on candidates only;
/// the returned scenario always satisfies it. Deterministic, and bounded
/// by `max_checks` predicate evaluations.
pub fn minimize(
    scenario: &Scenario,
    max_checks: usize,
    mut keep: impl FnMut(&Scenario) -> bool,
) -> Scenario {
    debug_assert!(keep(scenario), "minimize() needs an interesting input");
    let mut best = scenario.clone();
    let mut checks = 0usize;
    // Phase 1: chunk removal.
    let mut chunk = (best.events.len() / 2).max(1);
    while chunk >= 1 && checks < max_checks {
        let mut i = 0;
        let mut removed_any = false;
        while i < best.events.len() && checks < max_checks {
            let mut cand = best.clone();
            let end = (i + chunk).min(cand.events.len());
            cand.events.drain(i..end);
            checks += 1;
            if !cand.events.is_empty() && keep(&cand) {
                best = cand;
                removed_any = true;
                // Same index now holds the next chunk.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk /= 2;
        }
    }
    // Phase 2: shrink durations (0, then halves) while still interesting.
    for i in 0..best.events.len() {
        if checks >= max_checks {
            break;
        }
        let orig = best.events[i];
        let field = |ev: &Event| -> Option<u64> {
            match *ev {
                Event::Submit(_, v)
                | Event::SubmitSlo(_, v, _)
                | Event::Advance(v)
                | Event::Stall(_, v) => Some(v),
                _ => None,
            }
        };
        let with = |ev: &Event, v: u64| -> Event {
            match *ev {
                Event::Submit(c, _) => Event::Submit(c, v),
                Event::SubmitSlo(c, _, slo) => Event::SubmitSlo(c, v, slo),
                Event::Advance(_) => Event::Advance(v),
                Event::Stall(l, _) => Event::Stall(l, v),
                other => other,
            }
        };
        let Some(mut v) = field(&orig) else { continue };
        // Try zero first (biggest shrink), then binary descent.
        let mut cand = best.clone();
        cand.events[i] = with(&orig, 0);
        checks += 1;
        if keep(&cand) {
            best = cand;
            continue;
        }
        while v > 1 && checks < max_checks {
            let half = v / 2;
            let mut cand = best.clone();
            cand.events[i] = with(&orig, half);
            checks += 1;
            if keep(&cand) {
                best = cand;
                v = half;
            } else {
                break;
            }
        }
    }
    best
}

// ---------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------

/// Knobs of one fuzz campaign. Everything is deterministic in `seed`.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed: same seed → same campaign, bit for bit.
    pub seed: u64,
    /// Mutation iterations to run.
    pub iters: usize,
    /// Population size of the score-guided pool.
    pub pool: usize,
    /// Event-count ceiling for generated scenarios.
    pub max_events: usize,
    /// Simulated worker count of every scenario.
    pub workers: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0xF4E7,
            iters: 2_000,
            pool: 12,
            max_events: 96,
            workers: 2,
        }
    }
}

/// One minimized oracle violation a campaign found.
#[derive(Clone, Debug)]
pub struct ViolationFinding {
    /// The minimized reproducer.
    pub scenario: Scenario,
    /// The first oracle message of the (minimized) replay.
    pub detail: String,
}

/// The result of [`run_campaign`].
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// The config the campaign ran with.
    pub config: FuzzConfig,
    /// Scenarios replayed (pool init + iterations + minimization).
    pub executed: usize,
    /// The worst interactive p99 observed, nanoseconds.
    pub worst_p99_ns: u64,
    /// The minimized worst-case scenario (with `expect_p99_ns` recorded),
    /// ready for [`Scenario::to_ron`].
    pub worst: Scenario,
    /// The minimized *max-shed* scenario (with both `expect_p99_ns` and
    /// `expect_shed` recorded), when any violation-free schedule the
    /// campaign tried shed at all. Tracked separately from `worst`
    /// because the p99 score actively selects *away* from shedding:
    /// evicted and cancelled requests leave the latency population, so
    /// the champion schedule for tail latency is usually one where every
    /// SLO is met or absent. This secondary champion is what pins the
    /// shed-accounting semantics in the corpus.
    pub worst_shed: Option<Scenario>,
    /// `(iteration, p99_ns)` at every strict improvement — the search
    /// trajectory (iteration 0 = the best of the initial pool).
    pub improvements: Vec<(usize, u64)>,
    /// Minimized oracle violations (empty when the invariants held on
    /// every schedule tried — the expected steady state).
    pub violations: Vec<ViolationFinding>,
}

impl CampaignReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "seed={:#x} iters={} executed={} worst_interactive_p99={:.3}ms \
             improvements={} violations={}",
            self.config.seed,
            self.config.iters,
            self.executed,
            self.worst_p99_ns as f64 / 1e6,
            self.improvements.len(),
            self.violations.len(),
        )
    }
}

/// Runs a seeded, deterministic fuzz campaign: generate a pool, then
/// `iters` rounds of tournament-select → mutate → replay → score. New
/// worst-case p99s and oracle violations are delta-debugged down before
/// they are reported. Pure in `config` — no wall clock anywhere.
pub fn run_campaign(config: &FuzzConfig) -> CampaignReport {
    let mut rng = FuzzRng::new(config.seed);
    let mut executed = 0usize;
    let mut pool: Vec<(Scenario, u64, f64)> = Vec::with_capacity(config.pool);
    let mut violations: Vec<ViolationFinding> = Vec::new();
    let mut seen_violation_kinds: Vec<String> = Vec::new();

    let record_violation = |sc: &Scenario,
                            first: &str,
                            executed: &mut usize,
                            violations: &mut Vec<ViolationFinding>,
                            seen: &mut Vec<String>| {
        // One minimized reproducer per violation kind (the leading
        // word of the message) keeps the corpus meaningful.
        let kind = first.split(':').next().unwrap_or(first).to_string();
        if seen.contains(&kind) {
            return;
        }
        seen.push(kind);
        let mut checks = 0usize;
        let minimized = minimize(sc, 800, |cand| {
            checks += 1;
            !replay(cand).violations.is_empty()
        });
        *executed += checks;
        let detail = replay(&minimized)
            .violations
            .first()
            .cloned()
            .unwrap_or_default();
        *executed += 1;
        violations.push(ViolationFinding {
            scenario: minimized,
            detail,
        });
    };

    // Initial population.
    let mut best: Option<(Scenario, u64)> = None;
    let mut best_shed: Option<(Scenario, u64)> = None;
    let mut improvements = Vec::new();
    for _ in 0..config.pool.max(1) {
        let sc = generate(&mut rng, config.seed, config.max_events, config.workers);
        let out = replay(&sc);
        executed += 1;
        if let Some(first) = out.violations.first() {
            record_violation(
                &sc,
                first,
                &mut executed,
                &mut violations,
                &mut seen_violation_kinds,
            );
        }
        if best
            .as_ref()
            .map_or(true, |(_, p)| out.interactive_p99_ns > *p)
        {
            best = Some((sc.clone(), out.interactive_p99_ns));
        }
        if out.violations.is_empty() && out.shed_total() > best_shed.as_ref().map_or(0, |(_, n)| *n)
        {
            best_shed = Some((sc.clone(), out.shed_total()));
        }
        pool.push((sc, out.interactive_p99_ns, out.proximity));
    }
    if let Some((_, p)) = &best {
        improvements.push((0, *p));
    }

    // Search loop.
    for iter in 1..=config.iters {
        let parent = {
            let a = rng.below(pool.len() as u64) as usize;
            let b = rng.below(pool.len() as u64) as usize;
            if pool[a].1 >= pool[b].1 {
                a
            } else {
                b
            }
        };
        let donor_idx = rng.below(pool.len() as u64) as usize;
        let use_donor = rng.chance(15, 100);
        let child = {
            let donor = if use_donor {
                Some(&pool[donor_idx].0)
            } else {
                None
            };
            mutate(&pool[parent].0, donor, &mut rng)
        };
        let out = replay(&child);
        executed += 1;
        if let Some(first) = out.violations.first() {
            record_violation(
                &child,
                first,
                &mut executed,
                &mut violations,
                &mut seen_violation_kinds,
            );
        }
        if out.interactive_p99_ns > best.as_ref().map_or(0, |(_, p)| *p) {
            best = Some((child.clone(), out.interactive_p99_ns));
            improvements.push((iter, out.interactive_p99_ns));
        }
        if out.violations.is_empty() && out.shed_total() > best_shed.as_ref().map_or(0, |(_, n)| *n)
        {
            best_shed = Some((child.clone(), out.shed_total()));
        }
        // Pool update: replace the weakest member when the child beats it
        // on either signal (p99 or oracle proximity).
        let weakest = (0..pool.len())
            .min_by(|&a, &b| {
                (pool[a].1, pool[a].2)
                    .partial_cmp(&(pool[b].1, pool[b].2))
                    .unwrap()
            })
            .unwrap();
        if out.interactive_p99_ns > pool[weakest].1 || out.proximity > pool[weakest].2 {
            pool[weakest] = (child, out.interactive_p99_ns, out.proximity);
        }
    }

    // Minimize the champion while its p99 stays at least as bad, then
    // record the exact expectation for corpus replay.
    let (champion, champion_p99) = best.expect("non-empty pool");
    let mut checks = 0usize;
    let mut worst = if champion_p99 > 0 {
        minimize(&champion, 1_500, |cand| {
            checks += 1;
            let out = replay(cand);
            out.violations.is_empty() && out.interactive_p99_ns >= champion_p99
        })
    } else {
        champion
    };
    executed += checks;
    let final_out = replay(&worst);
    executed += 1;
    worst.expect_p99_ns = Some(final_out.interactive_p99_ns);
    // Pin the shed count only when the schedule actually sheds: the
    // field is omitted from serialization when `None`, which keeps
    // pre-SLO corpus files byte-identical.
    worst.expect_shed = (final_out.shed_total() > 0).then(|| final_out.shed_total());
    worst.name = format!("fuzz-worst-{:08x}", config.seed);

    // Minimize the max-shed champion while it keeps shedding at least as
    // much, then pin *both* counts for corpus replay.
    let worst_shed = if let Some((champion, shed)) = best_shed {
        let mut checks = 0usize;
        let mut m = minimize(&champion, 1_500, |cand| {
            checks += 1;
            let out = replay(cand);
            out.violations.is_empty() && out.shed_total() >= shed
        });
        executed += checks;
        let out = replay(&m);
        executed += 1;
        m.expect_p99_ns = Some(out.interactive_p99_ns);
        m.expect_shed = Some(out.shed_total());
        m.name = format!("fuzz-shed-{:08x}", config.seed);
        Some(m)
    } else {
        None
    };

    CampaignReport {
        config: config.clone(),
        executed,
        worst_p99_ns: final_out.interactive_p99_ns,
        worst,
        worst_shed,
        improvements,
        violations,
    }
}

// ---------------------------------------------------------------------
// Hand-written baselines
// ---------------------------------------------------------------------

/// The hand-written stress patterns of `tests/serve_qos.rs` /
/// `tests/serve_queue.rs` / the mixed-QoS bench, re-expressed as
/// scenarios on the same virtual clock. The corpus suite compares the
/// fuzzer's worst case against these: the acceptance bar is a committed
/// scenario whose interactive p99 is *strictly worse than every one of
/// them* — evidence the search reaches tails the hand-written tests
/// never did.
pub fn baseline_scenarios() -> Vec<Scenario> {
    let base = |name: &str, sizing: SizingSpec, batch_multiple: usize| Scenario {
        name: name.to_string(),
        seed: 0,
        workers: 2,
        capacity: 8,
        batch_multiple,
        aging_step_ns: 1_000_000,
        sizing,
        expect_p99_ns: None,
        expect_shed: None,
        events: Vec::new(),
    };
    let dynamic = SizingSpec::Dynamic {
        max_multiple: 8,
        budget_ns: 2_000_000,
        alpha_milli: 250,
    };

    // 1. The anti-starvation storm: one batch request under a hot
    //    interactive stream, fixed waves of 2, 0.3 ms services.
    let mut storm = base("hand-aged-batch-storm", SizingSpec::Fixed, 1);
    storm.events.push(Event::Submit(Priority::Batch, 300_000));
    for _ in 0..40 {
        storm
            .events
            .push(Event::Submit(Priority::Interactive, 300_000));
        storm
            .events
            .push(Event::Submit(Priority::Interactive, 300_000));
        storm.events.push(Event::Wave);
    }

    // 2. The three-class round-robin storm with 0.2–1.1 ms services
    //    (the serve_queue QoS stress, on the virtual clock).
    let mut classes = base("hand-three-class-storm", dynamic, 2);
    for i in 0..90u64 {
        let class = Priority::ALL[(i % 3) as usize];
        classes
            .events
            .push(Event::Submit(class, 200_000 + (i % 7) * 150_000));
        if i % 4 == 3 {
            classes.events.push(Event::Wave);
        }
    }

    // 3. A uniform interactive burst at the default dynamic sizing.
    let mut burst = base("hand-uniform-burst", dynamic, 4);
    burst.capacity = 64;
    for _ in 0..64 {
        burst
            .events
            .push(Event::Submit(Priority::Interactive, 1_000_000));
    }

    // 4. Saturating batch background with an interactive trickle (the
    //    mixed-QoS bench arm): batch floods, one interactive per wave.
    let mut mixed = base("hand-saturating-batch-bg", dynamic, 4);
    mixed.capacity = 24;
    for _ in 0..24 {
        mixed.events.push(Event::Submit(Priority::Batch, 900_000));
    }
    for _ in 0..16 {
        mixed
            .events
            .push(Event::Submit(Priority::Interactive, 250_000));
        mixed.events.push(Event::Wave);
    }
    vec![storm, classes, burst, mixed]
}

// ---------------------------------------------------------------------
// RON-style serialization
// ---------------------------------------------------------------------

impl Scenario {
    /// Serializes the scenario as a RON-style committed script — the
    /// corpus file format. Round-trips exactly through
    /// [`Scenario::from_ron`].
    pub fn to_ron(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "// serve-schedule scenario (rdg_fuzz_serve); replayed by \
             tests/serve_fuzz_corpus.rs"
        );
        let _ = writeln!(s, "(");
        let _ = writeln!(s, "    name: \"{}\",", self.name);
        let _ = writeln!(s, "    seed: {},", self.seed);
        let _ = writeln!(s, "    workers: {},", self.workers);
        let _ = writeln!(s, "    capacity: {},", self.capacity);
        let _ = writeln!(s, "    batch_multiple: {},", self.batch_multiple);
        let _ = writeln!(s, "    aging_step_ns: {},", self.aging_step_ns);
        match self.sizing {
            SizingSpec::Fixed => {
                let _ = writeln!(s, "    sizing: Fixed,");
            }
            SizingSpec::Dynamic {
                max_multiple,
                budget_ns,
                alpha_milli,
            } => {
                let _ = writeln!(
                    s,
                    "    sizing: Dynamic(max_multiple: {max_multiple}, \
                     budget_ns: {budget_ns}, alpha_milli: {alpha_milli}),"
                );
            }
        }
        match self.expect_p99_ns {
            Some(v) => {
                let _ = writeln!(s, "    expect_p99_ns: Some({v}),");
            }
            None => {
                let _ = writeln!(s, "    expect_p99_ns: None,");
            }
        }
        // Omitted (not `None`) when unset: pre-SLO corpus files round-trip
        // byte-identically through a serializer that never saw the field.
        if let Some(v) = self.expect_shed {
            let _ = writeln!(s, "    expect_shed: Some({v}),");
        }
        let _ = writeln!(s, "    events: [");
        for ev in &self.events {
            let line = match *ev {
                Event::Advance(ns) => format!("Advance({ns})"),
                Event::Submit(class, service) => {
                    format!("Submit({}, {service})", class_token(class))
                }
                Event::SubmitSlo(class, service, slo) => {
                    format!("SubmitSlo({}, {service}, {slo})", class_token(class))
                }
                Event::Wave => "Wave".to_string(),
                Event::Stall(lane, dur) => format!("Stall({lane}, {dur})"),
                Event::CloneClient => "CloneClient".to_string(),
                Event::DropClient => "DropClient".to_string(),
                Event::Shutdown => "Shutdown".to_string(),
            };
            let _ = writeln!(s, "        {line},");
        }
        let _ = writeln!(s, "    ],");
        let _ = writeln!(s, ")");
        s
    }

    /// Parses a scenario from its [`Scenario::to_ron`] form. `//`
    /// comments and trailing commas are tolerated; unknown fields are
    /// errors (a corpus file that drifts from the schema should fail
    /// loudly, not silently lose meaning).
    pub fn from_ron(text: &str) -> Result<Scenario, String> {
        let mut p = Parser::new(text);
        p.expect("(")?;
        let mut sc = Scenario {
            name: String::new(),
            seed: 0,
            workers: 1,
            capacity: 1,
            batch_multiple: 1,
            aging_step_ns: 0,
            sizing: SizingSpec::Fixed,
            expect_p99_ns: None,
            expect_shed: None,
            events: Vec::new(),
        };
        loop {
            if p.eat(")") {
                break;
            }
            let field = p.ident()?;
            p.expect(":")?;
            match field.as_str() {
                "name" => sc.name = p.string()?,
                "seed" => sc.seed = p.number()?,
                "workers" => sc.workers = p.number()? as usize,
                "capacity" => sc.capacity = p.number()? as usize,
                "batch_multiple" => sc.batch_multiple = p.number()? as usize,
                "aging_step_ns" => sc.aging_step_ns = p.number()?,
                "sizing" => sc.sizing = p.sizing()?,
                "expect_p99_ns" => sc.expect_p99_ns = p.option_number()?,
                "expect_shed" => sc.expect_shed = p.option_number()?,
                "events" => sc.events = p.events()?,
                other => return Err(format!("unknown scenario field `{other}`")),
            }
            p.eat(",");
        }
        Ok(sc)
    }
}

fn class_token(class: Priority) -> &'static str {
    match class {
        Priority::Interactive => "Interactive",
        Priority::Batch => "Batch",
        Priority::BestEffort => "BestEffort",
    }
}

fn class_from_token(tok: &str) -> Result<Priority, String> {
    match tok {
        "Interactive" => Ok(Priority::Interactive),
        "Batch" => Ok(Priority::Batch),
        "BestEffort" => Ok(Priority::BestEffort),
        other => Err(format!("unknown priority class `{other}`")),
    }
}

/// Minimal recursive-descent parser over the corpus grammar: idents,
/// integers, quoted strings, and the punctuation `( ) [ ] , :`.
struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn new(text: &str) -> Self {
        let mut tokens = Vec::new();
        for line in text.lines() {
            let line = match line.find("//") {
                Some(i) => &line[..i],
                None => line,
            };
            let mut cur = String::new();
            let mut chars = line.chars().peekable();
            while let Some(c) = chars.next() {
                match c {
                    '"' => {
                        if !cur.is_empty() {
                            tokens.push(std::mem::take(&mut cur));
                        }
                        let mut s = String::from("\"");
                        for c2 in chars.by_ref() {
                            if c2 == '"' {
                                break;
                            }
                            s.push(c2);
                        }
                        tokens.push(s);
                    }
                    '(' | ')' | '[' | ']' | ',' | ':' => {
                        if !cur.is_empty() {
                            tokens.push(std::mem::take(&mut cur));
                        }
                        tokens.push(c.to_string());
                    }
                    c if c.is_whitespace() => {
                        if !cur.is_empty() {
                            tokens.push(std::mem::take(&mut cur));
                        }
                    }
                    c => cur.push(c),
                }
            }
            if !cur.is_empty() {
                tokens.push(cur);
            }
        }
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Result<String, String> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| "unexpected end of input".to_string())?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, tok: &str) -> Result<(), String> {
        let t = self.next()?;
        if t == tok {
            Ok(())
        } else {
            Err(format!("expected `{tok}`, found `{t}`"))
        }
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        let t = self.next()?;
        if t.chars().all(|c| c.is_alphanumeric() || c == '_') && !t.is_empty() {
            Ok(t)
        } else {
            Err(format!("expected identifier, found `{t}`"))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let t = self.next()?;
        t.parse::<u64>()
            .map_err(|_| format!("expected number, found `{t}`"))
    }

    fn string(&mut self) -> Result<String, String> {
        let t = self.next()?;
        t.strip_prefix('"')
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, found `{t}`"))
    }

    fn option_number(&mut self) -> Result<Option<u64>, String> {
        let t = self.ident()?;
        match t.as_str() {
            "None" => Ok(None),
            "Some" => {
                self.expect("(")?;
                let v = self.number()?;
                self.expect(")")?;
                Ok(Some(v))
            }
            other => Err(format!("expected Some(..) or None, found `{other}`")),
        }
    }

    fn sizing(&mut self) -> Result<SizingSpec, String> {
        let t = self.ident()?;
        match t.as_str() {
            "Fixed" => Ok(SizingSpec::Fixed),
            "Dynamic" => {
                self.expect("(")?;
                let (mut max_multiple, mut budget_ns, mut alpha_milli) = (1usize, 0u64, 0u32);
                loop {
                    if self.eat(")") {
                        break;
                    }
                    let f = self.ident()?;
                    self.expect(":")?;
                    match f.as_str() {
                        "max_multiple" => max_multiple = self.number()? as usize,
                        "budget_ns" => budget_ns = self.number()?,
                        "alpha_milli" => alpha_milli = self.number()? as u32,
                        other => return Err(format!("unknown sizing field `{other}`")),
                    }
                    self.eat(",");
                }
                Ok(SizingSpec::Dynamic {
                    max_multiple,
                    budget_ns,
                    alpha_milli,
                })
            }
            other => Err(format!("unknown sizing `{other}`")),
        }
    }

    fn events(&mut self) -> Result<Vec<Event>, String> {
        self.expect("[")?;
        let mut events = Vec::new();
        loop {
            if self.eat("]") {
                break;
            }
            let t = self.ident()?;
            let ev = match t.as_str() {
                "Advance" => {
                    self.expect("(")?;
                    let ns = self.number()?;
                    self.expect(")")?;
                    Event::Advance(ns)
                }
                "Submit" => {
                    self.expect("(")?;
                    let class = class_from_token(&self.ident()?)?;
                    self.eat(",");
                    let service = self.number()?;
                    self.expect(")")?;
                    Event::Submit(class, service)
                }
                "SubmitSlo" => {
                    self.expect("(")?;
                    let class = class_from_token(&self.ident()?)?;
                    self.eat(",");
                    let service = self.number()?;
                    self.eat(",");
                    let slo = self.number()?;
                    self.expect(")")?;
                    Event::SubmitSlo(class, service, slo)
                }
                "Wave" => Event::Wave,
                "Stall" => {
                    self.expect("(")?;
                    let lane = self.number()? as usize;
                    self.eat(",");
                    let dur = self.number()?;
                    self.expect(")")?;
                    Event::Stall(lane, dur)
                }
                "CloneClient" => Event::CloneClient,
                "DropClient" => Event::DropClient,
                "Shutdown" => Event::Shutdown,
                other => return Err(format!("unknown event `{other}`")),
            };
            events.push(ev);
            self.eat(",");
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny".into(),
            seed: 7,
            workers: 2,
            capacity: 4,
            batch_multiple: 2,
            aging_step_ns: 1_000_000,
            sizing: SizingSpec::Dynamic {
                max_multiple: 8,
                budget_ns: 2_000_000,
                alpha_milli: 250,
            },
            expect_p99_ns: None,
            expect_shed: None,
            events: vec![
                Event::Submit(Priority::Batch, 300_000),
                Event::Advance(1_500_000),
                Event::Submit(Priority::Interactive, 200_000),
                Event::Wave,
                Event::Stall(0, 5_000_000),
                Event::Submit(Priority::Interactive, 100_000),
                Event::CloneClient,
                Event::DropClient,
                Event::Shutdown,
            ],
        }
    }

    #[test]
    fn replay_is_deterministic_and_conserving() {
        let sc = tiny_scenario();
        let a = replay(&sc);
        let b = replay(&sc);
        assert_eq!(a.waves, b.waves);
        assert_eq!(a.interactive_p99_ns, b.interactive_p99_ns);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.accepted.len(), a.trace.len());
    }

    #[test]
    fn aged_batch_dispatches_first_in_replay() {
        let sc = tiny_scenario();
        let out = replay(&sc);
        // The batch request aged one full step before the interactive
        // arrived: it must dispatch first (earlier enqueue, effective 0).
        assert_eq!(out.waves[0].1[0], 0, "aged batch leads the first wave");
    }

    #[test]
    fn fused_replay_is_deterministic_and_keeps_oracles() {
        let sc = tiny_scenario();
        for mg in [1usize, 2, 4, 16] {
            let a = replay_fused(&sc, mg);
            let b = replay_fused(&sc, mg);
            assert_eq!(a.waves, b.waves, "max_group {mg}");
            assert!(
                a.violations.is_empty(),
                "max_group {mg}: {:?}",
                a.violations
            );
            assert_eq!(
                a.accepted.len(),
                a.trace.len() + a.evicted.len(),
                "fused conservation"
            );
        }
    }

    #[test]
    fn fused_groups_shorten_the_drain_without_reordering() {
        // One worker, one fixed wave of eight identical 1 ms requests:
        // same-duration ⇒ same signature, so max_group 4 yields two
        // stacked calls of the member max (2 ms total) where the scalar
        // twin serializes all eight (8 ms) — with an identical pop order.
        let mut events = vec![Event::Submit(Priority::Interactive, 1_000_000); 8];
        events.push(Event::Wave);
        let sc = Scenario {
            name: "fused-burst".into(),
            seed: 0,
            workers: 1,
            capacity: 8,
            batch_multiple: 8,
            aging_step_ns: 1_000_000,
            sizing: SizingSpec::Fixed,
            expect_p99_ns: None,
            expect_shed: None,
            events,
        };
        let scalar = replay(&sc);
        let fused = replay_fused(&sc, 4);
        assert!(scalar.violations.is_empty(), "{:?}", scalar.violations);
        assert!(fused.violations.is_empty(), "{:?}", fused.violations);
        assert_eq!(
            scalar.waves, fused.waves,
            "fusion must not change pop order"
        );
        let drain = |o: &ReplayOutcome| o.trace.iter().map(|r| r.done_ns).max().unwrap();
        assert_eq!(drain(&scalar), 8_000_000);
        assert_eq!(drain(&fused), 2_000_000);
    }

    #[test]
    fn ron_round_trips_exactly() {
        let mut sc = tiny_scenario();
        sc.expect_p99_ns = Some(123_456);
        let text = sc.to_ron();
        let back = Scenario::from_ron(&text).unwrap();
        assert_eq!(sc, back);
        // Fixed sizing too.
        sc.sizing = SizingSpec::Fixed;
        sc.expect_p99_ns = None;
        let back = Scenario::from_ron(&sc.to_ron()).unwrap();
        assert_eq!(sc, back);
    }

    #[test]
    fn parser_rejects_unknown_fields_and_events() {
        let bad = "(name: \"x\", wibble: 3,)";
        assert!(Scenario::from_ron(bad).unwrap_err().contains("wibble"));
        let bad = "(events: [Explode,],)";
        assert!(Scenario::from_ron(bad).unwrap_err().contains("Explode"));
    }

    #[test]
    fn minimize_keeps_the_predicate_and_shrinks() {
        let sc = tiny_scenario();
        let full = replay(&sc);
        let target = full.interactive_p99_ns;
        assert!(target > 0);
        let min = minimize(&sc, 500, |cand| replay(cand).interactive_p99_ns >= target);
        assert!(replay(&min).interactive_p99_ns >= target);
        assert!(min.events.len() <= sc.events.len());
    }

    #[test]
    fn shutdown_closes_admission_but_drains() {
        let mut sc = tiny_scenario();
        sc.events.push(Event::Submit(Priority::Interactive, 100));
        let out = replay(&sc);
        assert_eq!(out.rejected, 1, "post-shutdown submit rejected");
        // Everything accepted before shutdown still dispatched.
        assert_eq!(out.accepted.len(), out.trace.len());
    }

    #[test]
    fn campaign_is_deterministic_in_the_seed() {
        let cfg = FuzzConfig {
            iters: 40,
            ..FuzzConfig::default()
        };
        let a = run_campaign(&cfg);
        let b = run_campaign(&cfg);
        assert_eq!(a.worst_p99_ns, b.worst_p99_ns);
        assert_eq!(a.worst, b.worst);
        assert_eq!(a.improvements, b.improvements);
        assert_eq!(a.executed, b.executed);
        assert!(
            a.violations.is_empty(),
            "oracle violation: {:?}",
            a.violations
        );
    }

    #[test]
    fn baselines_replay_clean() {
        for sc in baseline_scenarios() {
            let out = replay(&sc);
            assert!(
                out.violations.is_empty(),
                "{}: {:?}",
                sc.name,
                out.violations
            );
            assert!(
                out.interactive_p99_ns > 0,
                "{} has interactive traffic",
                sc.name
            );
        }
    }
}
