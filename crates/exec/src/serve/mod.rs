//! QoS-aware admission-controlled serving: per-class bounded queues and a
//! service-time-adaptive dispatcher in front of the executor.
//!
//! [`Session::run_many`](crate::Session::run_many) launches every request
//! it is handed as a concurrent root frame — fine for a caller that already
//! sized its batch, wrong for a *server*: a burst of clients would put
//! hundreds of frame trees in flight at once, and on a small worker pool
//! the surplus concurrency buys nothing but cache thrash (the measured
//! ~20% locality tax at concurrency 32 on one core — see PERFORMANCE.md).
//! This module is the serving rung on top of the multi-run runtime:
//!
//! ```text
//! Interactive ──▶ [lane 0]──┐
//! Batch       ──▶ [lane 1]──┼─▶ aged-priority pick ─▶ dispatcher ─▶ root
//! BestEffort  ──▶ [lane 2]──┘   (strict + aging)      (EWMA-sized  frames
//!      ▲                                               waves)        │
//!      └───────────── ServeTicket::wait ◀── results ◀───────────────┘
//! ```
//!
//! * **Admission classes** — every request carries a [`Priority`]
//!   (`Interactive` / `Batch` / `BestEffort`). Each class has its own
//!   bounded lane with its own backpressure: [`ServeClient::try_submit_with`]
//!   fails fast with [`ServeError::QueueFull`] when *its class* is full,
//!   [`ServeClient::submit_with`] blocks, [`ServeClient::submit_deadline_with`]
//!   bounds the wait. A saturated `Batch` lane never blocks admission of an
//!   `Interactive` request. Plain `submit`/`try_submit` use the client's
//!   default class ([`ServeClient::with_priority`] makes class-defaulted
//!   clones to hand to each traffic source).
//! * **Aged strict priority** — the dispatcher drains lanes strictly by
//!   class, *except* that a request promotes itself one class per
//!   [`ServeConfig::aging_step`] waited, so a hot `Interactive` stream can
//!   delay a `Batch` request by at most the aging bound, never unboundedly
//!   (see `classes.rs` for the exact deterministic pop rule).
//! * **Dynamic wave sizing** — the dispatcher drains in waves, submits
//!   each wave as concurrent root frames, and joins it before the next.
//!   Under [`WaveSizing::Dynamic`] (the default) an EWMA of observed
//!   per-request service time picks the largest wave whose predicted
//!   drain time fits the configured wave budget, clamped to
//!   `[workers, workers × max_multiple]`; [`WaveSizing::Fixed`] recovers
//!   the PR 4 `workers × batch_multiple` behavior exactly (see
//!   `controller.rs`).
//! * **Latency accounting** — every request carries its
//!   enqueue → dispatch → complete timestamps; [`ServeClient::stats`]
//!   snapshots queue-wait, service, and total latency as p50/p95/p99
//!   ([`ServeStats`]) — aggregate *and* per class ([`ClassStats`]) — plus
//!   admission counters (submitted / rejected / expired / completed /
//!   failed).
//! * **Shutdown** — [`ServeClient::shutdown`] (or dropping the last
//!   client) stops admission, drains every already-accepted request, and
//!   joins the dispatcher. No accepted request is ever lost.
//!
//! The usual entry point is [`crate::Session::serve`] /
//! [`crate::Session::serve_with`], which wire a session's plan, parameters,
//! and executor into [`ServeQueue::start`]. The dispatcher's *decision*
//! logic (class pick, aging, wave sizing) lives in pure, clock-free units —
//! `classes::ClassQueues` and `controller::WaveController` — driven
//! deterministically by [`test_support::ScriptedServe`] in tests.
//!
//! # Example
//!
//! ```
//! use rdg_exec::{Executor, Priority, Session};
//! use rdg_graph::ModuleBuilder;
//! use rdg_tensor::{DType, Tensor};
//!
//! let mut mb = ModuleBuilder::new();
//! let x = mb.main_input(DType::F32);
//! let y = mb.scale(x, 2.0).unwrap();
//! mb.set_outputs(&[y]).unwrap();
//! let session = Session::new(Executor::with_threads(2), mb.finish().unwrap()).unwrap();
//!
//! let client = session.serve();
//! let batch = client.with_priority(Priority::Batch);
//! let ticket = client.submit(vec![Tensor::scalar_f32(21.0)]).unwrap();
//! let bg = batch.submit(vec![Tensor::scalar_f32(1.0)]).unwrap();
//! assert_eq!(ticket.wait().unwrap()[0].as_f32_scalar().unwrap(), 42.0);
//! assert_eq!(bg.wait().unwrap()[0].as_f32_scalar().unwrap(), 2.0);
//! let stats = client.stats();
//! assert_eq!(stats.completed, 2);
//! assert_eq!(stats.classes[Priority::Batch.index()].completed, 1);
//! client.shutdown();
//! ```

pub(crate) mod classes;
pub(crate) mod controller;
pub mod fuzz;
pub mod test_support;

use crate::error::ExecError;
use crate::executor::{Executor, RunHandle};
use crate::params::ParamStore;
use crate::plan::ModulePlan;
use crate::stats::{ExecStats, StatsSnapshot};
use classes::{ClassQueues, Queued};
use controller::WaveController;
use crossbeam_channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, MutexGuard};
use rdg_tensor::Tensor;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission class of one serving request.
///
/// Classes are *strictly* ordered — `Interactive` beats `Batch` beats
/// `BestEffort` (the derived order: smaller is more urgent) — subject to
/// anti-starvation aging: a request waiting in a lower class promotes one
/// class per [`ServeConfig::aging_step`], so lower classes are delayed by
/// at most a bounded amount, never forever.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive foreground traffic. The default class of a fresh
    /// [`ServeClient`] — a single-class workload therefore behaves exactly
    /// like a class-blind FIFO queue.
    #[default]
    Interactive,
    /// Throughput traffic that tolerates queueing (offline scoring,
    /// refresh jobs). Dispatched when no fresh `Interactive` work is
    /// queued, or after aging past it.
    Batch,
    /// Scavenger class: runs in whatever capacity is left, needs two
    /// aging steps to reach `Interactive` urgency.
    BestEffort,
}

impl Priority {
    /// Number of classes (lane count of every queue and stats array).
    pub const COUNT: usize = 3;

    /// All classes, most- to least-urgent. Index with [`Priority::index`].
    pub const ALL: [Priority; Priority::COUNT] =
        [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// Lane index of this class: 0 (`Interactive`) … 2 (`BestEffort`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable class name (stats tables, logs).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::BestEffort => "best-effort",
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wave-sizing policy for the dispatcher.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WaveSizing {
    /// PR 4 behavior, recoverable for back-compat and A/B runs: every
    /// wave is exactly `workers ×` [`ServeConfig::batch_multiple`].
    Fixed,
    /// Adapt the wave target from observed service times: an EWMA of
    /// per-request service time picks the largest wave whose predicted
    /// drain time (`wave / workers × ewma`) fits `wave_budget`, clamped
    /// to `[workers, workers × max_multiple]`. Starts from
    /// `workers ×` [`ServeConfig::batch_multiple`] until the first
    /// observation arrives.
    Dynamic {
        /// Upper clamp, as a multiple of the worker count.
        max_multiple: usize,
        /// Wall-clock budget one wave's drain should fit in. Small
        /// budgets favor latency (short join granularity), large ones
        /// favor dispatch-overhead amortization.
        wave_budget: Duration,
        /// EWMA smoothing factor in `(0, 1]`; higher reacts faster.
        ewma_alpha: f64,
    },
}

impl Default for WaveSizing {
    /// Dynamic sizing: clamp at ×8 workers, 2 ms wave budget, α = 0.25.
    ///
    /// The budget leans toward latency: a wave is joined as a unit, so
    /// its drain time is the latency floor of every request admitted
    /// behind it — including a fresh `Interactive` one. 2 ms keeps that
    /// floor tight while still batching enough sub-millisecond requests
    /// to amortize the dispatch handoff; raise it for pure-throughput
    /// (single-class batch) serving.
    fn default() -> Self {
        WaveSizing::Dynamic {
            max_multiple: 8,
            wave_budget: Duration::from_millis(2),
            ewma_alpha: 0.25,
        }
    }
}

/// Tuning knobs for one serving loop.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bounded slots **per class lane**. A full lane rejects
    /// `try_submit` and blocks `submit` for that class only — this is the
    /// backpressure surface clients observe, and saturating one class
    /// never blocks admission of another.
    pub capacity: usize,
    /// Wave size as a multiple of the executor's worker count: the exact
    /// wave under [`WaveSizing::Fixed`], the starting point under
    /// [`WaveSizing::Dynamic`].
    pub batch_multiple: usize,
    /// Sliding-window size (samples) of each latency distribution kept for
    /// percentile snapshots.
    pub latency_window: usize,
    /// How the dispatcher sizes its waves (default: dynamic EWMA).
    pub sizing: WaveSizing,
    /// Queue wait that promotes a request one class (anti-starvation
    /// aging). Tune it toward the lower classes' latency tolerance;
    /// `Duration::ZERO` disables class separation entirely (global FIFO —
    /// the class-blind PR 4 queue, useful as an A/B baseline).
    pub aging_step: Duration,
    /// Record every dispatch wave (controller target + admission sequence
    /// numbers in pop order) for retrieval via
    /// [`ServeClient::dispatch_log`]. Off by default — it is a test hook:
    /// the differential suite uses it to compare the live dispatcher's
    /// decisions against the `ScriptedServe` twin, wave for wave.
    pub record_dispatch: bool,
    /// Least-urgent end of the classes eligible for **predictive
    /// admission shedding**: an SLO-carrying submit into a class at least
    /// this far down the urgency order is rejected up front with
    /// [`ServeError::Shed`] when the predicted queue wait (lane depth ×
    /// EWMA service estimate ÷ workers) already exceeds its deadline —
    /// overload sheds cheap work *before* it queues. `None` disables the
    /// check; the default sheds `BestEffort` only (set
    /// `Some(Priority::Batch)` to cover `Batch` too). Inert until the
    /// dynamic controller has an EWMA, and for requests without an SLO.
    pub predictive_shed_from: Option<Priority>,
    /// Fuse same-shape kernels across concurrent requests into stacked
    /// kernel calls (see `crate::batch`). **On** by default for serving —
    /// the dispatcher enables it on the executor at start and disables it
    /// again at shutdown — while bare [`Executor::run`] stays scalar.
    /// Turn it off for an A/B baseline or to pin exact scalar scheduling.
    /// Fusion never changes results: stacked kernels are bit-for-bit equal
    /// to the scalar calls they replace.
    pub cross_request_batching: bool,
    /// Clamp on how many request instances one fused kernel call may
    /// cover. Bounds stacked-tensor size and keeps a fused call's latency
    /// close to scalar; values < 1 are treated as 1 (scalar).
    pub max_fuse_group: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            capacity: 256,
            batch_multiple: 4,
            latency_window: 4096,
            sizing: WaveSizing::default(),
            aging_step: Duration::from_millis(25),
            record_dispatch: false,
            predictive_shed_from: Some(Priority::BestEffort),
            cross_request_batching: true,
            max_fuse_group: crate::batch::DEFAULT_MAX_GROUP,
        }
    }
}

/// Errors surfaced by the serving client.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// `try_submit` on a full class lane: the caller should back off or
    /// retry with the blocking `submit`.
    QueueFull,
    /// `submit_deadline` waited out its deadline on a full class lane.
    DeadlineExceeded,
    /// The serving loop no longer accepts requests (explicit shutdown or
    /// every client handle was dropped).
    Shutdown,
    /// The request was load-shed against its end-to-end SLO: evicted from
    /// its lane after the deadline passed, cancelled mid-service when the
    /// deadline passed in flight, or rejected at submit because the
    /// predicted queue wait already exceeded it. `waited` is how long the
    /// request had been in the system when it was shed.
    Shed {
        /// submit → shed span.
        waited: Duration,
    },
    /// The request was admitted and executed, but the run failed.
    Exec(ExecError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull => write!(f, "admission lane full"),
            ServeError::DeadlineExceeded => {
                write!(f, "admission deadline exceeded while lane was full")
            }
            ServeError::Shutdown => write!(f, "serving loop has shut down"),
            ServeError::Shed { waited } => {
                write!(f, "request shed against its SLO after {waited:?}")
            }
            ServeError::Exec(e) => write!(f, "request execution failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

/// Percentile snapshot of one latency distribution, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyPercentiles {
    /// Observations recorded over the loop's lifetime (the percentiles are
    /// computed over the most recent [`ServeConfig::latency_window`]).
    pub count: u64,
    /// Lifetime mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 95th percentile, µs.
    pub p95_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
}

impl LatencyPercentiles {
    /// Computes the nearest-rank p50/p95/p99 (and mean) over a set of
    /// nanosecond samples. Sorts `samples` in place; an empty set yields
    /// the all-zero snapshot.
    ///
    /// This is *the* quantile rule of the serving stack — `ServeStats`
    /// snapshots and `rdg_cluster::serve_real`'s client-observed report
    /// both go through it, so their numbers stay comparable.
    pub fn from_ns_samples(samples: &mut Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyPercentiles::default();
        }
        samples.sort_unstable();
        let sum: u128 = samples.iter().map(|&ns| ns as u128).sum();
        let q = |p: f64| -> f64 {
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx] as f64 / 1_000.0
        };
        LatencyPercentiles {
            count: samples.len() as u64,
            mean_us: (sum as f64 / samples.len() as f64) / 1_000.0,
            p50_us: q(0.50),
            p95_us: q(0.95),
            p99_us: q(0.99),
        }
    }
}

/// One latency distribution: a sliding sample window plus lifetime
/// count/sum, recorded by the dispatcher and snapshotted on demand.
struct LatencyTrack {
    inner: Mutex<LatRing>,
}

struct LatRing {
    samples: Vec<u64>, // nanoseconds
    next: usize,
    count: u64,
    sum_ns: u128,
    cap: usize,
}

impl LatencyTrack {
    fn new(cap: usize) -> Self {
        LatencyTrack {
            inner: Mutex::new(LatRing {
                samples: Vec::new(),
                next: 0,
                count: 0,
                sum_ns: 0,
                cap: cap.max(1),
            }),
        }
    }

    fn record_ns(&self, ns: u64) {
        let mut r = self.inner.lock();
        r.count += 1;
        r.sum_ns += ns as u128;
        if r.samples.len() < r.cap {
            r.samples.push(ns);
        } else {
            let i = r.next;
            r.samples[i] = ns;
            r.next = (i + 1) % r.cap;
        }
    }

    #[cfg(test)]
    fn record(&self, d: Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    fn percentiles(&self) -> LatencyPercentiles {
        let r = self.inner.lock();
        if r.samples.is_empty() {
            return LatencyPercentiles::default();
        }
        let mut v = r.samples.clone();
        let mut p = LatencyPercentiles::from_ns_samples(&mut v);
        // Count and mean are lifetime figures, wider than the window.
        p.count = r.count;
        p.mean_us = (r.sum_ns as f64 / r.count as f64) / 1_000.0;
        p
    }
}

/// Per-class slice of a [`ServeStats`] snapshot: the admission counters
/// and the full wait/service/total latency split for one [`Priority`],
/// indexed by [`Priority::index`] in [`ServeStats::classes`].
#[derive(Clone, Debug, Default)]
pub struct ClassStats {
    /// Requests of this class accepted into the lane.
    pub submitted: u64,
    /// `try_submit` calls of this class bounced off a full lane.
    pub rejected: u64,
    /// `submit_deadline` calls of this class that waited out their
    /// deadline.
    pub expired: u64,
    /// Requests of this class that completed with a successful run
    /// delivered to a live ticket.
    pub completed: u64,
    /// Requests of this class that completed with an execution error.
    pub failed: u64,
    /// Requests of this class evicted at pop time: their end-to-end
    /// deadline had already passed when the dispatcher reached them, so
    /// they were discarded instead of burning a wave slot.
    pub shed: u64,
    /// Requests of this class cancelled mid-service: the deadline passed
    /// after dispatch, while the run was in flight.
    pub shed_inflight: u64,
    /// Requests of this class rejected at submit by predictive admission
    /// shedding (predicted wait already exceeded the SLO; never queued).
    pub shed_predicted: u64,
    /// Requests of this class whose result had no receiver: the client
    /// dropped the [`ServeTicket`] before delivery. The run still
    /// executed; the answer went nowhere. Split from `completed` so
    /// goodput accounting cannot mistake abandoned work for served work.
    pub abandoned: u64,
    /// Requests of this class sitting in the lane right now.
    pub queue_depth: usize,
    /// enqueue → dispatch (time spent queued).
    pub wait: LatencyPercentiles,
    /// dispatch → complete (time spent executing, including wave joins).
    pub service: LatencyPercentiles,
    /// enqueue → complete (what the client observes).
    pub total: LatencyPercentiles,
}

/// Snapshot of one serving loop's counters and latency percentiles.
///
/// Counter fields are monotone across snapshots of a live loop (they only
/// ever increase) — per class and therefore also in the aggregate; within
/// one snapshot `p50 ≤ p95 ≤ p99` holds for every distribution by
/// construction.
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests accepted into the queue (all classes).
    pub submitted: u64,
    /// `try_submit` calls bounced off a full lane (backpressure events).
    pub rejected: u64,
    /// `submit_deadline` calls that waited out their deadline.
    pub expired: u64,
    /// Requests that completed with a successful run delivered to a live
    /// ticket.
    pub completed: u64,
    /// Requests that completed with an execution error.
    pub failed: u64,
    /// Requests evicted at pop time against their SLO (all classes).
    pub shed: u64,
    /// Requests cancelled mid-service against their SLO (all classes).
    pub shed_inflight: u64,
    /// Requests rejected at submit by predictive shedding (all classes).
    pub shed_predicted: u64,
    /// Requests whose ticket was dropped before delivery (all classes).
    pub abandoned: u64,
    /// Dispatch waves formed.
    pub batches: u64,
    /// Requests sitting in the queue right now (all classes).
    pub queue_depth: usize,
    /// Root frames in flight right now.
    pub in_flight: usize,
    /// The wave target the *next* dispatch wave will use — constant under
    /// [`WaveSizing::Fixed`], live controller output under
    /// [`WaveSizing::Dynamic`].
    pub wave_target: usize,
    /// The controller's current per-request service EWMA, nanoseconds —
    /// `0` until the first dynamic-sizing observation (and always under
    /// [`WaveSizing::Fixed`]). This is the estimate predictive shedding
    /// and cluster routing divide by.
    pub service_ewma_ns: u64,
    /// enqueue → dispatch (time spent queued), all classes.
    pub wait: LatencyPercentiles,
    /// dispatch → complete (time spent executing, including wave joins).
    pub service: LatencyPercentiles,
    /// enqueue → complete (what the client observes), all classes.
    pub total: LatencyPercentiles,
    /// Fused kernel calls issued since this loop started (each covered ≥2
    /// request instances). Zero when `cross_request_batching` is off.
    pub fusion_groups: u64,
    /// Kernel instances executed through a fused call since this loop
    /// started — the numerator of [`ServeStats::fused_fraction`].
    pub fusion_instances: u64,
    /// Fusion-eligible kernel instances (batchable graph nodes) executed
    /// since this loop started, fused or not — the denominator of
    /// [`ServeStats::fused_fraction`]. Counted on the shared executor, so
    /// concurrent non-serving runs on the same executor smear in; with the
    /// usual one-loop-per-executor layout it is exact once runs complete.
    pub fusion_eligible: u64,
    /// The per-class split, indexed by [`Priority::index`].
    pub classes: [ClassStats; Priority::COUNT],
}

impl ServeStats {
    /// Share of fusion-eligible kernel instances that actually executed
    /// through a fused call (`0.0` when nothing eligible ran yet).
    pub fn fused_fraction(&self) -> f64 {
        if self.fusion_eligible == 0 {
            0.0
        } else {
            self.fusion_instances as f64 / self.fusion_eligible as f64
        }
    }

    /// One-line human-readable summary (serving-loop progress printing).
    pub fn summary(&self) -> String {
        format!(
            "submitted={} completed={} failed={} rejected={} expired={} \
             shed={}/{}/{} abandoned={} depth={} in_flight={} wave={} \
             total_p50={:.0}µs p95={:.0}µs p99={:.0}µs",
            self.submitted,
            self.completed,
            self.failed,
            self.rejected,
            self.expired,
            self.shed,
            self.shed_inflight,
            self.shed_predicted,
            self.abandoned,
            self.queue_depth,
            self.in_flight,
            self.wave_target,
            self.total.p50_us,
            self.total.p95_us,
            self.total.p99_us,
        )
    }

    /// Multi-line per-class summary (one line per class that saw traffic).
    pub fn class_summary(&self) -> String {
        let mut out = String::new();
        for p in Priority::ALL {
            let c = &self.classes[p.index()];
            if c.submitted == 0 && c.rejected == 0 && c.expired == 0 && c.shed_predicted == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<12} submitted={} completed={} failed={} rejected={} expired={} \
                 shed={}/{}/{} abandoned={} depth={} wait_p95={:.0}µs \
                 total_p50={:.0}µs p95={:.0}µs p99={:.0}µs",
                p.name(),
                c.submitted,
                c.completed,
                c.failed,
                c.rejected,
                c.expired,
                c.shed,
                c.shed_inflight,
                c.shed_predicted,
                c.abandoned,
                c.queue_depth,
                c.wait.p95_us,
                c.total.p50_us,
                c.total.p95_us,
                c.total.p99_us,
            ));
        }
        out
    }
}

/// One dispatch wave as recorded when [`ServeConfig::record_dispatch`] is
/// set: the scheduling *decision* the dispatcher made, stripped of wall
/// time so it is comparable across a live run and a scripted replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WaveRecord {
    /// The controller's wave target when this wave formed.
    pub target: usize,
    /// Admission sequence numbers (0 = first accepted request) in
    /// dispatch order within the wave.
    pub seqs: Vec<u64>,
    /// Admission sequence numbers of requests popped while forming this
    /// wave but **evicted** instead of dispatched: their end-to-end
    /// deadline had already passed. Eviction is part of the scheduling
    /// decision, so the differential suite compares it twin-for-twin.
    pub shed_seqs: Vec<u64>,
}

/// One queued request: feeds in, result channel out. Class, enqueue
/// timestamp, and deadline ride in the [`Queued`] wrapper the lane keeps.
struct Request {
    feeds: Vec<Tensor>,
    tx: Sender<Result<Vec<Tensor>, ServeError>>,
}

/// A cheap point-in-time load snapshot of one serving loop, for
/// join-shortest-queue replica routing (`rdg_cluster::serve_real`): queue
/// depth and in-flight count plus the service EWMA to turn depth into a
/// predicted wait. Reading one costs a short lock plus two atomic loads —
/// cheap enough to take per routing decision. A snapshot is immediately
/// stale, of course; the router treats it as a hint, never a guarantee.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaSnapshot {
    /// Requests queued across all lanes at snapshot time.
    pub queue_depth: usize,
    /// Root frames in flight at snapshot time.
    pub in_flight: usize,
    /// Per-request service EWMA, nanoseconds (`0` = no estimate yet).
    pub service_ewma_ns: u64,
    /// The loop's worker count (what the queue drains through).
    pub workers: usize,
}

impl ReplicaSnapshot {
    /// Nominal per-request service estimate used before the replica has
    /// observed anything: 1 ms, so early routing degrades to plain
    /// shortest-queue-length comparison.
    pub const DEFAULT_SERVICE_NS: u64 = 1_000_000;

    /// Predicted wait for one more request behind this snapshot's load:
    /// `(queued + in flight) × ewma ÷ workers` (the same prediction rule
    /// predictive admission shedding uses).
    pub fn predicted_wait_ns(&self) -> u64 {
        let ewma = if self.service_ewma_ns == 0 {
            Self::DEFAULT_SERVICE_NS
        } else {
            self.service_ewma_ns
        };
        controller::predicted_wait_ns(self.queue_depth + self.in_flight, ewma, self.workers)
    }
}

struct QueueState {
    queue: ClassQueues<Request>,
    /// `false` once shutdown began: submits are rejected, the dispatcher
    /// drains what was already accepted and exits.
    open: bool,
    /// Live `ServeClient` handles; the last drop initiates shutdown.
    clients: usize,
}

/// Atomic counters + latency tracks for one class.
struct ClassLedger {
    submitted: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    shed_inflight: AtomicU64,
    shed_predicted: AtomicU64,
    abandoned: AtomicU64,
    wait: LatencyTrack,
    service: LatencyTrack,
    total: LatencyTrack,
}

impl ClassLedger {
    fn new(window: usize) -> Self {
        ClassLedger {
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            shed_inflight: AtomicU64::new(0),
            shed_predicted: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            wait: LatencyTrack::new(window),
            service: LatencyTrack::new(window),
            total: LatencyTrack::new(window),
        }
    }
}

struct StatsInner {
    /// Per-class ledgers; the aggregate counters in a snapshot are their
    /// sums (still monotone: a sum of monotone counters is monotone).
    classes: [ClassLedger; Priority::COUNT],
    batches: AtomicU64,
    in_flight: AtomicUsize,
    /// The controller's current wave target, published after every wave.
    wave_target: AtomicUsize,
    /// The controller's service EWMA in nanoseconds (`0` = none yet),
    /// published after every wave so the submit path can predict queue
    /// waits without talking to the dispatcher thread.
    ewma_ns: AtomicU64,
    /// Aggregate latency windows (kept separately from the per-class
    /// windows — percentile windows cannot be merged after the fact).
    wait: LatencyTrack,
    service: LatencyTrack,
    total: LatencyTrack,
}

/// The admission-control subsystem: per-class bounded lanes + dispatcher
/// + stats.
///
/// `ServeQueue` itself is not held by users — [`ServeQueue::start`] spawns
/// the dispatcher and hands back the first [`ServeClient`]; the loop lives
/// as long as any client (or undelivered ticket) needs it.
pub struct ServeQueue {
    capacity: usize,
    /// The executor's worker count — the denominator of every predicted-
    /// wait computation (admission shedding, replica snapshots).
    workers: usize,
    state: Mutex<QueueState>,
    /// Signals the dispatcher: work arrived, or shutdown began.
    not_empty: Condvar,
    /// Signals blocked submitters: a slot freed, or shutdown began.
    not_full: Condvar,
    stats: StatsInner,
    /// Wave-by-wave dispatch decisions, populated only when
    /// [`ServeConfig::record_dispatch`] is set.
    dispatch_log: Mutex<Vec<WaveRecord>>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    /// Zero point of the loop's nanosecond clock: every enqueue/dispatch/
    /// complete timestamp is `epoch.elapsed()` in nanoseconds — the same
    /// integer timeline the pure scheduling units run on under test.
    epoch: Instant,
    /// The executor's lifetime counters, for the fusion-rate rows of
    /// [`ServeStats`] (completed runs fold their counters in there).
    exec_stats: Arc<ExecStats>,
    /// What `exec_stats` read when this loop started; the fusion rows are
    /// the delta past this baseline.
    fusion_base: StatsSnapshot,
    config: ServeConfig,
}

impl ServeQueue {
    /// Spawns a serving loop over `(plan, params)` on `exec` and returns
    /// its first client handle (default class: [`Priority::Interactive`]).
    ///
    /// [`crate::Session::serve`] is the ergonomic entry point; this level
    /// exists for callers composing their own plan/params pairs (replica
    /// serving on a shared store, tests).
    pub fn start(
        exec: Arc<Executor>,
        plan: Arc<ModulePlan>,
        params: Arc<ParamStore>,
        config: ServeConfig,
    ) -> ServeClient {
        let capacity = config.capacity.max(1);
        let window = config.latency_window;
        let aging_ns = config.aging_step.as_nanos().min(u64::MAX as u128) as u64;
        let initial_target =
            WaveController::new(config.sizing, config.batch_multiple, exec.n_threads()).target();
        // Serving turns cross-request fusion on (bare runs stay scalar);
        // the dispatcher switches it back off when the loop shuts down.
        exec.set_cross_request_fusion(config.cross_request_batching, config.max_fuse_group);
        let exec_stats = Arc::clone(exec.stats());
        let fusion_base = exec_stats.snapshot();
        let shared = Arc::new(ServeQueue {
            capacity,
            workers: exec.n_threads().max(1),
            state: Mutex::new(QueueState {
                queue: ClassQueues::new(aging_ns),
                open: true,
                clients: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            stats: StatsInner {
                classes: [
                    ClassLedger::new(window),
                    ClassLedger::new(window),
                    ClassLedger::new(window),
                ],
                batches: AtomicU64::new(0),
                in_flight: AtomicUsize::new(0),
                wave_target: AtomicUsize::new(initial_target),
                ewma_ns: AtomicU64::new(0),
                wait: LatencyTrack::new(window),
                service: LatencyTrack::new(window),
                total: LatencyTrack::new(window),
            },
            dispatch_log: Mutex::new(Vec::new()),
            dispatcher: Mutex::new(None),
            epoch: Instant::now(),
            exec_stats,
            fusion_base,
            config,
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rdg-serve-dispatch".into())
                .spawn(move || dispatcher_loop(&shared, &exec, &plan, &params))
                .expect("spawn serve dispatcher")
        };
        *shared.dispatcher.lock() = Some(worker);
        ServeClient {
            shared,
            class: Priority::default(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }
}

/// The dispatcher: drains the class lanes in controller-sized waves via
/// the aged-priority pop, launches each wave as concurrent root frames,
/// joins it, and answers the tickets. Runs until shutdown *and* empty
/// lanes — every accepted request is answered before the thread exits
/// (with its result, or with [`ServeError::Shed`] when its SLO ran out
/// first).
///
/// SLO enforcement happens at two of the three lifecycle points here
/// (the third, predictive admission shedding, lives in the submit path):
///
/// * **pop-time eviction** — a popped request whose deadline has already
///   passed is discarded instead of dispatched; its ticket resolves to
///   [`ServeError::Shed`] and the class's `shed` counter ticks. Evicted
///   requests never consume wave slots, so one expired burst cannot
///   starve the wave of live work.
/// * **mid-service cancellation** — when the join loop reaches a handle
///   whose deadline has passed and whose run has not finished, it cancels
///   through [`RunHandle::cancel`] (freeing the worker) and accounts the
///   request as `shed_inflight`. A run that finished before the check
///   keeps its result — an answer that exists is delivered, late or not.
fn dispatcher_loop(
    shared: &Arc<ServeQueue>,
    exec: &Arc<Executor>,
    plan: &Arc<ModulePlan>,
    params: &Arc<ParamStore>,
) {
    let mut controller = WaveController::new(
        shared.config.sizing,
        shared.config.batch_multiple,
        exec.n_threads(),
    );
    let mut wave: Vec<Queued<Request>> = Vec::with_capacity(controller.target());
    let mut evicted: Vec<(Priority, u64, Sender<Result<Vec<Tensor>, ServeError>>)> = Vec::new();
    // Waves dispatched since the loop started; drives the periodic
    // path-interner epoch flush (varied-shape request streams would
    // otherwise grow the interner until shutdown).
    let mut waves_dispatched: u64 = 0;
    // Flush the path interner every this many waves.
    const FLUSH_EVERY_WAVES: u64 = 64;
    loop {
        {
            let mut st = shared.state.lock();
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if !st.open {
                    if shared.config.cross_request_batching {
                        // The loop is over: return the executor to its
                        // scalar default so later bare runs don't fuse.
                        exec.set_cross_request_fusion(false, shared.config.max_fuse_group);
                    }
                    // Every request this session interned call-site paths;
                    // varied-shape workloads never revisit them. Reclaim
                    // the retired chains so long-lived services don't grow
                    // the interner across sessions.
                    crate::path::PathKey::flush_interner();
                    return;
                }
                shared.not_empty.wait(&mut st);
            }
            let target = controller.target();
            let now = shared.now_ns();
            let mut shed_seqs = Vec::new();
            while wave.len() < target {
                match st.queue.pop_next(now) {
                    Some(q) => {
                        if q.deadline_ns.map_or(false, |d| now >= d) {
                            shed_seqs.push(q.seq);
                            evicted.push((q.class, now.saturating_sub(q.enqueued_ns), q.item.tx));
                        } else {
                            wave.push(q);
                        }
                    }
                    None => break,
                }
            }
            if shared.config.record_dispatch {
                shared.dispatch_log.lock().push(WaveRecord {
                    target,
                    seqs: wave.iter().map(|q| q.seq).collect(),
                    shed_seqs,
                });
            }
        }
        // Slots freed: wake every blocked submitter (they re-check space).
        shared.not_full.notify_all();
        // Resolve pop-time evictions outside the lock. Eviction is a shed,
        // full stop — a dropped ticket on top of it stays a shed (the
        // `abandoned` counter splits only the completed/failed path).
        for (class, waited_ns, tx) in evicted.drain(..) {
            shared.stats.classes[class.index()]
                .shed
                .fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Err(ServeError::Shed {
                waited: Duration::from_nanos(waited_ns),
            }));
        }
        if wave.is_empty() {
            // Everything popped this round was expired: nothing to run.
            continue;
        }
        let dispatched_ns = shared.now_ns();
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        shared.stats.in_flight.store(wave.len(), Ordering::Relaxed);
        // Submit the whole wave before joining any of it: the wave's root
        // frames execute concurrently, and in-flight work is bounded by
        // the wave size — that is the admission-control contract.
        type Waiting = (
            Priority,
            u64,
            Option<u64>,
            Sender<Result<Vec<Tensor>, ServeError>>,
            Option<crate::SpecKey>,
            Result<RunHandle, ExecError>,
        );
        let in_flight: Vec<Waiting> = wave
            .drain(..)
            .map(|q| {
                let Queued {
                    item: Request { feeds, tx },
                    class,
                    enqueued_ns,
                    deadline_ns,
                    ..
                } = q;
                let wait_ns = dispatched_ns.saturating_sub(enqueued_ns);
                shared.stats.wait.record_ns(wait_ns);
                shared.stats.classes[class.index()].wait.record_ns(wait_ns);
                // Per-request plan resolution: a hot feed signature runs
                // its promoted flat plan. Requests resolving to the same
                // promoted plan share its `Arc`, so cross-request fusion
                // (`GroupKey` is keyed by plan pointer) still groups them.
                let (req_plan, spec_key) = plan.resolve_for_feeds(&feeds);
                let submitted = exec.submit(&req_plan, params, feeds, None, None);
                (class, enqueued_ns, deadline_ns, tx, spec_key, submitted)
            })
            .collect();
        let wave_len = in_flight.len();
        let mut last_done_ns = dispatched_ns;
        for (class, enqueued_ns, deadline_ns, tx, spec_key, submitted) in in_flight {
            let mut cancelled_for_slo = false;
            let result = match submitted {
                Ok(handle) => {
                    if let Some(d) = deadline_ns {
                        if shared.now_ns() >= d && !handle.is_finished() {
                            handle.cancel();
                            cancelled_for_slo = true;
                        }
                    }
                    let run_stats = Arc::clone(handle.stats());
                    let r = handle.wait();
                    // Feed the completed general-path run back into the
                    // specializer's shape profile.
                    if let Some(key) = spec_key {
                        plan.observe_run(key, run_stats.frames_spawned.load(Ordering::Relaxed));
                    }
                    r
                }
                Err(e) => Err(e),
            };
            let done_ns = shared.now_ns();
            last_done_ns = done_ns;
            let ledger = &shared.stats.classes[class.index()];
            shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
            // If the cancel raced the run finishing, the run kept its
            // result (`RunHandle::cancel` never discards a finished run)
            // and we fall through to normal delivery below.
            if cancelled_for_slo && matches!(result, Err(ExecError::Cancelled)) {
                ledger.shed_inflight.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Err(ServeError::Shed {
                    waited: Duration::from_nanos(done_ns.saturating_sub(enqueued_ns)),
                }));
                continue;
            }
            let service_ns = done_ns.saturating_sub(dispatched_ns);
            let total_ns = done_ns.saturating_sub(enqueued_ns);
            shared.stats.service.record_ns(service_ns);
            shared.stats.total.record_ns(total_ns);
            ledger.service.record_ns(service_ns);
            ledger.total.record_ns(total_ns);
            // Count before sending: a client that has seen its ticket
            // resolve must also see the counter (the `submitted ≥
            // completed + failed` snapshot invariant). A failed send
            // means no receiver existed — nobody raced us — so the
            // reclassification below is invisible to any live ticket.
            let counter = if result.is_ok() {
                &ledger.completed
            } else {
                &ledger.failed
            };
            counter.fetch_add(1, Ordering::Relaxed);
            if tx.send(result.map_err(ServeError::Exec)).is_err() {
                // The client dropped its ticket before delivery. The work
                // still ran — count it as abandoned, not completed, so
                // goodput stays honest.
                counter.fetch_sub(1, Ordering::Relaxed);
                ledger.abandoned.fetch_add(1, Ordering::Relaxed);
            }
        }
        // The controller observes the *wave*, not the per-request join
        // latencies: joining in submission order means a later request's
        // individual dispatch→complete span includes earlier joins, which
        // would double-count intra-wave queueing and bias the EWMA high.
        controller.observe_wave(wave_len, last_done_ns.saturating_sub(dispatched_ns));
        // Epoch flush: retire interned path chains whose runs have all
        // completed. Without this, only shutdown reclaims them, and a
        // long-lived serve loop with varied-shape traffic grows the
        // process-global interner without bound.
        waves_dispatched += 1;
        if waves_dispatched % FLUSH_EVERY_WAVES == 0 {
            crate::path::PathKey::flush_interner();
        }
        // Publish the adapted target and EWMA so stats snapshots (and the
        // predictive-shedding submit path) see the decision the next wave
        // will use.
        shared
            .stats
            .wave_target
            .store(controller.target(), Ordering::Relaxed);
        shared.stats.ewma_ns.store(
            // Floor at 1ns: a sub-nanosecond EWMA must not truncate to 0,
            // which downstream readers treat as the "no estimate" sentinel.
            controller.ewma_ns().map_or(0, |e| e.max(1.0) as u64),
            Ordering::Relaxed,
        );
    }
}

/// A cloneable handle to an admission-controlled serving loop.
///
/// Clones share one queue, one dispatcher, and one stats ledger — hand a
/// clone to every client thread. Each clone carries a *default class*
/// ([`Priority::Interactive`] unless changed via
/// [`ServeClient::with_priority`]) used by the plain
/// `submit`/`try_submit`/`submit_deadline`/`call`; the `_with` variants
/// take the class per call. The loop shuts down when the last clone drops
/// or [`ServeClient::shutdown`] is called; after that every submit returns
/// [`ServeError::Shutdown`], while already-accepted requests still
/// complete and their tickets still deliver.
pub struct ServeClient {
    shared: Arc<ServeQueue>,
    class: Priority,
}

impl Clone for ServeClient {
    fn clone(&self) -> Self {
        self.shared.state.lock().clients += 1;
        ServeClient {
            shared: Arc::clone(&self.shared),
            class: self.class,
        }
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        let last = {
            let mut st = self.shared.state.lock();
            st.clients -= 1;
            st.clients == 0
        };
        if last {
            // Last client gone: stop admission and let the dispatcher
            // drain accepted requests, detached (drop must not block).
            self.shared.state.lock().open = false;
            self.shared.not_empty.notify_all();
            self.shared.not_full.notify_all();
        }
    }
}

impl ServeClient {
    /// A clone whose plain `submit`/`try_submit`/`call` use `class` —
    /// hand one to each traffic source so call sites stay class-free.
    pub fn with_priority(&self, class: Priority) -> ServeClient {
        let mut c = self.clone();
        c.class = class;
        c
    }

    /// The class this client's plain submit calls use.
    pub fn priority(&self) -> Priority {
        self.class
    }

    /// Non-blocking admission into the client's default class.
    pub fn try_submit(&self, feeds: Vec<Tensor>) -> Result<ServeTicket, ServeError> {
        self.try_submit_with(self.class, feeds)
    }

    /// Non-blocking admission into `class`: rejects immediately with
    /// [`ServeError::QueueFull`] when that class's lane has no free slot.
    pub fn try_submit_with(
        &self,
        class: Priority,
        feeds: Vec<Tensor>,
    ) -> Result<ServeTicket, ServeError> {
        let st = self.shared.state.lock();
        if !st.open {
            return Err(ServeError::Shutdown);
        }
        if st.queue.len_class(class) >= self.shared.capacity {
            drop(st);
            self.shared.stats.classes[class.index()]
                .rejected
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull);
        }
        Ok(self.enqueue(st, class, feeds, None))
    }

    /// Blocking admission into the client's default class.
    pub fn submit(&self, feeds: Vec<Tensor>) -> Result<ServeTicket, ServeError> {
        self.submit_with(self.class, feeds)
    }

    /// Blocking admission into `class`: waits for a lane slot
    /// (backpressure), however long that takes. Returns
    /// [`ServeError::Shutdown`] if the loop stops accepting while this
    /// call is blocked.
    pub fn submit_with(
        &self,
        class: Priority,
        feeds: Vec<Tensor>,
    ) -> Result<ServeTicket, ServeError> {
        let mut st = self.shared.state.lock();
        loop {
            if !st.open {
                return Err(ServeError::Shutdown);
            }
            if st.queue.len_class(class) < self.shared.capacity {
                return Ok(self.enqueue(st, class, feeds, None));
            }
            self.shared.not_full.wait(&mut st);
        }
    }

    /// Blocking admission into the client's default class, bounded by
    /// `deadline`.
    pub fn submit_deadline(
        &self,
        feeds: Vec<Tensor>,
        deadline: Duration,
    ) -> Result<ServeTicket, ServeError> {
        self.submit_deadline_with(self.class, feeds, deadline)
    }

    /// Blocking admission into `class` with a deadline: waits at most
    /// `deadline` for a lane slot, then gives up with
    /// [`ServeError::DeadlineExceeded`].
    pub fn submit_deadline_with(
        &self,
        class: Priority,
        feeds: Vec<Tensor>,
        deadline: Duration,
    ) -> Result<ServeTicket, ServeError> {
        let t0 = Instant::now();
        let mut st = self.shared.state.lock();
        loop {
            if !st.open {
                return Err(ServeError::Shutdown);
            }
            if st.queue.len_class(class) < self.shared.capacity {
                return Ok(self.enqueue(st, class, feeds, None));
            }
            let elapsed = t0.elapsed();
            if elapsed >= deadline {
                drop(st);
                self.shared.stats.classes[class.index()]
                    .expired
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded);
            }
            let _ = self.shared.not_full.wait_for(&mut st, deadline - elapsed);
        }
    }

    /// Blocking admission into the client's default class with an
    /// end-to-end SLO. See [`ServeClient::submit_slo_with`].
    pub fn submit_slo(&self, feeds: Vec<Tensor>, slo: Duration) -> Result<ServeTicket, ServeError> {
        self.submit_slo_with(self.class, feeds, slo)
    }

    /// Blocking admission into `class` with an end-to-end SLO: the
    /// request must *complete* within `slo` of this call, or it is shed.
    ///
    /// The SLO is enforced at three lifecycle points:
    ///
    /// 1. **Predictive admission** (here): if the class is at or past
    ///    [`ServeConfig::predictive_shed_from`] and the dispatcher has a
    ///    service EWMA, a request whose predicted queue wait
    ///    (`lane depth × EWMA ÷ workers`) already overruns the deadline is
    ///    shed immediately with [`ServeError::Shed`] — it never queues,
    ///    never counts as `submitted`, and ticks `shed_predicted`.
    /// 2. **Pop-time eviction**: an admitted request whose deadline has
    ///    passed when the dispatcher pops it is discarded (ticket resolves
    ///    to [`ServeError::Shed`], counted `shed`).
    /// 3. **Mid-service cancellation**: a request whose deadline passes
    ///    while its run is in flight is cancelled and counted
    ///    `shed_inflight`.
    ///
    /// Submit-side blocking is bounded by the same deadline: if no lane
    /// slot frees before the SLO is already blown, the call gives up with
    /// [`ServeError::DeadlineExceeded`] (counted `expired`), matching
    /// [`ServeClient::submit_deadline_with`].
    pub fn submit_slo_with(
        &self,
        class: Priority,
        feeds: Vec<Tensor>,
        slo: Duration,
    ) -> Result<ServeTicket, ServeError> {
        let t0 = Instant::now();
        let slo_ns = u64::try_from(slo.as_nanos()).unwrap_or(u64::MAX);
        let deadline_abs = self.shared.now_ns().saturating_add(slo_ns);
        let mut st = self.shared.state.lock();
        loop {
            if !st.open {
                return Err(ServeError::Shutdown);
            }
            if st.queue.len_class(class) < self.shared.capacity {
                if let Some(from) = self.shared.config.predictive_shed_from {
                    if class.index() >= from.index() {
                        let ewma = self.shared.stats.ewma_ns.load(Ordering::Relaxed);
                        if ewma > 0 {
                            let predicted = controller::predicted_wait_ns(
                                st.queue.len_class(class),
                                ewma,
                                self.shared.workers,
                            );
                            if self.shared.now_ns().saturating_add(predicted) > deadline_abs {
                                drop(st);
                                self.shared.stats.classes[class.index()]
                                    .shed_predicted
                                    .fetch_add(1, Ordering::Relaxed);
                                return Err(ServeError::Shed {
                                    waited: t0.elapsed(),
                                });
                            }
                        }
                    }
                }
                return Ok(self.enqueue(st, class, feeds, Some(deadline_abs)));
            }
            if self.shared.now_ns() >= deadline_abs {
                drop(st);
                self.shared.stats.classes[class.index()]
                    .expired
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded);
            }
            let remaining = slo.saturating_sub(t0.elapsed());
            let _ = self.shared.not_full.wait_for(&mut st, remaining);
        }
    }

    /// Convenience closed loop: blocking submit into the default class,
    /// then wait for the result.
    pub fn call(&self, feeds: Vec<Tensor>) -> Result<Vec<Tensor>, ServeError> {
        self.submit(feeds)?.wait()
    }

    fn enqueue(
        &self,
        mut st: MutexGuard<'_, QueueState>,
        class: Priority,
        feeds: Vec<Tensor>,
        deadline_ns: Option<u64>,
    ) -> ServeTicket {
        let (tx, rx) = bounded(1);
        let now = self.shared.now_ns();
        st.queue
            .push_deadline(class, Request { feeds, tx }, now, deadline_ns);
        // Count before releasing the lock: the dispatcher cannot pop (and
        // so cannot complete) this request until the lock drops, which
        // keeps `submitted ≥ completed + failed` in every stats snapshot.
        self.shared.stats.classes[class.index()]
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.shared.not_empty.notify_one();
        ServeTicket { rx }
    }

    /// The wave target the next dispatch wave will use — constant under
    /// [`WaveSizing::Fixed`], live controller output under
    /// [`WaveSizing::Dynamic`].
    pub fn wave_target(&self) -> usize {
        self.shared.stats.wave_target.load(Ordering::Relaxed)
    }

    /// The per-class admission-lane slot count.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// The dispatcher's current per-request service EWMA, nanoseconds —
    /// `None` until the first dynamically-sized wave completes (or under
    /// [`WaveSizing::Fixed`], which never observes).
    pub fn service_ewma_ns(&self) -> Option<u64> {
        match self.shared.stats.ewma_ns.load(Ordering::Relaxed) {
            0 => None,
            ns => Some(ns),
        }
    }

    /// A point-in-time load snapshot of this replica for routing
    /// decisions: queued + in-flight depth, service EWMA, worker count.
    /// The cluster's join-shortest-queue router compares these across
    /// replicas via [`ReplicaSnapshot::predicted_wait_ns`].
    pub fn load_snapshot(&self) -> ReplicaSnapshot {
        let queue_depth = self.shared.state.lock().queue.len();
        ReplicaSnapshot {
            queue_depth,
            in_flight: self.shared.stats.in_flight.load(Ordering::Relaxed),
            service_ewma_ns: self.shared.stats.ewma_ns.load(Ordering::Relaxed),
            workers: self.shared.workers,
        }
    }

    /// The dispatch waves recorded so far — empty unless the loop was
    /// started with [`ServeConfig::record_dispatch`] set. Call after
    /// [`ServeClient::shutdown`] for the complete log.
    pub fn dispatch_log(&self) -> Vec<WaveRecord> {
        self.shared.dispatch_log.lock().clone()
    }

    /// Snapshot of the loop's counters and latency percentiles,
    /// aggregate and per class.
    pub fn stats(&self) -> ServeStats {
        let depths: [usize; Priority::COUNT] = {
            let st = self.shared.state.lock();
            [
                st.queue.len_class(Priority::Interactive),
                st.queue.len_class(Priority::Batch),
                st.queue.len_class(Priority::BestEffort),
            ]
        };
        let s = &self.shared.stats;
        // Fusion rates: executor-lifetime counters past the loop-start
        // baseline. Completed runs fold their per-run counters into the
        // executor aggregate at finish, so these are exact once a wave has
        // joined (in-flight work shows up on completion).
        let exec_now = self.shared.exec_stats.snapshot();
        let base = &self.shared.fusion_base;
        let mut agg = ServeStats {
            batches: s.batches.load(Ordering::Relaxed),
            in_flight: s.in_flight.load(Ordering::Relaxed),
            wave_target: s.wave_target.load(Ordering::Relaxed),
            service_ewma_ns: s.ewma_ns.load(Ordering::Relaxed),
            wait: s.wait.percentiles(),
            service: s.service.percentiles(),
            total: s.total.percentiles(),
            fusion_groups: exec_now.fused_groups - base.fused_groups,
            fusion_instances: exec_now.fused_tasks - base.fused_tasks,
            fusion_eligible: exec_now.fusable_seen - base.fusable_seen,
            ..ServeStats::default()
        };
        for p in Priority::ALL {
            let i = p.index();
            let ledger = &s.classes[i];
            let c = ClassStats {
                submitted: ledger.submitted.load(Ordering::Relaxed),
                rejected: ledger.rejected.load(Ordering::Relaxed),
                expired: ledger.expired.load(Ordering::Relaxed),
                completed: ledger.completed.load(Ordering::Relaxed),
                failed: ledger.failed.load(Ordering::Relaxed),
                shed: ledger.shed.load(Ordering::Relaxed),
                shed_inflight: ledger.shed_inflight.load(Ordering::Relaxed),
                shed_predicted: ledger.shed_predicted.load(Ordering::Relaxed),
                abandoned: ledger.abandoned.load(Ordering::Relaxed),
                queue_depth: depths[i],
                wait: ledger.wait.percentiles(),
                service: ledger.service.percentiles(),
                total: ledger.total.percentiles(),
            };
            agg.submitted += c.submitted;
            agg.rejected += c.rejected;
            agg.expired += c.expired;
            agg.completed += c.completed;
            agg.failed += c.failed;
            agg.shed += c.shed;
            agg.shed_inflight += c.shed_inflight;
            agg.shed_predicted += c.shed_predicted;
            agg.abandoned += c.abandoned;
            agg.queue_depth += c.queue_depth;
            agg.classes[i] = c;
        }
        agg
    }

    /// Stops admission, waits for every accepted request to complete, and
    /// joins the dispatcher thread.
    ///
    /// Idempotent across clients: the first caller joins the dispatcher,
    /// later callers (and later submits) observe [`ServeError::Shutdown`].
    pub fn shutdown(&self) {
        self.shared.state.lock().open = false;
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        let handle = self.shared.dispatcher.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

/// The response slot of one admitted request.
///
/// Independent of the [`ServeClient`] that produced it: a ticket delivers
/// even after every client is dropped (accepted requests are drained on
/// shutdown, never discarded).
pub struct ServeTicket {
    rx: Receiver<Result<Vec<Tensor>, ServeError>>,
}

impl fmt::Debug for ServeTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServeTicket").finish_non_exhaustive()
    }
}

impl ServeTicket {
    /// Blocks until the request resolves: its outputs, the run's error,
    /// or [`ServeError::Shed`] if the request's SLO ran out first.
    pub fn wait(self) -> Result<Vec<Tensor>, ServeError> {
        match self.rx.recv() {
            Ok(result) => result,
            // The dispatcher answers every accepted request before it
            // exits; a closed channel therefore means the process is
            // tearing the loop down around us.
            Err(_) => Err(ServeError::Shutdown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.capacity >= 1 && c.batch_multiple >= 1 && c.latency_window >= 1);
        assert!(matches!(c.sizing, WaveSizing::Dynamic { .. }));
        assert!(c.aging_step > Duration::ZERO);
    }

    #[test]
    fn priority_order_and_indexing() {
        assert!(Priority::Interactive < Priority::Batch);
        assert!(Priority::Batch < Priority::BestEffort);
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert_eq!(Priority::default(), Priority::Interactive);
        assert_eq!(Priority::Batch.to_string(), "batch");
    }

    #[test]
    fn latency_percentiles_are_ordered_and_windowed() {
        let t = LatencyTrack::new(8);
        for us in [100u64, 200, 300, 400, 500, 600, 700, 800] {
            t.record(Duration::from_micros(us));
        }
        let p = t.percentiles();
        assert_eq!(p.count, 8);
        assert!(p.p50_us <= p.p95_us && p.p95_us <= p.p99_us);
        assert!((p.mean_us - 450.0).abs() < 1.0);
        // The ring slides: 8 huge samples push the small ones out.
        for _ in 0..8 {
            t.record(Duration::from_micros(10_000));
        }
        let p = t.percentiles();
        assert_eq!(p.count, 16, "count is lifetime");
        assert!(p.p50_us >= 9_999.0, "window slid to the recent samples");
    }

    #[test]
    fn empty_track_snapshots_zero() {
        let t = LatencyTrack::new(4);
        assert_eq!(t.percentiles(), LatencyPercentiles::default());
    }
}
