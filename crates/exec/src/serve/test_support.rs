//! Deterministic, clockless harness for the serve dispatcher's decision
//! logic.
//!
//! Wave-sizing and aging decisions must be *asserted exactly* — not
//! probed with sleeps that flake on a loaded 1-core CI container. The
//! live dispatcher makes every scheduling decision through two pure,
//! clock-free units: the aged-priority pop of `classes::ClassQueues` and
//! the EWMA wave target of `controller::WaveController`. This module
//! wires those same units to a **virtual clock** and **scripted service
//! durations**, so a test can write
//!
//! ```
//! use rdg_exec::serve::test_support::ScriptedServe;
//! use rdg_exec::{Priority, ServeConfig};
//!
//! let mut s = ScriptedServe::new(2, &ServeConfig::default());
//! s.submit(Priority::Batch, 1);
//! s.submit(Priority::Interactive, 2);
//! let wave = s.run_wave(|_| 1_000_000).unwrap(); // 1 ms per request
//! assert_eq!(wave.requests[0].id, 2, "interactive dispatches first");
//! assert_eq!(wave.requests[1].id, 1);
//! ```
//!
//! and every assertion is a pure function of the script. The harness
//! mirrors the live loop faithfully: waves are popped with the same rule
//! at the same virtual `now`, requests "execute" on `workers` simulated
//! lanes (greedy list scheduling in dispatch order), completions are
//! observed **in dispatch order** (the live dispatcher joins its wave in
//! submission order, so a later request's observed service includes any
//! wait for an earlier one), the controller sees the same wave-level
//! observation (request count + drain time — per-request join latencies
//! would double-count intra-wave queueing), and the virtual clock
//! advances by the wave's simulated drain time.

use super::classes::ClassQueues;
use super::controller::{predicted_wait_ns, WaveController};
use super::{Priority, ServeConfig};
use crate::batch::plan_groups;
use std::hash::Hash;

/// One request's life through a scripted wave, all timestamps in
/// nanoseconds of the harness's virtual clock.
#[derive(Clone, Debug)]
pub struct ScriptedRequest {
    /// Caller-chosen request id (the harness never interprets it beyond
    /// passing it to the service-duration script).
    pub id: u64,
    /// Admission class the request was submitted with.
    pub class: Priority,
    /// Virtual time the request entered its lane.
    pub enqueued_ns: u64,
    /// Absolute deadline carried by the request, if it was submitted with
    /// an SLO ([`ScriptedServe::submit_deadline`]).
    pub deadline_ns: Option<u64>,
    /// enqueue → dispatch: what the request waited in the queue.
    pub wait_ns: u64,
    /// dispatch → observed completion (join order included) — what the
    /// request's `ServeStats` service entry would record. The controller
    /// is fed the wave-level observation instead (see `run_wave`).
    pub service_ns: u64,
    /// Virtual time the request's completion was observed. For a
    /// mid-service-shed request this is the time the join loop reached
    /// (and cancelled) it.
    pub done_ns: u64,
    /// The request dispatched but its deadline passed before the join
    /// loop observed it finish: the live loop cancels it through
    /// `RunHandle::cancel` and counts `shed_inflight` instead of
    /// `completed`.
    pub shed_inflight: bool,
}

/// One request the dispatcher discarded at pop time because its deadline
/// had already passed — the scripted analogue of
/// [`super::ServeError::Shed`] resolved against an undispatched ticket.
#[derive(Clone, Debug)]
pub struct ScriptedShed {
    /// Caller-chosen request id.
    pub id: u64,
    /// Admission class the request was submitted with.
    pub class: Priority,
    /// Virtual time the request entered its lane.
    pub enqueued_ns: u64,
    /// The absolute deadline the request missed.
    pub deadline_ns: u64,
    /// Virtual time the eviction happened (the wave's pop time). Always
    /// `>= deadline_ns` — the never-evicted-early oracle.
    pub shed_ns: u64,
}

/// Outcome of one [`ScriptedServe::submit_deadline`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScriptedAdmission {
    /// The request entered its lane (carrying its absolute deadline).
    Admitted,
    /// Lane full or admission closed — the analogues of
    /// [`super::ServeError::QueueFull`] / [`super::ServeError::Shutdown`].
    Rejected,
    /// Predictive admission shedding fired: the predicted lane wait
    /// (depth × EWMA ÷ workers) already overruns the SLO, so the request
    /// was shed before queueing ([`super::ServeError::Shed`], counted
    /// `shed_predicted`).
    Shed,
}

/// One dispatch wave formed and "executed" by [`ScriptedServe::run_wave`].
#[derive(Clone, Debug)]
pub struct ScriptedWave {
    /// The controller's wave target when the wave was formed.
    pub target: usize,
    /// Virtual time the wave was dispatched.
    pub dispatched_ns: u64,
    /// The wave's requests, **in dispatch order** — the order the
    /// aged-priority pop emitted them.
    pub requests: Vec<ScriptedRequest>,
    /// Requests popped this wave whose deadline had already passed:
    /// discarded without dispatching (they consume no wave slots), in
    /// pop order.
    pub evicted: Vec<ScriptedShed>,
    /// The fused groups this wave executed, as index groups into
    /// `requests`, in formation (first-occurrence) order — the output of
    /// [`crate::batch::plan_groups`] over the wave's fusion signatures.
    /// A wave run through the scalar [`ScriptedServe::run_wave`] entry is
    /// all singletons in dispatch order.
    pub fused_groups: Vec<Vec<usize>>,
}

impl ScriptedWave {
    /// The dispatch order as bare ids (assertion convenience).
    pub fn ids(&self) -> Vec<u64> {
        self.requests.iter().map(|r| r.id).collect()
    }
}

/// The scripted twin of the live serve dispatcher: same class lanes, same
/// pop rule, same wave controller — but time is a `u64` the test owns and
/// service durations come from a script instead of an executor.
///
/// Beyond the happy path, the harness scripts the *lifecycle* events the
/// live loop races against in the stress tests:
///
/// * [`ScriptedServe::shutdown`] closes admission (every later submit is
///   rejected) while queued requests still drain — the scripted analogue
///   of [`super::ServeClient::shutdown`];
/// * [`ScriptedServe::clone_client`] / [`ScriptedServe::drop_client`]
///   script the client-handle count; dropping the last handle closes
///   admission exactly like the live last-`Drop`;
/// * [`ScriptedServe::stall_worker`] injects a replica-level delay — one
///   simulated worker lane is unavailable until a virtual deadline, the
///   clockless analogue of a straggling replica in
///   `rdg_cluster::virtual_time` (same semantics the fuzzer's `Stall`
///   event and the cluster delay injector share).
pub struct ScriptedServe {
    queues: ClassQueues<u64>,
    controller: WaveController,
    workers: usize,
    capacity: usize,
    now_ns: u64,
    /// Virtual time before which each simulated worker lane is busy with
    /// injected (non-request) work. Lane `w` starts requests no earlier
    /// than `stall_until[w]`.
    stall_until: Vec<u64>,
    /// `false` once shutdown was scripted (explicitly or by dropping the
    /// last client): submits are rejected, queued work still drains.
    open: bool,
    /// Scripted client-handle count; hitting zero closes admission.
    clients: usize,
    /// Least-urgent end of the classes eligible for predictive admission
    /// shedding (copied from [`ServeConfig::predictive_shed_from`]).
    predictive_shed_from: Option<Priority>,
    /// Per-class predictive-shed tally — the twin of the live
    /// `shed_predicted` counters.
    shed_predicted: [u64; Priority::COUNT],
}

impl ScriptedServe {
    /// Builds a harness over `workers` simulated workers with `config`'s
    /// capacity, sizing, and aging parameters (the latency-window knob is
    /// irrelevant here — the harness reports raw numbers, not windows).
    pub fn new(workers: usize, config: &ServeConfig) -> Self {
        let aging_ns = config.aging_step.as_nanos().min(u64::MAX as u128) as u64;
        let workers = workers.max(1);
        ScriptedServe {
            queues: ClassQueues::new(aging_ns),
            controller: WaveController::new(config.sizing, config.batch_multiple, workers),
            workers,
            capacity: config.capacity.max(1),
            now_ns: 0,
            stall_until: vec![0; workers],
            open: true,
            clients: 1,
            predictive_shed_from: config.predictive_shed_from,
            shed_predicted: [0; Priority::COUNT],
        }
    }

    /// Current virtual time, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Advances the virtual clock (e.g. to age queued requests between
    /// submissions) without running anything.
    pub fn advance(&mut self, ns: u64) {
        self.now_ns += ns;
    }

    /// Submits request `id` into `class` at the current virtual time.
    /// Returns `false` (rejecting the request) when the class lane is at
    /// capacity — the harness analogue of [`super::ServeError::QueueFull`]
    /// — or when admission is closed (the analogue of
    /// [`super::ServeError::Shutdown`]).
    pub fn submit(&mut self, class: Priority, id: u64) -> bool {
        if !self.open || self.queues.len_class(class) >= self.capacity {
            return false;
        }
        self.queues.push(class, id, self.now_ns);
        true
    }

    /// Submits request `id` into `class` with an end-to-end SLO of
    /// `slo_ns`: the request carries the absolute deadline `now + slo_ns`
    /// through its lane, and the same three shed points the live loop
    /// enforces apply — predictive admission here, pop-time eviction and
    /// mid-service cancellation in [`ScriptedServe::run_wave`].
    pub fn submit_deadline(&mut self, class: Priority, id: u64, slo_ns: u64) -> ScriptedAdmission {
        if !self.open || self.queues.len_class(class) >= self.capacity {
            return ScriptedAdmission::Rejected;
        }
        if let Some(from) = self.predictive_shed_from {
            if class.index() >= from.index() {
                if let Some(ewma) = self.controller.ewma_ns() {
                    let predicted = predicted_wait_ns(
                        self.queues.len_class(class),
                        ewma.max(0.0) as u64,
                        self.workers,
                    );
                    // `now + predicted > now + slo` ⇔ `predicted > slo`:
                    // same inequality the live submit path evaluates.
                    if predicted > slo_ns {
                        self.shed_predicted[class.index()] += 1;
                        return ScriptedAdmission::Shed;
                    }
                }
            }
        }
        self.queues.push_deadline(
            class,
            id,
            self.now_ns,
            Some(self.now_ns.saturating_add(slo_ns)),
        );
        ScriptedAdmission::Admitted
    }

    /// Per-class predictive-shed counts so far (the twin of the live
    /// `shed_predicted` stats), indexed by [`Priority::index`].
    pub fn shed_predicted(&self) -> [u64; Priority::COUNT] {
        self.shed_predicted
    }

    /// Whether admission is still open (no scripted shutdown yet and at
    /// least one client handle alive).
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Scripts [`super::ServeClient::shutdown`]: admission closes
    /// immediately; requests already queued still drain through
    /// [`ScriptedServe::run_wave`] / [`ScriptedServe::drain`].
    pub fn shutdown(&mut self) {
        self.open = false;
    }

    /// Scripts cloning a client handle (the live `ServeClient::clone`).
    pub fn clone_client(&mut self) {
        self.clients += 1;
    }

    /// Scripts dropping a client handle. Dropping the last one closes
    /// admission, exactly like the live last-`Drop` path.
    pub fn drop_client(&mut self) {
        self.clients = self.clients.saturating_sub(1);
        if self.clients == 0 {
            self.open = false;
        }
    }

    /// Injects a replica-level delay: worker lane `lane % workers` is
    /// busy with non-request work until `now + dur_ns`. Waves formed
    /// while the stall is live schedule around the stalled lane; a wave
    /// that must use it absorbs the delay into its drain time (and the
    /// controller observes the inflated drain, exactly as the live
    /// controller would behind a straggling replica).
    pub fn stall_worker(&mut self, lane: usize, dur_ns: u64) {
        let lane = lane % self.workers;
        let until = self.now_ns.saturating_add(dur_ns);
        if until > self.stall_until[lane] {
            self.stall_until[lane] = until;
        }
    }

    /// Requests queued across all lanes.
    pub fn queue_depth(&self) -> usize {
        self.queues.len()
    }

    /// Requests queued in `class`'s lane.
    pub fn queue_depth_class(&self, class: Priority) -> usize {
        self.queues.len_class(class)
    }

    /// The wave target the next [`ScriptedServe::run_wave`] will use.
    pub fn wave_target(&self) -> usize {
        self.controller.target()
    }

    /// The controller's current service-time EWMA, nanoseconds (`None`
    /// before any wave ran, or under fixed sizing).
    pub fn ewma_ns(&self) -> Option<f64> {
        self.controller.ewma_ns()
    }

    /// Forms and "executes" the next wave: pops up to the controller's
    /// target with the aged-priority rule at the current virtual time,
    /// **evicting** any popped request whose deadline has already passed
    /// (evictions consume no wave slots — exactly the live pop-time shed),
    /// runs each surviving request for `service_ns(id)` nanoseconds on
    /// `workers` greedy simulated lanes, observes completions in dispatch
    /// order (like the live join loop, cancelling any request whose
    /// deadline passes before the join reaches a finished run —
    /// `shed_inflight`), feeds the controller the wave's request count +
    /// drain time, and advances the clock to the wave's last completion.
    ///
    /// Returns `None` when nothing is queued. A wave in which *every*
    /// popped request was evicted comes back with empty `requests` — like
    /// the live loop it counts no batch and feeds the controller nothing.
    pub fn run_wave(&mut self, service_ns: impl Fn(u64) -> u64) -> Option<ScriptedWave> {
        // No fusion signature ⇒ `plan_groups` emits singletons in dispatch
        // order, which schedules identically to per-request greedy list
        // scheduling: the scalar entry is the degenerate grouped run.
        self.run_wave_grouped(service_ns, |_| None::<u64>, 1)
    }

    /// [`ScriptedServe::run_wave`] with the executor's cross-request batch
    /// fuser modeled at wave granularity: each popped request carries a
    /// fusion signature (`None` = not fusable), the wave's signatures are
    /// grouped with the *same* pure [`crate::batch::plan_groups`] the live
    /// fused worker loop uses (first-occurrence order, chunked at
    /// `max_group`), and each group executes as one unit on the earliest
    /// free lane — its service is the **max** of its members' scripted
    /// services, and every member completes when the group does. Pop
    /// order, eviction, and the join-order observation rule are exactly
    /// those of the scalar entry: fusion changes completion *times*, never
    /// admission or dispatch decisions.
    pub fn run_wave_grouped<K: Eq + Hash + Copy>(
        &mut self,
        service_ns: impl Fn(u64) -> u64,
        fuse_sig: impl Fn(u64) -> Option<K>,
        max_group: usize,
    ) -> Option<ScriptedWave> {
        if self.queues.is_empty() {
            return None;
        }
        let target = self.controller.target();
        let dispatched_ns = self.now_ns;
        let mut popped = Vec::new();
        let mut evicted = Vec::new();
        while popped.len() < target {
            match self.queues.pop_next(self.now_ns) {
                Some(q) => {
                    if let Some(d) = q.deadline_ns.filter(|&d| self.now_ns >= d) {
                        evicted.push(ScriptedShed {
                            id: q.item,
                            class: q.class,
                            enqueued_ns: q.enqueued_ns,
                            deadline_ns: d,
                            shed_ns: self.now_ns,
                        });
                    } else {
                        popped.push(q);
                    }
                }
                None => break,
            }
        }
        // Group formation over the surviving pop order, then greedy list
        // scheduling in group order: each group starts on the earliest-free
        // simulated worker and runs for the max of its members' services
        // (the stacked kernel returns when its widest member would). A
        // stalled lane is not free until its stall deadline passes.
        let keys: Vec<Option<K>> = popped.iter().map(|q| fuse_sig(q.item)).collect();
        let groups = plan_groups(&keys, max_group);
        let mut avail: Vec<u64> = self
            .stall_until
            .iter()
            .map(|&s| s.max(dispatched_ns))
            .collect();
        let mut finishes = vec![0u64; popped.len()];
        for g in &groups {
            let lane = (0..self.workers)
                .min_by_key(|&w| avail[w])
                .expect("at least one worker");
            let dur = g
                .iter()
                .map(|&i| service_ns(popped[i].item))
                .max()
                .unwrap_or(0);
            let finish = avail[lane] + dur;
            avail[lane] = finish;
            for &i in g {
                finishes[i] = finish;
            }
        }
        // Completions observed in dispatch order, exactly like the live
        // dispatcher joining handles in submission order. The live join
        // loop reaches each handle at the current observation time and
        // cancels it there if its deadline has passed and the run is not
        // finished; a finished run keeps its result however late. The
        // cancelled run's worker reservation is kept — the scripted lane
        // schedule is fixed at dispatch (the live cancel can free a
        // worker a little earlier; differential scenarios pin the points
        // where the two agree exactly).
        let mut requests = Vec::with_capacity(popped.len());
        let mut observed = dispatched_ns;
        for (q, finish) in popped.into_iter().zip(finishes) {
            let cancel = q
                .deadline_ns
                .map_or(false, |d| observed >= d && finish > observed);
            if cancel {
                requests.push(ScriptedRequest {
                    id: q.item,
                    class: q.class,
                    enqueued_ns: q.enqueued_ns,
                    deadline_ns: q.deadline_ns,
                    wait_ns: dispatched_ns.saturating_sub(q.enqueued_ns),
                    service_ns: observed - dispatched_ns,
                    done_ns: observed,
                    shed_inflight: true,
                });
                continue;
            }
            observed = observed.max(finish);
            let service = observed - dispatched_ns;
            requests.push(ScriptedRequest {
                id: q.item,
                class: q.class,
                enqueued_ns: q.enqueued_ns,
                deadline_ns: q.deadline_ns,
                wait_ns: dispatched_ns.saturating_sub(q.enqueued_ns),
                service_ns: service,
                done_ns: observed,
                shed_inflight: false,
            });
        }
        if !requests.is_empty() {
            self.controller
                .observe_wave(requests.len(), observed - dispatched_ns);
        }
        self.now_ns = observed;
        Some(ScriptedWave {
            target,
            dispatched_ns,
            requests,
            evicted,
            fused_groups: groups,
        })
    }

    /// Runs waves until every queued request has dispatched (the scripted
    /// analogue of the dispatcher's shutdown drain) and returns them in
    /// wave order. Nothing accepted is ever left behind — the conservation
    /// oracle the fuzzer and the QoS property suite both check.
    pub fn drain(&mut self, service_ns: impl Fn(u64) -> u64) -> Vec<ScriptedWave> {
        let mut waves = Vec::new();
        while let Some(w) = self.run_wave(&service_ns) {
            waves.push(w);
        }
        waves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::WaveSizing;
    use std::time::Duration;

    fn config(sizing: WaveSizing) -> ServeConfig {
        ServeConfig {
            capacity: 4,
            batch_multiple: 2,
            sizing,
            aging_step: Duration::from_millis(1),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn fixed_waves_have_fixed_size_and_strict_order() {
        let mut s = ScriptedServe::new(2, &config(WaveSizing::Fixed));
        for id in 0..3 {
            assert!(s.submit(Priority::Batch, id));
        }
        assert!(s.submit(Priority::Interactive, 100));
        let wave = s.run_wave(|_| 1_000).unwrap();
        assert_eq!(wave.target, 4, "workers × batch_multiple");
        assert_eq!(wave.ids(), vec![100, 0, 1, 2], "interactive first");
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    fn capacity_bounds_each_lane_independently() {
        let mut s = ScriptedServe::new(2, &config(WaveSizing::Fixed));
        for id in 0..4 {
            assert!(s.submit(Priority::Batch, id));
        }
        assert!(!s.submit(Priority::Batch, 4), "batch lane full");
        assert!(s.submit(Priority::Interactive, 5), "other lanes unaffected");
    }

    #[test]
    fn clock_advances_by_simulated_drain_time() {
        let mut s = ScriptedServe::new(2, &config(WaveSizing::Fixed));
        for id in 0..4 {
            s.submit(Priority::Interactive, id);
        }
        // 4 requests × 1 ms on 2 workers = 2 ms drain.
        let wave = s.run_wave(|_| 1_000_000).unwrap();
        assert_eq!(s.now_ns(), 2_000_000);
        assert_eq!(wave.requests[0].service_ns, 1_000_000);
        assert_eq!(wave.requests[3].service_ns, 2_000_000);
        assert_eq!(wave.requests[3].wait_ns, 0);
    }

    #[test]
    fn grouped_wave_fuses_same_signature_requests_without_reordering() {
        // Wider than the helper config: one worker, one wave of 8.
        let mut c = config(WaveSizing::Fixed);
        c.capacity = 8;
        c.batch_multiple = 8;
        let mut s = ScriptedServe::new(1, &c);
        for id in 0..8 {
            assert!(s.submit(Priority::Interactive, id));
        }
        // All eight share one signature; groups chunk at 4 ⇒ two stacked
        // calls of 1 ms each on the single worker: 2 ms drain, versus the
        // 8 ms a scalar wave would take.
        let wave = s
            .run_wave_grouped(|_| 1_000_000, |_| Some(0u64), 4)
            .unwrap();
        assert_eq!(wave.ids(), (0..8).collect::<Vec<_>>(), "pop order kept");
        assert_eq!(
            wave.fused_groups,
            vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
            "first-occurrence groups chunked at max_group"
        );
        assert_eq!(s.now_ns(), 2_000_000, "group service is the member max");
        // Members complete when their group does.
        assert!(wave.requests[..4].iter().all(|r| r.done_ns == 1_000_000));
        assert!(wave.requests[4..].iter().all(|r| r.done_ns == 2_000_000));
    }

    #[test]
    fn scalar_run_wave_is_the_singleton_grouped_run() {
        let build = || {
            let mut s = ScriptedServe::new(2, &config(WaveSizing::Fixed));
            for id in 0..4 {
                s.submit(Priority::ALL[id as usize % 3], id);
            }
            s
        };
        let service = |id: u64| 300_000 + id * 100_000;
        let a = build().run_wave(service).unwrap();
        let b = build()
            .run_wave_grouped(service, |_| None::<u64>, 16)
            .unwrap();
        assert_eq!(a.ids(), b.ids());
        let done = |w: &ScriptedWave| w.requests.iter().map(|r| r.done_ns).collect::<Vec<_>>();
        assert_eq!(done(&a), done(&b), "no signature ⇒ scalar schedule");
        assert_eq!(a.fused_groups.len(), a.requests.len(), "all singletons");
    }

    #[test]
    fn dynamic_controller_sees_scripted_services() {
        let mut s = ScriptedServe::new(
            2,
            &config(WaveSizing::Dynamic {
                max_multiple: 8,
                wave_budget: Duration::from_millis(5),
                ewma_alpha: 1.0, // last observation wins: exact targets
            }),
        );
        assert_eq!(s.wave_target(), 4, "starting point before data");
        s.submit(Priority::Interactive, 0);
        s.run_wave(|_| 500_000).unwrap(); // 0.5 ms → target 2×5/0.5 = 20 → clamp 16
        assert_eq!(s.wave_target(), 16);
        s.submit(Priority::Interactive, 1);
        s.run_wave(|_| 20_000_000).unwrap(); // 20 ms → clamp at workers
        assert_eq!(s.wave_target(), 2);
    }
}
