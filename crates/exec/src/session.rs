//! [`Session`]: a planned module bound to parameters and an executor.
//!
//! A session is the user-facing entry point of the runtime: it plans the
//! module once ([`crate::ModulePlan`]), allocates (or shares) a parameter
//! store, and exposes [`Session::run`] for inference and
//! [`Session::run_training`] for loss + gradient runs.
//!
//! # Concurrency
//!
//! A session is a *concurrent* entry point: any number of runs may be in
//! flight at once on the shared executor. [`Session::submit_run`] starts an
//! inference run without blocking, [`Session::run_many`] serves a batch of
//! independent requests concurrently (a serving minibatch), and
//! [`Session::run_training_batch`] trains a minibatch of instances as
//! concurrent root frames whose gradients all accumulate into the one
//! shared [`GradStore`]. Each training run gets its own private
//! [`BackpropCache`], so concurrent activations of the same module never
//! collide on cached forward values.
//!
//! The one rule: calls that *reset* the gradient store
//! ([`Session::run_training`] / [`Session::run_training_batch`]) must not
//! overlap each other — they clear the shared accumulators at step start.
//! The rule is *enforced*: each session carries a training-step token, and
//! a clearing call that arrives while another is in flight is rejected
//! deterministically with [`ExecError::TrainingOverlap`] instead of
//! silently corrupting the gradients mid-accumulation. Inference (`run` /
//! `run_many` / `submit_run` / [`Session::serve`]) is unrestricted.
//!
//! # Example
//!
//! ```
//! use rdg_exec::{Executor, Session};
//! use rdg_graph::ModuleBuilder;
//!
//! let mut mb = ModuleBuilder::new();
//! let a = mb.const_f32(2.0);
//! let b = mb.const_f32(3.0);
//! let c = mb.add(a, b).unwrap();
//! mb.set_outputs(&[c]).unwrap();
//!
//! let exec = Executor::with_threads(2);
//! let session = Session::new(exec, mb.finish().unwrap()).unwrap();
//! let out = session.run(vec![]).unwrap();
//! assert_eq!(out[0].as_f32_scalar().unwrap(), 5.0);
//! ```

use crate::cache::BackpropCache;
use crate::error::ExecError;
use crate::executor::{Executor, RunHandle};
use crate::params::{GradStore, ParamStore};
use crate::plan::ModulePlan;
use crate::serve::{ServeClient, ServeConfig, ServeQueue};
use rdg_graph::Module;
use rdg_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A module ready to run: plan + parameter store + gradient machinery.
///
/// Sessions are cheap to clone conceptually (everything is `Arc`-shared);
/// several sessions may share one [`ParamStore`] — that is how the
/// equivalence tests run the recursive and iterative implementations on
/// identical weights, and how data-parallel replicas share nothing but
/// parameters.
///
/// Ownership story: the *executor* (worker pool + ready queue + lifetime
/// stats) is shared by any number of sessions; the *session* owns the plan,
/// the parameter store, and one gradient store; each *run* owns its feeds,
/// its result slot, its stats, and (for training) a private backprop cache.
pub struct Session {
    exec: Arc<Executor>,
    plan: Arc<ModulePlan>,
    params: Arc<ParamStore>,
    grads: Arc<GradStore>,
    /// Training-step token: held (true) while a clearing training call
    /// (`run_training` / `run_training_batch`) is in flight. The second
    /// overlapping clearer is rejected with [`ExecError::TrainingOverlap`].
    training_step: AtomicBool,
}

/// RAII release of the training-step token: the token frees on every exit
/// path of a clearing training call, including the error ones.
struct StepToken<'a>(&'a AtomicBool);

impl Drop for StepToken<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

impl Session {
    /// Plans `module` and initializes fresh parameters from its specs.
    pub fn new(exec: Arc<Executor>, module: Module) -> Result<Self, ExecError> {
        let plan = ModulePlan::new(Arc::new(module))?;
        let params = Arc::new(ParamStore::from_module(&plan.module));
        Ok(Self::assemble(exec, plan, params))
    }

    /// Like [`Session::new`], but with explicit plan-specializer options
    /// instead of the `RDG_SPECIALIZE` environment default — tests and
    /// benches use this to pin the general path (A) or the specialized
    /// path (B) regardless of the environment.
    pub fn with_options(
        exec: Arc<Executor>,
        module: Module,
        opts: crate::SpecializeOptions,
    ) -> Result<Self, ExecError> {
        let plan = ModulePlan::with_options(Arc::new(module), opts)?;
        let params = Arc::new(ParamStore::from_module(&plan.module));
        Ok(Self::assemble(exec, plan, params))
    }

    /// Plans `module` but shares an existing parameter store.
    ///
    /// The store must match the module's parameter specs — same count and,
    /// per parameter, same dtype and shape. A mismatched store is rejected
    /// here with [`ExecError::ParamMismatch`] instead of failing later
    /// inside a kernel mid-run.
    pub fn with_params(
        exec: Arc<Executor>,
        module: Module,
        params: Arc<ParamStore>,
    ) -> Result<Self, ExecError> {
        let plan = ModulePlan::new(Arc::new(module))?;
        Self::check_params(&plan, &params)?;
        Ok(Self::assemble(exec, plan, params))
    }

    /// [`Session::with_params`] with explicit plan-specializer options —
    /// how the equivalence suite runs a pinned-general and a specialized
    /// session on identical weights.
    pub fn with_params_options(
        exec: Arc<Executor>,
        module: Module,
        params: Arc<ParamStore>,
        opts: crate::SpecializeOptions,
    ) -> Result<Self, ExecError> {
        let plan = ModulePlan::with_options(Arc::new(module), opts)?;
        Self::check_params(&plan, &params)?;
        Ok(Self::assemble(exec, plan, params))
    }

    fn check_params(plan: &Arc<ModulePlan>, params: &Arc<ParamStore>) -> Result<(), ExecError> {
        if params.len() != plan.module.params.len() {
            return Err(ExecError::ParamMismatch {
                msg: format!(
                    "shared ParamStore has {} params, module declares {}",
                    params.len(),
                    plan.module.params.len()
                ),
            });
        }
        for (i, spec) in plan.module.params.iter().enumerate() {
            let got = params.read(rdg_graph::ParamId(i as u32));
            if got.dtype() != spec.init.dtype() {
                return Err(ExecError::ParamMismatch {
                    msg: format!(
                        "param {i} '{}': module declares dtype {}, shared store holds {}",
                        spec.name,
                        spec.init.dtype(),
                        got.dtype()
                    ),
                });
            }
            if got.shape() != spec.init.shape() {
                return Err(ExecError::ParamMismatch {
                    msg: format!(
                        "param {i} '{}': module declares shape {:?}, shared store holds {:?}",
                        spec.name,
                        spec.init.shape(),
                        got.shape()
                    ),
                });
            }
        }
        Ok(())
    }

    fn assemble(exec: Arc<Executor>, plan: Arc<ModulePlan>, params: Arc<ParamStore>) -> Self {
        let n = plan.module.params.len();
        Session {
            exec,
            plan,
            params,
            grads: Arc::new(GradStore::new(n)),
            training_step: AtomicBool::new(false),
        }
    }

    /// Claims the training-step token for one clearing training call.
    fn begin_training_step(&self) -> Result<StepToken<'_>, ExecError> {
        if self
            .training_step
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return Err(ExecError::TrainingOverlap);
        }
        Ok(StepToken(&self.training_step))
    }

    /// The planned module.
    pub fn module(&self) -> &Arc<Module> {
        &self.plan.module
    }

    /// The parameter store.
    pub fn params(&self) -> &Arc<ParamStore> {
        &self.params
    }

    /// The gradient store (filled by training runs).
    pub fn grads(&self) -> &Arc<GradStore> {
        &self.grads
    }

    /// The executor this session runs on.
    pub fn executor(&self) -> &Arc<Executor> {
        &self.exec
    }

    /// The session's module plan (carries the specializer state; see
    /// [`ModulePlan::spec_stats`]).
    pub fn plan(&self) -> &Arc<ModulePlan> {
        &self.plan
    }

    /// Inference run: no gradient accumulation, no activation caching.
    ///
    /// The run is dispatched through the plan specializer
    /// ([`ModulePlan::resolve_for_feeds`]): a hot feed signature executes
    /// its promoted flat plan, everything else takes the general frame
    /// machinery. Completed general-path runs feed their spawned-frame
    /// count back into the shape profile, and each run marks a
    /// path-interner quiescent point (see
    /// [`crate::PathKey::note_run_quiescent`]).
    pub fn run(&self, feeds: Vec<Tensor>) -> Result<Vec<Tensor>, ExecError> {
        let (plan, key) = self.plan.resolve_for_feeds(&feeds);
        let handle = self.exec.submit(&plan, &self.params, feeds, None, None)?;
        let stats = Arc::clone(handle.stats());
        let out = handle.wait();
        if let Some(key) = key {
            self.plan.observe_run(
                key,
                stats
                    .frames_spawned
                    .load(std::sync::atomic::Ordering::Relaxed),
            );
        }
        crate::PathKey::note_run_quiescent();
        out
    }

    /// Starts an inference run without blocking (serving path).
    ///
    /// The returned [`RunHandle`] joins the run; any number may be in
    /// flight at once, sharing the executor's worker pool. Hot feed
    /// signatures dispatch to their promoted specialized plan; because the
    /// caller owns the join, this path only *consumes* promotions (it never
    /// feeds the shape profile).
    pub fn submit_run(&self, feeds: Vec<Tensor>) -> Result<RunHandle, ExecError> {
        let (plan, _key) = self.plan.resolve_for_feeds(&feeds);
        self.exec.submit(&plan, &self.params, feeds, None, None)
    }

    /// Serves a batch of independent inference requests concurrently.
    ///
    /// All requests are submitted before any is waited on, so they execute
    /// as concurrent root frames on the shared worker pool. Results come
    /// back positionally; each request fails or succeeds on its own (a bad
    /// feed in one request does not poison its neighbours).
    pub fn run_many(&self, feeds_list: Vec<Vec<Tensor>>) -> Vec<Result<Vec<Tensor>, ExecError>> {
        let handles: Vec<Result<(RunHandle, Option<crate::SpecKey>), ExecError>> = feeds_list
            .into_iter()
            .map(|feeds| {
                let (plan, key) = self.plan.resolve_for_feeds(&feeds);
                self.exec
                    .submit(&plan, &self.params, feeds, None, None)
                    .map(|h| (h, key))
            })
            .collect();
        let out = handles
            .into_iter()
            .map(|h| {
                h.and_then(|(handle, key)| {
                    let stats = Arc::clone(handle.stats());
                    let r = handle.wait();
                    if let Some(key) = key {
                        self.plan.observe_run(
                            key,
                            stats
                                .frames_spawned
                                .load(std::sync::atomic::Ordering::Relaxed),
                        );
                    }
                    r
                })
            })
            .collect();
        crate::PathKey::note_run_quiescent();
        out
    }

    /// Opens an admission-controlled serving loop on this session with the
    /// default [`ServeConfig`].
    ///
    /// The returned [`ServeClient`] is cloneable and usable from any
    /// number of client threads; requests pass through per-class bounded
    /// lanes ([`crate::Priority`]) with backpressure, and a dispatcher
    /// keeps the number of in-flight root frames at a service-time-adapted
    /// multiple of the executor's worker count (see [`crate::serve`]).
    /// The first client defaults to [`crate::Priority::Interactive`]; use
    /// [`ServeClient::with_priority`] to make class-defaulted clones for
    /// lower-priority traffic sources. The loop outlives this `Session`
    /// value — it holds its own handles to the plan, parameters, and
    /// executor — and shuts down when the last client is dropped or
    /// [`ServeClient::shutdown`] is called.
    pub fn serve(&self) -> ServeClient {
        self.serve_with(ServeConfig::default())
    }

    /// Opens an admission-controlled serving loop with an explicit
    /// [`ServeConfig`] (per-class lane capacity, wave sizing, aging).
    pub fn serve_with(&self, config: ServeConfig) -> ServeClient {
        ServeQueue::start(
            Arc::clone(&self.exec),
            Arc::clone(&self.plan),
            Arc::clone(&self.params),
            config,
        )
    }

    /// Starts a training run without blocking or clearing the gradient
    /// store: gradients *accumulate* into [`Session::grads`] on top of
    /// whatever is already there.
    ///
    /// Each submission gets a private [`BackpropCache`], so concurrent
    /// training runs of the same module cannot collide on cached forward
    /// values (their invocation paths are identical); the cache is dropped
    /// with the run.
    pub fn submit_training(&self, feeds: Vec<Tensor>) -> Result<RunHandle, ExecError> {
        self.exec.submit(
            &self.plan,
            &self.params,
            feeds,
            Some(Arc::clone(&self.grads)),
            Some(Arc::new(BackpropCache::new())),
        )
    }

    /// Training run: clears the gradient store, then executes with
    /// activation caching and gradient sinks enabled.
    ///
    /// Accumulated gradients stay in [`Session::grads`] for the optimizer.
    /// Training calls that clear the store (`run_training` /
    /// [`Session::run_training_batch`]) must not overlap each other: the
    /// session's training-step token rejects the second overlapping
    /// clearer with [`ExecError::TrainingOverlap`] (released when this
    /// call returns, on success and error alike).
    pub fn run_training(&self, feeds: Vec<Tensor>) -> Result<Vec<Tensor>, ExecError> {
        let _step = self.begin_training_step()?;
        self.grads.clear();
        let out = self.submit_training(feeds)?.wait();
        crate::PathKey::note_run_quiescent();
        out
    }

    /// Trains a minibatch: all instances launch as concurrent root frames,
    /// their gradients accumulate into the one shared [`Session::grads`],
    /// and per-instance outputs come back positionally.
    ///
    /// The gradient store is cleared once at step start (not per run), so
    /// the result is the **sum** of the per-instance gradients — what the
    /// same instances run sequentially through
    /// [`Session::submit_training`] would accumulate, up to floating-point
    /// reordering (concurrent contributions land in nondeterministic
    /// order). Callers wanting the minibatch mean divide once via
    /// [`GradStore::scale_all`].
    ///
    /// On a per-instance failure the first error is returned — but only
    /// after *every* run has finished, so no detached run is still writing
    /// gradients when this returns.
    ///
    /// Like [`Session::run_training`], this is a *clearing* call: a second
    /// clearer overlapping it is rejected with
    /// [`ExecError::TrainingOverlap`].
    pub fn run_training_batch(
        &self,
        feeds_list: Vec<Vec<Tensor>>,
    ) -> Result<Vec<Vec<Tensor>>, ExecError> {
        let _step = self.begin_training_step()?;
        self.grads.clear();
        let handles: Vec<Result<RunHandle, ExecError>> = feeds_list
            .into_iter()
            .map(|feeds| self.submit_training(feeds))
            .collect();
        // Join everything before surfacing any error.
        let results: Vec<Result<Vec<Tensor>, ExecError>> = handles
            .into_iter()
            .map(|h| h.and_then(RunHandle::wait))
            .collect();
        crate::PathKey::note_run_quiescent();
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_graph::ModuleBuilder;
    use rdg_tensor::DType;

    fn exec() -> Arc<Executor> {
        Executor::with_threads(2)
    }

    #[test]
    fn arithmetic_main_graph() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(2.0);
        let b = mb.const_f32(3.0);
        let c = mb.add(a, b).unwrap();
        let d = mb.mul(c, c).unwrap();
        mb.set_outputs(&[d]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        let out = s.run(vec![]).unwrap();
        assert_eq!(out[0].as_f32_scalar().unwrap(), 25.0);
    }

    #[test]
    fn feeds_are_validated() {
        let mb = ModuleBuilder::new();
        let mut g = rdg_graph::Graph::new();
        let i = g.push_node(
            rdg_graph::OpKind::Input {
                index: 0,
                dtype: DType::F32,
            },
            vec![],
            vec![DType::F32],
        );
        g.outputs.push(rdg_graph::PortRef::of(i));
        // Hand-assemble a module whose main graph has one input.
        let mut m = mb.finish().unwrap();
        m.main = g;
        let s = Session::new(exec(), m).unwrap();
        assert!(s.run(vec![]).is_err(), "missing feed");
        assert!(s.run(vec![Tensor::scalar_i32(1)]).is_err(), "wrong dtype");
        let out = s.run(vec![Tensor::scalar_f32(9.0)]).unwrap();
        assert_eq!(out[0].as_f32_scalar().unwrap(), 9.0);
    }

    #[test]
    fn subgraph_invocation_and_captures() {
        let mut mb = ModuleBuilder::new();
        let bias = mb.const_f32(100.0);
        let sg = mb
            .subgraph("affine", &[DType::F32], &[DType::F32], |b| {
                let x = b.input(0)?;
                let y = b.scale(x, 2.0)?;
                Ok(vec![b.add(y, bias)?]) // captures `bias`
            })
            .unwrap();
        let a = mb.const_f32(5.0);
        let out = mb.invoke(&sg, &[a]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        let out = s.run(vec![]).unwrap();
        assert_eq!(out[0].as_f32_scalar().unwrap(), 110.0);
    }

    #[test]
    fn recursion_countdown() {
        // sum(n) = n == 0 ? 0 : n + sum(n-1), computed on i32 scalars.
        let mut mb = ModuleBuilder::new();
        let h = mb.declare_subgraph("sum", &[DType::I32], &[DType::I32]);
        mb.define_subgraph(&h, |b| {
            let n = b.input(0)?;
            let zero = b.const_i32(0);
            let p = b.igt(n, zero)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| {
                    let one = b.const_i32(1);
                    let m = b.isub(n, one)?;
                    let rec = b.invoke(&h, &[m])?[0];
                    b.iadd(n, rec)
                },
                |b| b.identity(zero),
            )?;
            Ok(vec![out])
        })
        .unwrap();
        let start = mb.const_i32(10);
        let out = mb.invoke(&h, &[start]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        let out = s.run(vec![]).unwrap();
        assert_eq!(out[0].as_i32_scalar().unwrap(), 55);
    }

    #[test]
    fn deep_recursion_does_not_overflow_stack() {
        // Tail recursion 20_000 deep: frames are heap objects and the
        // completion cascade is iterative, so this must succeed on a
        // 2-thread pool with default stack sizes.
        let mut mb = ModuleBuilder::new();
        let h = mb.declare_subgraph("down", &[DType::I32], &[DType::I32]);
        mb.define_subgraph(&h, |b| {
            let n = b.input(0)?;
            let zero = b.const_i32(0);
            let p = b.igt(n, zero)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| {
                    let one = b.const_i32(1);
                    let m = b.isub(n, one)?;
                    Ok(b.invoke(&h, &[m])?[0])
                },
                |b| b.identity(n),
            )?;
            Ok(vec![out])
        })
        .unwrap();
        let start = mb.const_i32(20_000);
        let out = mb.invoke(&h, &[start]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        let out = s.run(vec![]).unwrap();
        assert_eq!(out[0].as_i32_scalar().unwrap(), 0);
        assert!(
            s.executor()
                .stats()
                .max_depth
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 20_000
        );
    }

    #[test]
    fn cond_is_lazy() {
        // The else-branch divides by zero; with a true predicate it must
        // never execute.
        let mut mb = ModuleBuilder::new();
        let t = mb.const_i32(1);
        let out = mb
            .cond1(
                t,
                DType::I32,
                |b| Ok(b.const_i32(7)),
                |b| {
                    let one = b.const_i32(1);
                    let zero = b.const_i32(0);
                    b.idiv(one, zero)
                },
            )
            .unwrap();
        mb.set_outputs(&[out]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        let out = s.run(vec![]).unwrap();
        assert_eq!(out[0].as_i32_scalar().unwrap(), 7);
    }

    #[test]
    fn kernel_errors_propagate() {
        let mut mb = ModuleBuilder::new();
        let one = mb.const_i32(1);
        let zero = mb.const_i32(0);
        let bad = mb.idiv(one, zero).unwrap();
        mb.set_outputs(&[bad]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        let err = s.run(vec![]).unwrap_err();
        assert!(matches!(err, ExecError::Kernel { .. }), "{err}");
    }

    #[test]
    fn while_loop_executes() {
        let mut mb = ModuleBuilder::new();
        let i0 = mb.const_i32(0);
        let acc0 = mb.const_f32(0.0);
        let limit = mb.const_i32(100);
        let outs = mb
            .while_loop(
                "accumulate",
                &[i0, acc0],
                |b, s| b.ilt(s[0], limit),
                |b, s| {
                    let one = b.const_i32(1);
                    let i = b.iadd(s[0], one)?;
                    let acc = b.add_const(s[1], 0.5)?;
                    Ok(vec![i, acc])
                },
            )
            .unwrap();
        mb.set_outputs(&[outs[0], outs[1]]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        let out = s.run(vec![]).unwrap();
        assert_eq!(out[0].as_i32_scalar().unwrap(), 100);
        assert!((out[1].as_f32_scalar().unwrap() - 50.0).abs() < 1e-4);
    }

    #[test]
    fn parallel_siblings_both_execute() {
        // fib-style double recursion: checks that sibling frames fan out and
        // rejoin correctly. fib(10) = 55 with fib(0)=0, fib(1)=1.
        let mut mb = ModuleBuilder::new();
        let h = mb.declare_subgraph("fib", &[DType::I32], &[DType::I32]);
        mb.define_subgraph(&h, |b| {
            let n = b.input(0)?;
            let one = b.const_i32(1);
            let p = b.ile(n, one)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| b.identity(n),
                |b| {
                    let one = b.const_i32(1);
                    let two = b.const_i32(2);
                    let n1 = b.isub(n, one)?;
                    let n2 = b.isub(n, two)?;
                    let f1 = b.invoke(&h, &[n1])?[0];
                    let f2 = b.invoke(&h, &[n2])?[0];
                    b.iadd(f1, f2)
                },
            )?;
            Ok(vec![out])
        })
        .unwrap();
        let start = mb.const_i32(10);
        let out = mb.invoke(&h, &[start]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        let out = s.run(vec![]).unwrap();
        assert_eq!(out[0].as_i32_scalar().unwrap(), 55);
        // fib spawns an exponential number of frames; make sure we saw them.
        let frames = s
            .executor()
            .stats()
            .frames_spawned
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(frames > 100, "fib(10) must spawn many frames, saw {frames}");
    }

    #[test]
    fn with_params_rejects_wrong_count() {
        // Module with one param vs a store built for a param-less module.
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(1.0)).unwrap();
        mb.set_outputs(&[w]).unwrap();
        let with_param = mb.finish().unwrap();

        let mut mb = ModuleBuilder::new();
        let c = mb.const_f32(0.0);
        mb.set_outputs(&[c]).unwrap();
        let no_params = mb.finish().unwrap();

        let e = exec();
        let donor = Session::new(Arc::clone(&e), no_params).unwrap();
        match Session::with_params(e, with_param, Arc::clone(donor.params())) {
            Err(ExecError::ParamMismatch { .. }) => {}
            Err(other) => panic!("expected ParamMismatch, got {other:?}"),
            Ok(_) => panic!("count mismatch was accepted"),
        }
    }

    #[test]
    fn with_params_rejects_wrong_shape() {
        let mut mb = ModuleBuilder::new();
        let w = mb
            .param_wire("w", Tensor::from_f32([2], vec![1.0, 2.0]).unwrap())
            .unwrap();
        mb.set_outputs(&[w]).unwrap();
        let vec_param = mb.finish().unwrap();

        let mut mb = ModuleBuilder::new();
        let w = mb
            .param_wire("w", Tensor::from_f32([3], vec![1.0, 2.0, 3.0]).unwrap())
            .unwrap();
        mb.set_outputs(&[w]).unwrap();
        let longer_param = mb.finish().unwrap();

        let e = exec();
        let donor = Session::new(Arc::clone(&e), vec_param).unwrap();
        // Same param count, same dtype, different shape: must be rejected
        // at construction, not inside a kernel mid-run.
        match Session::with_params(e, longer_param, Arc::clone(donor.params())) {
            Err(ExecError::ParamMismatch { msg }) => {
                assert!(msg.contains("'w'"), "names the parameter: {msg}");
            }
            Err(other) => panic!("expected ParamMismatch, got {other:?}"),
            Ok(_) => panic!("shape mismatch was accepted"),
        }
    }

    #[test]
    fn with_params_rejects_wrong_dtype() {
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(1.0)).unwrap();
        mb.set_outputs(&[w]).unwrap();
        let f32_param = mb.finish().unwrap();

        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_i32(1)).unwrap();
        mb.set_outputs(&[w]).unwrap();
        let i32_param = mb.finish().unwrap();

        let e = exec();
        let donor = Session::new(Arc::clone(&e), f32_param).unwrap();
        match Session::with_params(e, i32_param, Arc::clone(donor.params())) {
            Err(ExecError::ParamMismatch { .. }) => {}
            Err(other) => panic!("expected ParamMismatch, got {other:?}"),
            Ok(_) => panic!("dtype mismatch was accepted"),
        }
    }

    #[test]
    fn matching_shared_store_is_accepted() {
        let mut mb = ModuleBuilder::new();
        let w = mb
            .param_wire("w", Tensor::from_f32([2], vec![1.0, 2.0]).unwrap())
            .unwrap();
        mb.set_outputs(&[w]).unwrap();
        let m = mb.finish().unwrap();
        let e = exec();
        let donor = Session::new(Arc::clone(&e), m.clone()).unwrap();
        assert!(Session::with_params(e, m, Arc::clone(donor.params())).is_ok());
    }

    #[test]
    fn overlapping_clearing_training_calls_are_rejected() {
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(3.0)).unwrap();
        let x = mb.const_f32(2.0);
        let y = mb.mul(w, x).unwrap();
        mb.set_outputs(&[y]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        // Simulate a clearing step in flight by holding the token the way
        // run_training/run_training_batch do.
        let step = s.begin_training_step().unwrap();
        let err = s.run_training(vec![]).unwrap_err();
        assert!(matches!(err, ExecError::TrainingOverlap), "{err}");
        let err = s.run_training_batch(vec![vec![]]).unwrap_err();
        assert!(matches!(err, ExecError::TrainingOverlap), "{err}");
        // Inference stays unrestricted while a training step is active.
        assert_eq!(s.run(vec![]).unwrap()[0].as_f32_scalar().unwrap(), 6.0);
        // Non-clearing accumulation (`submit_training`) is also exempt.
        s.submit_training(vec![]).unwrap().wait().unwrap();
        drop(step);
        // Token released: the next clearing call proceeds.
        assert!(s.run_training(vec![]).is_ok());
    }

    #[test]
    fn training_token_releases_on_error_paths() {
        // A clearing call that fails (bad feed) must still release the
        // token, or the session would be deadlocked for training forever.
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(3.0)).unwrap();
        mb.set_outputs(&[w]).unwrap();
        let s = Session::new(exec(), mb.finish().unwrap()).unwrap();
        assert!(s.run_training(vec![Tensor::scalar_f32(0.0)]).is_err());
        assert!(s.run_training(vec![]).is_ok(), "token was released");
    }

    #[test]
    fn shared_params_are_visible_across_sessions() {
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(3.0)).unwrap();
        let x = mb.const_f32(2.0);
        let y = mb.mul(w, x).unwrap();
        mb.set_outputs(&[y]).unwrap();
        let m = mb.finish().unwrap();

        let e = exec();
        let s1 = Session::new(Arc::clone(&e), m.clone()).unwrap();
        let s2 = Session::with_params(e, m, Arc::clone(s1.params())).unwrap();
        assert_eq!(s1.run(vec![]).unwrap()[0].as_f32_scalar().unwrap(), 6.0);
        // Mutate through the shared store; both sessions see it.
        s1.params()
            .write(rdg_graph::ParamId(0), Tensor::scalar_f32(5.0));
        assert_eq!(s2.run(vec![]).unwrap()[0].as_f32_scalar().unwrap(), 10.0);
    }
}
