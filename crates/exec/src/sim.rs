//! Virtual-time executor: a discrete-event twin of the parallel runtime.
//!
//! The paper's evaluation ran on a 2×18-core Xeon; several of its results
//! (Figures 7, 8, 11, Table 1) are *shapes produced by parallelism* — how
//! throughput scales when many tree nodes can execute concurrently. On a
//! small host those shapes are truncated by the physical core count, so this
//! module replays the exact dataflow schedule of a module under a
//! configurable **virtual machine**: `n_workers` virtual execution threads
//! and a per-op cost model. Values are computed for real (so control flow
//! and dynamic models behave identically); only *time* is simulated.
//!
//! The scheduler mirrors the real executor's *queue discipline*: a FIFO
//! ready queue, workers that pick the front task as they become free,
//! dependency-count readiness, and frame spawning for `Invoke`/`Cond`. The
//! output is the virtual makespan, from which the harness derives
//! paper-style throughput numbers.
//!
//! The model deliberately schedules **every** node through the virtual
//! queue — it does not reproduce the real executor's hot-path shortcuts
//! (spawn-time prelude publishing of `Input`/`Const` nodes, call
//! continuations, batched queue transfer; see the [`crate::executor`]
//! docs). Those shortcuts change *constants*, not the dataflow shape, and
//! the virtual-machine results are parallelism *shapes*; when absolute
//! agreement with the real executor matters, derive [`CostModel`]'s
//! `dispatch_ns`/`frame_ns` from a profile of the current runtime (the
//! calibration constructor) rather than the defaults.

use crate::cache::{BackpropCache, CacheKey};
use crate::error::ExecError;
use crate::kernel::{self, KernelCtx};
use crate::params::{GradStore, ParamStore};
use crate::path::PathKey;
use crate::plan::ModulePlan;
use crate::stats::ExecStats;
use rdg_graph::{GraphRef, NodeId, OpKind, PortRef};
use rdg_tensor::Tensor;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

/// Per-op cost model for the virtual machine.
///
/// Cost = `dispatch_ns` (scheduling/kernel-launch overhead, the framework
/// tax every op pays) + work-dependent time. Work time is estimated from
/// the op's output/input element counts at `elem_ns` per element, with
/// matmul-class ops additionally charged per multiply-accumulate. A
/// calibration constructor can derive the constants from the real
/// executor's kernel profile.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Fixed per-op dispatch overhead, nanoseconds.
    pub dispatch_ns: f64,
    /// Per-element streaming cost, nanoseconds.
    pub elem_ns: f64,
    /// Per-multiply-accumulate cost for matmul/bilinear, nanoseconds.
    pub mac_ns: f64,
    /// Extra cost of spawning a frame (InvokeOp setup), nanoseconds.
    pub frame_ns: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Rough CPU-like constants: ~1 µs dispatch, 1 ns/element streaming,
        // 0.5 ns/MAC (2 FLOP/cycle-ish), 2 µs frame setup.
        CostModel {
            dispatch_ns: 1_000.0,
            elem_ns: 1.0,
            mac_ns: 0.5,
            frame_ns: 2_000.0,
        }
    }
}

impl CostModel {
    /// Cost of one op execution, in virtual nanoseconds.
    pub fn op_cost(&self, op: &OpKind, inputs: &[Tensor], outputs: &[Tensor]) -> f64 {
        let out_elems: usize = outputs.iter().map(|t| t.numel()).sum();
        let in_elems: usize = inputs.iter().map(|t| t.numel()).sum();
        let work = match op {
            OpKind::MatMul | OpKind::MatMulAT | OpKind::MatMulBT => {
                // [m,k]·[k,n]: m·k·n MACs.
                let k = match op {
                    OpKind::MatMul => inputs[0].shape().as_matrix().map(|(_, k)| k),
                    OpKind::MatMulAT => inputs[0].shape().as_matrix().map(|(k, _)| k),
                    OpKind::MatMulBT => inputs[0].shape().as_matrix().map(|(_, k)| k),
                    _ => unreachable!(),
                }
                .unwrap_or(1);
                (out_elems * k) as f64 * self.mac_ns
            }
            OpKind::Bilinear | OpKind::BilinearGradX | OpKind::BilinearGradV => {
                // k slices of m×m bilinear forms per row.
                let v = &inputs[1];
                let macs = if v.rank() == 3 {
                    let d = v.shape().dims();
                    d[0] * d[1] * d[2]
                } else {
                    in_elems
                };
                macs as f64 * self.mac_ns
            }
            _ => (in_elems + out_elems) as f64 * self.elem_ns,
        };
        self.dispatch_ns + work
    }
}

/// Result of a virtual-time run.
pub struct SimResult {
    /// Main-graph outputs (computed with real kernels).
    pub outputs: Vec<Tensor>,
    /// Virtual makespan in nanoseconds.
    pub virtual_ns: f64,
    /// Total ops executed.
    pub ops: u64,
    /// Total frames spawned.
    pub frames: u64,
    /// Sum of op costs (single-worker lower bound), nanoseconds.
    pub total_work_ns: f64,
}

impl SimResult {
    /// Virtual makespan in seconds.
    pub fn seconds(&self) -> f64 {
        self.virtual_ns / 1e9
    }

    /// Parallel speedup achieved by the virtual machine: work / makespan.
    pub fn parallelism(&self) -> f64 {
        if self.virtual_ns > 0.0 {
            self.total_work_ns / self.virtual_ns
        } else {
            0.0
        }
    }
}

struct SimFrame {
    gref: GraphRef,
    path: PathKey,
    args: Vec<Tensor>,
    values: Vec<Option<Vec<Tensor>>>,
    pending: Vec<u32>,
    nodes_left: usize,
    parent: Option<(usize, NodeId)>, // (frame index, node)
    depth: u32,
}

/// The virtual-time executor.
pub struct SimExecutor {
    /// Number of virtual workers (the paper's testbed: 36).
    pub n_workers: usize,
    /// Per-op cost model.
    pub cost: CostModel,
}

#[derive(PartialEq)]
struct FloatOrd(f64);
impl Eq for FloatOrd {}
impl PartialOrd for FloatOrd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FloatOrd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

impl SimExecutor {
    /// Creates a virtual machine with `n_workers` workers.
    pub fn new(n_workers: usize) -> Self {
        SimExecutor {
            n_workers: n_workers.max(1),
            cost: CostModel::default(),
        }
    }

    /// Runs the module once, returning outputs plus virtual-time metrics.
    ///
    /// Training mode is selected by passing `grads`/`cache` (as in the real
    /// executor).
    pub fn run(
        &self,
        plan: &Arc<ModulePlan>,
        params: &Arc<ParamStore>,
        feeds: Vec<Tensor>,
        grads: Option<&GradStore>,
        cache: Option<&BackpropCache>,
    ) -> Result<SimResult, ExecError> {
        let module = &plan.module;
        let stats = ExecStats::new();
        let mut frames: Vec<SimFrame> = Vec::new();
        // Ready queue of (frame, node) with the virtual time it became ready.
        let mut ready: VecDeque<(usize, NodeId, f64)> = VecDeque::new();
        // Worker availability times (min-heap).
        let mut workers: BinaryHeap<Reverse<FloatOrd>> = (0..self.n_workers)
            .map(|_| Reverse(FloatOrd(0.0)))
            .collect();
        let mut ops = 0u64;
        let mut n_frames = 0u64;
        let mut total_work = 0.0f64;
        let mut makespan = 0.0f64;
        let mut result: Option<Vec<Tensor>> = None;

        let spawn = |frames: &mut Vec<SimFrame>,
                     ready: &mut VecDeque<(usize, NodeId, f64)>,
                     gref: GraphRef,
                     path: PathKey,
                     args: Vec<Tensor>,
                     parent: Option<(usize, NodeId)>,
                     depth: u32,
                     now: f64,
                     n_frames: &mut u64| {
            let gplan = plan.plan(gref);
            let g = module.graph(gref);
            *n_frames += 1;
            let fidx = frames.len();
            frames.push(SimFrame {
                gref,
                path,
                args,
                values: vec![None; g.len()],
                pending: gplan.pending.clone(),
                nodes_left: g.len(),
                parent,
                depth,
            });
            for &s in &gplan.sources {
                ready.push_back((fidx, s, now));
            }
            fidx
        };

        spawn(
            &mut frames,
            &mut ready,
            GraphRef::Main,
            PathKey::root(),
            feeds,
            None,
            0,
            0.0,
            &mut n_frames,
        );

        // Deliveries that finish at a known virtual time but whose dependent
        // bookkeeping runs immediately: (frame, node, outputs, finish_time).
        let mut pending_completions: Vec<(usize, NodeId, Vec<Tensor>, f64)> = Vec::new();

        while !ready.is_empty() || !pending_completions.is_empty() {
            // Apply any completion whose effects are due.
            if let Some((fidx, node, outs, t_done)) = pending_completions.pop() {
                self.complete(
                    plan,
                    module,
                    &mut frames,
                    &mut ready,
                    fidx,
                    node,
                    outs,
                    t_done,
                    grads,
                    cache,
                    &mut result,
                    &mut makespan,
                    &mut pending_completions,
                    &mut n_frames,
                )?;
                continue;
            }
            let (fidx, node, t_ready) = ready.pop_front().expect("nonempty");
            // Earliest-free worker picks up the task.
            let Reverse(FloatOrd(w_free)) = workers.pop().expect("worker");
            let start = w_free.max(t_ready);

            // Execute the node for real.
            let gref = frames[fidx].gref;
            let g = module.graph(gref);
            let n = g.node(node);
            let mut inputs = Vec::with_capacity(n.inputs.len());
            for &p in &n.inputs {
                let v = frames[fidx].values[p.node.0 as usize]
                    .as_ref()
                    .ok_or_else(|| ExecError::internal("sim: input not ready"))?;
                inputs.push(v[p.port as usize].clone());
            }
            ops += 1;

            match n.op.clone() {
                OpKind::Invoke { sub, site, .. } => {
                    let t_done = start + self.cost.frame_ns;
                    total_work += self.cost.frame_ns;
                    workers.push(Reverse(FloatOrd(t_done)));
                    let path = frames[fidx].path.child(site);
                    let depth = frames[fidx].depth + 1;
                    spawn(
                        &mut frames,
                        &mut ready,
                        GraphRef::Sub(sub),
                        path,
                        inputs,
                        Some((fidx, node)),
                        depth,
                        t_done,
                        &mut n_frames,
                    );
                }
                OpKind::Cond {
                    sub_then,
                    sub_else,
                    site_then,
                    site_else,
                    n_then_in,
                    ..
                } => {
                    let t_done = start + self.cost.frame_ns;
                    total_work += self.cost.frame_ns;
                    workers.push(Reverse(FloatOrd(t_done)));
                    let pred = inputs[0].as_i32_scalar().map_err(|e| ExecError::Kernel {
                        graph: module.graph_name(gref),
                        node: n.name.clone(),
                        source: e,
                    })?;
                    let mut rest = inputs.split_off(1);
                    let else_args = rest.split_off(n_then_in as usize);
                    let (sub, site, args) = if pred != 0 {
                        (sub_then, site_then, rest)
                    } else {
                        (sub_else, site_else, else_args)
                    };
                    let path = frames[fidx].path.child(site);
                    let depth = frames[fidx].depth + 1;
                    spawn(
                        &mut frames,
                        &mut ready,
                        GraphRef::Sub(sub),
                        path,
                        args,
                        Some((fidx, node)),
                        depth,
                        t_done,
                        &mut n_frames,
                    );
                }
                OpKind::FwdValue { of } | OpKind::FwdZeros { of } => {
                    let zeros = matches!(n.op, OpKind::FwdZeros { .. });
                    let out = self.read_fwd(module, cache, &frames[fidx], of, zeros)?;
                    let cost = self.cost.dispatch_ns;
                    total_work += cost;
                    let t_done = start + cost;
                    workers.push(Reverse(FloatOrd(t_done)));
                    pending_completions.push((fidx, node, vec![out], t_done));
                }
                ref op => {
                    let kctx = KernelCtx {
                        args: &frames[fidx].args,
                        params,
                        grads,
                        stats: &stats,
                    };
                    let outs = kernel::execute(op, inputs.clone(), &kctx).map_err(|e| {
                        ExecError::Kernel {
                            graph: module.graph_name(gref),
                            node: n.name.clone(),
                            source: e,
                        }
                    })?;
                    let cost = self.cost.op_cost(op, &inputs, &outs);
                    total_work += cost;
                    let t_done = start + cost;
                    workers.push(Reverse(FloatOrd(t_done)));
                    pending_completions.push((fidx, node, outs, t_done));
                }
            }
        }

        let outputs = result.ok_or_else(|| ExecError::internal("sim: run never completed"))?;
        Ok(SimResult {
            outputs,
            virtual_ns: makespan,
            ops,
            frames: n_frames,
            total_work_ns: total_work,
        })
    }

    fn read_fwd(
        &self,
        module: &rdg_graph::Module,
        cache: Option<&BackpropCache>,
        frame: &SimFrame,
        of: PortRef,
        zeros: bool,
    ) -> Result<Tensor, ExecError> {
        let fwd_gref = match frame.gref {
            GraphRef::Sub(id) => GraphRef::Sub(
                module
                    .subgraph(id)
                    .grad_of
                    .ok_or_else(|| ExecError::internal("sim: FwdValue in non-gradient graph"))?,
            ),
            GraphRef::Main => return Err(ExecError::internal("sim: FwdValue in main graph")),
        };
        let cache = cache.ok_or_else(|| ExecError::internal("sim: FwdValue outside training"))?;
        let key = CacheKey {
            gref: fwd_gref,
            path: frame.path.clone(),
            node: of.node,
            port: of.port,
        };
        if zeros {
            let shape = cache.shapes.get(&key).ok_or_else(|| ExecError::CacheMiss {
                msg: format!("sim: shape of {of}"),
            })?;
            Ok(Tensor::zeros(shape))
        } else {
            cache.values.get(&key).ok_or_else(|| ExecError::CacheMiss {
                msg: format!("sim: value of {of}"),
            })
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn complete(
        &self,
        plan: &Arc<ModulePlan>,
        module: &rdg_graph::Module,
        frames: &mut Vec<SimFrame>,
        ready: &mut VecDeque<(usize, NodeId, f64)>,
        mut fidx: usize,
        mut node: NodeId,
        mut outs: Vec<Tensor>,
        t_done: f64,
        grads: Option<&GradStore>,
        cache: Option<&BackpropCache>,
        result: &mut Option<Vec<Tensor>>,
        makespan: &mut f64,
        _pending: &mut [(usize, NodeId, Vec<Tensor>, f64)],
        _n_frames: &mut u64,
    ) -> Result<(), ExecError> {
        let _ = grads;
        loop {
            let gref = frames[fidx].gref;
            let gplan = plan.plan(gref);
            if let Some(cache) = cache {
                let ni = node.0 as usize;
                if gplan.keep_value[ni] {
                    for (port, t) in outs.iter().enumerate() {
                        cache.values.insert(
                            CacheKey {
                                gref,
                                path: frames[fidx].path.clone(),
                                node,
                                port: port as u16,
                            },
                            t.clone(),
                        );
                    }
                }
                if gplan.keep_shape[ni] {
                    for (port, t) in outs.iter().enumerate() {
                        cache.shapes.insert(
                            CacheKey {
                                gref,
                                path: frames[fidx].path.clone(),
                                node,
                                port: port as u16,
                            },
                            t.shape().clone(),
                        );
                    }
                }
            }
            frames[fidx].values[node.0 as usize] = Some(outs);
            for ci in 0..gplan.consumers[node.0 as usize].len() {
                let c = gplan.consumers[node.0 as usize][ci];
                let p = &mut frames[fidx].pending[c.0 as usize];
                *p -= 1;
                if *p == 0 {
                    ready.push_back((fidx, c, t_done));
                }
            }
            frames[fidx].nodes_left -= 1;
            if frames[fidx].nodes_left != 0 {
                return Ok(());
            }
            // Frame complete.
            let g = module.graph(gref);
            let mut fouts = Vec::with_capacity(g.outputs.len());
            for &p in &g.outputs {
                let v = frames[fidx].values[p.node.0 as usize]
                    .as_ref()
                    .ok_or_else(|| ExecError::internal("sim: output missing"))?;
                fouts.push(v[p.port as usize].clone());
            }
            // Free the frame's big buffers (values stay only in the cache).
            match frames[fidx].parent {
                None => {
                    *makespan = makespan.max(t_done);
                    *result = Some(fouts);
                    return Ok(());
                }
                Some((pfidx, pnode)) => {
                    frames[fidx].values.clear();
                    fidx = pfidx;
                    node = pnode;
                    outs = fouts;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_graph::ModuleBuilder;
    use rdg_tensor::DType;

    fn fib_module(n: i32) -> rdg_graph::Module {
        let mut mb = ModuleBuilder::new();
        let h = mb.declare_subgraph("fib", &[DType::I32], &[DType::I32]);
        mb.define_subgraph(&h, |b| {
            let n = b.input(0)?;
            let one = b.const_i32(1);
            let p = b.ile(n, one)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| b.identity(n),
                |b| {
                    let one = b.const_i32(1);
                    let two = b.const_i32(2);
                    let a = b.isub(n, one)?;
                    let bb = b.isub(n, two)?;
                    let fa = b.invoke(&h, &[a])?[0];
                    let fb = b.invoke(&h, &[bb])?[0];
                    b.iadd(fa, fb)
                },
            )?;
            Ok(vec![out])
        })
        .unwrap();
        let s = mb.const_i32(n);
        let out = mb.invoke(&h, &[s]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        mb.finish().unwrap()
    }

    #[test]
    fn sim_computes_correct_values() {
        let plan = ModulePlan::new(Arc::new(fib_module(10))).unwrap();
        let params = Arc::new(ParamStore::from_module(&plan.module));
        let sim = SimExecutor::new(4);
        let r = sim.run(&plan, &params, vec![], None, None).unwrap();
        assert_eq!(r.outputs[0].as_i32_scalar().unwrap(), 55);
        assert!(r.virtual_ns > 0.0);
        assert!(r.frames > 100);
    }

    #[test]
    fn more_workers_never_slower() {
        let plan = ModulePlan::new(Arc::new(fib_module(12))).unwrap();
        let params = Arc::new(ParamStore::from_module(&plan.module));
        let t1 = SimExecutor::new(1)
            .run(&plan, &params, vec![], None, None)
            .unwrap();
        let t8 = SimExecutor::new(8)
            .run(&plan, &params, vec![], None, None)
            .unwrap();
        let t64 = SimExecutor::new(64)
            .run(&plan, &params, vec![], None, None)
            .unwrap();
        assert!(t8.virtual_ns <= t1.virtual_ns, "8 workers beat 1");
        assert!(t64.virtual_ns <= t8.virtual_ns, "64 workers beat 8");
        // Same computation, same work.
        assert!((t1.total_work_ns - t64.total_work_ns).abs() < 1.0);
        // fib is massively parallel: expect real speedup at 8 workers.
        assert!(
            t1.virtual_ns / t8.virtual_ns > 2.0,
            "expected >2x speedup, got {:.2}",
            t1.virtual_ns / t8.virtual_ns
        );
    }

    #[test]
    fn single_worker_makespan_equals_total_work() {
        let plan = ModulePlan::new(Arc::new(fib_module(8))).unwrap();
        let params = Arc::new(ParamStore::from_module(&plan.module));
        let r = SimExecutor::new(1)
            .run(&plan, &params, vec![], None, None)
            .unwrap();
        assert!(
            (r.virtual_ns - r.total_work_ns).abs() / r.total_work_ns < 1e-9,
            "one worker serializes all work"
        );
        assert!((r.parallelism() - 1.0).abs() < 1e-9);
    }
}
