//! Executor statistics: cheap atomic counters plus optional kernel profiling.
//!
//! The same [`ExecStats`] struct serves two roles:
//!
//! * **per-run** — every submitted run owns a private instance that its
//!   frames increment on the hot path; `RunHandle::stats` exposes it, so
//!   concurrent runs never smear into each other's numbers;
//! * **executor-lifetime aggregate** — when a run completes, its counters
//!   are folded into the executor's instance via [`ExecStats::absorb`]
//!   (`max_depth` folds as a max, everything else as a sum), so
//!   `Executor::stats` keeps reporting lifetime totals.
//!
//! Kernel profiling stays on the executor-lifetime instance only: it is a
//! calibration tool, not a per-run metric.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters describing one run's activity, or — as the fold of all
/// completed runs — one executor's lifetime activity (see module docs).
#[derive(Default)]
pub struct ExecStats {
    /// Operations executed (kernels, including structural ops).
    pub ops_executed: AtomicU64,
    /// Frames spawned (InvokeOp and Cond branch activations).
    pub frames_spawned: AtomicU64,
    /// Deepest frame depth observed.
    pub max_depth: AtomicU64,
    /// Values written to the backprop cache.
    pub cache_writes: AtomicU64,
    /// Values read from the backprop cache.
    pub cache_reads: AtomicU64,
    /// In-place buffer reuses observed by copy-on-write kernels.
    pub inplace_updates: AtomicU64,
    /// Tasks that were dropped because the run was cancelled by an error.
    pub cancelled_tasks: AtomicU64,
    /// Nodes resolved inline at frame spawn (`Input`/`Const` prelude).
    pub prelude_published: AtomicU64,
    /// Tasks executed as call continuations, bypassing the ready queue.
    pub continuations: AtomicU64,
    /// Optional per-op-kind wall time, enabled by [`ExecStats::enable_profiling`].
    profile: Mutex<Option<HashMap<&'static str, (Duration, u64)>>>,
    profile_on: std::sync::atomic::AtomicBool,
}

impl ExecStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns on per-op-kind timing (used to calibrate the virtual-time
    /// executor; adds a mutex acquisition per op, so keep it off for
    /// benchmark runs).
    pub fn enable_profiling(&self) {
        *self.profile.lock() = Some(HashMap::new());
        self.profile_on.store(true, Ordering::Release);
    }

    /// Whether profiling is enabled (single atomic load; hot path safe).
    pub fn profiling(&self) -> bool {
        self.profile_on.load(Ordering::Acquire)
    }

    /// Records one kernel execution time.
    pub fn record_kernel(&self, op: &'static str, d: Duration) {
        if let Some(map) = self.profile.lock().as_mut() {
            let e = map.entry(op).or_insert((Duration::ZERO, 0));
            e.0 += d;
            e.1 += 1;
        }
    }

    /// Snapshot of per-op-kind `(total time, count)`.
    pub fn kernel_profile(&self) -> HashMap<&'static str, (Duration, u64)> {
        self.profile.lock().clone().unwrap_or_default()
    }

    /// Raises `max_depth` to at least `d`.
    pub fn observe_depth(&self, d: u64) {
        self.max_depth.fetch_max(d, Ordering::Relaxed);
    }

    /// Folds a completed run's counters into this (lifetime) instance:
    /// `max_depth` as a max, every other counter as a sum.
    ///
    /// `cancelled_tasks` is excluded — the executor counts those directly
    /// on both sinks as they happen, because a failed run's stray tasks can
    /// still be draining after the run has already reported its error.
    pub fn absorb(&self, run: &ExecStats) {
        // Exhaustive destructuring: adding a counter to ExecStats without
        // deciding how it folds is a compile error, not a silent zero in
        // the lifetime aggregate.
        let ExecStats {
            ops_executed,
            frames_spawned,
            max_depth,
            cache_writes,
            cache_reads,
            inplace_updates,
            cancelled_tasks: _, // counted on both sinks at the increment site
            prelude_published,
            continuations,
            profile: _,    // profiling is executor-lifetime only
            profile_on: _, // profiling is executor-lifetime only
        } = run;
        let pairs = [
            (&self.ops_executed, ops_executed),
            (&self.frames_spawned, frames_spawned),
            (&self.cache_writes, cache_writes),
            (&self.cache_reads, cache_reads),
            (&self.inplace_updates, inplace_updates),
            (&self.prelude_published, prelude_published),
            (&self.continuations, continuations),
        ];
        for (into, from) in pairs {
            into.fetch_add(from.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.max_depth
            .fetch_max(max_depth.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "ops={} frames={} max_depth={} cache_w={} cache_r={} inplace={} prelude={} conts={}",
            self.ops_executed.load(Ordering::Relaxed),
            self.frames_spawned.load(Ordering::Relaxed),
            self.max_depth.load(Ordering::Relaxed),
            self.cache_writes.load(Ordering::Relaxed),
            self.cache_reads.load(Ordering::Relaxed),
            self.inplace_updates.load(Ordering::Relaxed),
            self.prelude_published.load(Ordering::Relaxed),
            self.continuations.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = ExecStats::new();
        assert_eq!(s.ops_executed.load(Ordering::Relaxed), 0);
        assert!(s.summary().contains("ops=0"));
    }

    #[test]
    fn depth_is_monotonic_max() {
        let s = ExecStats::new();
        s.observe_depth(5);
        s.observe_depth(3);
        assert_eq!(s.max_depth.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_depth() {
        let agg = ExecStats::new();
        agg.ops_executed.store(10, Ordering::Relaxed);
        agg.max_depth.store(7, Ordering::Relaxed);
        let run = ExecStats::new();
        run.ops_executed.store(5, Ordering::Relaxed);
        run.frames_spawned.store(3, Ordering::Relaxed);
        run.max_depth.store(4, Ordering::Relaxed);
        run.cancelled_tasks.store(99, Ordering::Relaxed);
        agg.absorb(&run);
        assert_eq!(agg.ops_executed.load(Ordering::Relaxed), 15);
        assert_eq!(agg.frames_spawned.load(Ordering::Relaxed), 3);
        assert_eq!(agg.max_depth.load(Ordering::Relaxed), 7, "max, not sum");
        assert_eq!(
            agg.cancelled_tasks.load(Ordering::Relaxed),
            0,
            "cancelled tasks are counted at the increment site, not folded"
        );
        let deeper = ExecStats::new();
        deeper.max_depth.store(20, Ordering::Relaxed);
        agg.absorb(&deeper);
        assert_eq!(agg.max_depth.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn profiling_accumulates() {
        let s = ExecStats::new();
        s.record_kernel("MatMul", Duration::from_micros(5)); // ignored: off
        assert!(s.kernel_profile().is_empty());
        s.enable_profiling();
        s.record_kernel("MatMul", Duration::from_micros(5));
        s.record_kernel("MatMul", Duration::from_micros(7));
        let p = s.kernel_profile();
        assert_eq!(p["MatMul"].1, 2);
        assert_eq!(p["MatMul"].0, Duration::from_micros(12));
    }
}
