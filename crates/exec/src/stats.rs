//! Executor statistics: cheap atomic counters plus optional kernel profiling.
//!
//! The same [`ExecStats`] struct serves two roles:
//!
//! * **per-run** — every submitted run owns a private instance that its
//!   frames increment on the hot path; `RunHandle::stats` exposes it, so
//!   concurrent runs never smear into each other's numbers;
//! * **executor-lifetime aggregate** — when a run completes, its counters
//!   are folded into the executor's instance via [`ExecStats::absorb`]
//!   (`max_depth` folds as a max, everything else as a sum), so
//!   `Executor::stats` keeps reporting lifetime totals.
//!
//! Folding is **delta-based**: `absorb` returns a [`StatsSnapshot`] of the
//! values it folded, and [`ExecStats::absorb_since`] later folds only what
//! accumulated past a snapshot. The executor uses this to fold a failed or
//! cancelled run's *straggler* increments (tasks still draining after the
//! run reported its error) into the lifetime aggregate exactly once, at
//! final frame teardown — no straggler is lost and none is double-counted.
//!
//! Kernel profiling stays on the executor-lifetime instance only: it is a
//! calibration tool, not a per-run metric.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A plain-value copy of every [`ExecStats`] counter at one instant.
///
/// Produced by [`ExecStats::snapshot`] / [`ExecStats::absorb`]; consumed by
/// [`ExecStats::absorb_since`] as the "already folded" baseline so late
/// straggler increments fold into the lifetime aggregate without double
/// counting what the completion-time absorb already took.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Operations executed.
    pub ops_executed: u64,
    /// Frames spawned.
    pub frames_spawned: u64,
    /// Deepest frame depth observed.
    pub max_depth: u64,
    /// Backprop cache writes.
    pub cache_writes: u64,
    /// Backprop cache reads.
    pub cache_reads: u64,
    /// In-place buffer reuses.
    pub inplace_updates: u64,
    /// Tasks dropped because their run was cancelled.
    pub cancelled_tasks: u64,
    /// Prelude-published nodes.
    pub prelude_published: u64,
    /// Call continuations executed.
    pub continuations: u64,
    /// Kernel tasks whose graph node was batchable (fusion-eligible).
    pub fusable_seen: u64,
    /// Kernel tasks executed through a fused (stacked) kernel call.
    pub fused_tasks: u64,
    /// Fused kernel calls issued (each covers ≥2 member tasks).
    pub fused_groups: u64,
}

/// Counters describing one run's activity, or — as the fold of all
/// completed runs — one executor's lifetime activity (see module docs).
#[derive(Default)]
pub struct ExecStats {
    /// Operations executed (kernels, including structural ops).
    pub ops_executed: AtomicU64,
    /// Frames spawned (InvokeOp and Cond branch activations).
    pub frames_spawned: AtomicU64,
    /// Deepest frame depth observed.
    pub max_depth: AtomicU64,
    /// Values written to the backprop cache.
    pub cache_writes: AtomicU64,
    /// Values read from the backprop cache.
    pub cache_reads: AtomicU64,
    /// In-place buffer reuses observed by copy-on-write kernels.
    pub inplace_updates: AtomicU64,
    /// Tasks that were dropped because the run was cancelled by an error.
    pub cancelled_tasks: AtomicU64,
    /// Nodes resolved inline at frame spawn (`Input`/`Const` prelude).
    pub prelude_published: AtomicU64,
    /// Tasks executed as call continuations, bypassing the ready queue.
    pub continuations: AtomicU64,
    /// Kernel tasks whose graph node was batchable (`ExecutionPlan::fuse`),
    /// whether or not a fusion partner was available. The denominator of
    /// the fused fraction.
    pub fusable_seen: AtomicU64,
    /// Kernel tasks that executed through a fused (stacked) kernel call
    /// instead of the scalar path. The numerator of the fused fraction.
    pub fused_tasks: AtomicU64,
    /// Fused kernel calls issued; each one covered ≥2 member tasks.
    pub fused_groups: AtomicU64,
    /// Optional per-op-kind wall time, enabled by [`ExecStats::enable_profiling`].
    profile: Mutex<Option<HashMap<&'static str, (Duration, u64)>>>,
    profile_on: std::sync::atomic::AtomicBool,
}

impl ExecStats {
    /// Creates zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns on per-op-kind timing (used to calibrate the virtual-time
    /// executor; adds a mutex acquisition per op, so keep it off for
    /// benchmark runs).
    pub fn enable_profiling(&self) {
        *self.profile.lock() = Some(HashMap::new());
        self.profile_on.store(true, Ordering::Release);
    }

    /// Whether profiling is enabled (single atomic load; hot path safe).
    pub fn profiling(&self) -> bool {
        self.profile_on.load(Ordering::Acquire)
    }

    /// Records one kernel execution time.
    pub fn record_kernel(&self, op: &'static str, d: Duration) {
        if let Some(map) = self.profile.lock().as_mut() {
            let e = map.entry(op).or_insert((Duration::ZERO, 0));
            e.0 += d;
            e.1 += 1;
        }
    }

    /// Snapshot of per-op-kind `(total time, count)`.
    pub fn kernel_profile(&self) -> HashMap<&'static str, (Duration, u64)> {
        self.profile.lock().clone().unwrap_or_default()
    }

    /// Raises `max_depth` to at least `d`.
    pub fn observe_depth(&self, d: u64) {
        self.max_depth.fetch_max(d, Ordering::Relaxed);
    }

    /// Reads every counter into a plain-value [`StatsSnapshot`].
    pub fn snapshot(&self) -> StatsSnapshot {
        // Exhaustive destructuring: adding a counter to ExecStats without
        // deciding how it folds is a compile error, not a silent zero in
        // the lifetime aggregate.
        let ExecStats {
            ops_executed,
            frames_spawned,
            max_depth,
            cache_writes,
            cache_reads,
            inplace_updates,
            cancelled_tasks,
            prelude_published,
            continuations,
            fusable_seen,
            fused_tasks,
            fused_groups,
            profile: _,    // profiling is executor-lifetime only
            profile_on: _, // profiling is executor-lifetime only
        } = self;
        StatsSnapshot {
            ops_executed: ops_executed.load(Ordering::Relaxed),
            frames_spawned: frames_spawned.load(Ordering::Relaxed),
            max_depth: max_depth.load(Ordering::Relaxed),
            cache_writes: cache_writes.load(Ordering::Relaxed),
            cache_reads: cache_reads.load(Ordering::Relaxed),
            inplace_updates: inplace_updates.load(Ordering::Relaxed),
            cancelled_tasks: cancelled_tasks.load(Ordering::Relaxed),
            prelude_published: prelude_published.load(Ordering::Relaxed),
            continuations: continuations.load(Ordering::Relaxed),
            fusable_seen: fusable_seen.load(Ordering::Relaxed),
            fused_tasks: fused_tasks.load(Ordering::Relaxed),
            fused_groups: fused_groups.load(Ordering::Relaxed),
        }
    }

    /// Folds a completed run's counters into this (lifetime) instance:
    /// `max_depth` as a max, every other counter (including
    /// `cancelled_tasks`) as a sum. Returns the snapshot of what was
    /// folded, for a later [`ExecStats::absorb_since`] straggler fold.
    pub fn absorb(&self, run: &ExecStats) -> StatsSnapshot {
        self.absorb_since(run, &StatsSnapshot::default())
    }

    /// Folds only what `run` accumulated *past* `base` into this (lifetime)
    /// instance and returns the new snapshot. This is how straggler
    /// increments — tasks of a failed/cancelled run that drain after the
    /// run already absorbed its counters — reach the aggregate exactly
    /// once, at final frame teardown.
    pub fn absorb_since(&self, run: &ExecStats, base: &StatsSnapshot) -> StatsSnapshot {
        let now = run.snapshot();
        let pairs = [
            (&self.ops_executed, now.ops_executed - base.ops_executed),
            (
                &self.frames_spawned,
                now.frames_spawned - base.frames_spawned,
            ),
            (&self.cache_writes, now.cache_writes - base.cache_writes),
            (&self.cache_reads, now.cache_reads - base.cache_reads),
            (
                &self.inplace_updates,
                now.inplace_updates - base.inplace_updates,
            ),
            (
                &self.cancelled_tasks,
                now.cancelled_tasks - base.cancelled_tasks,
            ),
            (
                &self.prelude_published,
                now.prelude_published - base.prelude_published,
            ),
            (&self.continuations, now.continuations - base.continuations),
            (&self.fusable_seen, now.fusable_seen - base.fusable_seen),
            (&self.fused_tasks, now.fused_tasks - base.fused_tasks),
            (&self.fused_groups, now.fused_groups - base.fused_groups),
        ];
        for (into, delta) in pairs {
            if delta != 0 {
                into.fetch_add(delta, Ordering::Relaxed);
            }
        }
        self.max_depth.fetch_max(now.max_depth, Ordering::Relaxed);
        now
    }

    /// Human-readable one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "ops={} frames={} max_depth={} cache_w={} cache_r={} inplace={} prelude={} conts={} \
             fusable={} fused={} groups={}",
            self.ops_executed.load(Ordering::Relaxed),
            self.frames_spawned.load(Ordering::Relaxed),
            self.max_depth.load(Ordering::Relaxed),
            self.cache_writes.load(Ordering::Relaxed),
            self.cache_reads.load(Ordering::Relaxed),
            self.inplace_updates.load(Ordering::Relaxed),
            self.prelude_published.load(Ordering::Relaxed),
            self.continuations.load(Ordering::Relaxed),
            self.fusable_seen.load(Ordering::Relaxed),
            self.fused_tasks.load(Ordering::Relaxed),
            self.fused_groups.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = ExecStats::new();
        assert_eq!(s.ops_executed.load(Ordering::Relaxed), 0);
        assert!(s.summary().contains("ops=0"));
    }

    #[test]
    fn depth_is_monotonic_max() {
        let s = ExecStats::new();
        s.observe_depth(5);
        s.observe_depth(3);
        assert_eq!(s.max_depth.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_depth() {
        let agg = ExecStats::new();
        agg.ops_executed.store(10, Ordering::Relaxed);
        agg.max_depth.store(7, Ordering::Relaxed);
        let run = ExecStats::new();
        run.ops_executed.store(5, Ordering::Relaxed);
        run.frames_spawned.store(3, Ordering::Relaxed);
        run.max_depth.store(4, Ordering::Relaxed);
        run.cancelled_tasks.store(99, Ordering::Relaxed);
        agg.absorb(&run);
        assert_eq!(agg.ops_executed.load(Ordering::Relaxed), 15);
        assert_eq!(agg.frames_spawned.load(Ordering::Relaxed), 3);
        assert_eq!(agg.max_depth.load(Ordering::Relaxed), 7, "max, not sum");
        assert_eq!(
            agg.cancelled_tasks.load(Ordering::Relaxed),
            99,
            "cancelled tasks fold as a sum like every other counter"
        );
        let deeper = ExecStats::new();
        deeper.max_depth.store(20, Ordering::Relaxed);
        agg.absorb(&deeper);
        assert_eq!(agg.max_depth.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn absorb_since_folds_only_the_delta() {
        let agg = ExecStats::new();
        let run = ExecStats::new();
        run.ops_executed.store(5, Ordering::Relaxed);
        run.cancelled_tasks.store(2, Ordering::Relaxed);
        let snap = agg.absorb(&run);
        assert_eq!(agg.ops_executed.load(Ordering::Relaxed), 5);
        assert_eq!(agg.cancelled_tasks.load(Ordering::Relaxed), 2);
        // Stragglers trickle in after the completion-time absorb...
        run.ops_executed.store(6, Ordering::Relaxed);
        run.cancelled_tasks.store(7, Ordering::Relaxed);
        // ...and only the delta past the snapshot is folded.
        agg.absorb_since(&run, &snap);
        assert_eq!(agg.ops_executed.load(Ordering::Relaxed), 6);
        assert_eq!(agg.cancelled_tasks.load(Ordering::Relaxed), 7);
        // A no-change fold is a no-op (idempotent on the same snapshot).
        let snap2 = run.snapshot();
        agg.absorb_since(&run, &snap2);
        assert_eq!(agg.ops_executed.load(Ordering::Relaxed), 6);
        assert_eq!(agg.cancelled_tasks.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn profiling_accumulates() {
        let s = ExecStats::new();
        s.record_kernel("MatMul", Duration::from_micros(5)); // ignored: off
        assert!(s.kernel_profile().is_empty());
        s.enable_profiling();
        s.record_kernel("MatMul", Duration::from_micros(5));
        s.record_kernel("MatMul", Duration::from_micros(7));
        let p = s.kernel_profile();
        assert_eq!(p["MatMul"].1, 2);
        assert_eq!(p["MatMul"].0, Duration::from_micros(12));
    }
}
