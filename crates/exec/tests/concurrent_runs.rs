//! The multi-run runtime: concurrent root frames on one worker pool.
//!
//! Covers the `Executor::submit` / `RunHandle` surface, per-run statistics
//! isolation, cancellation, per-request error isolation in
//! `Session::run_many`, and a stress test hammering one session from eight
//! OS threads at once.

use rdg_exec::{ExecError, Executor, Session};
use rdg_graph::{Module, ModuleBuilder};
use rdg_tensor::{DType, Tensor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `sum(n) = n == 0 ? 0 : n + sum(n-1)`, with `n` fed as a main input —
/// every run of the same session can request a different depth.
fn sum_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("sum", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                let rec = b.invoke(&h, &[m])?[0];
                b.iadd(n, rec)
            },
            |b| b.identity(zero),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let n = mb.main_input(DType::I32);
    let out = mb.invoke(&h, &[n]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    mb.finish().unwrap()
}

fn gauss(n: i32) -> i32 {
    n * (n + 1) / 2
}

#[test]
fn submitted_runs_execute_concurrently_and_deliver_independent_results() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let handles: Vec<_> = (0..16)
        .map(|i| s.submit_run(vec![Tensor::scalar_i32(i)]).unwrap())
        .collect();
    // Join in reverse submission order: completion order must not matter.
    for (i, h) in handles.into_iter().enumerate().rev() {
        let out = h.wait().unwrap();
        assert_eq!(out[0].as_i32_scalar().unwrap(), gauss(i as i32));
    }
}

#[test]
fn run_many_returns_positional_results() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let feeds: Vec<Vec<Tensor>> = (0..10).map(|i| vec![Tensor::scalar_i32(i)]).collect();
    let results = s.run_many(feeds);
    assert_eq!(results.len(), 10);
    for (i, r) in results.into_iter().enumerate() {
        assert_eq!(r.unwrap()[0].as_i32_scalar().unwrap(), gauss(i as i32));
    }
}

#[test]
fn run_many_isolates_per_request_errors() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let feeds = vec![
        vec![Tensor::scalar_i32(4)],
        vec![Tensor::scalar_f32(1.0)], // wrong dtype: this request only
        vec![Tensor::scalar_i32(6)],
        vec![], // missing feed: this request only
    ];
    let results = s.run_many(feeds);
    assert_eq!(results[0].as_ref().unwrap()[0].as_i32_scalar().unwrap(), 10);
    assert!(matches!(results[1], Err(ExecError::BadFeed { .. })));
    assert_eq!(results[2].as_ref().unwrap()[0].as_i32_scalar().unwrap(), 21);
    assert!(matches!(results[3], Err(ExecError::BadFeed { .. })));
}

#[test]
fn per_run_stats_do_not_smear_across_concurrent_runs() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let shallow = s.submit_run(vec![Tensor::scalar_i32(3)]).unwrap();
    let deep = s.submit_run(vec![Tensor::scalar_i32(300)]).unwrap();
    let shallow_stats = Arc::clone(shallow.stats());
    let deep_stats = Arc::clone(deep.stats());
    shallow.wait().unwrap();
    deep.wait().unwrap();
    // Each handle reports only its own run: the shallow run's max depth
    // must not have been inflated by the concurrent deep run.
    let sd = shallow_stats.max_depth.load(Ordering::Relaxed);
    let dd = deep_stats.max_depth.load(Ordering::Relaxed);
    assert!(sd >= 3 && sd < 20, "shallow run depth stays shallow: {sd}");
    assert!(dd >= 300, "deep run observed its own depth: {dd}");
    let sf = shallow_stats.frames_spawned.load(Ordering::Relaxed);
    let df = deep_stats.frames_spawned.load(Ordering::Relaxed);
    // Executor-lifetime aggregate has absorbed both runs.
    let agg = s.executor().stats();
    assert!(agg.max_depth.load(Ordering::Relaxed) >= 300);
    assert!(agg.frames_spawned.load(Ordering::Relaxed) >= sf + df);
}

#[test]
fn run_handle_outlives_its_session_and_executor() {
    // The handle keeps the worker pool alive: dropping the session (and
    // with it the last user-held Arc<Executor>) while the run is in flight
    // must not strand wait() on a channel nobody will ever write to.
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let h = s.submit_run(vec![Tensor::scalar_i32(1000)]).unwrap();
    drop(s);
    assert_eq!(h.wait().unwrap()[0].as_i32_scalar().unwrap(), gauss(1000));
}

#[test]
fn cancel_aborts_a_deep_run() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let h = s.submit_run(vec![Tensor::scalar_i32(2_000_000)]).unwrap();
    h.cancel();
    match h.wait() {
        Err(ExecError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // The pool must still be healthy for later runs.
    let out = s.run(vec![Tensor::scalar_i32(5)]).unwrap();
    assert_eq!(out[0].as_i32_scalar().unwrap(), 15);
}

#[test]
fn cancel_after_completion_keeps_the_result() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let h = s.submit_run(vec![Tensor::scalar_i32(4)]).unwrap();
    while !h.is_finished() {
        std::thread::yield_now();
    }
    h.cancel();
    assert_eq!(h.wait().unwrap()[0].as_i32_scalar().unwrap(), 10);
}

#[test]
fn straggler_stats_fold_into_lifetime_aggregate_at_teardown() {
    // A cancelled run's stray tasks drain *after* the run has reported its
    // error (and absorbed its counters). Every straggler increment —
    // `cancelled_tasks` included — must still reach the executor-lifetime
    // aggregate, folded exactly once at final frame teardown.
    let exec = Executor::with_threads(2);
    let s = Session::new(Arc::clone(&exec), sum_module()).unwrap();
    let h = s.submit_run(vec![Tensor::scalar_i32(2_000_000)]).unwrap();
    let run_stats = Arc::clone(h.stats());
    // Let the run actually get going before cancelling it.
    while run_stats.frames_spawned.load(Ordering::Relaxed) < 100 {
        std::thread::yield_now();
    }
    h.cancel();
    match h.wait() {
        Err(ExecError::Cancelled) => {}
        other => panic!("expected Cancelled, got {other:?}"),
    }
    // `wait` consumed the handle; once the stragglers have drained, the
    // runtime's last holder of the per-run stats (the run context) is
    // gone and the teardown fold has run.
    let deadline = Instant::now() + Duration::from_secs(30);
    while Arc::strong_count(&run_stats) > 1 {
        assert!(
            Instant::now() < deadline,
            "stragglers never drained: {}",
            run_stats.summary()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let run = run_stats.snapshot();
    let agg = exec.stats().snapshot();
    assert!(
        run.cancelled_tasks > 0,
        "cancelling a deep in-flight run must drop at least one task"
    );
    // This executor ran exactly one run, so the lifetime aggregate must
    // equal the run's final counters — nothing lost, nothing double
    // counted (the old code either dropped stragglers or counted
    // cancellations on both sinks).
    assert_eq!(agg.cancelled_tasks, run.cancelled_tasks);
    assert_eq!(agg.ops_executed, run.ops_executed);
    assert_eq!(agg.frames_spawned, run.frames_spawned);
    assert_eq!(agg.continuations, run.continuations);
    assert_eq!(agg.max_depth, run.max_depth);
}

#[test]
fn successful_runs_fold_before_wait_returns() {
    // The completion-time absorb must still be visible immediately after
    // wait() — the teardown fold is a late-straggler catch-up, not a
    // replacement for prompt folding.
    let exec = Executor::with_threads(2);
    let s = Session::new(Arc::clone(&exec), sum_module()).unwrap();
    s.run(vec![Tensor::scalar_i32(50)]).unwrap();
    let agg = exec.stats().snapshot();
    assert!(agg.frames_spawned > 50);
    assert_eq!(agg.cancelled_tasks, 0);
}

#[test]
fn overlapping_training_steps_are_rejected_across_threads() {
    // Thread A runs a long clearing training step; the main thread's
    // clearing calls must bounce with TrainingOverlap while A is inside,
    // and succeed again after A returns. (The deterministic single-thread
    // variant lives in the session unit tests; this exercises the real
    // two-thread race.) No sleeps: both sides retry, so the test cannot
    // depend on who gets scheduled first — the main thread attempts in a
    // tight loop (µs per attempt) against A's ~1s-deep step, and A
    // retries the claim if one of those attempts briefly held the token.
    let s = Arc::new(Session::new(Executor::with_threads(2), sum_module()).unwrap());
    let done = Arc::new(AtomicBool::new(false));
    let trainer = {
        let s = Arc::clone(&s);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            // Deep enough to stay in flight for ~1s on this container.
            let r = loop {
                match s.run_training(vec![Tensor::scalar_i32(200_000)]) {
                    Err(ExecError::TrainingOverlap) => continue, // main holds it; retry
                    r => break r,
                }
            };
            done.store(true, Ordering::Release);
            r
        })
    };
    let mut saw_overlap = false;
    while !saw_overlap {
        match s.run_training(vec![Tensor::scalar_i32(1)]) {
            Err(ExecError::TrainingOverlap) => saw_overlap = true,
            Ok(_) => {
                // A has not claimed the token yet (or we raced ahead of
                // it). If A already finished without us ever overlapping,
                // the ~1s step never collided with µs-scale attempts —
                // that cannot happen unless the guard is broken.
                assert!(
                    !done.load(Ordering::Acquire),
                    "deep training step finished without a single overlap"
                );
                // Sleep with the token *free* so the trainer thread gets a
                // scheduling slot to claim it (on one core, back-to-back
                // attempts could otherwise starve its compare_exchange).
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    // The batch entry point bounces identically while A is inside.
    match s.run_training_batch(vec![vec![Tensor::scalar_i32(1)]]) {
        Err(ExecError::TrainingOverlap) => {}
        // A may have finished in the meantime; then the call legitimately
        // succeeds — the overlap rejection itself was proven above.
        Ok(_) => assert!(done.load(Ordering::Acquire)),
        Err(other) => panic!("unexpected error: {other}"),
    }
    // Inference is unrestricted while (or after) the step runs.
    let out = s.run(vec![Tensor::scalar_i32(4)]).unwrap();
    assert_eq!(out[0].as_i32_scalar().unwrap(), gauss(4));
    trainer.join().unwrap().unwrap();
    // Step finished: the token is free again.
    s.run_training(vec![Tensor::scalar_i32(5)]).unwrap();
}

#[test]
fn eight_threads_hammer_one_session() {
    // The satellite stress test: one shared session, eight OS threads, a
    // mix of blocking runs and concurrent submissions, exact results
    // demanded everywhere.
    let s = Arc::new(Session::new(Executor::with_threads(2), sum_module()).unwrap());
    let mut handles = Vec::new();
    for t in 0..8i32 {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            for i in 0..40i32 {
                let n = (t * 7 + i) % 60;
                if i % 3 == 0 {
                    // Blocking path.
                    let out = s.run(vec![Tensor::scalar_i32(n)]).unwrap();
                    assert_eq!(out[0].as_i32_scalar().unwrap(), gauss(n));
                } else {
                    // Concurrent batch path.
                    let feeds = vec![vec![Tensor::scalar_i32(n)], vec![Tensor::scalar_i32(n + 1)]];
                    let rs = s.run_many(feeds);
                    assert_eq!(
                        rs[0].as_ref().unwrap()[0].as_i32_scalar().unwrap(),
                        gauss(n)
                    );
                    assert_eq!(
                        rs[1].as_ref().unwrap()[0].as_i32_scalar().unwrap(),
                        gauss(n + 1)
                    );
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
