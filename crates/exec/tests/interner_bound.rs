//! Regression test for the `PathKey` interner leak on long-lived sessions.
//!
//! `PathKey::flush_interner` used to run only at serve-loop shutdown. A
//! long-lived [`Session`] doing bare `run`/`run_many` calls over
//! value-dependent control flow (every request descends a different
//! then/else branch sequence, so every request interns a fresh path
//! chain) grew the process-global interner without bound — nothing ever
//! retired the chains of completed runs.
//!
//! The fix is epoch-scoped: `PathKey::note_run_quiescent`, called from
//! the session's run-quiescent points (and periodically between serve
//! waves), flushes retired chains every few dozen runs. This test drives
//! 10 000 varied-shape runs through a binary-descent module — 14 levels
//! of value-dependent `Cond`s, so each distinct feed value takes a
//! distinct 28-site path — and pins the interner to a small bound at
//! checkpoints throughout. Before the fix the table grows monotonically
//! past 60 000 nodes on this workload.
//!
//! The interner is process-global, so this file holds exactly one test:
//! a sibling test's interleaved interning would make the bound flaky.

use rdg_exec::{Executor, PathKey, Session, SpecializeOptions};
use rdg_graph::{Module, ModuleBuilder};
use rdg_tensor::{DType, Tensor};
use std::sync::Arc;

/// Number of descent levels: feeds range over `[0, 2^LEVELS)` and each
/// value's bit string picks a unique branch sequence.
const LEVELS: usize = 14;

/// Binary descent: level `k` tests bit `LEVELS-1-k` of the running value
/// (via a threshold compare) and recurses into level `k+1` with either
/// the reduced value or the value unchanged. The base level returns the
/// remainder, so the module computes `n mod 1` = 0 — the *outputs* are
/// trivial, but the *path* each run takes through the call sites encodes
/// every bit of the input.
fn descent_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let handles: Vec<_> = (0..=LEVELS)
        .map(|k| mb.declare_subgraph(format!("level{k}"), &[DType::I32], &[DType::I32]))
        .collect();
    // Base level: return the (now fully reduced) value.
    mb.define_subgraph(&handles[LEVELS], |b| {
        let n = b.input(0)?;
        Ok(vec![b.identity(n)?])
    })
    .expect("define base");
    for k in (0..LEVELS).rev() {
        let next = handles[k + 1].clone();
        mb.define_subgraph(&handles[k], |b| {
            let n = b.input(0)?;
            let pow = 1i32 << (LEVELS - 1 - k);
            let thresh = b.const_i32(pow - 1);
            let p = b.igt(n, thresh)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| {
                    let pw = b.const_i32(pow);
                    let r = b.isub(n, pw)?;
                    Ok(b.invoke(&next, &[r])?[0])
                },
                |b| Ok(b.invoke(&next, &[n])?[0]),
            )?;
            Ok(vec![out])
        })
        .expect("define level");
    }
    let n = mb.main_input(DType::I32);
    let out = mb.invoke(&handles[0], &[n]).expect("invoke root")[0];
    mb.set_outputs(&[out]).expect("outputs");
    mb.finish().expect("finish")
}

#[test]
fn interner_stays_bounded_across_10k_varied_shape_runs() {
    // Start from a clean table so the bound is about *this* workload.
    PathKey::flush_interner();
    let baseline = PathKey::interner_len();

    let exec = Executor::with_threads(2);
    // Specialization off: this test pins the *general* frame path, where
    // every run walks real call sites and interns a real chain.
    let sess = Session::with_options(Arc::clone(&exec), descent_module(), {
        SpecializeOptions::disabled()
    })
    .expect("session");

    // Every run should intern nodes past what flushes reclaim between
    // checkpoints; this is the slack on top of the baseline. A leaking
    // interner blows through it within ~2 000 runs (16 384 distinct
    // values × ~28 nodes each ≈ 60 000+ nodes by run 10 000).
    const BOUND: usize = 6_000;
    for i in 0..10_000u64 {
        // Knuth-hash the run index so consecutive runs take wildly
        // different branch sequences (no prefix warm-up effects).
        let n = ((i.wrapping_mul(2_654_435_761)) % (1 << LEVELS)) as i32;
        let out = sess.run(vec![Tensor::scalar_i32(n)]).expect("run");
        let v = out[0].i32s().expect("i32 output")[0];
        assert_eq!(v, 0, "descent fully reduces the value");
        if i % 500 == 499 {
            let len = PathKey::interner_len();
            assert!(
                len <= baseline + BOUND,
                "run {i}: interner grew to {len} (baseline {baseline}) — \
                 epoch flush is not reclaiming retired path chains"
            );
        }
    }
}
