//! Regression coverage for the epoch-scoped `PathKey` interner flush.
//!
//! Long-lived services over varied-shape inputs (every request a new tree
//! shape) used to grow the process-global interner without bound. These
//! tests pin the reclamation contract of `PathKey::flush_interner`:
//!
//! 1. **Boundedness** — a service loop that interns fresh shapes each
//!    epoch and flushes between epochs holds the table at a constant
//!    size instead of accumulating the union of all shapes ever seen.
//! 2. **Stack safety** — flushing a retired 20 000-deep chain cascades on
//!    a worklist, not the call stack.
//! 3. **Liveness** — keys held anywhere outside the interner, and every
//!    ancestor on their spine, survive a flush untouched (still
//!    pointer-canonical for re-derivations).
//!
//! The interner is process-global and this binary's tests run on
//! parallel threads, so each test takes `FLUSH_LOCK` to keep one test's
//! flush from reclaiming another's intentionally retired nodes
//! mid-assertion. Site numbers are disjoint per test for the same reason.

use rdg_exec::PathKey;
use rdg_graph::CallSiteId;
use std::sync::Mutex;

static FLUSH_LOCK: Mutex<()> = Mutex::new(());

fn build(sites: impl IntoIterator<Item = u32>) -> PathKey {
    let mut p = PathKey::root();
    for s in sites {
        p = p.child(CallSiteId(s));
    }
    p
}

/// A long-lived service over varied-shape inputs: every epoch interns
/// fresh chains (new shapes), retires them, and flushes. The table must
/// return to its pre-epoch size each time instead of growing by the
/// union of all shapes ever observed.
#[test]
fn flush_bounds_long_lived_service() {
    let _g = FLUSH_LOCK.lock().unwrap();
    // Settle a baseline: whatever other tests interned so far, minus
    // anything already retired.
    PathKey::flush_interner();
    let baseline = PathKey::interner_len();
    for epoch in 0..10u32 {
        let keys: Vec<PathKey> = (0..200u32)
            .map(|i| {
                // Unique shape per (epoch, request): a short chain whose
                // sites no other epoch reuses.
                let b = 10_000 + epoch * 2_000 + i * 8;
                build([b, b + 1, b + 2, b + 3])
            })
            .collect();
        assert!(
            PathKey::interner_len() >= baseline + 200 * 4,
            "epoch {epoch} should have interned fresh chains"
        );
        drop(keys);
        let flushed = PathKey::flush_interner();
        assert!(
            flushed >= 200 * 4,
            "epoch {epoch} flush reclaimed only {flushed} nodes"
        );
        assert_eq!(
            PathKey::interner_len(),
            baseline,
            "epoch {epoch} leaked interned nodes past the flush"
        );
    }
}

/// Flushing a retired deep chain must cascade iteratively: 20 000 nodes
/// (the depth the executor's tail-recursion test reaches) reclaimed
/// without recursing down the parent spine.
#[test]
fn flush_deep_chain_is_stack_safe() {
    let _g = FLUSH_LOCK.lock().unwrap();
    const DEPTH: u32 = 20_000;
    let before = PathKey::interner_len();
    let p = build((0..DEPTH).map(|i| 40_000_000 + i));
    assert_eq!(p.len(), DEPTH);
    assert_eq!(PathKey::interner_len(), before + DEPTH as usize);
    drop(p);
    // Only the leaf is externally unreferenced at sweep time; the other
    // 19 999 nodes are reached by the worklist cascade. A recursive
    // teardown would overflow the stack here.
    let flushed = PathKey::flush_interner();
    assert!(
        flushed >= DEPTH as usize,
        "deep-chain flush reclaimed only {flushed} of {DEPTH} nodes"
    );
    assert_eq!(PathKey::interner_len(), before);
}

/// Live keys pin their whole spine across a flush, and stay canonical:
/// re-deriving a surviving path finds the same interned node, while a
/// retired sibling branch is reclaimed and re-interns fresh.
#[test]
fn flush_preserves_live_spines() {
    let _g = FLUSH_LOCK.lock().unwrap();
    let prefix = build([60_000_000, 60_000_001]);
    let live = prefix.child(CallSiteId(60_000_010));
    let retired = prefix
        .child(CallSiteId(60_000_020))
        .child(CallSiteId(60_000_021));
    let len_full = PathKey::interner_len();
    drop(retired);
    let flushed = PathKey::flush_interner();
    assert!(flushed >= 2, "retired branch should be reclaimed");
    // The live leaf and its two-ancestor spine survive…
    let rebuilt = build([60_000_000, 60_000_001, 60_000_010]);
    assert!(
        rebuilt.ptr_eq(&live),
        "live spine must stay pointer-canonical across a flush"
    );
    // …and the retired branch really left the table.
    assert!(PathKey::interner_len() < len_full);
    // Re-interning the retired shape works and is structurally equal to
    // what the old key would have been (fresh node, same path).
    let again = prefix
        .child(CallSiteId(60_000_020))
        .child(CallSiteId(60_000_021));
    assert_eq!(again.sites().last(), Some(&CallSiteId(60_000_021)));
}

/// An empty flush (everything live or already reclaimed) is a no-op.
#[test]
fn flush_is_idempotent() {
    let _g = FLUSH_LOCK.lock().unwrap();
    let keep = build([70_000_000, 70_000_001, 70_000_002]);
    PathKey::flush_interner();
    let len = PathKey::interner_len();
    assert_eq!(PathKey::flush_interner(), 0);
    assert_eq!(PathKey::interner_len(), len);
    drop(keep);
}
