//! Property-based coverage for `PathKey` hash-consing invariants.
//!
//! The executor and the backprop cache both lean on three properties of the
//! interner:
//!
//! 1. **Equality ⇔ pointer equality** — two paths built from the same site
//!    sequence share the same interned node (and conversely, pointer-equal
//!    paths are trivially equal). This is what makes backward-pass cache
//!    probes a pointer compare.
//! 2. **Hash stability** — a path's hash is a pure function of its site
//!    sequence, so keys built independently (forward vs. backward pass)
//!    collide onto the same cache shard and bucket.
//! 3. **Deep-recursion keys** — thousand-site chains behave like shallow
//!    ones: no stack overflow on construction, drop, or comparison, and
//!    prefix sharing keeps re-derivation cheap.

use proptest::prelude::*;
use rdg_exec::PathKey;
use rdg_graph::CallSiteId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn build(sites: &[u32]) -> PathKey {
    let mut p = PathKey::root();
    for &s in sites {
        p = p.child(CallSiteId(s));
    }
    p
}

fn std_hash(p: &PathKey) -> u64 {
    let mut h = DefaultHasher::new();
    p.hash(&mut h);
    h.finish()
}

proptest! {
    /// Rebuilding any site sequence yields the same interned node:
    /// equality, pointer equality, and both hash views all agree.
    #[test]
    fn equality_is_pointer_equality(sites in prop::collection::vec(0u32..50, 0..24)) {
        let a = build(&sites);
        let b = build(&sites);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.ptr_eq(&b), "equal paths must share the interned node");
        prop_assert_eq!(a.hash_value(), b.hash_value());
        prop_assert_eq!(std_hash(&a), std_hash(&b));
        prop_assert_eq!(a.len() as usize, sites.len());
    }

    /// Distinct site sequences produce unequal, non-pointer-equal keys
    /// with (overwhelmingly) different hashes.
    #[test]
    fn distinct_sequences_differ(
        (a, b) in (
            prop::collection::vec(0u32..50, 0..16),
            prop::collection::vec(0u32..50, 0..16),
        )
    ) {
        if a == b {
            return; // the shim has no prop_assume; skip colliding draws
        }
        let ka = build(&a);
        let kb = build(&b);
        prop_assert_ne!(&ka, &kb);
        prop_assert!(!ka.ptr_eq(&kb));
    }

    /// A clone is indistinguishable from the original, and extending a
    /// shared prefix in two orders keeps the prefix node shared while the
    /// leaves differ.
    #[test]
    fn prefix_sharing_holds(
        (prefix, x, y) in (prop::collection::vec(0u32..50, 1..12), 0u32..50, 50u32..100)
    ) {
        let p = build(&prefix);
        prop_assert!(p.clone().ptr_eq(&p));
        let px = p.child(CallSiteId(x));
        let py = p.child(CallSiteId(y));
        prop_assert_ne!(&px, &py);
        // Both children were built from the same interned parent, so
        // rebuilding either from scratch finds the same node again.
        let rebuilt = build(&prefix).child(CallSiteId(x));
        prop_assert!(rebuilt.ptr_eq(&px));
    }

    /// The precomputed hash equals a fresh structural recomputation —
    /// i.e. interning never changes the hash a non-interned chain would
    /// have had (the mixing formula is the contract).
    #[test]
    fn hash_matches_structural_recomputation(sites in prop::collection::vec(0u32..1000, 0..20)) {
        let k = build(&sites);
        let mut h: u64 = 0xcbf29ce484222325;
        for &s in &sites {
            h = h
                .wrapping_mul(0x100000001b3)
                .wrapping_add(0x9e3779b97f4a7c15 ^ (s as u64).wrapping_mul(0xff51afd7ed558ccd));
        }
        prop_assert_eq!(k.hash_value(), h);
    }
}

/// Deep-recursion keys: a 20 000-site chain (the depth the executor's
/// tail-recursion test reaches) builds, compares, and re-derives without
/// stack overflow, and the second derivation is fully shared.
#[test]
fn deep_recursion_keys_are_safe_and_shared() {
    const DEPTH: u32 = 20_000;
    let mut p = PathKey::root();
    for i in 0..DEPTH {
        p = p.child(CallSiteId(1_000_000 + (i % 7)));
    }
    assert_eq!(p.len(), DEPTH);
    let mut q = PathKey::root();
    for i in 0..DEPTH {
        q = q.child(CallSiteId(1_000_000 + (i % 7)));
    }
    assert_eq!(p, q);
    assert!(p.ptr_eq(&q), "deep re-derivation must hit the interner");
    // Dropping deep chains must not recurse: the interner keeps the spine.
    drop(p);
    drop(q);
    // The interner grew by at most DEPTH nodes for this chain.
    assert!(PathKey::interner_len() >= DEPTH as usize);
}

/// Sites round-trip through deep keys (leaf-to-root walk + reverse).
#[test]
fn deep_sites_round_trip() {
    let sites: Vec<u32> = (0..5_000).map(|i| 2_000_000 + i).collect();
    let p = build(&sites);
    let got: Vec<u32> = p.sites().iter().map(|s| s.0).collect();
    assert_eq!(got, sites);
}
