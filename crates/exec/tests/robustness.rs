//! Executor robustness: determinism, concurrency, error paths, scheduler
//! equivalence.

use rdg_exec::{Executor, SchedulerKind, Session};
use rdg_graph::{Module, ModuleBuilder};
use rdg_tensor::{DType, Tensor};
use std::sync::Arc;

/// A moderately parallel recursive module: sum over a binary tree of adds.
fn tree_sum_module(depth: i32) -> Module {
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("tree", &[DType::I32, DType::F32], &[DType::F32]);
    mb.define_subgraph(&h, |b| {
        let d = b.input(0)?;
        let x = b.input(1)?;
        let zero = b.const_i32(0);
        let p = b.igt(d, zero)?;
        let out = b.cond1(
            p,
            DType::F32,
            |b| {
                let one = b.const_i32(1);
                let d2 = b.isub(d, one)?;
                let xl = b.scale(x, 0.4)?;
                let xr = b.scale(x, 0.6)?;
                let l = b.invoke(&h, &[d2, xl])?[0];
                let r = b.invoke(&h, &[d2, xr])?[0];
                b.add(l, r)
            },
            |b| b.tanh(x),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let d0 = mb.const_i32(depth);
    let x0 = mb.const_f32(1.0);
    let out = mb.invoke(&h, &[d0, x0]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    mb.finish().unwrap()
}

#[test]
fn repeated_runs_are_bitwise_deterministic() {
    // The dataflow is confluent: whatever order workers pick, the same
    // values must come out (floats included — no reduction reordering in
    // this graph).
    let s = Session::new(Executor::with_threads(2), tree_sum_module(8)).unwrap();
    let first = s.run(vec![]).unwrap()[0].as_f32_scalar().unwrap();
    for _ in 0..20 {
        let again = s.run(vec![]).unwrap()[0].as_f32_scalar().unwrap();
        assert_eq!(first.to_bits(), again.to_bits(), "nondeterministic result");
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let mut values = Vec::new();
    for threads in [1usize, 2, 4] {
        let s = Session::new(Executor::with_threads(threads), tree_sum_module(7)).unwrap();
        values.push(s.run(vec![]).unwrap()[0].as_f32_scalar().unwrap());
    }
    assert_eq!(values[0].to_bits(), values[1].to_bits());
    assert_eq!(values[1].to_bits(), values[2].to_bits());
}

#[test]
fn both_schedulers_compute_the_same_value() {
    let fifo = Session::new(Executor::new(2, SchedulerKind::Fifo), tree_sum_module(7)).unwrap();
    let prio = Session::new(
        Executor::new(2, SchedulerKind::DepthPriority),
        tree_sum_module(7),
    )
    .unwrap();
    let a = fifo.run(vec![]).unwrap()[0].as_f32_scalar().unwrap();
    let b = prio.run(vec![]).unwrap()[0].as_f32_scalar().unwrap();
    assert_eq!(a.to_bits(), b.to_bits());
}

#[test]
fn one_executor_serves_concurrent_sessions() {
    let exec = Executor::with_threads(2);
    let s1 = Arc::new(Session::new(Arc::clone(&exec), tree_sum_module(6)).unwrap());
    let s2 = Arc::new(Session::new(Arc::clone(&exec), tree_sum_module(9)).unwrap());
    let mut handles = Vec::new();
    for _ in 0..4 {
        let s1 = Arc::clone(&s1);
        let s2 = Arc::clone(&s2);
        handles.push(std::thread::spawn(move || {
            for _ in 0..5 {
                let a = s1.run(vec![]).unwrap()[0].as_f32_scalar().unwrap();
                let b = s2.run(vec![]).unwrap()[0].as_f32_scalar().unwrap();
                assert!(a.is_finite() && b.is_finite());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn error_deep_in_recursion_cancels_the_run_cleanly() {
    // countdown that divides by zero at the base case, 50 frames deep.
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("bad", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                Ok(b.invoke(&h, &[m])?[0])
            },
            |b| {
                let one = b.const_i32(1);
                let zero = b.const_i32(0);
                b.idiv(one, zero)
            },
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let s0 = mb.const_i32(50);
    let out = mb.invoke(&h, &[s0]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    let sess = Session::new(Executor::with_threads(2), mb.finish().unwrap()).unwrap();
    let err = sess.run(vec![]).unwrap_err();
    assert!(err.to_string().contains("division"), "{err}");
    // The executor must remain usable after a failed run.
    let ok = Session::new(sess.executor().clone(), tree_sum_module(3)).unwrap();
    assert!(ok.run(vec![]).is_ok());
}

#[test]
fn error_at_extreme_depth_does_not_overflow_on_teardown() {
    // Same failure shape, but 20 000 frames deep: cancelling the run drops
    // the whole ancestor chain from the leaf, which must tear down
    // iteratively (a recursive drop would overflow the worker stack long
    // before this depth).
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("bad_deep", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                Ok(b.invoke(&h, &[m])?[0])
            },
            |b| {
                let one = b.const_i32(1);
                let zero = b.const_i32(0);
                b.idiv(one, zero)
            },
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let s0 = mb.const_i32(20_000);
    let out = mb.invoke(&h, &[s0]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    let sess = Session::new(Executor::with_threads(2), mb.finish().unwrap()).unwrap();
    let err = sess.run(vec![]).unwrap_err();
    assert!(err.to_string().contains("division"), "{err}");
    // The executor survives and can run again at depth.
    let err2 = sess.run(vec![]).unwrap_err();
    assert!(err2.to_string().contains("division"), "{err2}");
}

#[test]
fn feeds_flow_through_recursion() {
    // Feed-driven recursion: depth comes from a main input.
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("count", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                let r = b.invoke(&h, &[m])?[0];
                b.iadd(r, one)
            },
            |b| b.identity(zero),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let input = mb.main_input(DType::I32);
    let out = mb.invoke(&h, &[input]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    let sess = Session::new(Executor::with_threads(2), mb.finish().unwrap()).unwrap();
    for n in [0i32, 1, 17, 100] {
        let out = sess.run(vec![Tensor::scalar_i32(n)]).unwrap();
        assert_eq!(out[0].as_i32_scalar().unwrap(), n);
    }
}

#[test]
fn training_mode_does_not_change_forward_values() {
    // With a cache and grad store attached (but no gradient nodes), outputs
    // must equal the inference run's.
    let m = tree_sum_module(6);
    let s = Session::new(Executor::with_threads(2), m).unwrap();
    let inf = s.run(vec![]).unwrap()[0].as_f32_scalar().unwrap();
    let trn = s.run_training(vec![]).unwrap()[0].as_f32_scalar().unwrap();
    assert_eq!(inf.to_bits(), trn.to_bits());
}
