//! Differential test: the live `ServeQueue` dispatcher versus the
//! `ScriptedServe` virtual-clock twin, on one deterministic scenario.
//!
//! The twin exists so scheduling decisions can be asserted exactly — but
//! that only means anything if the twin and the live dispatcher actually
//! make the *same* decisions from the same queue state. This test pins
//! that correspondence: one scenario (a blocker occupying the single
//! worker while ten mixed-class requests — plus two already-expired
//! SLO requests — pile up, then one drain wave) is run through real
//! threads with [`ServeConfig::record_dispatch`] on, and through the
//! scripted twin on the virtual clock, and the two dispatch logs — wave
//! targets, per-wave admission sequence numbers in pop order, *and*
//! pop-time shed decisions — must be identical.
//!
//! The SLO half uses zero-duration SLOs deliberately: `deadline = now`
//! is expired at any later pop on both clocks, so the eviction decision
//! is deterministic even though the live side runs on wall time (and
//! fixed sizing keeps the EWMA unset, so predictive admission shedding
//! stays inert on both sides — the shed must happen at pop, nowhere
//! else).
//!
//! The live side races wall time (the blocker must outlive our twelve
//! submits), so the scenario is retried a few times and skipped with a
//! note on hosts too fast to hold the race open — the *decision* logic
//! itself is still covered deterministically by the twin suites.
//!
//! A second, fused pin runs the identical scenario with cross-request
//! batch fusion enabled on both sides (the executor's dispatch-time fuser
//! live, the twin's `run_wave_grouped` group-formation model scripted)
//! and requires the *same* dispatch log: fusion is a property of kernel
//! execution within a wave and must never leak into scheduling decisions.

use rdg_exec::serve::test_support::{ScriptedAdmission, ScriptedServe};
use rdg_exec::{Executor, Priority, ServeConfig, ServeError, Session, WaveRecord, WaveSizing};
use rdg_graph::{Module, ModuleBuilder};
use rdg_tensor::{DType, Tensor};
use std::time::Duration;

/// `sum(n)` with `n` fed as a main input (the serving tests' fixture).
fn sum_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("sum", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                let rec = b.invoke(&h, &[m])?[0];
                b.iadd(n, rec)
            },
            |b| b.identity(zero),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let n = mb.main_input(DType::I32);
    let out = mb.invoke(&h, &[n]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    mb.finish().unwrap()
}

/// The scenario's class sequence for the ten queued requests (admission
/// sequence numbers 1..=10; seq 0 is the blocker).
const MIX: [Priority; 10] = [
    Priority::Batch,
    Priority::Interactive,
    Priority::BestEffort,
    Priority::Interactive,
    Priority::Batch,
    Priority::BestEffort,
    Priority::Interactive,
    Priority::Batch,
    Priority::Interactive,
    Priority::BestEffort,
];

fn config(fused: bool) -> ServeConfig {
    ServeConfig {
        capacity: 64,
        batch_multiple: 16,
        sizing: WaveSizing::Fixed,
        // An hour of aging step: no promotion can occur within the test,
        // so the pop order is pure strict priority + FIFO on both sides
        // regardless of how wall time maps to the virtual clock.
        aging_step: Duration::from_secs(3600),
        record_dispatch: true,
        // The fused-wave pin runs the identical scenario with the
        // executor's cross-request fuser on and off: the dispatch log
        // must not notice.
        cross_request_batching: fused,
        ..ServeConfig::default()
    }
}

/// The classes of the two already-expired SLO requests queued after the
/// mix (admission sequence numbers 11 and 12).
const SLO_MIX: [Priority; 2] = [Priority::Interactive, Priority::Batch];

/// The twin's dispatch log for the scenario, on the virtual clock. With
/// `fused`, every wave runs through the twin's group-formation model
/// (one shared fusion signature, groups of up to 4) instead of the scalar
/// schedule — the dispatch log must come out identical either way,
/// because grouping happens strictly after the pop.
fn scripted_log(fused: bool) -> Vec<WaveRecord> {
    let mut s = ScriptedServe::new(1, &config(fused));
    assert!(s.submit(Priority::Interactive, 0), "blocker admitted");
    let mut log = Vec::new();
    // Service times are irrelevant to the *order* here (one worker,
    // fixed waves, no aging) — any positive value works.
    let service = |_id: u64| 1_000_000u64;
    let mut wave = |s: &mut ScriptedServe| {
        if fused {
            s.run_wave_grouped(service, |_| Some(0u64), 4)
        } else {
            s.run_wave(service)
        }
    };
    let w = wave(&mut s).expect("blocker wave");
    log.push(WaveRecord {
        target: w.target,
        seqs: w.ids(),
        shed_seqs: w.evicted.iter().map(|e| e.id).collect(),
    });
    for (i, class) in MIX.iter().enumerate() {
        assert!(s.submit(*class, 1 + i as u64), "request {i} admitted");
    }
    for (i, class) in SLO_MIX.iter().enumerate() {
        // SLO 0: the deadline is `now`, expired at any later pop.
        assert_eq!(
            s.submit_deadline(*class, 11 + i as u64, 0),
            ScriptedAdmission::Admitted,
            "expired-SLO request {i} admitted (predictive shed inert \
             under fixed sizing)"
        );
    }
    let w = wave(&mut s).expect("drain wave");
    log.push(WaveRecord {
        target: w.target,
        seqs: w.ids(),
        shed_seqs: w.evicted.iter().map(|e| e.id).collect(),
    });
    assert!(wave(&mut s).is_none(), "two waves drain the scenario");
    log
}

/// One live attempt; `None` when the timing race didn't hold (the
/// blocker finished before the twelve requests were all queued).
fn live_log_attempt(fused: bool) -> Option<Vec<WaveRecord>> {
    let s = Session::new(Executor::with_threads(1), sum_module()).unwrap();
    let client = s.serve_with(config(fused));
    let blocker = client.submit(vec![Tensor::scalar_i32(60_000)]).unwrap();
    // Wait for the dispatcher to pop the blocker's wave: once `batches`
    // ticks, the first wave is closed and everything we submit next goes
    // to the second one — provided the blocker is still running then.
    while client.stats().batches < 1 {
        std::thread::yield_now();
    }
    let tickets: Vec<_> = MIX
        .iter()
        .map(|&class| {
            client
                .submit_with(class, vec![Tensor::scalar_i32(5)])
                .unwrap()
        })
        .collect();
    let shed_tickets: Vec<_> = SLO_MIX
        .iter()
        .map(|&class| {
            client
                .submit_slo_with(class, vec![Tensor::scalar_i32(5)], Duration::ZERO)
                .expect("zero-SLO request admits (lane has space, no EWMA yet)")
        })
        .collect();
    blocker.wait().unwrap();
    for t in tickets {
        t.wait().unwrap();
    }
    for t in shed_tickets {
        // The shed decision must also reach the ticket itself.
        assert!(
            matches!(t.wait(), Err(ServeError::Shed { .. })),
            "expired-SLO ticket resolves Shed"
        );
    }
    client.shutdown();
    let stats = client.stats();
    let log = client.dispatch_log();
    // The race held only if the blocker wave contained exactly the
    // blocker and one drain wave took all ten live plus both sheds.
    if log.len() == 2 && log[0].seqs == [0] && log[1].seqs.len() == MIX.len() {
        assert_eq!(
            stats.classes[Priority::Interactive.index()].shed,
            1,
            "one interactive pop-time shed"
        );
        assert_eq!(
            stats.classes[Priority::Batch.index()].shed,
            1,
            "one batch pop-time shed"
        );
        assert_eq!(stats.shed_inflight, 0, "no mid-service cancels here");
        assert_eq!(stats.shed_predicted, 0, "predictive shedding was inert");
        Some(log)
    } else {
        None
    }
}

#[test]
fn live_dispatcher_and_scripted_twin_agree_wave_for_wave() {
    let expected = scripted_log(false);
    // Sanity on the twin itself: fixed waves of 1 × 16, strict priority,
    // and both expired requests shed at pop in pop order.
    assert_eq!(
        expected[0],
        WaveRecord {
            target: 16,
            seqs: vec![0],
            shed_seqs: vec![],
        }
    );
    assert_eq!(expected[1].target, 16);
    assert_eq!(
        expected[1].seqs,
        vec![2, 4, 7, 9, 1, 5, 8, 3, 6, 10],
        "strict priority, FIFO within class, over the MIX pattern"
    );
    assert_eq!(
        expected[1].shed_seqs,
        vec![11, 12],
        "expired SLO requests evicted in pop order (interactive lane \
         first, then batch), consuming no wave slots"
    );
    for attempt in 0..5 {
        if let Some(live) = live_log_attempt(false) {
            assert_eq!(
                live, expected,
                "live dispatcher diverged from the scripted twin \
                 (attempt {attempt}): same queue state must produce the \
                 same wave targets, pop order, and shed decisions"
            );
            return;
        }
    }
    // Five misses means the blocker kept finishing before twelve tiny
    // submits — a host too fast for this race. The decision logic is
    // still asserted above and across the twin suites.
    eprintln!("host too fast to hold the blocker race open; skipping live half");
}

/// The fused-wave pin: cross-request batch fusion must be invisible to
/// admission and dispatch. The twin's group-formation model and the live
/// dispatcher with the executor's fuser enabled must both produce the
/// exact dispatch log of the scalar scenario — fusion reshapes kernel
/// execution inside a wave, never wave targets, pop order, or shed
/// decisions.
#[test]
fn fusion_does_not_perturb_the_dispatch_log() {
    let expected = scripted_log(false);
    assert_eq!(
        scripted_log(true),
        expected,
        "the twin's wave-granularity group formation changed a dispatch \
         decision: grouping must happen strictly after the pop"
    );
    for attempt in 0..5 {
        if let Some(live) = live_log_attempt(true) {
            assert_eq!(
                live, expected,
                "live dispatcher with cross-request batching on diverged \
                 from the scalar twin (attempt {attempt}): fusion must not \
                 change wave targets, pop order, or shed decisions"
            );
            return;
        }
    }
    eprintln!("host too fast to hold the blocker race open; skipping live half");
}
