//! Fuzzer self-tests: campaign determinism, oracle health on a live
//! search, and minimizer behavior.
//!
//! The iteration count honors `RDG_FUZZ_ITERS` (CI sets 200 for the
//! per-push smoke; the default here keeps local `cargo test` fast). The
//! campaign runs entirely on the virtual clock, so even hundreds of
//! iterations finish in well under a second.

use rdg_exec::serve::fuzz::{
    generate, minimize, mutate, replay, replay_fused, run_campaign, FuzzConfig, FuzzRng, Scenario,
};

fn smoke_iters() -> usize {
    std::env::var("RDG_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120)
}

#[test]
fn campaign_same_seed_same_everything() {
    let cfg = FuzzConfig {
        seed: 0xDEC0DE,
        iters: smoke_iters(),
        ..FuzzConfig::default()
    };
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(
        a.worst_p99_ns, b.worst_p99_ns,
        "worst p99 must be seed-determined"
    );
    assert_eq!(a.worst, b.worst, "worst scenario must be seed-determined");
    assert_eq!(
        a.improvements, b.improvements,
        "search trajectory must match"
    );
    assert_eq!(a.executed, b.executed, "replay count must match");
}

#[test]
fn campaign_oracles_hold_and_search_makes_progress() {
    let cfg = FuzzConfig {
        seed: 0xF4E7,
        iters: smoke_iters(),
        ..FuzzConfig::default()
    };
    let report = run_campaign(&cfg);
    assert!(
        report.violations.is_empty(),
        "serving oracle violated — minimized reproducers: {:#?}",
        report
            .violations
            .iter()
            .map(|v| format!("{}\n{}", v.detail, v.scenario.to_ron()))
            .collect::<Vec<_>>()
    );
    assert!(
        report.worst_p99_ns > 0,
        "campaign found interactive traffic"
    );
    assert!(
        report.improvements.len() >= 2,
        "score-guided search should improve past the initial pool"
    );
    // The recorded pin must reproduce: that is what makes the worst case
    // committable as a corpus file.
    let out = replay(&report.worst);
    assert_eq!(Some(out.interactive_p99_ns), report.worst.expect_p99_ns);
}

#[test]
fn different_seeds_explore_different_schedules() {
    let a = run_campaign(&FuzzConfig {
        seed: 1,
        iters: 30,
        ..FuzzConfig::default()
    });
    let b = run_campaign(&FuzzConfig {
        seed: 2,
        iters: 30,
        ..FuzzConfig::default()
    });
    assert_ne!(
        a.worst, b.worst,
        "distinct seeds should find distinct worst cases"
    );
}

#[test]
fn generated_scenarios_round_trip_and_replay_deterministically() {
    let mut rng = FuzzRng::new(99);
    for i in 0..50 {
        let sc = generate(&mut rng, 99, 64, 2);
        let back = Scenario::from_ron(&sc.to_ron()).expect("generated scenario parses");
        assert_eq!(sc, back, "round-trip failure at generation {i}");
        let x = replay(&sc);
        let y = replay(&sc);
        assert_eq!(
            x.waves, y.waves,
            "nondeterministic replay at generation {i}"
        );
        assert_eq!(x.interactive_p99_ns, y.interactive_p99_ns);
    }
}

#[test]
fn fused_replay_keeps_every_oracle_over_generated_scenarios() {
    // Cross-request fusion must reshape completion times only: on any
    // schedule, class FIFO, strict priority, the aging bound, ticket
    // conservation, the shed oracles, and the wave clamp + budget all
    // have to hold under grouped execution exactly as they do scalar.
    let mut rng = FuzzRng::new(0xBA7C4);
    for i in 0..40 {
        let sc = generate(&mut rng, 0xBA7C4, 64, 2);
        for mg in [2usize, 4, 16] {
            let out = replay_fused(&sc, mg);
            assert!(
                out.violations.is_empty(),
                "generation {i}, max_group {mg}: fused replay broke an \
                 oracle: {:?}\n{}",
                out.violations,
                sc.to_ron()
            );
            assert_eq!(
                out.accepted.len(),
                out.trace.len() + out.evicted.len(),
                "generation {i}, max_group {mg}: fused conservation"
            );
            let again = replay_fused(&sc, mg);
            assert_eq!(
                out.waves, again.waves,
                "generation {i}, max_group {mg}: fused replay nondeterministic"
            );
        }
    }
}

#[test]
fn mutation_is_deterministic_in_the_rng_state() {
    let mut gen_rng = FuzzRng::new(5);
    let parent = generate(&mut gen_rng, 5, 48, 2);
    let donor = generate(&mut gen_rng, 5, 48, 2);
    let a = mutate(&parent, Some(&donor), &mut FuzzRng::new(17));
    let b = mutate(&parent, Some(&donor), &mut FuzzRng::new(17));
    assert_eq!(a, b);
}

#[test]
fn minimizer_preserves_the_predicate_and_never_grows() {
    let mut rng = FuzzRng::new(1234);
    let mut checked = 0;
    for _ in 0..20 {
        let sc = generate(&mut rng, 80, 80, 2);
        let p99 = replay(&sc).interactive_p99_ns;
        if p99 == 0 {
            continue;
        }
        checked += 1;
        let min = minimize(&sc, 600, |cand| replay(cand).interactive_p99_ns >= p99);
        assert!(
            replay(&min).interactive_p99_ns >= p99,
            "minimized scenario lost the property it was shrunk under"
        );
        assert!(
            min.events.len() <= sc.events.len(),
            "minimization grew the scenario"
        );
    }
    assert!(checked >= 5, "generator should produce interactive traffic");
}
