//! Replay suite for the committed worst-case schedule corpus.
//!
//! Every `*.ron` file under `tests/corpus/serve_schedules/` is a
//! minimized scenario the fuzzer (`rdg_fuzz_serve`) found — a worst-case
//! interactive-p99 schedule or a shrunken oracle reproducer. This suite
//! replays each one on the virtual clock (zero sleeps, sub-second total)
//! and asserts:
//!
//! * the scenario parses, and re-serializes to the identical file
//!   (round-trip — the on-disk format cannot rot silently);
//! * replay is deterministic (two runs, identical traces);
//! * every serving oracle holds (class FIFO, strict priority, aging
//!   bound, conservation, wave clamp + budget);
//! * the recorded `expect_p99_ns` reproduces **exactly** — these files
//!   are regression pins: if a scheduling change shifts a worst case,
//!   this suite names the scenario and the delta instead of a live
//!   stress test silently losing its teeth;
//! * at least one committed scenario has a strictly worse interactive
//!   p99 than *every* hand-written stress pattern — the corpus proves
//!   the fuzzer reaches tails the hand-written tests never did.

use rdg_exec::serve::fuzz::{baseline_scenarios, replay, replay_fused, Scenario};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
        .join("serve_schedules")
}

fn load_corpus() -> Vec<(String, String, Scenario)> {
    let mut entries: Vec<(String, String, Scenario)> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| {
            let path = e.expect("readable corpus dir entry").path();
            if path.extension().and_then(|s| s.to_str()) != Some("ron") {
                return None;
            }
            let name = path.file_stem().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable corpus file");
            let sc = Scenario::from_ron(&text)
                .unwrap_or_else(|e| panic!("{name}: corpus file does not parse: {e}"));
            Some((name, text, sc))
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

#[test]
fn corpus_has_at_least_five_minimized_scenarios() {
    let corpus = load_corpus();
    assert!(
        corpus.len() >= 7,
        "expected ≥ 7 committed scenarios, found {}",
        corpus.len()
    );
    for (name, _, sc) in &corpus {
        assert_eq!(
            &sc.name, name,
            "scenario name field must match its file stem"
        );
        assert!(
            sc.expect_p99_ns.is_some(),
            "{name}: corpus scenarios must pin their expected p99"
        );
    }
    let with_shed = corpus
        .iter()
        .filter(|(_, _, sc)| sc.expect_shed.is_some())
        .count();
    assert!(
        with_shed >= 2,
        "expected ≥ 2 scenarios pinning exact shed counts, found {with_shed}"
    );
}

#[test]
fn corpus_files_round_trip_exactly() {
    for (name, text, sc) in load_corpus() {
        let reparsed = Scenario::from_ron(&sc.to_ron())
            .unwrap_or_else(|e| panic!("{name}: re-serialized form does not parse: {e}"));
        assert_eq!(sc, reparsed, "{name}: serialize → parse is not identity");
        assert_eq!(
            text,
            sc.to_ron(),
            "{name}: committed file differs from canonical serialization"
        );
    }
}

#[test]
fn corpus_replays_clean_and_reproduces_pinned_p99() {
    for (name, _, sc) in load_corpus() {
        let out = replay(&sc);
        assert!(
            out.violations.is_empty(),
            "{name}: oracle violation on replay: {:?}",
            out.violations
        );
        assert_eq!(
            Some(out.interactive_p99_ns),
            sc.expect_p99_ns,
            "{name}: interactive p99 drifted from the committed pin \
             (a scheduling change moved this worst case — regenerate the \
             corpus deliberately if the change is intended)"
        );
        if let Some(pin) = sc.expect_shed {
            assert_eq!(
                out.shed_total(),
                pin,
                "{name}: shed count (pop + in-flight + predictive) drifted \
                 from the committed pin"
            );
        }
        // Determinism: an identical second replay, wave for wave.
        let again = replay(&sc);
        assert_eq!(
            out.waves, again.waves,
            "{name}: replay is not deterministic"
        );
        assert_eq!(out.rejected, again.rejected);
    }
}

#[test]
fn corpus_replays_clean_under_fused_grouping() {
    // The committed worst cases double as adversarial inputs for the
    // cross-request fuser's twin: every oracle must hold when the same
    // schedule executes with wave-granularity group fusion. The p99 /
    // shed pins are scalar-mode contracts (grouping legitimately moves
    // completion times), so they are deliberately not compared here.
    for (name, _, sc) in load_corpus() {
        for mg in [2usize, 16] {
            let out = replay_fused(&sc, mg);
            assert!(
                out.violations.is_empty(),
                "{name}: oracle violation under fused replay (max_group \
                 {mg}): {:?}",
                out.violations
            );
            assert_eq!(
                out.accepted.len(),
                out.trace.len() + out.evicted.len(),
                "{name}: fused conservation (max_group {mg})"
            );
            let again = replay_fused(&sc, mg);
            assert_eq!(
                out.waves, again.waves,
                "{name}: fused replay is not deterministic (max_group {mg})"
            );
        }
    }
    for baseline in baseline_scenarios() {
        let out = replay_fused(&baseline, 4);
        assert!(
            out.violations.is_empty(),
            "baseline {} under fused replay: {:?}",
            baseline.name,
            out.violations
        );
    }
}

#[test]
fn some_corpus_scenario_beats_every_hand_written_stress_pattern() {
    let corpus = load_corpus();
    let worst_corpus = corpus
        .iter()
        .map(|(_, _, sc)| replay(sc).interactive_p99_ns)
        .max()
        .expect("non-empty corpus");
    for baseline in baseline_scenarios() {
        let out = replay(&baseline);
        assert!(
            out.violations.is_empty(),
            "baseline {}: {:?}",
            baseline.name,
            out.violations
        );
        assert!(
            worst_corpus > out.interactive_p99_ns,
            "fuzzer worst case ({} ns) does not beat hand-written pattern \
             `{}` ({} ns)",
            worst_corpus,
            baseline.name,
            out.interactive_p99_ns
        );
    }
}
