//! QoS admission-order invariants, proved deterministically.
//!
//! The dispatcher's scheduling decisions (class pick, aging promotion,
//! wave sizing) are pure functions of the queue contents and a nanosecond
//! timestamp, exposed through `rdg_exec::serve::test_support::ScriptedServe`
//! — a virtual-clock twin of the live dispatcher. The property tests here
//! drive it with random submission scripts and assert the admission-order
//! contract *exactly* on the dispatch trace, with zero sleeps:
//!
//! 1. **Class FIFO** — within one class, dispatch order is submission
//!    order.
//! 2. **Strict priority** — a request never dispatches after a
//!    later-submitted request of equal or lower urgency (in particular, a
//!    higher class never waits behind a *later* lower-class request at
//!    all).
//! 3. **Aging bound** — once a request has waited
//!    `class_index × aging_step`, nothing submitted after that point (any
//!    class) passes it: starvation is bounded.
//! 4. **Conservation** — every accepted request appears in the dispatch
//!    trace exactly once; rejected ones never do; wave sizes respect the
//!    controller's clamped target.
//!
//! A second group runs the *real* `ServeQueue` through random
//! submit/clone/drop/shutdown interleavings and asserts the accounting
//! closes exactly (no request lost or duplicated) — thread scheduling may
//! vary, the asserted counters may not.

use proptest::prelude::*;
use rdg_exec::serve::test_support::{ScriptedRequest, ScriptedServe};
use rdg_exec::{Executor, Priority, ServeConfig, ServeError, Session, WaveSizing};
use rdg_graph::{Module, ModuleBuilder};
use rdg_tensor::{DType, Tensor};
use std::time::Duration;

const STEP_NS: u64 = 1_000_000; // 1 ms aging step in every scripted run

fn scripted_config() -> ServeConfig {
    ServeConfig {
        capacity: 8,
        batch_multiple: 2,
        sizing: WaveSizing::default(),
        aging_step: Duration::from_nanos(STEP_NS),
        ..ServeConfig::default()
    }
}

fn class_of(idx: u8) -> Priority {
    Priority::ALL[idx as usize % Priority::COUNT]
}

/// Scripted service time: deterministic per request id, 0.2–1.1 ms.
fn service_ns(id: u64) -> u64 {
    200_000 + (id % 7) * 150_000
}

/// Metadata of one accepted submission: (class, enqueue ns, submit seq).
struct Submitted {
    class: Priority,
    enqueued_ns: u64,
    seq: usize,
}

/// Runs a random script through the harness and returns, per accepted
/// request id, its submission metadata plus the full dispatch trace in
/// dispatch order.
fn run_script(script: &[(u8, u64, u8)]) -> (Vec<Option<Submitted>>, Vec<ScriptedRequest>) {
    let mut harness = ScriptedServe::new(2, &scripted_config());
    let mut meta: Vec<Option<Submitted>> = Vec::new();
    let mut trace: Vec<ScriptedRequest> = Vec::new();
    let mut seq = 0usize;
    for &(class_idx, gap_ns, wave_die) in script {
        harness.advance(gap_ns);
        let class = class_of(class_idx);
        let id = meta.len() as u64;
        if harness.submit(class, id) {
            meta.push(Some(Submitted {
                class,
                enqueued_ns: harness.now_ns(),
                seq,
            }));
            seq += 1;
        } else {
            meta.push(None); // rejected: full lane
        }
        if wave_die == 0 {
            if let Some(wave) = harness.run_wave(service_ns) {
                assert!(wave.requests.len() <= wave.target, "wave overflows target");
                trace.extend(wave.requests);
            }
        }
    }
    // Final drain: every accepted request must eventually dispatch.
    while let Some(wave) = harness.run_wave(service_ns) {
        assert!(wave.requests.len() <= wave.target);
        trace.extend(wave.requests);
    }
    (meta, trace)
}

proptest! {
    #[test]
    fn admission_order_invariants_hold_on_arbitrary_scripts(
        script in prop::collection::vec((0u8..3, 0u64..3 * STEP_NS, 0u8..4), 1..48)
    ) {
        let (meta, trace) = run_script(&script);

        // 4. Conservation: accepted ⇔ dispatched exactly once.
        let accepted: Vec<u64> = meta
            .iter()
            .enumerate()
            .filter(|(_, m)| m.is_some())
            .map(|(id, _)| id as u64)
            .collect();
        let mut dispatched: Vec<u64> = trace.iter().map(|r| r.id).collect();
        dispatched.sort_unstable();
        prop_assert_eq!(
            &dispatched, &accepted,
            "dispatch trace ≠ accepted set (lost or duplicated request)"
        );

        // Position of each id in the dispatch trace.
        let pos = |id: u64| trace.iter().position(|r| r.id == id).unwrap();
        for &a in &accepted {
            let ma = meta[a as usize].as_ref().unwrap();
            for &b in &accepted {
                if a == b {
                    continue;
                }
                let mb = meta[b as usize].as_ref().unwrap();
                // 1+2. Strict priority with class FIFO: `a` submitted
                // before `b` and at least as urgent ⇒ dispatched first.
                if ma.seq < mb.seq && ma.class.index() <= mb.class.index() {
                    prop_assert!(
                        pos(a) < pos(b),
                        "id {} (class {}, seq {}) dispatched after later, \
                         less-urgent id {} (class {}, seq {})",
                        a, ma.class, ma.seq, b, mb.class, mb.seq
                    );
                }
                // 3. Aging bound: once `a` has waited
                // class_index × aging_step, later submissions of ANY
                // class cannot pass it.
                let bound = ma.class.index() as u64 * STEP_NS;
                if ma.seq < mb.seq && mb.enqueued_ns >= ma.enqueued_ns + bound {
                    prop_assert!(
                        pos(a) < pos(b),
                        "id {} (class {}) starved past its aging bound by \
                         later id {} (class {})",
                        a, ma.class, b, mb.class
                    );
                }
            }
        }

        // Wait times in the trace are consistent with the timestamps the
        // invariants above reasoned over.
        for r in &trace {
            let m = meta[r.id as usize].as_ref().unwrap();
            prop_assert_eq!(r.enqueued_ns, m.enqueued_ns);
            prop_assert_eq!(r.class, m.class);
        }
    }

    #[test]
    fn wave_targets_stay_clamped_on_arbitrary_scripts(
        script in prop::collection::vec((0u8..3, 0u64..STEP_NS, 0u8..2), 1..40)
    ) {
        // Under the default dynamic sizing with 2 workers and max ×8, the
        // target must stay in [2, 16] at every decision point, whatever
        // the script's service times do to the EWMA.
        let mut harness = ScriptedServe::new(2, &scripted_config());
        let mut id = 0u64;
        for &(class_idx, gap_ns, wave_die) in &script {
            harness.advance(gap_ns);
            harness.submit(class_of(class_idx), id);
            id += 1;
            prop_assert!((2..=16).contains(&harness.wave_target()));
            if wave_die == 0 {
                // Service times spread 0.05–10 ms: both clamps reachable.
                harness.run_wave(|id| 50_000 + (id % 5) * 2_500_000);
                prop_assert!((2..=16).contains(&harness.wave_target()));
            }
        }
    }
}

/// The aging bound, demonstrated on exact numbers: a `Batch` request
/// under a continuous `Interactive` stream dispatches within one aging
/// step — not after the stream ends.
#[test]
fn aged_batch_request_is_not_starved_by_a_hot_interactive_stream() {
    // Fixed waves of exactly 2 (= the interactive arrival rate per
    // wave), so the interactive lane alone can fill every wave forever —
    // only aging can get the batch request through.
    let mut h = ScriptedServe::new(
        2,
        &ServeConfig {
            batch_multiple: 1,
            sizing: WaveSizing::Fixed,
            aging_step: Duration::from_nanos(STEP_NS),
            ..scripted_config()
        },
    );
    let mut next_id = 0u64;
    h.submit(Priority::Batch, {
        next_id += 1;
        0
    });
    let mut batch_done_after_waves = None;
    for wave_no in 0..40 {
        // Two fresh interactive requests arrive before every wave: the
        // interactive lane is never empty.
        for _ in 0..2 {
            assert!(h.submit(Priority::Interactive, next_id));
            next_id += 1;
        }
        let wave = h.run_wave(|_| 300_000).unwrap(); // 0.3 ms each
        if wave.requests.iter().any(|r| r.id == 0) {
            let r = wave.requests.iter().find(|r| r.id == 0).unwrap();
            assert!(
                r.wait_ns <= STEP_NS + 2 * 300_000 * 2,
                "batch waited {} ns, far past the 1 ms aging step",
                r.wait_ns
            );
            batch_done_after_waves = Some(wave_no);
            break;
        }
    }
    let waves = batch_done_after_waves.expect("batch request starved for 40 waves");
    assert!(waves > 0, "strict priority held while the batch was fresh");
}

/// Interactive admission is never blocked by a saturated lower-class
/// lane: per-class capacity is the tentpole's backpressure contract.
#[test]
fn saturated_batch_lane_does_not_block_interactive_admission() {
    let mut h = ScriptedServe::new(2, &scripted_config());
    for id in 0..8 {
        assert!(h.submit(Priority::Batch, id));
    }
    assert!(!h.submit(Priority::Batch, 8), "batch lane is full");
    assert!(
        h.submit(Priority::Interactive, 9),
        "interactive lane must still admit"
    );
    assert_eq!(h.queue_depth_class(Priority::Batch), 8);
    assert_eq!(h.queue_depth_class(Priority::Interactive), 1);
}

// ---------------------------------------------------------------------
// WaveController under adversarial service-time sequences.
// ---------------------------------------------------------------------

const WORKERS: usize = 2;
const MAX_MULTIPLE: usize = 8;
const BUDGET_NS: u64 = 2_000_000;

fn adversarial_config() -> ServeConfig {
    ServeConfig {
        capacity: 64,
        batch_multiple: 2,
        sizing: WaveSizing::Dynamic {
            max_multiple: MAX_MULTIPLE,
            wave_budget: Duration::from_nanos(BUDGET_NS),
            ewma_alpha: 0.25,
        },
        aging_step: Duration::from_nanos(STEP_NS),
        ..ServeConfig::default()
    }
}

/// The controller's two contracts, checked at a decision point:
///
/// * **clamp** — the target stays in `[workers, workers × max_multiple]`;
/// * **budget** — whenever the controller sizes *above* the lower clamp,
///   the wave it plans must fit the drain budget under its own service
///   estimate: `target × ewma ≤ workers × budget` (floor rounding makes
///   this exact, up to f64 slack).
fn assert_controller_contracts(h: &ScriptedServe) {
    let target = h.wave_target();
    assert!(
        (WORKERS..=WORKERS * MAX_MULTIPLE).contains(&target),
        "target {target} outside clamp [{WORKERS}, {}]",
        WORKERS * MAX_MULTIPLE
    );
    if let Some(ewma) = h.ewma_ns() {
        if target > WORKERS && ewma > 0.0 {
            let predicted = target as f64 * ewma;
            let allowed = WORKERS as f64 * BUDGET_NS as f64;
            assert!(
                predicted <= allowed * (1.0 + 1e-9) + 1.0,
                "budget broken: target {target} × ewma {ewma:.0} ns = \
                 {predicted:.0} ns > {WORKERS} workers × {BUDGET_NS} ns"
            );
        }
    }
}

/// Drives `rounds` waves of `per_wave` requests through the harness with
/// the given service schedule, asserting the controller contracts at
/// every decision point.
fn drive_waves(service: impl Fn(u64) -> u64, rounds: u64, per_wave: u64) {
    let mut h = ScriptedServe::new(WORKERS, &adversarial_config());
    let mut id = 0u64;
    for _ in 0..rounds {
        for _ in 0..per_wave {
            assert!(h.submit(Priority::Interactive, id));
            id += 1;
        }
        assert_controller_contracts(&h);
        h.run_wave(&service);
        assert_controller_contracts(&h);
    }
    for w in h.drain(&service) {
        assert!(w.requests.len() <= w.target);
    }
    assert_controller_contracts(&h);
}

#[test]
fn controller_survives_alternating_spikes() {
    // 0.1 ms / 40 ms alternation: the EWMA is yanked between "fit 16"
    // and "fit nothing" every wave; the clamp and budget must hold at
    // every single decision, including right after each spike.
    drive_waves(|id| if id % 2 == 0 { 100_000 } else { 40_000_000 }, 30, 4);
}

#[test]
fn controller_survives_monotone_ramps() {
    // Service times ramp 0 → 30 ms and reset, repeatedly: targets must
    // walk down the clamp range without ever leaving it.
    drive_waves(|id| (id % 60) * 500_000, 40, 3);
}

#[test]
fn controller_survives_zero_duration_requests() {
    // Degenerate: every request takes zero virtual time. The EWMA decays
    // toward zero and the predicted-fit rule would allow an unbounded
    // wave — the upper clamp is what must keep the target finite.
    let mut h = ScriptedServe::new(WORKERS, &adversarial_config());
    let mut id = 0u64;
    for _ in 0..20 {
        for _ in 0..6 {
            assert!(h.submit(Priority::Interactive, id));
            id += 1;
        }
        h.run_wave(|_| 0);
        assert_controller_contracts(&h);
    }
    assert_eq!(
        h.wave_target(),
        WORKERS * MAX_MULTIPLE,
        "zero-cost requests pin the target at the upper clamp"
    );
}

proptest! {
    #[test]
    fn controller_contracts_hold_on_arbitrary_adversarial_schedules(
        script in prop::collection::vec((0u8..3, 0u64..30_000_000, 1u64..6), 1..80)
    ) {
        // Each element is (bucket die, raw ns, per-wave count): the die
        // picks zero-duration / sub-millisecond / multi-millisecond-spike
        // service for the requests of that round — the three adversarial
        // regimes, interleaved arbitrarily.
        let services: Vec<u64> = script
            .iter()
            .map(|&(die, raw, _)| match die {
                0 => 0,
                1 => 50_000 + raw % 1_150_000,
                _ => 20_000_000 + raw,
            })
            .collect();
        let service = |i: u64| services[i as usize % services.len()];
        let mut h = ScriptedServe::new(WORKERS, &adversarial_config());
        let mut id = 0u64;
        for &(_, _, per_wave) in &script {
            for _ in 0..per_wave {
                if !h.submit(Priority::Interactive, id) {
                    break; // lane full: the drain below still covers it
                }
                id += 1;
            }
            h.run_wave(service);
            assert_controller_contracts(&h);
        }
        h.drain(service);
        assert_controller_contracts(&h);
    }
}

// ---------------------------------------------------------------------
// Scripted lifecycle: shutdown / clone / drop under the virtual clock.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn scripted_shutdown_and_client_drops_lose_nothing(
        script in prop::collection::vec(
            // (action die, class die, gap ns): 0–5 submit, 6 wave,
            // 7 clone, 8 drop, 9 shutdown.
            (0u8..10, 0u8..3, 0u64..2 * STEP_NS),
            1..60,
        )
    ) {
        let mut h = ScriptedServe::new(2, &scripted_config());
        let mut accepted: Vec<u64> = Vec::new();
        let mut rejected_after_close = true;
        let mut next_id = 0u64;
        let mut trace: Vec<u64> = Vec::new();
        for &(action, class_idx, gap_ns) in &script {
            h.advance(gap_ns);
            match action {
                0..=5 => {
                    let id = next_id;
                    next_id += 1;
                    let admitted = h.submit(class_of(class_idx), id);
                    if admitted {
                        prop_assert!(h.is_open(), "closed admission accepted a request");
                        accepted.push(id);
                    } else if h.is_open() {
                        // Open but full lane: the only legal open rejection.
                        prop_assert!(
                            h.queue_depth_class(class_of(class_idx)) >= 8,
                            "open harness rejected below capacity"
                        );
                    }
                    if !h.is_open() && admitted {
                        rejected_after_close = false;
                    }
                }
                6 => {
                    if let Some(wave) = h.run_wave(service_ns) {
                        trace.extend(wave.ids());
                    }
                }
                7 => h.clone_client(),
                8 => h.drop_client(),
                _ => h.shutdown(),
            }
        }
        prop_assert!(rejected_after_close, "a submit after close was admitted");
        // Shutdown mid-storm (or end of script): the drain must deliver
        // every accepted request exactly once — nothing lost, nothing
        // duplicated, whether admission closed explicitly, by the last
        // client drop, or not at all.
        h.shutdown();
        for wave in h.drain(service_ns) {
            prop_assert!(wave.requests.len() <= wave.target);
            trace.extend(wave.ids());
        }
        let mut sorted = trace.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), trace.len(), "a request dispatched twice");
        let mut expect = accepted.clone();
        expect.sort_unstable();
        let mut got = trace;
        got.sort_unstable();
        prop_assert_eq!(got, expect, "dispatch trace ≠ accepted set");
        prop_assert_eq!(h.queue_depth(), 0);
    }
}

// ---------------------------------------------------------------------
// End-to-end conservation on the real ServeQueue.
// ---------------------------------------------------------------------

/// `sum(n)` with `n` fed as a main input (the shared serving fixture).
fn sum_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("sum", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                let rec = b.invoke(&h, &[m])?[0];
                b.iadd(n, rec)
            },
            |b| b.identity(zero),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let n = mb.main_input(DType::I32);
    let out = mb.invoke(&h, &[n]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    mb.finish().unwrap()
}

fn gauss(n: i32) -> i32 {
    ((n as i64 * (n as i64 + 1)) / 2) as i32
}

proptest! {
    #[test]
    fn no_request_lost_or_duplicated_across_submit_shutdown_interleavings(
        ops in prop::collection::vec((0u8..3, 0i32..60, 0u8..6), 1..16)
    ) {
        // Random interleaving of class-tagged submissions, client
        // clones/drops, and a shutdown point; after shutdown, admission
        // must fail but every already-accepted ticket must still deliver
        // its exact answer — once.
        let session = Session::new(Executor::with_threads(2), sum_module()).unwrap();
        let root = session.serve_with(ServeConfig {
            capacity: 64,
            ..ServeConfig::default()
        });
        let mut clones = vec![root.clone()];
        let mut tickets: Vec<(i32, rdg_exec::ServeTicket)> = Vec::new();
        let mut accepted = 0u64;
        let shutdown_at = ops.len() / 2;
        for (i, &(class_idx, n, action)) in ops.iter().enumerate() {
            if i == shutdown_at {
                root.shutdown();
            }
            let client = &clones[i % clones.len()];
            match action {
                // Clone a client mid-stream (new default class).
                0 => clones.push(client.with_priority(class_of(class_idx))),
                // Drop a clone (never the root: it carries shutdown).
                1 if clones.len() > 1 => {
                    clones.pop();
                }
                _ => match client.submit_with(class_of(class_idx), vec![Tensor::scalar_i32(n)]) {
                    Ok(t) => {
                        prop_assert!(i < shutdown_at, "admission after shutdown");
                        accepted += 1;
                        tickets.push((n, t));
                    }
                    Err(ServeError::Shutdown) => {
                        prop_assert!(i >= shutdown_at, "spurious shutdown error");
                    }
                    Err(other) => prop_assert!(false, "unexpected {:?}", other),
                },
            }
        }
        if ops.len() <= shutdown_at {
            root.shutdown();
        }
        // Every accepted ticket delivers exactly once, with the right
        // answer (tickets are linear values: waiting twice cannot even
        // be expressed — "no duplicate" is the counter equality below).
        let delivered = tickets.len() as u64;
        for (n, t) in tickets {
            prop_assert_eq!(t.wait().unwrap()[0].as_i32_scalar().unwrap(), gauss(n));
        }
        let st = root.stats();
        prop_assert_eq!(st.submitted, accepted);
        prop_assert_eq!(st.completed, delivered);
        prop_assert_eq!(st.failed, 0);
        prop_assert_eq!(st.queue_depth, 0, "shutdown drained the lanes");
        let per_class: u64 = st.classes.iter().map(|c| c.completed).sum();
        prop_assert_eq!(per_class, st.completed, "class ledgers cover everything");
    }
}
