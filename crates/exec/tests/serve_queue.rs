//! Admission-controlled serving: the `ServeQueue` / `ServeClient` surface.
//!
//! Covers correctness under a multi-threaded client load (no request lost,
//! results positional per ticket), backpressure (`try_submit` rejections on
//! a tiny queue, blocking `submit` progress, deadline expiry), wave sizing
//! from the worker count, per-request error isolation, latency-snapshot
//! monotonicity, the clean-shutdown path, and — since the QoS rework — a
//! three-class stress storm with deadlines and abandoned tickets whose
//! per-class accounting must close exactly.

use rdg_exec::{ExecError, Executor, Priority, ServeConfig, ServeError, Session, WaveSizing};
use rdg_graph::{Module, ModuleBuilder};
use rdg_tensor::{DType, Tensor};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// `sum(n)` with `n` fed as a main input (same fixture as the concurrent
/// runtime tests): request cost scales with the fed depth.
fn sum_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("sum", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                let rec = b.invoke(&h, &[m])?[0];
                b.iadd(n, rec)
            },
            |b| b.identity(zero),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let n = mb.main_input(DType::I32);
    let out = mb.invoke(&h, &[n]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    mb.finish().unwrap()
}

fn gauss(n: i32) -> i32 {
    // i64 intermediate: n*(n+1) overflows i32 long before the sum does.
    ((n as i64 * (n as i64 + 1)) / 2) as i32
}

#[test]
fn single_request_roundtrip() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let client = s.serve();
    let out = client.call(vec![Tensor::scalar_i32(10)]).unwrap();
    assert_eq!(out[0].as_i32_scalar().unwrap(), 55);
    let st = client.stats();
    assert_eq!((st.submitted, st.completed, st.failed), (1, 1, 0));
    assert!(st.total.count == 1 && st.total.p50_us > 0.0);
    client.shutdown();
}

#[test]
fn fixed_wave_target_follows_worker_count() {
    // WaveSizing::Fixed recovers the PR 4 rule exactly: the target is
    // workers × batch_multiple, before and after traffic.
    let s = Session::new(Executor::with_threads(3), sum_module()).unwrap();
    let client = s.serve_with(ServeConfig {
        batch_multiple: 4,
        sizing: WaveSizing::Fixed,
        ..ServeConfig::default()
    });
    assert_eq!(client.wave_target(), 12);
    client.call(vec![Tensor::scalar_i32(50)]).unwrap();
    assert_eq!(client.wave_target(), 12, "fixed sizing never adapts");
    client.shutdown();
}

#[test]
fn dynamic_wave_target_stays_clamped_under_traffic() {
    // The dynamic controller's decisions are asserted exactly against
    // scripted service times in `serve_qos.rs` / the controller unit
    // tests; end to end we assert the clamp contract on real traffic.
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let client = s.serve_with(ServeConfig {
        batch_multiple: 4,
        sizing: WaveSizing::Dynamic {
            max_multiple: 8,
            wave_budget: Duration::from_millis(5),
            ewma_alpha: 0.25,
        },
        ..ServeConfig::default()
    });
    assert_eq!(client.wave_target(), 8, "starting point before data");
    for burst in 0..4 {
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                client
                    .submit(vec![Tensor::scalar_i32(100 * (burst + i) % 700)])
                    .unwrap()
            })
            .collect();
        for t in tickets {
            t.wait().unwrap();
        }
        let target = client.wave_target();
        assert!(
            (2..=16).contains(&target),
            "target {target} outside [workers, workers × max_multiple]"
        );
    }
    client.shutdown();
}

#[test]
fn per_request_errors_are_isolated() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let client = s.serve();
    let good = client.submit(vec![Tensor::scalar_i32(6)]).unwrap();
    let bad = client.submit(vec![Tensor::scalar_f32(1.0)]).unwrap(); // wrong dtype
    let good2 = client.submit(vec![Tensor::scalar_i32(7)]).unwrap();
    assert_eq!(good.wait().unwrap()[0].as_i32_scalar().unwrap(), 21);
    match bad.wait() {
        Err(ServeError::Exec(ExecError::BadFeed { .. })) => {}
        other => panic!("expected BadFeed, got {other:?}"),
    }
    assert_eq!(good2.wait().unwrap()[0].as_i32_scalar().unwrap(), 28);
    let st = client.stats();
    assert_eq!((st.completed, st.failed), (2, 1));
    client.shutdown();
}

#[test]
fn try_submit_observes_backpressure_on_a_tiny_queue() {
    let s = Session::new(Executor::with_threads(1), sum_module()).unwrap();
    let client = s.serve_with(ServeConfig {
        capacity: 2,
        batch_multiple: 1,
        ..ServeConfig::default()
    });
    // Saturate: deep requests occupy the dispatcher, then fill the queue.
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..64 {
        match client.try_submit(vec![Tensor::scalar_i32(20_000)]) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QueueFull) => rejected += 1,
            Err(other) => panic!("unexpected {other:?}"),
        }
    }
    assert!(rejected > 0, "a 2-slot queue must bounce a 64-burst");
    assert_eq!(client.stats().rejected, rejected);
    // Every accepted request completes with the right answer.
    for t in tickets {
        assert_eq!(t.wait().unwrap()[0].as_i32_scalar().unwrap(), gauss(20_000));
    }
    client.shutdown();
}

#[test]
fn submit_deadline_expires_on_a_saturated_queue() {
    let s = Session::new(Executor::with_threads(1), sum_module()).unwrap();
    let client = s.serve_with(ServeConfig {
        capacity: 1,
        batch_multiple: 1,
        ..ServeConfig::default()
    });
    // Calibrate instead of assuming hardware speed: measure how long the
    // deep request (depth bounded so the i32 sum cannot overflow) takes
    // on an idle loop, then pick a deadline a quarter of that. While t1
    // occupies the dispatcher the single queue slot stays full for ~4×
    // the deadline, so the expiry below cannot depend on the host's
    // absolute speed.
    let deep = vec![Tensor::scalar_i32(60_000)];
    let probe = std::time::Instant::now();
    client.call(deep.clone()).unwrap();
    let service = probe.elapsed();
    if service < Duration::from_millis(4) {
        // A host this fast makes sub-millisecond deadlines scheduler
        // noise; the expiry path is still covered by the wait_for shim
        // test and the zero-margin arithmetic in submit_deadline.
        eprintln!("host too fast for a meaningful deadline test ({service:?}); skipping");
        client.shutdown();
        return;
    }
    let deadline = service / 4;
    let t1 = client.submit(deep).unwrap();
    let t2 = client.submit(vec![Tensor::scalar_i32(1)]).unwrap();
    let err = client
        .submit_deadline(vec![Tensor::scalar_i32(1)], deadline)
        .unwrap_err();
    assert!(matches!(err, ServeError::DeadlineExceeded), "{err}");
    assert_eq!(client.stats().expired, 1);
    assert_eq!(
        t1.wait().unwrap()[0].as_i32_scalar().unwrap(),
        gauss(60_000)
    );
    assert_eq!(t2.wait().unwrap()[0].as_i32_scalar().unwrap(), 1);
    client.shutdown();
}

#[test]
fn shutdown_drains_accepted_requests_and_rejects_new_ones() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let client = s.serve();
    let tickets: Vec<_> = (0..8)
        .map(|i| client.submit(vec![Tensor::scalar_i32(i)]).unwrap())
        .collect();
    client.shutdown();
    // Accepted work was drained, not discarded.
    for (i, t) in tickets.into_iter().enumerate() {
        assert_eq!(
            t.wait().unwrap()[0].as_i32_scalar().unwrap(),
            gauss(i as i32)
        );
    }
    // The loop no longer admits.
    assert!(matches!(
        client.submit(vec![Tensor::scalar_i32(1)]),
        Err(ServeError::Shutdown)
    ));
    assert!(matches!(
        client.try_submit(vec![Tensor::scalar_i32(1)]),
        Err(ServeError::Shutdown)
    ));
}

#[test]
fn dropping_the_last_client_shuts_the_loop_down() {
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let client = s.serve();
    let clone = client.clone();
    let ticket = client.submit(vec![Tensor::scalar_i32(12)]).unwrap();
    drop(client);
    drop(clone);
    // The detached drain still answers the accepted request.
    assert_eq!(
        ticket.wait().unwrap()[0].as_i32_scalar().unwrap(),
        gauss(12)
    );
}

#[test]
fn stress_many_clients_no_request_lost_and_snapshots_monotone() {
    // The satellite stress test: N client threads × M requests through a
    // small bounded queue. Clients mix try_submit (falling back to the
    // blocking submit on QueueFull) with direct blocking submits, so the
    // queue actually exercises both admission paths under contention.
    const CLIENTS: usize = 6;
    const PER_CLIENT: usize = 40;
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    // Capacity below the client count, so concurrent closed-loop clients
    // genuinely contend for admission slots.
    let client = s.serve_with(ServeConfig {
        capacity: 2,
        batch_multiple: 2,
        ..ServeConfig::default()
    });
    let fallbacks = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        let client = client.clone();
        let fallbacks = Arc::clone(&fallbacks);
        workers.push(std::thread::spawn(move || {
            for i in 0..PER_CLIENT {
                let n = ((c * PER_CLIENT + i) % 300) as i32;
                let feeds = vec![Tensor::scalar_i32(n)];
                let ticket = if i % 2 == 0 {
                    match client.try_submit(feeds) {
                        Ok(t) => t,
                        Err(ServeError::QueueFull) => {
                            fallbacks.fetch_add(1, Ordering::Relaxed);
                            client.submit(vec![Tensor::scalar_i32(n)]).unwrap()
                        }
                        Err(other) => panic!("unexpected {other:?}"),
                    }
                } else {
                    client.submit(feeds).unwrap()
                };
                let out = ticket.wait().unwrap();
                assert_eq!(out[0].as_i32_scalar().unwrap(), gauss(n), "request n={n}");
            }
        }));
    }
    // Latency/counter snapshots taken while the storm runs must be
    // monotone in the counters and ordered in the percentiles.
    let mut last_completed = 0u64;
    let mut last_submitted = 0u64;
    for _ in 0..20 {
        let st = client.stats();
        assert!(st.completed >= last_completed, "completed is monotone");
        assert!(st.submitted >= last_submitted, "submitted is monotone");
        assert!(st.wait.p50_us <= st.wait.p95_us && st.wait.p95_us <= st.wait.p99_us);
        assert!(st.service.p50_us <= st.service.p95_us && st.service.p95_us <= st.service.p99_us);
        assert!(st.total.p50_us <= st.total.p95_us && st.total.p95_us <= st.total.p99_us);
        assert!(st.queue_depth <= client.capacity(), "bound respected");
        last_completed = st.completed;
        last_submitted = st.submitted;
        std::thread::sleep(Duration::from_millis(5));
    }
    for w in workers {
        w.join().unwrap();
    }
    let st = client.stats();
    let expect = (CLIENTS * PER_CLIENT) as u64;
    // No request lost: every request was admitted exactly once (QueueFull
    // bounces retried on the blocking path don't double-count), every
    // admitted request completed, and every client got its answer
    // (asserted per-ticket above).
    assert_eq!(st.submitted, expect);
    assert_eq!(st.rejected, fallbacks.load(Ordering::Relaxed));
    assert_eq!(st.completed + st.failed, st.submitted);
    assert_eq!(st.failed, 0);
    // Backpressure accounting is exact: every QueueFull bounce became one
    // blocking-submit fallback (the deterministic backpressure trigger is
    // covered by `try_submit_observes_backpressure_on_a_tiny_queue`).
    assert!(st.batches > 0 && st.total.count == expect);
    client.shutdown();
    assert_eq!(client.stats().queue_depth, 0);
}

#[test]
fn shutdown_racing_a_dispatch_wave_loses_nothing() {
    // Directly race `shutdown()` against in-flight dispatch waves — not
    // probabilistically as a side effect of a storm, but as the test's
    // whole point, across many race offsets. Submitter threads hammer
    // all three classes while the main thread calls shutdown at a
    // different moment each round; every ticket whose submit succeeded
    // must deliver its exact answer, every submit after the shutdown
    // point must observe `Shutdown`, and the ledgers must close exactly.
    const ROUNDS: usize = 12;
    const SUBMITTERS: usize = 3;
    const PER_SUBMITTER: usize = 24;
    for round in 0..ROUNDS {
        let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
        let client = s.serve_with(ServeConfig {
            capacity: 16,
            batch_multiple: 2,
            ..ServeConfig::default()
        });
        let mut workers = Vec::new();
        for c in 0..SUBMITTERS {
            let client = client.with_priority(Priority::ALL[c % 3]);
            workers.push(std::thread::spawn(move || {
                let mut delivered = 0u64;
                let mut accepted = 0u64;
                for i in 0..PER_SUBMITTER {
                    let n = ((c * 53 + i * 11) % 200) as i32;
                    match client.submit(vec![Tensor::scalar_i32(n)]) {
                        Ok(t) => {
                            accepted += 1;
                            // Wait immediately: the ticket must deliver
                            // even if shutdown landed mid-wave.
                            let out = t.wait().unwrap();
                            assert_eq!(out[0].as_i32_scalar().unwrap(), gauss(n), "n={n}");
                            delivered += 1;
                        }
                        Err(ServeError::Shutdown) => break,
                        Err(other) => panic!("unexpected {other:?}"),
                    }
                }
                (accepted, delivered)
            }));
        }
        // A different race offset every round: from "shutdown before the
        // first wave" to "shutdown deep in the storm".
        while client.stats().submitted < (round * SUBMITTERS) as u64 {
            std::thread::yield_now();
        }
        client.shutdown();
        // After shutdown returns, the dispatcher has drained and joined:
        // admission must fail and no queued work may remain.
        assert!(matches!(
            client.try_submit(vec![Tensor::scalar_i32(1)]),
            Err(ServeError::Shutdown)
        ));
        let mut accepted = 0u64;
        let mut delivered = 0u64;
        for w in workers {
            let (a, d) = w.join().unwrap();
            accepted += a;
            delivered += d;
        }
        assert_eq!(accepted, delivered, "an accepted ticket did not deliver");
        let st = client.stats();
        assert_eq!(
            st.submitted, accepted,
            "ledger admissions = client admissions"
        );
        assert_eq!(st.completed, accepted, "every admission completed");
        assert_eq!(st.failed, 0);
        assert_eq!(st.queue_depth, 0, "shutdown left work queued");
    }
}

#[test]
fn stress_three_classes_with_deadlines_and_abandons() {
    // The QoS storm: two client threads per class hammer one queue
    // through all three admission paths (try_submit with blocking
    // fallback, submit_deadline with tiny deadlines that may expire on a
    // full lane, plain blocking submit), and some tickets are abandoned
    // (dropped without waiting — the "cancel" path: the dispatcher still
    // runs the request, the send just goes nowhere). Mid-storm snapshots
    // must be monotone per class; the final per-class accounting must
    // close exactly and shutdown must drain-then-join.
    const PER_CLASS_CLIENTS: usize = 2;
    const PER_CLIENT: usize = 30;
    let s = Session::new(Executor::with_threads(2), sum_module()).unwrap();
    let client = s.serve_with(ServeConfig {
        capacity: 4,
        batch_multiple: 2,
        ..ServeConfig::default()
    });
    // Per-class tallies kept by the clients themselves, to check the
    // ledger against ground truth: admitted, locally-expired, and
    // dropped-without-waiting tickets.
    let admitted: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let expired: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let dropped: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
    let mut workers = Vec::new();
    for (ci, class) in Priority::ALL.into_iter().enumerate() {
        for t in 0..PER_CLASS_CLIENTS {
            let client = client.with_priority(class);
            let admitted = Arc::clone(&admitted[ci]);
            let expired = Arc::clone(&expired[ci]);
            let dropped = Arc::clone(&dropped[ci]);
            workers.push(std::thread::spawn(move || {
                for i in 0..PER_CLIENT {
                    let n = ((ci * 97 + t * 31 + i * 7) % 300) as i32;
                    let feeds = vec![Tensor::scalar_i32(n)];
                    let ticket = match i % 3 {
                        0 => match client.try_submit(feeds) {
                            Ok(t) => t,
                            Err(ServeError::QueueFull) => {
                                client.submit(vec![Tensor::scalar_i32(n)]).unwrap()
                            }
                            Err(other) => panic!("unexpected {other:?}"),
                        },
                        1 => {
                            // Deadline path: tiny deadlines expire when
                            // the lane is saturated, admit when not —
                            // both outcomes are legal, both accounted.
                            let d = Duration::from_micros(50 * (i as u64 % 4));
                            match client.submit_deadline(feeds, d) {
                                Ok(t) => t,
                                Err(ServeError::DeadlineExceeded) => {
                                    expired.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                                Err(other) => panic!("unexpected {other:?}"),
                            }
                        }
                        _ => client.submit(feeds).unwrap(),
                    };
                    admitted.fetch_add(1, Ordering::Relaxed);
                    if i % 5 == 0 {
                        dropped.fetch_add(1, Ordering::Relaxed);
                        drop(ticket); // abandon: result discarded, run not
                    } else {
                        let out = ticket.wait().unwrap();
                        assert_eq!(out[0].as_i32_scalar().unwrap(), gauss(n), "n={n}");
                    }
                }
            }));
        }
    }
    // Per-class snapshots taken mid-storm: counters monotone, percentiles
    // ordered, lane depths bounded by the per-class capacity.
    let mut last = [[0u64; 2]; 3]; // [class][submitted, completed]
    for _ in 0..15 {
        let st = client.stats();
        for p in Priority::ALL {
            let c = &st.classes[p.index()];
            assert!(c.submitted >= last[p.index()][0], "{p} submitted monotone");
            assert!(c.completed >= last[p.index()][1], "{p} completed monotone");
            assert!(c.wait.p50_us <= c.wait.p95_us && c.wait.p95_us <= c.wait.p99_us);
            assert!(c.total.p50_us <= c.total.p95_us && c.total.p95_us <= c.total.p99_us);
            assert!(c.queue_depth <= client.capacity(), "{p} lane bounded");
            last[p.index()] = [c.submitted, c.completed];
        }
        assert_eq!(
            st.submitted,
            st.classes.iter().map(|c| c.submitted).sum::<u64>(),
            "aggregate is the sum of the classes"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    for w in workers {
        w.join().unwrap();
    }
    // Drain-then-join shutdown, then exact per-class accounting.
    client.shutdown();
    let st = client.stats();
    for (ci, p) in Priority::ALL.into_iter().enumerate() {
        let c = &st.classes[p.index()];
        assert_eq!(
            c.submitted,
            admitted[ci].load(Ordering::Relaxed),
            "{p}: every admission the clients observed is in the ledger"
        );
        assert_eq!(
            c.expired,
            expired[ci].load(Ordering::Relaxed),
            "{p}: every local deadline expiry is in the ledger"
        );
        assert_eq!(
            c.completed + c.failed + c.abandoned,
            c.submitted,
            "{p}: every admitted request was answered or abandoned — exact closure"
        );
        // A dropped ticket counts `abandoned` only when the drop beat the
        // dispatcher's send (a buffered send that lands first is a
        // completion nobody read) — so the split is bounded, not exact.
        assert!(
            c.abandoned <= dropped[ci].load(Ordering::Relaxed),
            "{p}: abandoned ({}) cannot exceed tickets the clients dropped ({})",
            c.abandoned,
            dropped[ci].load(Ordering::Relaxed),
        );
        assert_eq!(c.failed, 0, "{p}: no request may fail");
        assert_eq!(
            c.shed + c.shed_inflight + c.shed_predicted,
            0,
            "{p}: no SLO traffic in this storm, so nothing may shed"
        );
        assert_eq!(c.queue_depth, 0, "{p}: clean shutdown leaves no work");
    }
    assert_eq!(st.completed + st.failed + st.abandoned, st.submitted);
    assert_eq!(
        st.abandoned,
        st.classes.iter().map(|c| c.abandoned).sum::<u64>(),
        "aggregate abandoned is the sum of the classes"
    );
    assert_eq!(st.queue_depth, 0);
}
