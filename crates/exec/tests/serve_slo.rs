//! The SLO lifecycle suite: every request's end-to-end deadline is
//! enforced at exactly three points — predictive admission shedding at
//! submit, pop-time eviction at wave formation, and mid-service
//! cancellation at the join — and every shed is accounted exactly once.
//!
//! The suite runs in three layers:
//!
//! 1. **Twin-exact tests** pin each shed point on the virtual clock with
//!    exact nanosecond assertions (no sleeps, no tolerance windows).
//! 2. **A property sweep** replays hundreds of fuzzer-generated random
//!    schedules and re-derives the conservation and never-early-shed
//!    invariants independently of the fuzzer's own oracles.
//! 3. **Live tests** drive the real dispatcher through each shed point
//!    (and the abandoned-ticket split); the inherently racy ones retry
//!    and skip with a note on hosts that cannot hold the race open,
//!    since their decision logic is already pinned by layers 1–2.

use rdg_exec::serve::fuzz::{generate, replay, FuzzRng};
use rdg_exec::serve::test_support::{ScriptedAdmission, ScriptedServe};
use rdg_exec::{Executor, Priority, ServeConfig, ServeError, ServeStats, Session, WaveSizing};
use rdg_graph::{Module, ModuleBuilder};
use rdg_tensor::{DType, Tensor};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// `sum(n)` with `n` fed as a main input (the serving tests' fixture).
fn sum_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("sum", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&h, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        let out = b.cond1(
            p,
            DType::I32,
            |b| {
                let one = b.const_i32(1);
                let m = b.isub(n, one)?;
                let rec = b.invoke(&h, &[m])?[0];
                b.iadd(n, rec)
            },
            |b| b.identity(zero),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let n = mb.main_input(DType::I32);
    let out = mb.invoke(&h, &[n]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    mb.finish().unwrap()
}

/// Exact accounting closure: everything admitted is delivered, shed, or
/// abandoned — nothing lost, nothing double-counted.
fn assert_closure(st: &ServeStats) {
    assert_eq!(
        st.completed + st.failed + st.shed + st.shed_inflight + st.abandoned,
        st.submitted,
        "lifecycle closure: {}",
        st.summary()
    );
    for p in Priority::ALL {
        let c = &st.classes[p.index()];
        assert_eq!(
            c.completed + c.failed + c.shed + c.shed_inflight + c.abandoned,
            c.submitted,
            "{p}: per-class lifecycle closure"
        );
    }
}

// ---------------------------------------------------------------------------
// Layer 1: twin-exact shed points on the virtual clock.
// ---------------------------------------------------------------------------

#[test]
fn twin_pop_time_eviction_is_exact() {
    // One worker, fixed waves of one: request 0 (no deadline, 5 ms of
    // service) is dispatched first; request 1 carries a 2 ms SLO. By the
    // time the dispatcher pops again the clock reads 5 ms — past the
    // deadline — so request 1 is evicted at pop, consuming no wave slot.
    let cfg = ServeConfig {
        capacity: 8,
        batch_multiple: 1,
        sizing: WaveSizing::Fixed,
        ..ServeConfig::default()
    };
    let mut s = ScriptedServe::new(1, &cfg);
    assert!(s.submit(Priority::Interactive, 0));
    assert_eq!(
        s.submit_deadline(Priority::Interactive, 1, 2_000_000),
        ScriptedAdmission::Admitted,
        "predictive shedding is inert before any EWMA exists"
    );
    let svc = |id: u64| if id == 0 { 5_000_000 } else { 1_000_000 };

    let w = s.run_wave(svc).expect("first wave");
    assert_eq!(w.ids(), vec![0]);
    assert!(
        w.evicted.is_empty(),
        "deadline still 2 ms away at first pop"
    );
    assert_eq!(s.now_ns(), 5_000_000);

    let w = s.run_wave(svc).expect("eviction wave");
    assert!(w.ids().is_empty(), "the evicted request burns no wave slot");
    assert_eq!(w.evicted.len(), 1);
    let e = &w.evicted[0];
    assert_eq!(e.id, 1);
    assert_eq!(e.class, Priority::Interactive);
    assert_eq!(e.enqueued_ns, 0);
    assert_eq!(e.deadline_ns, 2_000_000);
    assert_eq!(e.shed_ns, 5_000_000, "shed exactly at pop, not before");
    assert!(e.shed_ns >= e.deadline_ns, "never evicted early");
    assert_eq!(
        s.now_ns(),
        5_000_000,
        "an all-evicted wave consumes no service time"
    );
    assert!(s.run_wave(svc).is_none(), "queue drained");
}

#[test]
fn twin_mid_service_cancellation_is_exact() {
    // One worker, fixed waves of two: both requests pop together at t=0
    // (the 2 ms deadline of request 1 is still in the future, so no
    // eviction). The single worker runs request 0 for 5 ms; when the join
    // reaches request 1 the observation clock reads 5 ms ≥ its deadline
    // and the run has not finished — cancelled in flight.
    let cfg = ServeConfig {
        capacity: 8,
        batch_multiple: 2,
        sizing: WaveSizing::Fixed,
        ..ServeConfig::default()
    };
    let mut s = ScriptedServe::new(1, &cfg);
    assert!(s.submit(Priority::Interactive, 0));
    assert_eq!(
        s.submit_deadline(Priority::Interactive, 1, 2_000_000),
        ScriptedAdmission::Admitted
    );
    let svc = |id: u64| if id == 0 { 5_000_000 } else { 1_000_000 };

    let w = s.run_wave(svc).expect("the only wave");
    assert_eq!(w.ids(), vec![0, 1], "both popped before the deadline");
    assert!(w.evicted.is_empty());
    let done = &w.requests[0];
    assert!(!done.shed_inflight);
    assert_eq!(done.done_ns, 5_000_000);
    let cancelled = &w.requests[1];
    assert!(cancelled.shed_inflight, "deadline passed while in flight");
    assert_eq!(cancelled.deadline_ns, Some(2_000_000));
    assert_eq!(
        cancelled.done_ns, 5_000_000,
        "cancelled at the join-observation instant, not at its would-be finish"
    );
    assert!(
        cancelled.done_ns >= cancelled.deadline_ns.unwrap(),
        "never cancelled early"
    );
    assert!(s.run_wave(svc).is_none());
}

#[test]
fn twin_predictive_admission_shed_is_exact() {
    // Dynamic sizing with α=1: after one 4 ms request the EWMA is exactly
    // 4 ms. With two best-effort requests already queued on one worker
    // the predicted wait is 2 × 4 ms = 8 ms, so a best-effort submit with
    // a 5 ms SLO is shed at admission (never queued), one with a 10 ms
    // SLO is admitted, and an interactive submit with the same 5 ms SLO
    // is admitted regardless — the class gate exempts it.
    let cfg = ServeConfig {
        capacity: 16,
        batch_multiple: 1,
        sizing: WaveSizing::Dynamic {
            max_multiple: 4,
            wave_budget: Duration::from_millis(5),
            ewma_alpha: 1.0,
        },
        ..ServeConfig::default()
    };
    assert_eq!(
        cfg.predictive_shed_from,
        Some(Priority::BestEffort),
        "default gate: only best-effort traffic is predictively shed"
    );
    let mut s = ScriptedServe::new(1, &cfg);
    assert!(s.submit(Priority::Interactive, 0));
    let w = s.run_wave(|_| 4_000_000).expect("calibration wave");
    assert_eq!(w.ids(), vec![0]);
    assert_eq!(s.ewma_ns(), Some(4_000_000.0), "α=1 ⇒ EWMA = last sample");

    assert!(s.submit(Priority::BestEffort, 1));
    assert!(s.submit(Priority::BestEffort, 2));
    assert_eq!(
        s.submit_deadline(Priority::BestEffort, 3, 5_000_000),
        ScriptedAdmission::Shed,
        "predicted 8 ms wait > 5 ms SLO: shed at submit"
    );
    assert_eq!(
        s.submit_deadline(Priority::BestEffort, 4, 10_000_000),
        ScriptedAdmission::Admitted,
        "predicted 8 ms wait ≤ 10 ms SLO: admitted"
    );
    assert_eq!(
        s.submit_deadline(Priority::Interactive, 5, 5_000_000),
        ScriptedAdmission::Admitted,
        "interactive is exempt from predictive shedding"
    );
    assert_eq!(s.shed_predicted(), [0, 0, 1]);
    assert_eq!(
        s.queue_depth(),
        4,
        "the shed request was never queued; the admitted ones were"
    );
}

// ---------------------------------------------------------------------------
// Layer 2: property sweep over fuzzer-generated random schedules.
// ---------------------------------------------------------------------------

#[test]
fn property_shed_semantics_hold_across_random_schedules() {
    for seed in 0..200u64 {
        let mut rng = FuzzRng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5105);
        let workers = 1 + (seed % 3) as usize;
        let sc = generate(&mut rng, seed, 40, workers);
        let out = replay(&sc);
        assert!(
            out.violations.is_empty(),
            "seed {seed}: fuzzer oracles violated: {:?}\n{}",
            out.violations,
            sc.to_ron()
        );

        // Conservation, re-derived from scratch: the multiset of accepted
        // ids equals dispatched ∪ evicted — nothing lost, nothing
        // duplicated, and (since the union is exact) no request both shed
        // at pop and dispatched.
        let mut lhs: Vec<u64> = out.accepted.iter().map(|m| m.id).collect();
        let mut rhs: Vec<u64> = out
            .trace
            .iter()
            .map(|r| r.id)
            .chain(out.evicted.iter().map(|e| e.id))
            .collect();
        lhs.sort_unstable();
        rhs.sort_unstable();
        assert_eq!(lhs, rhs, "seed {seed}: conservation broken");
        let dispatched: HashSet<u64> = out.trace.iter().map(|r| r.id).collect();
        for e in &out.evicted {
            assert!(
                !dispatched.contains(&e.id),
                "seed {seed}: id {} both shed and dispatched",
                e.id
            );
        }

        // Never shed early, and only against a real deadline — checked
        // against the admission-time metadata, not the shed record.
        let meta: HashMap<u64, _> = out.accepted.iter().map(|m| (m.id, m)).collect();
        for e in &out.evicted {
            let m = meta[&e.id];
            assert_eq!(
                m.deadline_ns,
                Some(e.deadline_ns),
                "seed {seed}: eviction deadline disagrees with admission"
            );
            assert!(
                e.shed_ns >= e.deadline_ns,
                "seed {seed}: id {} evicted at {} before deadline {}",
                e.id,
                e.shed_ns,
                e.deadline_ns
            );
        }
        for r in out.trace.iter().filter(|r| r.shed_inflight) {
            let d = r
                .deadline_ns
                .unwrap_or_else(|| panic!("seed {seed}: id {} cancelled without a deadline", r.id));
            assert!(
                r.done_ns >= d,
                "seed {seed}: id {} cancelled at {} before deadline {d}",
                r.id,
                r.done_ns
            );
        }

        // The PR 5 ordering invariant survives mixed deadline/no-deadline
        // traffic: within a class, both the dispatched stream and the
        // evicted stream preserve admission order (aging promotes lanes,
        // never reorders within one).
        for class in Priority::ALL {
            let seqs: Vec<usize> = out
                .trace
                .iter()
                .filter(|r| r.class == class)
                .map(|r| meta[&r.id].seq)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "seed {seed}: {class} dispatch order broke admission FIFO: {seqs:?}"
            );
            let seqs: Vec<usize> = out
                .evicted
                .iter()
                .filter(|e| e.class == class)
                .map(|e| meta[&e.id].seq)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "seed {seed}: {class} eviction order broke admission FIFO: {seqs:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Goodput: shedding must *pay* under overload, not just account cleanly.
// ---------------------------------------------------------------------------

/// Drives the twin through a bursty overload: every 6 ms a burst of ten
/// interactive requests lands on a single worker that needs 1 ms each
/// (1.67× oversubscribed on average, 10× within a burst), SLO 3.5 ms,
/// lane capacity 10. Returns `(goodput, admitted)`: how many requests
/// completed within their SLO window, and how many were admitted at all.
///
/// Burstiness is the point. Under a *smooth* open-loop overload,
/// FIFO-with-eviction still serves oldest-first — exactly the requests
/// nearest their deadline — so shedding barely moves goodput. Under
/// bursts, evicting the doomed tail of one burst clears the lane before
/// the next burst arrives, and the head of every burst makes its window.
fn overloaded_goodput(with_slo: bool) -> (u64, u64) {
    const N: u64 = 300;
    const BURST: u64 = 10;
    const PERIOD_NS: u64 = 6_000_000;
    const SVC_NS: u64 = 1_000_000;
    const SLO_NS: u64 = 3_500_000;
    let arrival = |id: u64| (id / BURST) * PERIOD_NS;
    let cfg = ServeConfig {
        capacity: 10,
        batch_multiple: 1,
        sizing: WaveSizing::Fixed,
        ..ServeConfig::default()
    };
    let mut s = ScriptedServe::new(1, &cfg);
    let mut next = 0u64;
    let mut admitted = 0u64;
    let mut goodput = 0u64;
    while next < N || s.queue_depth() > 0 {
        while next < N && arrival(next) <= s.now_ns() {
            let ok = if with_slo {
                s.submit_deadline(Priority::Interactive, next, SLO_NS)
                    == ScriptedAdmission::Admitted
            } else {
                s.submit(Priority::Interactive, next)
            };
            if ok {
                admitted += 1;
            }
            next += 1;
        }
        if s.queue_depth() == 0 {
            // Idle until the next arrival (there must be one, or the
            // outer condition would have ended the loop).
            s.advance(arrival(next) - s.now_ns());
            continue;
        }
        if let Some(w) = s.run_wave(|_| SVC_NS) {
            goodput += w
                .requests
                .iter()
                .filter(|r| !r.shed_inflight && r.done_ns - r.enqueued_ns <= SLO_NS)
                .count() as u64;
        }
    }
    (goodput, admitted)
}

#[test]
fn shedding_beats_no_shedding_on_interactive_goodput_under_overload() {
    // Identical arrival process, identical queue, identical worker. The
    // no-SLO baseline drags each burst's unserved tail under the next
    // burst, so after the first burst every request waits behind stale
    // work and misses its window; with deadlines attached the doomed
    // tail is evicted at pop for free, the lane is clear when the next
    // burst lands, and the head of every burst completes in time.
    let (base_good, base_admitted) = overloaded_goodput(false);
    let (slo_good, slo_admitted) = overloaded_goodput(true);
    eprintln!(
        "goodput A/B (virtual clock): baseline {base_good}/{base_admitted} \
         within SLO, shedding {slo_good}/{slo_admitted}"
    );
    assert!(base_admitted > 0 && slo_admitted > 0);
    assert!(
        slo_good > base_good,
        "shedding must raise within-SLO goodput under overload: \
         {slo_good} (shed) vs {base_good} (baseline)"
    );
    // The win must be structural, not a one-request rounding artifact.
    assert!(
        slo_good >= base_good + 50,
        "expected a decisive goodput win: {slo_good} vs {base_good}"
    );
}

// ---------------------------------------------------------------------------
// Layer 3: the live dispatcher, one shed point at a time.
// ---------------------------------------------------------------------------

#[test]
fn live_zero_slo_request_is_shed_at_pop() {
    // A zero SLO makes pop-time eviction deterministic on the wall clock:
    // `deadline = now` is expired at any strictly later pop, and fixed
    // sizing keeps the EWMA unset so predictive shedding cannot fire
    // first. No races, no retries.
    let s = Session::new(Executor::with_threads(1), sum_module()).unwrap();
    let client = s.serve_with(ServeConfig {
        capacity: 8,
        batch_multiple: 1,
        sizing: WaveSizing::Fixed,
        ..ServeConfig::default()
    });
    let ticket = client
        .submit_slo(vec![Tensor::scalar_i32(5)], Duration::ZERO)
        .expect("zero-SLO request admits: the lane is empty and no EWMA exists");
    match ticket.wait() {
        Err(ServeError::Shed { .. }) => {}
        other => panic!("expected pop-time shed, got {other:?}"),
    }
    client.shutdown();
    let st = client.stats();
    assert_eq!(st.submitted, 1);
    assert_eq!(st.shed, 1, "counted as a pop-time shed");
    assert_eq!(st.completed, 0);
    assert_eq!(st.shed_inflight + st.shed_predicted + st.abandoned, 0);
    assert_eq!(st.classes[Priority::Interactive.index()].shed, 1);
    assert_closure(&st);
}

/// Wall-clock service time of `sum(n)` on a fresh single-thread session —
/// the calibration the racy live tests scale their SLOs from.
fn measure_service(n: i32) -> Duration {
    let s = Session::new(Executor::with_threads(1), sum_module()).unwrap();
    let t0 = Instant::now();
    s.run(vec![Tensor::scalar_i32(n)]).unwrap();
    t0.elapsed()
}

#[test]
fn live_in_flight_request_past_deadline_is_cancelled() {
    // Mid-service cancellation needs a wave of two on one worker: a
    // long request ahead of an SLO request whose deadline passes while
    // the join is still waiting on the long one. Getting both into the
    // same wave requires a blocker to hold the dispatcher open across
    // two submits — a wall-clock race, so: calibrate, retry, and skip
    // with a note if the host is too fast to hold it open.
    const BLOCK_N: i32 = 60_000;
    const LONG_N: i32 = 300_000;
    let unit = measure_service(BLOCK_N);
    for attempt in 0..5 {
        let s = Session::new(Executor::with_threads(1), sum_module()).unwrap();
        let client = s.serve_with(ServeConfig {
            capacity: 8,
            batch_multiple: 2,
            sizing: WaveSizing::Fixed,
            record_dispatch: true,
            ..ServeConfig::default()
        });
        let blocker = client.submit(vec![Tensor::scalar_i32(BLOCK_N)]).unwrap();
        while client.stats().batches < 1 {
            std::thread::yield_now();
        }
        // Deadline: comfortably after the pop (~1 blocker-unit away) but
        // well before the ~5-unit long request ahead of it finishes.
        let slo = unit * 2;
        let long = client.submit(vec![Tensor::scalar_i32(LONG_N)]).unwrap();
        let victim = client
            .submit_slo(vec![Tensor::scalar_i32(LONG_N)], slo)
            .expect("admits: lane has space and fixed sizing keeps the EWMA unset");
        blocker.wait().unwrap();
        long.wait().unwrap();
        let result = victim.wait();
        client.shutdown();
        let st = client.stats();
        let log = client.dispatch_log();
        let race_held = log.len() >= 2 && log[0].seqs == [0] && log[1].seqs == [1, 2];
        if race_held && st.shed_inflight == 1 {
            assert!(
                matches!(result, Err(ServeError::Shed { .. })),
                "cancelled ticket resolves Shed, got {result:?}"
            );
            assert_eq!(st.shed, 0, "not a pop-time shed: it was dispatched");
            assert_eq!(st.completed, 2, "blocker and the long request");
            assert_closure(&st);
            return;
        }
        // Race miss: the blocker finished early (waves split) or the
        // victim outran its cancellation. Both still account exactly.
        assert_closure(&st);
        eprintln!(
            "attempt {attempt}: race missed (log={log:?}, {})",
            st.summary()
        );
    }
    eprintln!("host too fast to hold the blocker race open; skipping live half");
}

#[test]
fn live_predictive_shed_rejects_at_submit_when_backlog_exceeds_slo() {
    // Predictive shedding needs a real EWMA (one completed dynamic wave)
    // and a best-effort backlog. A long blocker pins the worker so the
    // backlog cannot drain between our submits; if the blocker finishes
    // early the attempt is retried.
    for attempt in 0..5 {
        let s = Session::new(Executor::with_threads(1), sum_module()).unwrap();
        let client = s.serve_with(ServeConfig {
            capacity: 16,
            batch_multiple: 1,
            sizing: WaveSizing::Dynamic {
                max_multiple: 4,
                wave_budget: Duration::from_millis(5),
                ewma_alpha: 1.0,
            },
            ..ServeConfig::default()
        });
        // Calibration wave: one completed request publishes the EWMA.
        client
            .submit(vec![Tensor::scalar_i32(60_000)])
            .unwrap()
            .wait()
            .unwrap();
        while client.service_ewma_ns().is_none() {
            std::thread::yield_now();
        }
        let ewma = client.service_ewma_ns().unwrap();
        // Blocker wave: pin the worker, then pile up a best-effort
        // backlog of two behind it.
        let blocker = client.submit(vec![Tensor::scalar_i32(300_000)]).unwrap();
        while client.stats().batches < 2 {
            std::thread::yield_now();
        }
        let backlog: Vec<_> = (0..2)
            .map(|_| {
                client
                    .submit_with(Priority::BestEffort, vec![Tensor::scalar_i32(5)])
                    .unwrap()
            })
            .collect();
        // Predicted wait ≥ 2 × EWMA on one worker; an SLO of EWMA/2 is
        // always below it, so the submit must shed — unless the backlog
        // already drained (blocker finished: race miss, retry).
        let slo = Duration::from_nanos(ewma / 2);
        let verdict =
            client.submit_slo_with(Priority::BestEffort, vec![Tensor::scalar_i32(5)], slo);
        let depth_live = client.stats().queue_depth;
        blocker.wait().unwrap();
        for t in backlog {
            t.wait().unwrap();
        }
        client.shutdown();
        let st = client.stats();
        if depth_live == 0 {
            assert_closure(&st);
            eprintln!("attempt {attempt}: blocker finished early, retrying");
            continue;
        }
        match verdict {
            Err(ServeError::Shed { .. }) => {}
            other => panic!("expected predictive shed at submit, got {other:?}"),
        }
        assert_eq!(st.shed_predicted, 1);
        assert_eq!(
            st.classes[Priority::BestEffort.index()].shed_predicted,
            1,
            "charged to the class that was shed"
        );
        assert_eq!(
            st.submitted, 4,
            "a predictively shed request is never admitted"
        );
        assert_closure(&st);
        return;
    }
    eprintln!("host too fast to keep a backlog pinned; skipping live half");
}

#[test]
fn live_dropped_ticket_counts_abandoned_not_completed() {
    // The abandoned split: a ticket dropped before delivery must land in
    // `abandoned`, not `completed`. The drop has to beat the dispatcher's
    // send, so a long blocker pins the worker while the victim's ticket
    // is discarded; if the blocker finishes first the send wins the race
    // legitimately (the buffered result simply goes unread) — retry.
    for attempt in 0..5 {
        let s = Session::new(Executor::with_threads(1), sum_module()).unwrap();
        let client = s.serve_with(ServeConfig {
            capacity: 8,
            batch_multiple: 1,
            sizing: WaveSizing::Fixed,
            ..ServeConfig::default()
        });
        let blocker = client.submit(vec![Tensor::scalar_i32(300_000)]).unwrap();
        while client.stats().batches < 1 {
            std::thread::yield_now();
        }
        let victim = client.submit(vec![Tensor::scalar_i32(5)]).unwrap();
        drop(victim);
        blocker.wait().unwrap();
        client.shutdown();
        let st = client.stats();
        assert_closure(&st);
        if st.abandoned == 1 {
            assert_eq!(st.submitted, 2);
            assert_eq!(st.completed, 1, "only the blocker was delivered");
            assert_eq!(
                st.classes[Priority::Interactive.index()].abandoned,
                1,
                "charged to the abandoning class"
            );
            return;
        }
        eprintln!(
            "attempt {attempt}: send beat the drop ({}), retrying",
            st.summary()
        );
    }
    eprintln!("host too fast to abandon before delivery; skipping live half");
}
