//! Virtual-time executor: correctness and scheduling-model properties on
//! model-shaped workloads.

use rdg_exec::sim::{CostModel, SimExecutor};
use rdg_exec::{Executor, ModulePlan, ParamStore, Session};
use rdg_graph::{GraphRef, Module, ModuleBuilder};
use rdg_tensor::{DType, Tensor};
use std::sync::Arc;

/// Balanced binary recursion over f32 work (tanh per node).
fn tree_module(depth: i32) -> Module {
    let mut mb = ModuleBuilder::new();
    let h = mb.declare_subgraph("t", &[DType::I32, DType::F32], &[DType::F32]);
    mb.define_subgraph(&h, |b| {
        let d = b.input(0)?;
        let x = b.input(1)?;
        let zero = b.const_i32(0);
        let p = b.igt(d, zero)?;
        let out = b.cond1(
            p,
            DType::F32,
            |b| {
                let one = b.const_i32(1);
                let d2 = b.isub(d, one)?;
                let xl = b.scale(x, 0.3)?;
                let xr = b.scale(x, 0.7)?;
                let l = b.invoke(&h, &[d2, xl])?[0];
                let r = b.invoke(&h, &[d2, xr])?[0];
                b.add(l, r)
            },
            |b| b.tanh(x),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let d0 = mb.const_i32(depth);
    let x0 = mb.const_f32(0.9);
    let out = mb.invoke(&h, &[d0, x0]).unwrap();
    mb.set_outputs(&[out[0]]).unwrap();
    mb.finish().unwrap()
}

/// Linear (chain) recursion of the same total node count order.
fn chain_module(len: i32) -> Module {
    let mut mb = ModuleBuilder::new();
    let limit = mb.const_i32(len);
    let i0 = mb.const_i32(0);
    let x0 = mb.const_f32(0.9);
    let outs = mb
        .while_loop(
            "chain",
            &[i0, x0],
            |b, s| b.ilt(s[0], limit),
            |b, s| {
                let one = b.const_i32(1);
                let i = b.iadd(s[0], one)?;
                let x = b.tanh(s[1])?;
                Ok(vec![i, x])
            },
        )
        .unwrap();
    mb.set_outputs(&[outs[1]]).unwrap();
    mb.finish().unwrap()
}

#[test]
fn sim_matches_real_executor_values() {
    let m = tree_module(6);
    let plan = ModulePlan::new(Arc::new(m.clone())).unwrap();
    let params = Arc::new(ParamStore::from_module(&plan.module));
    let sim = SimExecutor::new(4);
    let sim_out = sim.run(&plan, &params, vec![], None, None).unwrap();

    let sess = Session::new(Executor::with_threads(2), m).unwrap();
    let real_out = sess.run(vec![]).unwrap();
    assert_eq!(
        sim_out.outputs[0].as_f32_scalar().unwrap().to_bits(),
        real_out[0].as_f32_scalar().unwrap().to_bits(),
        "virtual-time execution must compute identical values"
    );
}

#[test]
fn tree_scales_with_workers_chain_does_not() {
    // The paper's whole story in one assertion: extra workers speed up
    // the tree recursion but cannot help the chain.
    let tree = ModulePlan::new(Arc::new(tree_module(8))).unwrap();
    let chain = ModulePlan::new(Arc::new(chain_module(255))).unwrap();
    let params_t = Arc::new(ParamStore::from_module(&tree.module));
    let params_c = Arc::new(ParamStore::from_module(&chain.module));

    let run = |plan: &Arc<ModulePlan>, params: &Arc<ParamStore>, w: usize| {
        SimExecutor::new(w)
            .run(plan, params, vec![], None, None)
            .unwrap()
            .virtual_ns
    };
    let tree_1 = run(&tree, &params_t, 1);
    let tree_32 = run(&tree, &params_t, 32);
    let chain_1 = run(&chain, &params_c, 1);
    let chain_32 = run(&chain, &params_c, 32);

    let tree_speedup = tree_1 / tree_32;
    let chain_speedup = chain_1 / chain_32;
    assert!(
        tree_speedup > 4.0,
        "tree speedup with 32 workers: {tree_speedup:.2}"
    );
    // The loop body contains two independent chains (counter and value), so
    // the chain enjoys a small constant speedup — but it must stay bounded
    // while the tree's grows with the frontier.
    assert!(
        chain_speedup < 3.0,
        "chain speedup must be bounded: {chain_speedup:.2}"
    );
    assert!(
        tree_speedup > 1.5 * chain_speedup,
        "tree must out-scale chain: {tree_speedup:.2} vs {chain_speedup:.2}"
    );
}

#[test]
fn cost_model_charges_matmul_by_macs() {
    let cm = CostModel::default();
    let a_small = Tensor::zeros([1, 8]);
    let b_small = Tensor::zeros([8, 8]);
    let out_small = Tensor::zeros([1, 8]);
    let a_big = Tensor::zeros([1, 128]);
    let b_big = Tensor::zeros([128, 128]);
    let out_big = Tensor::zeros([1, 128]);
    let small = cm.op_cost(
        &rdg_graph::OpKind::MatMul,
        &[a_small, b_small],
        &[out_small],
    );
    let big = cm.op_cost(&rdg_graph::OpKind::MatMul, &[a_big, b_big], &[out_big]);
    // 128³/8³-ish MAC ratio on the work term; dispatch floor keeps the
    // ratio below the raw 4096×.
    assert!(big > small * 4.0, "big {big} vs small {small}");
    let tiny = cm.op_cost(&rdg_graph::OpKind::Identity, &[], &[]);
    assert!(tiny >= cm.dispatch_ns, "every op pays dispatch");
}

#[test]
fn sim_work_is_invariant_to_worker_count() {
    let plan = ModulePlan::new(Arc::new(tree_module(7))).unwrap();
    let params = Arc::new(ParamStore::from_module(&plan.module));
    let w1 = SimExecutor::new(1)
        .run(&plan, &params, vec![], None, None)
        .unwrap();
    let w16 = SimExecutor::new(16)
        .run(&plan, &params, vec![], None, None)
        .unwrap();
    assert_eq!(w1.ops, w16.ops, "same schedule, same op count");
    assert!((w1.total_work_ns - w16.total_work_ns).abs() < 1e-6);
    assert!(w16.parallelism() > w1.parallelism());
}

#[test]
fn fairness_across_graph_refs() {
    // Main-graph-only modules run under the sim too (no frames beyond root).
    let mut mb = ModuleBuilder::new();
    let a = mb.const_f32(2.0);
    let b = mb.tanh(a).unwrap();
    mb.set_outputs(&[b]).unwrap();
    let plan = ModulePlan::new(Arc::new(mb.finish().unwrap())).unwrap();
    let params = Arc::new(ParamStore::from_module(&plan.module));
    let r = SimExecutor::new(2)
        .run(&plan, &params, vec![], None, None)
        .unwrap();
    assert_eq!(r.frames, 1, "root frame only");
    assert_eq!(r.outputs[0].as_f32_scalar().unwrap(), 2.0f32.tanh());
    let _ = GraphRef::Main; // silence unused-import style lints in old rustc
}
