//! The batched Fold executor: level-by-level forward and backward.

use crate::plan::FoldPlan;
use rdg_data::Instance;
use rdg_exec::{GradStore, ParamStore};
use rdg_graph::{GraphError, ModuleBuilder};
use rdg_models::params::{Cell, ModelParams};
use rdg_models::ModelConfig;
use rdg_nn::Linear;
use rdg_tensor::{ops, Tensor, TensorError};
use std::sync::Arc;

/// Saved activations of one level (the Fold equivalent of the backprop
/// cache: values are retained per level, not per node).
enum LevelTape {
    /// TreeRNN / RNTN: gathered input and level output.
    Simple { x: Tensor, h: Tensor },
    /// TreeLSTM: gate activations plus child cell states.
    Lstm {
        x: Tensor,
        i: Tensor,
        o: Tensor,
        u: Tensor,
        tc: Tensor,
        /// Internal levels only: forget gates and gathered child cells.
        fl: Option<(Tensor, Tensor)>, // (F_l, C_l)
        fr: Option<(Tensor, Tensor)>,
    },
}

/// Everything the backward pass needs from one forward pass.
pub struct Tape {
    leaf: LevelTape,
    levels: Vec<LevelTape>,
    roots_h: Tensor,
    logits: Tensor,
}

/// Depth-wise batched executor for the three sentiment models.
pub struct FoldEngine {
    cfg: ModelConfig,
    mp: ModelParams,
    params: Arc<ParamStore>,
}

fn ids(v: &[i32]) -> Tensor {
    Tensor::from_i32([v.len()], v.to_vec()).expect("length matches")
}

impl FoldEngine {
    /// Creates an engine with freshly initialized parameters.
    pub fn new(cfg: ModelConfig) -> Result<Self, GraphError> {
        let mut mb = ModuleBuilder::new();
        let mp = ModelParams::register(&mut mb, &cfg);
        let c = mb.const_f32(0.0);
        mb.set_outputs(&[c])?;
        let module = mb.finish()?;
        let params = Arc::new(ParamStore::from_module(&module));
        Ok(FoldEngine { cfg, mp, params })
    }

    /// Shares an existing parameter store (e.g. the recursive session's).
    pub fn set_params(&mut self, params: Arc<ParamStore>) {
        self.params = params;
    }

    /// The parameter store.
    pub fn params(&self) -> &Arc<ParamStore> {
        &self.params
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn lin(&self, l: Linear, x: &Tensor) -> Result<Tensor, TensorError> {
        let w = self.params.read(l.w);
        let b = self.params.read(l.b);
        ops::add_bias(&ops::matmul(x, &w)?, &b)
    }

    /// Batched forward pass over a plan: returns `(mean loss, logits, tape)`.
    pub fn forward(&self, plan: &FoldPlan) -> Result<(f32, Tensor, Tape), TensorError> {
        let d = self.cfg.hidden;
        let n = plan.total_nodes;
        let mut h_buf = Tensor::zeros([n, d]);
        let mut c_buf = Tensor::zeros([n, d]); // used by LSTM only

        // Level 0: all leaves, one batched lookup + cell.
        let words = ids(&plan.leaf_words);
        let leaf_ids = ids(&plan.leaf_nodes);
        let emb = self.params.read(self.mp.embedding.table);
        let e = ops::gather_rows(&emb, &words)?;
        let _keep_e = &e;
        let leaf_tape = match &self.mp.cell {
            Cell::Rnn(cell) => {
                let h = ops::tanh(&self.lin(cell.leaf, &e)?)?;
                ops::scatter_add_rows(&mut h_buf, &leaf_ids, &h)?;
                LevelTape::Simple { x: e.clone(), h }
            }
            Cell::Rntn(cell) => {
                let h = ops::tanh(&self.lin(cell.leaf, &e)?)?;
                ops::scatter_add_rows(&mut h_buf, &leaf_ids, &h)?;
                LevelTape::Simple { x: e.clone(), h }
            }
            Cell::Lstm(cell) => {
                let i = ops::sigmoid(&self.lin(cell.leaf_i, &e)?)?;
                let o = ops::sigmoid(&self.lin(cell.leaf_o, &e)?)?;
                let u = ops::tanh(&self.lin(cell.leaf_u, &e)?)?;
                let c = ops::mul(&i, &u)?;
                let tc = ops::tanh(&c)?;
                let h = ops::mul(&o, &tc)?;
                ops::scatter_add_rows(&mut h_buf, &leaf_ids, &h)?;
                ops::scatter_add_rows(&mut c_buf, &leaf_ids, &c)?;
                let _ = c;
                LevelTape::Lstm {
                    x: e.clone(),
                    i,
                    o,
                    u,
                    tc,
                    fl: None,
                    fr: None,
                }
            }
        };

        // Internal levels: gather children, one batched cell per level.
        let mut level_tapes = Vec::with_capacity(plan.levels.len());
        for level in &plan.levels {
            let li = ids(&level.left);
            let ri = ids(&level.right);
            let ni = ids(&level.nodes);
            let hl = ops::gather_rows(&h_buf, &li)?;
            let hr = ops::gather_rows(&h_buf, &ri)?;
            let x = ops::concat_cols(&hl, &hr)?;
            let tape = match &self.mp.cell {
                Cell::Rnn(cell) => {
                    let h = ops::tanh(&self.lin(cell.combine, &x)?)?;
                    ops::scatter_add_rows(&mut h_buf, &ni, &h)?;
                    LevelTape::Simple { x, h }
                }
                Cell::Rntn(cell) => {
                    let v = self.params.read(cell.v);
                    let bil = ops::bilinear(&x, &v)?;
                    let lin = self.lin(cell.combine, &x)?;
                    let h = ops::tanh(&ops::add(&bil, &lin)?)?;
                    ops::scatter_add_rows(&mut h_buf, &ni, &h)?;
                    LevelTape::Simple { x, h }
                }
                Cell::Lstm(cell) => {
                    let cl = ops::gather_rows(&c_buf, &li)?;
                    let cr = ops::gather_rows(&c_buf, &ri)?;
                    let i = ops::sigmoid(&self.lin(cell.int_i, &x)?)?;
                    let fl = ops::sigmoid(&self.lin(cell.int_fl, &x)?)?;
                    let fr = ops::sigmoid(&self.lin(cell.int_fr, &x)?)?;
                    let o = ops::sigmoid(&self.lin(cell.int_o, &x)?)?;
                    let u = ops::tanh(&self.lin(cell.int_u, &x)?)?;
                    let c = ops::add(
                        &ops::add(&ops::mul(&i, &u)?, &ops::mul(&fl, &cl)?)?,
                        &ops::mul(&fr, &cr)?,
                    )?;
                    let tc = ops::tanh(&c)?;
                    let h = ops::mul(&o, &tc)?;
                    ops::scatter_add_rows(&mut h_buf, &ni, &h)?;
                    ops::scatter_add_rows(&mut c_buf, &ni, &c)?;
                    let _ = c;
                    LevelTape::Lstm {
                        x,
                        i,
                        o,
                        u,
                        tc,
                        fl: Some((fl, cl)),
                        fr: Some((fr, cr)),
                    }
                }
            };
            level_tapes.push(tape);
        }

        // Classifier head over all roots at once.
        let roots = ids(&plan.roots);
        let labels = ids(&plan.labels);
        let roots_h = ops::gather_rows(&h_buf, &roots)?;
        let logits = self.lin(self.mp.classifier, &roots_h)?;
        let losses = ops::softmax_xent(&logits, &labels)?;
        let loss = ops::mean_all(&losses)?.as_f32_scalar()?;
        Ok((
            loss,
            logits.clone(),
            Tape {
                leaf: leaf_tape,
                levels: level_tapes,
                roots_h,
                logits,
            },
        ))
    }

    /// Batched backward pass, accumulating parameter gradients into `grads`.
    pub fn backward(
        &self,
        plan: &FoldPlan,
        tape: &Tape,
        grads: &GradStore,
    ) -> Result<(), TensorError> {
        let d = self.cfg.hidden;
        let n = plan.total_nodes;
        let b = plan.roots.len();

        // Head: d(mean CE)/d(logits).
        let labels = ids(&plan.labels);
        let dy = Tensor::full([b], 1.0 / b as f32);
        let dlogits = ops::softmax_xent_grad(&tape.logits, &labels, &dy)?;
        self.lin_backward(self.mp.classifier, &tape.roots_h, &dlogits, grads)?;
        let d_roots = ops::matmul_bt(&dlogits, &self.params.read(self.mp.classifier.w))?;

        let mut dh = Tensor::zeros([n, d]);
        let mut dc = Tensor::zeros([n, d]);
        ops::scatter_add_rows(&mut dh, &ids(&plan.roots), &d_roots)?;

        // Internal levels, deepest first.
        for (level, tape_l) in plan.levels.iter().zip(tape.levels.iter()).rev() {
            let ni = ids(&level.nodes);
            let li = ids(&level.left);
            let ri = ids(&level.right);
            let dh_l = ops::gather_rows(&dh, &ni)?;
            match (&self.mp.cell, tape_l) {
                (Cell::Rnn(cell), LevelTape::Simple { x, h }) => {
                    let da = ops::tanh_grad(h, &dh_l)?;
                    self.lin_backward(cell.combine, x, &da, grads)?;
                    let dx = ops::matmul_bt(&da, &self.params.read(cell.combine.w))?;
                    let dhl = ops::slice_cols(&dx, 0, d)?;
                    let dhr = ops::slice_cols(&dx, d, 2 * d)?;
                    ops::scatter_add_rows(&mut dh, &li, &dhl)?;
                    ops::scatter_add_rows(&mut dh, &ri, &dhr)?;
                }
                (Cell::Rntn(cell), LevelTape::Simple { x, h }) => {
                    let da = ops::tanh_grad(h, &dh_l)?;
                    let v = self.params.read(cell.v);
                    self.lin_backward(cell.combine, x, &da, grads)?;
                    grads.accumulate(cell.v, &ops::bilinear_grad_v(x, &v, &da)?)?;
                    let dx_lin = ops::matmul_bt(&da, &self.params.read(cell.combine.w))?;
                    let dx_bil = ops::bilinear_grad_x(x, &v, &da)?;
                    let dx = ops::add(&dx_lin, &dx_bil)?;
                    let dhl = ops::slice_cols(&dx, 0, d)?;
                    let dhr = ops::slice_cols(&dx, d, 2 * d)?;
                    ops::scatter_add_rows(&mut dh, &li, &dhl)?;
                    ops::scatter_add_rows(&mut dh, &ri, &dhr)?;
                }
                (
                    Cell::Lstm(cell),
                    LevelTape::Lstm {
                        x,
                        i,
                        o,
                        u,
                        tc,
                        fl,
                        fr,
                    },
                ) => {
                    let dc_l = ops::gather_rows(&dc, &ni)?;
                    let (f_l, c_l) = fl.as_ref().expect("internal level");
                    let (f_r, c_r) = fr.as_ref().expect("internal level");
                    // dH → dO, dC.
                    let do_ = ops::mul(&dh_l, tc)?;
                    let dtc = ops::mul(&dh_l, o)?;
                    let dcv = ops::add(&dc_l, &ops::tanh_grad(tc, &dtc)?)?;
                    // Gate gradients.
                    let di = ops::mul(&dcv, u)?;
                    let du = ops::mul(&dcv, i)?;
                    let dfl = ops::mul(&dcv, c_l)?;
                    let dfr = ops::mul(&dcv, c_r)?;
                    let dcl = ops::mul(&dcv, f_l)?;
                    let dcr = ops::mul(&dcv, f_r)?;
                    ops::scatter_add_rows(&mut dc, &li, &dcl)?;
                    ops::scatter_add_rows(&mut dc, &ri, &dcr)?;
                    // Pre-activation gradients and dX.
                    let mut dx = Tensor::zeros([level.len(), 2 * d]);
                    for (lin, act, dact) in [
                        (cell.int_i, i, &di),
                        (cell.int_fl, f_l, &dfl),
                        (cell.int_fr, f_r, &dfr),
                        (cell.int_o, o, &do_),
                    ] {
                        let da = ops::sigmoid_grad(act, dact)?;
                        self.lin_backward(lin, x, &da, grads)?;
                        dx = ops::add(&dx, &ops::matmul_bt(&da, &self.params.read(lin.w))?)?;
                    }
                    let dau = ops::tanh_grad(u, &du)?;
                    self.lin_backward(cell.int_u, x, &dau, grads)?;
                    dx = ops::add(&dx, &ops::matmul_bt(&dau, &self.params.read(cell.int_u.w))?)?;
                    let dhl = ops::slice_cols(&dx, 0, d)?;
                    let dhr = ops::slice_cols(&dx, d, 2 * d)?;
                    ops::scatter_add_rows(&mut dh, &li, &dhl)?;
                    ops::scatter_add_rows(&mut dh, &ri, &dhr)?;
                }
                _ => return Err(TensorError::invalid("fold: tape/cell mismatch")),
            }
        }

        // Leaf level.
        let leaf_ids = ids(&plan.leaf_nodes);
        let words = ids(&plan.leaf_words);
        let dh_leaf = ops::gather_rows(&dh, &leaf_ids)?;
        let de = match (&self.mp.cell, &tape.leaf) {
            (Cell::Rnn(cell), LevelTape::Simple { x: e, h }) => {
                let da = ops::tanh_grad(h, &dh_leaf)?;
                self.lin_backward(cell.leaf, e, &da, grads)?;
                ops::matmul_bt(&da, &self.params.read(cell.leaf.w))?
            }
            (Cell::Rntn(cell), LevelTape::Simple { x: e, h }) => {
                let da = ops::tanh_grad(h, &dh_leaf)?;
                self.lin_backward(cell.leaf, e, &da, grads)?;
                ops::matmul_bt(&da, &self.params.read(cell.leaf.w))?
            }
            (
                Cell::Lstm(cell),
                LevelTape::Lstm {
                    x: e, i, o, u, tc, ..
                },
            ) => {
                let dc_leaf = ops::gather_rows(&dc, &leaf_ids)?;
                let do_ = ops::mul(&dh_leaf, tc)?;
                let dtc = ops::mul(&dh_leaf, o)?;
                let dcv = ops::add(&dc_leaf, &ops::tanh_grad(tc, &dtc)?)?;
                let di = ops::mul(&dcv, u)?;
                let du = ops::mul(&dcv, i)?;
                let mut de = Tensor::zeros([plan.leaf_words.len(), self.cfg.embed]);
                for (lin, act, dact) in [(cell.leaf_i, i, &di), (cell.leaf_o, o, &do_)] {
                    let da = ops::sigmoid_grad(act, dact)?;
                    self.lin_backward(lin, e, &da, grads)?;
                    de = ops::add(&de, &ops::matmul_bt(&da, &self.params.read(lin.w))?)?;
                }
                let dau = ops::tanh_grad(u, &du)?;
                self.lin_backward(cell.leaf_u, e, &dau, grads)?;
                de = ops::add(
                    &de,
                    &ops::matmul_bt(&dau, &self.params.read(cell.leaf_u.w))?,
                )?;
                de
            }
            _ => return Err(TensorError::invalid("fold: leaf tape/cell mismatch")),
        };
        // Row-sparse embedding gradient.
        let table_like = self.params.read(self.mp.embedding.table);
        grads.accumulate_rows(self.mp.embedding.table, &table_like, &words, &de)?;
        Ok(())
    }

    fn lin_backward(
        &self,
        l: Linear,
        x: &Tensor,
        da: &Tensor,
        grads: &GradStore,
    ) -> Result<(), TensorError> {
        grads.accumulate(l.w, &ops::matmul_at(x, da)?)?;
        grads.accumulate(l.b, &ops::sum_axis0(da)?)?;
        Ok(())
    }

    /// Inference over a batch: plan + batched forward.
    pub fn infer(&self, batch: &[Instance]) -> Result<(f32, Tensor), TensorError> {
        let plan = FoldPlan::build(batch);
        let (loss, logits, _) = self.forward(&plan)?;
        Ok((loss, logits))
    }

    /// One training step (no parameter update): plan + forward + backward.
    pub fn train_step(&self, batch: &[Instance], grads: &GradStore) -> Result<f32, TensorError> {
        grads.clear();
        let plan = FoldPlan::build(batch);
        let (loss, _, tape) = self.forward(&plan)?;
        self.backward(&plan, &tape, grads)?;
        Ok(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_data::{Dataset, DatasetConfig, Split};
    use rdg_models::ModelKind;

    fn batch(n: usize) -> Vec<Instance> {
        let cfg = DatasetConfig {
            vocab: 100,
            n_train: n,
            n_valid: 0,
            min_len: 3,
            max_len: 10,
            ..DatasetConfig::default()
        };
        Dataset::generate(cfg).split(Split::Train).to_vec()
    }

    #[test]
    fn fold_forward_runs_all_kinds() {
        for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
            let engine = FoldEngine::new(ModelConfig::tiny(kind, 4)).unwrap();
            let (loss, logits) = engine.infer(&batch(4)).unwrap();
            assert!(loss.is_finite() && loss > 0.0, "{kind:?}");
            assert_eq!(logits.shape().dims(), &[4, 2]);
        }
    }

    #[test]
    fn fold_training_accumulates_all_gradients() {
        for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
            let engine = FoldEngine::new(ModelConfig::tiny(kind, 4)).unwrap();
            let grads = GradStore::new(engine.params().len());
            let loss = engine.train_step(&batch(4), &grads).unwrap();
            assert!(loss.is_finite(), "{kind:?}");
            let with_grads = engine
                .params()
                .ids()
                .filter(|&p| grads.get(p).is_some())
                .count();
            assert!(
                with_grads >= engine.params().len() - 1,
                "{kind:?}: {}/{} params got gradients",
                with_grads,
                engine.params().len()
            );
        }
    }
}
