//! Depth-wise dynamic batching: the TensorFlow Fold stand-in (paper §6.4).
//!
//! Fold-style execution takes a *batch of trees*, groups nodes of the same
//! depth and operation across all instances, and runs each group as one
//! batched kernel (one big matmul per level instead of one small matmul per
//! node). The paper's characterization, which this crate reproduces
//! faithfully:
//!
//! * the batching decision is made **depth-wise**, requiring the tree
//!   structure *before* execution (which is why Table 3's dynamically
//!   structured TD-TreeLSTM is unsupported);
//! * "the ungrouping and regrouping of tree nodes across multiple depths
//!   lead to numerous memory reallocations and copies" — the gathers and
//!   scatters in [`FoldEngine::forward`]/[`FoldEngine::backward`] are real
//!   copies whose cost shows up in the measurements;
//! * in exchange, per-node scheduling overhead disappears and kernels are
//!   large — the regime where batching hardware (the paper's GPU) wins.
//!
//! The engine bypasses the dataflow graph entirely (Fold is its own
//! runtime), but shares parameters with the graph-based implementations
//! through the same [`rdg_exec::ParamStore`], so outputs are directly
//! comparable.

pub mod engine;
pub mod plan;

pub use engine::FoldEngine;
pub use plan::{FoldPlan, Level};
