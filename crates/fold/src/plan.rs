//! Fold preprocessing: depth-wise grouping of a batch of trees.

use rdg_data::{Instance, TreeNode};

/// One internal-node level: all nodes of depth `d` across the batch.
#[derive(Clone, Debug, Default)]
pub struct Level {
    /// Global node ids (row in the state buffer) of this level's nodes.
    pub nodes: Vec<i32>,
    /// Global ids of their left children.
    pub left: Vec<i32>,
    /// Global ids of their right children.
    pub right: Vec<i32>,
}

impl Level {
    /// Number of nodes batched at this level.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the level is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The batched execution plan for one batch of trees.
///
/// Building this plan is Fold's per-batch preprocessing cost; it is part of
/// the measured time in the benchmarks, as it is in the paper.
#[derive(Clone, Debug)]
pub struct FoldPlan {
    /// Total nodes across the batch (state-buffer rows).
    pub total_nodes: usize,
    /// Word ids of all leaves (level 0), batch-wide.
    pub leaf_words: Vec<i32>,
    /// Global ids of all leaves, aligned with `leaf_words`.
    pub leaf_nodes: Vec<i32>,
    /// Internal levels, by increasing depth (level `i` only depends on
    /// leaves and levels `< i`).
    pub levels: Vec<Level>,
    /// Global ids of each instance's root.
    pub roots: Vec<i32>,
    /// Labels, aligned with `roots`.
    pub labels: Vec<i32>,
}

impl FoldPlan {
    /// Groups `batch` depth-wise.
    pub fn build(batch: &[Instance]) -> FoldPlan {
        let total_nodes: usize = batch.iter().map(|i| i.tree.len()).sum();
        let mut leaf_words = Vec::new();
        let mut leaf_nodes = Vec::new();
        let mut levels: Vec<Level> = Vec::new();
        let mut roots = Vec::with_capacity(batch.len());
        let mut labels = Vec::with_capacity(batch.len());
        let mut offset = 0i32;
        for inst in batch {
            let n = inst.tree.len();
            let mut depth = vec![0usize; n];
            for (i, node) in inst.tree.nodes.iter().enumerate() {
                match *node {
                    TreeNode::Leaf { word } => {
                        leaf_words.push(word);
                        leaf_nodes.push(offset + i as i32);
                    }
                    TreeNode::Internal { left, right } => {
                        depth[i] = 1 + depth[left].max(depth[right]);
                        let d = depth[i] - 1; // level index (0 = directly above leaves)
                        if levels.len() <= d {
                            levels.resize_with(d + 1, Level::default);
                        }
                        levels[d].nodes.push(offset + i as i32);
                        levels[d].left.push(offset + left as i32);
                        levels[d].right.push(offset + right as i32);
                    }
                }
            }
            roots.push(offset + inst.tree.root() as i32);
            labels.push(inst.label);
            offset += n as i32;
        }
        FoldPlan {
            total_nodes,
            leaf_words,
            leaf_nodes,
            levels,
            roots,
            labels,
        }
    }

    /// Largest level width: the effective batching factor Fold achieves.
    pub fn max_level_width(&self) -> usize {
        self.levels
            .iter()
            .map(Level::len)
            .chain(std::iter::once(self.leaf_words.len()))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_data::{Dataset, DatasetConfig, Split, TreeShape};

    fn batch(shape: TreeShape, n: usize) -> Vec<Instance> {
        let cfg = DatasetConfig {
            vocab: 50,
            n_train: n,
            n_valid: 0,
            min_len: 4,
            max_len: 9,
            shape,
            ..DatasetConfig::default()
        };
        Dataset::generate(cfg).split(Split::Train).to_vec()
    }

    #[test]
    fn plan_covers_every_node_exactly_once() {
        let b = batch(TreeShape::Moderate, 4);
        let plan = FoldPlan::build(&b);
        let mut seen = vec![false; plan.total_nodes];
        for &g in plan.leaf_nodes.iter() {
            assert!(!seen[g as usize], "leaf {g} duplicated");
            seen[g as usize] = true;
        }
        for level in &plan.levels {
            for &g in &level.nodes {
                assert!(!seen[g as usize], "node {g} duplicated");
                seen[g as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every node scheduled");
    }

    #[test]
    fn children_precede_parents_across_levels() {
        let b = batch(TreeShape::Moderate, 3);
        let plan = FoldPlan::build(&b);
        // A node's children must be leaves or in strictly earlier levels.
        let mut level_of = vec![-1i32; plan.total_nodes]; // -1 = leaf
        for (li, level) in plan.levels.iter().enumerate() {
            for &g in &level.nodes {
                level_of[g as usize] = li as i32;
            }
        }
        for (li, level) in plan.levels.iter().enumerate() {
            for (&l, &r) in level.left.iter().zip(&level.right) {
                assert!(level_of[l as usize] < li as i32);
                assert!(level_of[r as usize] < li as i32);
            }
        }
    }

    #[test]
    fn balanced_trees_have_wide_levels_linear_have_narrow() {
        let bal = FoldPlan::build(&batch(TreeShape::Balanced, 8));
        let lin = FoldPlan::build(&batch(TreeShape::Linear, 8));
        // Linear combs: every internal level has at most one node per tree.
        for level in &lin.levels {
            assert!(level.len() <= 8);
        }
        // The balanced batch must offer strictly more batching at level 0.
        assert!(
            bal.levels[0].len() >= lin.levels[0].len(),
            "balanced level-0 width {} vs linear {}",
            bal.levels[0].len(),
            lin.levels[0].len()
        );
    }

    #[test]
    fn roots_and_labels_aligned() {
        let b = batch(TreeShape::Moderate, 5);
        let plan = FoldPlan::build(&b);
        assert_eq!(plan.roots.len(), 5);
        assert_eq!(plan.labels.len(), 5);
        let mut offset = 0i32;
        for (i, inst) in b.iter().enumerate() {
            assert_eq!(plan.roots[i], offset + inst.tree.root() as i32);
            assert_eq!(plan.labels[i], inst.label);
            offset += inst.tree.len() as i32;
        }
    }
}
