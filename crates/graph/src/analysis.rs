//! Static analysis of modules: work, span, and parallelism bounds.
//!
//! The paper's performance story is Brent's law applied to dataflow: a
//! recursive graph over a tree exposes `work / span` parallelism (≈ N/log N
//! for balanced trees), while the iterative encoding's span *equals* its
//! work (a chain). These estimators compute both quantities for a module by
//! unfolding its call structure to a bounded depth, and are used by the
//! benches to report the theoretical ceiling next to measured speedups.

use crate::graph::{Graph, NodeId};
use crate::module::{GraphRef, Module};
use crate::op::OpKind;
use std::collections::HashMap;

/// Work/span estimate for one graph or module unfolding.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkSpan {
    /// Total operations executed (unit cost each).
    pub work: f64,
    /// Critical-path length (operations, unit cost each).
    pub span: f64,
}

impl WorkSpan {
    /// Average available parallelism (`work / span`).
    pub fn parallelism(&self) -> f64 {
        if self.span > 0.0 {
            self.work / self.span
        } else {
            0.0
        }
    }
}

/// Per-opkind histogram of a single graph (no unfolding).
pub fn op_histogram(g: &Graph) -> HashMap<&'static str, usize> {
    let mut h = HashMap::new();
    for n in &g.nodes {
        *h.entry(n.op.mnemonic()).or_insert(0) += 1;
    }
    h
}

/// Estimates work and span of executing `gref`, unfolding `Invoke`s and
/// assuming *both* branches of every `Cond` are explored to depth
/// `max_depth` (beyond it, calls count as a single op).
///
/// This is an upper bound on the real execution (which takes one branch),
/// but ratios between encodings of the same model are meaningful: a
/// recursive tree unfolds with `span ≈ depth · per-node-span` while a
/// tail-recursive loop unfolds with `span ≈ work`.
pub fn work_span(m: &Module, gref: GraphRef, max_depth: usize) -> WorkSpan {
    let mut memo: HashMap<(GraphRef, usize), WorkSpan> = HashMap::new();
    ws_graph(m, gref, max_depth, &mut memo)
}

fn ws_graph(
    m: &Module,
    gref: GraphRef,
    depth: usize,
    memo: &mut HashMap<(GraphRef, usize), WorkSpan>,
) -> WorkSpan {
    if let Some(&v) = memo.get(&(gref, depth)) {
        return v;
    }
    // Pre-insert a conservative placeholder to cut infinite recursion on
    // depth-0 self reference (shouldn't occur: depth decreases per call).
    let g = m.graph(gref);
    let order = match g.topo_order("ws") {
        Ok(o) => o,
        Err(_) => {
            return WorkSpan {
                work: f64::INFINITY,
                span: f64::INFINITY,
            };
        }
    };
    let mut work = 0.0f64;
    let mut dist: HashMap<NodeId, f64> = HashMap::new();
    let mut max_span = 0.0f64;
    for nid in order {
        let node = g.node(nid);
        let (w, s) = match &node.op {
            OpKind::Invoke { sub, .. } => {
                if depth == 0 {
                    (1.0, 1.0)
                } else {
                    let inner = ws_graph(m, GraphRef::Sub(*sub), depth - 1, memo);
                    (1.0 + inner.work, 1.0 + inner.span)
                }
            }
            OpKind::Cond {
                sub_then, sub_else, ..
            } => {
                if depth == 0 {
                    (1.0, 1.0)
                } else {
                    let t = ws_graph(m, GraphRef::Sub(*sub_then), depth - 1, memo);
                    let e = ws_graph(m, GraphRef::Sub(*sub_else), depth - 1, memo);
                    // Upper bound: the heavier branch.
                    (1.0 + t.work.max(e.work), 1.0 + t.span.max(e.span))
                }
            }
            _ => (1.0, 1.0),
        };
        work += w;
        let in_span = node
            .inputs
            .iter()
            .map(|p| dist.get(&p.node).copied().unwrap_or(0.0))
            .fold(0.0f64, f64::max);
        let d = in_span + s;
        max_span = max_span.max(d);
        dist.insert(nid, d);
    }
    let v = WorkSpan {
        work,
        span: max_span,
    };
    memo.insert((gref, depth), v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use rdg_tensor::DType;

    fn chain(n: usize) -> Module {
        let mut mb = ModuleBuilder::new();
        let mut x = mb.const_f32(0.0);
        for _ in 0..n {
            x = mb.add_const(x, 1.0).unwrap();
        }
        mb.set_outputs(&[x]).unwrap();
        mb.finish().unwrap()
    }

    #[test]
    fn chain_span_equals_work() {
        let m = chain(10);
        let ws = work_span(&m, GraphRef::Main, 4);
        assert_eq!(ws.work, 11.0);
        assert_eq!(ws.span, 11.0);
        assert!((ws.parallelism() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn diamond_has_parallelism() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(1.0);
        let l = mb.tanh(a).unwrap();
        let r = mb.sigmoid(a).unwrap();
        let j = mb.add(l, r).unwrap();
        mb.set_outputs(&[j]).unwrap();
        let m = mb.finish().unwrap();
        let ws = work_span(&m, GraphRef::Main, 0);
        assert_eq!(ws.work, 4.0);
        assert_eq!(ws.span, 3.0, "a → (l | r) → j");
        assert!(ws.parallelism() > 1.3);
    }

    /// A binary recursion unfolds with work 2^d but span ~d — the statics
    /// behind the paper's Figure 11.
    #[test]
    fn binary_recursion_work_grows_faster_than_span() {
        let mut mb = ModuleBuilder::new();
        let h = mb.declare_subgraph("t", &[DType::I32], &[DType::I32]);
        mb.define_subgraph(&h, |b| {
            let n = b.input(0)?;
            let zero = b.const_i32(0);
            let p = b.igt(n, zero)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| {
                    let one = b.const_i32(1);
                    let m2 = b.isub(n, one)?;
                    let l = b.invoke(&h, &[m2])?[0];
                    let r = b.invoke(&h, &[m2])?[0];
                    b.iadd(l, r)
                },
                |b| b.identity(n),
            )?;
            Ok(vec![out])
        })
        .unwrap();
        let s = mb.const_i32(6);
        let out = mb.invoke(&h, &[s]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let m = mb.finish().unwrap();

        let shallow = work_span(&m, GraphRef::Main, 4);
        let deep = work_span(&m, GraphRef::Main, 10);
        // Work roughly doubles per extra unfold level; span adds a constant.
        assert!(
            deep.work / shallow.work > 8.0,
            "work ratio {}",
            deep.work / shallow.work
        );
        assert!(
            deep.span / shallow.span < 4.0,
            "span ratio {}",
            deep.span / shallow.span
        );
        assert!(deep.parallelism() > shallow.parallelism());
    }

    #[test]
    fn histogram_counts_ops() {
        let m = chain(3);
        let h = op_histogram(&m.main);
        assert_eq!(h["AddConst"], 3);
        assert_eq!(h["Const"], 1);
    }
}
