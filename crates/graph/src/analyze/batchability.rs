//! Static batchability: which nodes can the serving executor fuse across
//! concurrent requests, and how much of each graph's compute does that
//! cover?
//!
//! The serving executor groups ready node-firings by `GroupKey` (plan,
//! graph, node) and stacks their row-vector operands into one matrix
//! kernel call. Whether a node is *eligible* at all is a pure function of
//! its [`OpKind`] — captured here by [`fuse_class`], which is the single
//! source of truth: `rdg_exec::batch::fuse_kind` delegates to it, so the
//! static prediction is a superset of anything the runtime ever fuses, by
//! construction.
//!
//! The pass reports per-graph coverage (fraction of compute nodes that are
//! fuse-eligible) and warns ([`codes::FUSION_INELIGIBLE`]) about
//! compute-*heavy* ineligible ops — the softmax family — inside **hot**
//! (recursive) SubGraphs, where the miss is paid once per recursion level
//! per request. Cheap ineligible ops (`Tanh`, `ConcatCols`, …) are memory
//! bound and deliberately unfused, so they are not worth a warning.

use super::{codes, node_diag, Diagnostic, Severity};
use crate::graph::NodeId;
use crate::module::{GraphRef, Module};
use crate::op::OpKind;
use crate::subgraph::SubGraphId;
use std::collections::HashSet;

/// How a fused group shares operands across stacked requests.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FuseClass {
    /// Requests stack as rows of the first operand (weights shared).
    RowsShared,
    /// Requests stack as columns; the first operand is shared.
    ColsShared,
}

/// The fuse signature of an op under the serving executor's cross-request
/// batcher. `None` means the op never fuses. This is the single source of
/// truth — the runtime batcher delegates here.
pub fn fuse_class(op: &OpKind) -> Option<FuseClass> {
    match op {
        OpKind::MatMul | OpKind::MatMulBT | OpKind::AddBias | OpKind::Bilinear => {
            Some(FuseClass::RowsShared)
        }
        OpKind::MatMulAT => Some(FuseClass::ColsShared),
        _ => None,
    }
}

/// Ops that do real arithmetic (the denominator of fusion coverage).
/// Structural, constant, and bookkeeping ops are excluded.
fn is_compute(op: &OpKind) -> bool {
    !matches!(
        op,
        OpKind::Input { .. }
            | OpKind::Const(_)
            | OpKind::Param(_)
            | OpKind::Identity
            | OpKind::Invoke { .. }
            | OpKind::Cond { .. }
            | OpKind::FwdValue { .. }
            | OpKind::FwdZeros { .. }
            | OpKind::GradSink { .. }
            | OpKind::GradSinkRows { .. }
            | OpKind::ZerosLike
            | OpKind::OnesLike
            | OpKind::ZerosDyn { .. }
    )
}

/// Heavy ops whose per-level cost rivals a GEMV: missing fusion on these
/// inside a recursive SubGraph is worth surfacing.
fn is_heavy(op: &OpKind) -> bool {
    matches!(
        op,
        OpKind::Softmax | OpKind::LogSoftmax | OpKind::SoftmaxXent
    )
}

/// Fusion coverage of one graph.
pub struct GraphCoverage {
    /// Which graph.
    pub gref: GraphRef,
    /// Graph name (main or the SubGraph's name).
    pub name: String,
    /// Nodes whose op is fuse-eligible.
    pub eligible: Vec<NodeId>,
    /// Number of compute nodes considered.
    pub n_compute: usize,
    /// `true` when the graph lies on a recursive cycle (runs O(depth)
    /// times per inference).
    pub hot: bool,
}

impl GraphCoverage {
    /// Fraction of compute nodes that are fuse-eligible (0 when the graph
    /// has no compute nodes).
    pub fn coverage(&self) -> f64 {
        if self.n_compute == 0 {
            0.0
        } else {
            self.eligible.len() as f64 / self.n_compute as f64
        }
    }
}

/// Module-wide batchability summary.
pub struct BatchabilityReport {
    /// One entry per graph, main first.
    pub graphs: Vec<GraphCoverage>,
    /// Eligible `(graph, node)` pairs, for ⊇ checks against runtime fuse
    /// decisions.
    eligible: HashSet<(GraphRef, NodeId)>,
}

impl BatchabilityReport {
    /// Is this node statically predicted fuse-eligible?
    pub fn is_eligible(&self, gref: GraphRef, node: NodeId) -> bool {
        self.eligible.contains(&(gref, node))
    }

    /// Coverage over hot graphs only — the number that predicts serving
    /// fusion benefit (cold graphs fire once per request).
    pub fn hot_coverage(&self) -> f64 {
        let (mut el, mut n) = (0usize, 0usize);
        for g in self.graphs.iter().filter(|g| g.hot) {
            el += g.eligible.len();
            n += g.n_compute;
        }
        if n == 0 {
            0.0
        } else {
            el as f64 / n as f64
        }
    }
}

/// Classifies every node and warns about heavy ineligible ops in hot
/// SubGraphs. `hot[k]` comes from the recursion pass.
pub fn check_batchability(
    m: &Module,
    hot: &[bool],
    diags: &mut Vec<Diagnostic>,
) -> BatchabilityReport {
    let mut grefs = vec![(GraphRef::Main, false)];
    grefs.extend((0..m.subgraphs.len()).map(|k| (GraphRef::Sub(SubGraphId(k as u32)), hot[k])));

    let mut graphs = Vec::with_capacity(grefs.len());
    let mut eligible_set = HashSet::new();
    for (gref, is_hot) in grefs {
        let g = m.graph(gref);
        let mut eligible = Vec::new();
        let mut n_compute = 0usize;
        for (i, n) in g.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            if is_compute(&n.op) {
                n_compute += 1;
            }
            if fuse_class(&n.op).is_some() {
                eligible.push(id);
                eligible_set.insert((gref, id));
            } else if is_hot && is_heavy(&n.op) {
                diags.push(node_diag(
                    m,
                    gref,
                    id,
                    Severity::Warning,
                    codes::FUSION_INELIGIBLE,
                    Vec::new(),
                    "compute-heavy op in a recursive SubGraph cannot fuse across requests; \
                     it will run once per recursion level per request"
                        .to_string(),
                ));
            }
        }
        graphs.push(GraphCoverage {
            gref,
            name: m.graph_name(gref),
            eligible,
            n_compute,
            hot: is_hot,
        });
    }
    BatchabilityReport {
        graphs,
        eligible: eligible_set,
    }
}
