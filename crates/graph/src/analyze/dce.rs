//! Analysis-driven dead code elimination.
//!
//! Removes nodes the liveness pass would flag [`super::codes::DEAD_NODE`]:
//! nodes that contribute — transitively — to no declared output, gradient
//! sink, effectful call site, or keep-set entry. Formal `Input` nodes are
//! always retained (they are signature positions, not dead code).
//!
//! The primary client is `rdg-autodiff`: reverse-mode rules emit gradient
//! contributions speculatively, and chains whose tail reaches a node with
//! no gradient (e.g. a `ZerosDyn` state-table origin) end up dead. Pruning
//! them keeps generated training modules warning-clean under the analyzer
//! and saves the executor the wasted kernel launches.
//!
//! Cross-graph references (`FwdValue`/`FwdZeros` in gradient SubGraphs)
//! are always accompanied by a keep-set entry on the referenced forward
//! port, and keep-set entries are liveness roots — so pruning one graph
//! can never dangle a reference held by another.

use super::liveness::{effectful_subgraphs, live_set};
use crate::graph::{Graph, NodeId};
use crate::module::{GraphRef, Module};
use crate::op::OpKind;
use crate::subgraph::SubGraphId;

/// Removes dead nodes from every graph in the module, remapping node ids
/// in edges, declared outputs, and keep-sets. Returns the number of nodes
/// removed.
pub fn prune_dead(m: &mut Module) -> usize {
    let effectful = effectful_subgraphs(m);
    let mut grefs = vec![GraphRef::Main];
    grefs.extend((0..m.subgraphs.len()).map(|k| GraphRef::Sub(SubGraphId(k as u32))));

    let mut removed = 0;
    for gref in grefs {
        let mut live = live_set(m, gref, &effectful);
        let g = m.graph(gref);
        for (i, n) in g.nodes.iter().enumerate() {
            if matches!(n.op, OpKind::Input { .. }) {
                live[i] = true;
            }
        }
        if live.iter().all(|&l| l) {
            continue;
        }
        removed += live.iter().filter(|&&l| !l).count();

        // Old id -> new id for retained nodes, preserving order (the graph
        // stays topologically sorted: removing nodes cannot create a back
        // edge among the survivors).
        let mut remap = vec![NodeId(u32::MAX); live.len()];
        let mut next = 0u32;
        for (i, &l) in live.iter().enumerate() {
            if l {
                remap[i] = NodeId(next);
                next += 1;
            }
        }

        let g = graph_mut(m, gref);
        let mut kept = Vec::with_capacity(next as usize);
        let mut kept_dtypes = Vec::with_capacity(next as usize);
        let dtypes = std::mem::take(&mut g.out_dtypes);
        for ((i, mut n), dt) in std::mem::take(&mut g.nodes)
            .into_iter()
            .enumerate()
            .zip(dtypes)
        {
            if !live[i] {
                continue;
            }
            for p in &mut n.inputs {
                p.node = remap[p.node.0 as usize];
            }
            kept.push(n);
            kept_dtypes.push(dt);
        }
        g.nodes = kept;
        g.out_dtypes = kept_dtypes;
        for p in &mut g.outputs {
            p.node = remap[p.node.0 as usize];
        }
        for n in &mut g.input_nodes {
            *n = remap[n.0 as usize];
        }
        for sets in [&mut m.keep_sets, &mut m.shape_keep_sets] {
            if let Some(set) = sets.get_mut(&gref) {
                *set = set.iter().map(|&(n, p)| (remap[n.0 as usize], p)).collect();
            }
        }
    }
    removed
}

fn graph_mut(m: &mut Module, r: GraphRef) -> &mut Graph {
    match r {
        GraphRef::Main => &mut m.main,
        GraphRef::Sub(id) => &mut m.subgraphs[id.0 as usize].graph,
    }
}
