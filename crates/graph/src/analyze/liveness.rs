//! Liveness and definite-publish checks.
//!
//! Per graph: every declared output port must be published exactly once
//! ([`codes::DOUBLE_PUBLISH`] otherwise), and every node must contribute —
//! transitively — to an output, a gradient sink, or a keep-set entry
//! (the backprop caches pin forward values by `(node, port)`), else it is
//! flagged [`codes::DEAD_NODE`]. Module-wide, a declared parameter that no
//! live node reads (`Param`) or accumulates into (`GradSink*`) is flagged
//! [`codes::UNUSED_PARAM`].

use super::{codes, node_diag, Diagnostic, Severity};
use crate::graph::NodeId;
use crate::module::{GraphRef, Module};
use crate::op::OpKind;
use crate::subgraph::SubGraphId;
use std::collections::HashSet;

/// SubGraphs that (transitively) contain a gradient sink: invoking them is
/// a side effect, so a call site is live even when its outputs go unused.
pub(crate) fn effectful_subgraphs(m: &Module) -> Vec<bool> {
    let mut eff = vec![false; m.subgraphs.len()];
    loop {
        let mut changed = false;
        for (i, sg) in m.subgraphs.iter().enumerate() {
            if eff[i] {
                continue;
            }
            let hit = sg.graph.nodes.iter().any(|n| match &n.op {
                OpKind::Invoke { sub, .. } => eff[sub.0 as usize],
                OpKind::Cond {
                    sub_then, sub_else, ..
                } => eff[sub_then.0 as usize] || eff[sub_else.0 as usize],
                op => op.is_sink(),
            });
            if hit {
                eff[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    eff
}

/// Backward-reachability from the liveness roots of one graph: declared
/// outputs, gradient sinks, effectful call sites, and keep-set ports (the
/// executor retains those values/shapes for the backward pass).
pub(crate) fn live_set(m: &Module, gref: GraphRef, effectful: &[bool]) -> Vec<bool> {
    let g = m.graph(gref);
    let mut live = vec![false; g.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    let root = |n: NodeId, live: &mut Vec<bool>, stack: &mut Vec<NodeId>| {
        if !std::mem::replace(&mut live[n.0 as usize], true) {
            stack.push(n);
        }
    };
    for p in &g.outputs {
        root(p.node, &mut live, &mut stack);
    }
    for (i, n) in g.nodes.iter().enumerate() {
        let is_root = match &n.op {
            OpKind::Invoke { sub, .. } => effectful[sub.0 as usize],
            OpKind::Cond {
                sub_then, sub_else, ..
            } => effectful[sub_then.0 as usize] || effectful[sub_else.0 as usize],
            op => op.is_sink(),
        };
        if is_root {
            root(NodeId(i as u32), &mut live, &mut stack);
        }
    }
    for sets in [&m.keep_sets, &m.shape_keep_sets] {
        if let Some(set) = sets.get(&gref) {
            for &(n, _) in set {
                root(n, &mut live, &mut stack);
            }
        }
    }
    while let Some(n) = stack.pop() {
        for p in &g.node(n).inputs {
            root(p.node, &mut live, &mut stack);
        }
    }
    live
}

/// Runs the liveness pass over every graph in the module.
pub fn check_liveness(m: &Module, diags: &mut Vec<Diagnostic>) {
    let mut grefs = vec![GraphRef::Main];
    grefs.extend((0..m.subgraphs.len()).map(|k| GraphRef::Sub(SubGraphId(k as u32))));

    let effectful = effectful_subgraphs(m);
    let mut used_params: HashSet<u32> = HashSet::new();

    for gref in grefs {
        let g = m.graph(gref);

        // Double publish: the same (node, port) listed twice in outputs.
        let mut seen: HashSet<(NodeId, u16)> = HashSet::new();
        for p in &g.outputs {
            if !seen.insert((p.node, p.port)) {
                diags.push(node_diag(
                    m,
                    gref,
                    p.node,
                    Severity::Error,
                    codes::DOUBLE_PUBLISH,
                    vec![p.port],
                    format!("output port {p} is published more than once"),
                ));
            }
        }

        let live = live_set(m, gref, &effectful);

        for (i, n) in g.nodes.iter().enumerate() {
            if live[i] {
                match n.op {
                    OpKind::Param(pid) => {
                        used_params.insert(pid.0);
                    }
                    OpKind::GradSink { param } | OpKind::GradSinkRows { param } => {
                        used_params.insert(param.0);
                    }
                    _ => {}
                }
                continue;
            }
            // Formal inputs are part of the signature, not dead code: a
            // SubGraph may legitimately ignore an argument (e.g. one arm
            // of a conditional).
            if matches!(n.op, OpKind::Input { .. }) {
                continue;
            }
            diags.push(node_diag(
                m,
                gref,
                NodeId(i as u32),
                Severity::Warning,
                codes::DEAD_NODE,
                Vec::new(),
                "contributes to no output, sink, or retained value".to_string(),
            ));
        }
    }

    for (i, spec) in m.params.iter().enumerate() {
        if !used_params.contains(&(i as u32)) {
            diags.push(Diagnostic {
                severity: Severity::Warning,
                code: codes::UNUSED_PARAM,
                subgraph: None,
                node: None,
                ports: Vec::new(),
                message: format!(
                    "parameter '{}' ({:?}) is never read or accumulated into by any live node",
                    spec.name,
                    spec.init.shape().dims()
                ),
            });
        }
    }
}
