//! Plan-time static analysis for recursive module graphs.
//!
//! The paper's core artifact is a *statically declared* recursive dataflow
//! graph — which means every class of graph defect that an eager framework
//! only hits at run time is, here, checkable **before a single frame
//! spawns** (cf. Cortex and the TF "Recursive Function Definitions in
//! Static Dataflow Graphs" line of work). This module runs four passes over
//! a built [`Module`] and emits structured [`Diagnostic`]s:
//!
//! 1. **Interprocedural shape/dtype inference** ([`shape`]) — a fixpoint of
//!    abstract shapes (concrete dims ⊔ symbolic dims ⊔ ⊤) propagated through
//!    every op and across `Invoke`/`Cond` call sites. Rejects at build time
//!    every mismatch that would otherwise die as a runtime kernel error.
//! 2. **Recursion well-foundedness** ([`recursion`]) — SCCs of the SubGraph
//!    call graph; every recursive cycle must contain a conditionally
//!    reachable non-recursive exit.
//! 3. **Liveness / definite publish** ([`liveness`]) — every declared output
//!    produced exactly once; dead nodes and unused parameters flagged.
//! 4. **Static batchability** ([`batchability`]) — classifies each node
//!    against the serving executor's cross-request fuse signature and
//!    reports per-graph fusion coverage, so operators see *before
//!    deployment* which models will fuse.
//!
//! Entry points: [`analyze_module`] returns the full [`AnalysisReport`];
//! [`check_module`] additionally converts denied diagnostics into a
//! [`GraphError::Analysis`]. `ModuleBuilder::finish` and `ModulePlan::new`
//! both call [`check_module`] with [`AnalysisConfig::default`] (deny
//! errors, allow warnings).

pub mod batchability;
pub mod dce;
pub mod liveness;
pub mod recursion;
pub mod shape;

pub use batchability::{fuse_class, BatchabilityReport, FuseClass, GraphCoverage};
pub use dce::prune_dead;
pub use shape::{AbsDim, AbsShape, ShapeMap};

use crate::graph::GraphError;
use crate::module::{GraphRef, Module};
use crate::subgraph::SubGraphId;
use crate::NodeId;
use std::fmt;

/// Diagnostic severity: errors are definite defects (the graph *will*
/// misbehave at run time), warnings are suspicious-but-executable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum Severity {
    /// Suspicious but executable (dead code, unbounded depth, fusion gaps).
    Warning,
    /// A definite defect that would surface as a runtime failure.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes, pinned by the mutation suite and printed by
/// `rdg_lint`. Each code maps to exactly one defect class.
pub mod codes {
    /// Two ports that must agree on shape at run time definitely cannot.
    pub const SHAPE_MISMATCH: &str = "shape-mismatch";
    /// An op was wired with an operand of the wrong element type.
    pub const DTYPE_MISMATCH: &str = "dtype-mismatch";
    /// A recursive cycle has no conditionally reachable non-recursive exit.
    pub const UNGUARDED_RECURSION: &str = "unguarded-recursion";
    /// A recursion's exit branch is statically unreachable (constant guard).
    pub const UNREACHABLE_BASE_CASE: &str = "unreachable-base-case";
    /// Recursion state reaches the recursive call entirely unchanged.
    pub const DEPTH_UNBOUNDED: &str = "depth-unbounded";
    /// A node's outputs are consumed by nothing (and it is not a sink).
    pub const DEAD_NODE: &str = "dead-node";
    /// The same output port is published more than once.
    pub const DOUBLE_PUBLISH: &str = "double-publish";
    /// A declared parameter is never read by any live node.
    pub const UNUSED_PARAM: &str = "unused-param";
    /// A compute-heavy op inside a recursive (hot) SubGraph cannot fuse.
    pub const FUSION_INELIGIBLE: &str = "fusion-ineligible";
}

/// One structured finding from the analyzer.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// The SubGraph the finding anchors to; `None` for the main graph or
    /// module-level findings.
    pub subgraph: Option<SubGraphId>,
    /// The node the finding anchors to, if any.
    pub node: Option<NodeId>,
    /// Output ports involved (empty when the finding is about the whole
    /// node).
    pub ports: Vec<u16>,
    /// Human-readable rendering with node names, op kinds, and shapes.
    pub message: String,
}

impl Diagnostic {
    /// The [`GraphRef`] this diagnostic anchors to.
    pub fn graph_ref(&self) -> GraphRef {
        match self.subgraph {
            Some(id) => GraphRef::Sub(id),
            None => GraphRef::Main,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.message)
    }
}

/// Policy for converting diagnostics into build failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Fail the build on [`Severity::Error`] diagnostics (default `true`).
    pub deny_errors: bool,
    /// Fail the build on [`Severity::Warning`] diagnostics too (lint mode).
    pub deny_warnings: bool,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            deny_errors: true,
            deny_warnings: false,
        }
    }
}

impl AnalysisConfig {
    /// Permissive configuration: nothing is denied (analysis still runs and
    /// reports, but never fails the build). Used by fuzzers and generators
    /// that intentionally construct defective graphs.
    pub fn allow_all() -> Self {
        AnalysisConfig {
            deny_errors: false,
            deny_warnings: false,
        }
    }

    /// Strict lint configuration: every diagnostic is denied.
    pub fn deny_all() -> Self {
        AnalysisConfig {
            deny_errors: true,
            deny_warnings: true,
        }
    }

    /// Returns `true` if `d` fails the build under this policy.
    pub fn denies(&self, d: &Diagnostic) -> bool {
        match d.severity {
            Severity::Error => self.deny_errors,
            Severity::Warning => self.deny_warnings,
        }
    }
}

/// Everything the analyzer learned about a module.
pub struct AnalysisReport {
    /// All findings, in pass order (shape, recursion, liveness,
    /// batchability).
    pub diagnostics: Vec<Diagnostic>,
    /// Inferred abstract shapes for every output port of every node.
    pub shapes: ShapeMap,
    /// Per-graph fusion coverage under the serving executor's fuse
    /// signature.
    pub batchability: BatchabilityReport,
}

impl AnalysisReport {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Findings denied under `cfg`, i.e. those that fail the build.
    pub fn denied<'a>(&'a self, cfg: &'a AnalysisConfig) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| cfg.denies(d))
    }

    /// Returns `true` when no diagnostic was emitted at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Runs all four analysis passes over a structurally valid module.
///
/// The module must already pass [`Module::validate`]; the analyzer assumes
/// edges reference existing nodes and ports. (Both callers —
/// `ModuleBuilder::finish` and `ModulePlan::new` — validate first.)
pub fn analyze_module(m: &Module) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    let shapes = shape::infer_shapes(m, &mut diagnostics);
    let hot = recursion::check_recursion(m, &mut diagnostics);
    liveness::check_liveness(m, &mut diagnostics);
    let batchability = batchability::check_batchability(m, &hot, &mut diagnostics);
    AnalysisReport {
        diagnostics,
        shapes,
        batchability,
    }
}

/// Runs the analyzer and fails with [`GraphError::Analysis`] if any
/// diagnostic is denied under `cfg`.
///
/// On failure the error carries the first denied diagnostic's code and a
/// summary of *all* denied findings, so a build error names every defect at
/// once instead of one per rebuild.
pub fn check_module(m: &Module, cfg: &AnalysisConfig) -> crate::Result<AnalysisReport> {
    let report = analyze_module(m);
    let denied: Vec<&Diagnostic> = report.denied(cfg).collect();
    if let Some(first) = denied.first() {
        let mut msg = denied
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        if denied.len() > 1 {
            msg = format!("{} findings: {msg}", denied.len());
        }
        return Err(GraphError::Analysis {
            code: first.code,
            msg,
        });
    }
    Ok(report)
}

/// Plan-time inlinability hook: `true` when a graph body is *straight-line*
/// — every node is a plain operation, with no `Invoke`/`Cond` control flow
/// and no path-dependent or effectful autodiff ops (`FwdValue`, `FwdZeros`,
/// `GradSink*`).
///
/// Such a body can be spliced into its caller verbatim: it reads nothing
/// from the invocation path, publishes nothing into the backprop cache, and
/// produces nothing but its declared output ports — so the call frame is
/// pure overhead. `rdg-exec`'s plan specializer uses this to decide which
/// SubGraphs cost zero frames after inlining.
pub fn body_is_straight_line(g: &crate::graph::Graph) -> bool {
    use crate::op::OpKind;
    g.nodes.iter().all(|n| {
        !n.op.is_control_flow()
            && !matches!(
                n.op,
                OpKind::FwdValue { .. }
                    | OpKind::FwdZeros { .. }
                    | OpKind::GradSink { .. }
                    | OpKind::GradSinkRows { .. }
            )
    })
}

/// Internal helper shared by the passes: a diagnostic anchored at a node,
/// with the graph/node name and op mnemonic folded into the message.
pub(crate) fn node_diag(
    m: &Module,
    gref: GraphRef,
    node: NodeId,
    severity: Severity,
    code: &'static str,
    ports: Vec<u16>,
    detail: String,
) -> Diagnostic {
    let g = m.graph(gref);
    let n = g.node(node);
    Diagnostic {
        severity,
        code,
        subgraph: match gref {
            GraphRef::Main => None,
            GraphRef::Sub(id) => Some(id),
        },
        node: Some(node),
        ports,
        message: format!(
            "{}/{} ({}): {detail}",
            m.graph_name(gref),
            n.name,
            n.op.mnemonic()
        ),
    }
}
