//! Recursion well-foundedness: every recursive cycle in the SubGraph call
//! graph must contain a conditionally reachable non-recursive exit.
//!
//! The call graph has one node per SubGraph and three edge flavors:
//!
//! * **Direct** — an `Invoke` in the body: taken unconditionally whenever
//!   the body runs.
//! * **Branch** — one arm of a `Cond`: taken only when the (lazy)
//!   predicate selects it. Each branch edge knows its sibling arm.
//! * **Always** — a `Cond` arm whose predicate traces to a compile-time
//!   constant pinning this arm; the sibling arm is statically dead.
//!
//! A cycle is *guarded* when some branch edge on it has a sibling arm that
//! cannot re-enter the cycle — the recursion's base case. The check finds
//! strongly connected components (Tarjan), then iteratively discharges
//! branch edges whose sibling escapes the SCC; any cycle that survives is
//! an error: [`codes::UNREACHABLE_BASE_CASE`] when a constant predicate
//! pinned the recursive arm, [`codes::UNGUARDED_RECURSION`] otherwise.
//!
//! Two extras ride along: the returned *hot set* (SubGraphs on any
//! original-edge cycle — the ones a single inference executes repeatedly,
//! consumed by the batchability pass), and a [`codes::DEPTH_UNBOUNDED`]
//! warning for recursive calls that pass **every** argument unchanged from
//! the caller's formal inputs — structurally identical state on every
//! level, so the recursion can never bottom out by value.

use super::{codes, node_diag, Diagnostic, Severity};
use crate::graph::{Graph, NodeId, PortRef};
use crate::module::{GraphRef, Module};
use crate::op::OpKind;
use crate::subgraph::SubGraphId;

#[derive(Clone, Copy, PartialEq)]
enum EdgeKind {
    /// Unconditional `Invoke` in the source body.
    Direct,
    /// A `Cond` arm with a live sibling arm (`sibling` is its target).
    Branch { sibling: usize },
    /// A `Cond` arm pinned by a constant predicate (sibling arm is dead).
    Always,
}

struct Edge {
    from: usize,
    to: usize,
    kind: EdgeKind,
    /// The `Invoke`/`Cond` node in `from`'s body that creates this edge.
    node: NodeId,
}

/// Follows `Identity` chains to the real producer of a port.
fn trace(g: &Graph, mut p: PortRef) -> PortRef {
    loop {
        let n = g.node(p.node);
        if matches!(n.op, OpKind::Identity) {
            p = n.inputs[0];
        } else {
            return p;
        }
    }
}

/// If the port is a compile-time `i32` scalar constant, its truth value.
fn const_pred(g: &Graph, p: PortRef) -> Option<bool> {
    let p = trace(g, p);
    if let OpKind::Const(t) = &g.node(p.node).op {
        return t.as_i32_scalar().ok().map(|v| v != 0);
    }
    None
}

/// Call-graph edges among SubGraphs (edges out of main are irrelevant to
/// cycles — nothing invokes main).
fn collect_edges(m: &Module) -> Vec<Edge> {
    let mut edges = Vec::new();
    for (si, sg) in m.subgraphs.iter().enumerate() {
        for (ni, n) in sg.graph.nodes.iter().enumerate() {
            let node = NodeId(ni as u32);
            match &n.op {
                OpKind::Invoke { sub, .. } => edges.push(Edge {
                    from: si,
                    to: sub.0 as usize,
                    kind: EdgeKind::Direct,
                    node,
                }),
                OpKind::Cond {
                    sub_then, sub_else, ..
                } => {
                    let (t, e) = (sub_then.0 as usize, sub_else.0 as usize);
                    match const_pred(&sg.graph, n.inputs[0]) {
                        Some(true) => edges.push(Edge {
                            from: si,
                            to: t,
                            kind: EdgeKind::Always,
                            node,
                        }),
                        Some(false) => edges.push(Edge {
                            from: si,
                            to: e,
                            kind: EdgeKind::Always,
                            node,
                        }),
                        None => {
                            edges.push(Edge {
                                from: si,
                                to: t,
                                kind: EdgeKind::Branch { sibling: e },
                                node,
                            });
                            edges.push(Edge {
                                from: si,
                                to: e,
                                kind: EdgeKind::Branch { sibling: t },
                                node,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }
    edges
}

/// Tarjan SCC over `n` nodes with the given (alive) adjacency. Returns the
/// component id of each node; components with a cycle (size ≥ 2, or a
/// self-loop) are listed in `cyclic`.
fn sccs(n: usize, adj: &[Vec<usize>]) -> (Vec<usize>, Vec<bool>) {
    struct T<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<u32>>,
        low: Vec<u32>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: u32,
        comp: Vec<usize>,
        n_comp: usize,
    }
    impl T<'_> {
        fn visit(&mut self, v: usize) {
            self.index[v] = Some(self.next);
            self.low[v] = self.next;
            self.next += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for i in 0..self.adj[v].len() {
                let w = self.adj[v][i];
                if self.index[w].is_none() {
                    self.visit(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    self.low[v] = self.low[v].min(self.index[w].unwrap());
                }
            }
            if self.low[v] == self.index[v].unwrap() {
                loop {
                    let w = self.stack.pop().unwrap();
                    self.on_stack[w] = false;
                    self.comp[w] = self.n_comp;
                    if w == v {
                        break;
                    }
                }
                self.n_comp += 1;
            }
        }
    }
    let mut t = T {
        adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        comp: vec![0; n],
        n_comp: 0,
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    let comp = t.comp;
    let n_comp = t.n_comp;
    let mut size = vec![0usize; n_comp];
    for &c in &comp {
        size[c] += 1;
    }
    let mut cyclic = vec![false; n_comp];
    for (c, s) in size.iter().enumerate() {
        if *s >= 2 {
            cyclic[c] = true;
        }
    }
    for (v, a) in adj.iter().enumerate() {
        if a.contains(&v) {
            cyclic[comp[v]] = true;
        }
    }
    (comp, cyclic)
}

fn adjacency(n: usize, edges: &[Edge], alive: &[bool]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for (i, e) in edges.iter().enumerate() {
        if alive[i] {
            adj[e.from].push(e.to);
        }
    }
    adj
}

/// Can `start` reach any node in `targets` over the given adjacency?
fn reaches(start: usize, targets: &[bool], adj: &[Vec<usize>]) -> bool {
    let mut seen = vec![false; adj.len()];
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if targets[v] {
            return true;
        }
        if std::mem::replace(&mut seen[v], true) {
            continue;
        }
        stack.extend(adj[v].iter().copied().filter(|&w| !seen[w]));
    }
    false
}

/// Checks recursion well-foundedness and depth-boundedness. Returns the
/// hot set: `hot[k]` is `true` when SubGraph `k` lies on a call-graph
/// cycle (it executes repeatedly within a single inference).
pub fn check_recursion(m: &Module, diags: &mut Vec<Diagnostic>) -> Vec<bool> {
    let n = m.subgraphs.len();
    let edges = collect_edges(m);
    let full_adj = adjacency(n, &edges, &vec![true; edges.len()]);

    // Hot set from the original edges: anything on a cycle runs O(depth)
    // times per inference.
    let (comp0, cyclic0) = sccs(n, &full_adj);
    let hot: Vec<bool> = (0..n).map(|v| cyclic0[comp0[v]]).collect();

    // Discharge branch edges whose sibling arm escapes the cycle; iterate
    // because discharging can split an SCC and unlock further escapes.
    // Sibling reachability is tested over the *original* edges — an arm
    // that can re-enter the recursion by any path is not a base case.
    let mut alive = vec![true; edges.len()];
    loop {
        let adj = adjacency(n, &edges, &alive);
        let (comp, cyclic) = sccs(n, &adj);
        let mut changed = false;
        for (i, e) in edges.iter().enumerate() {
            if !alive[i] || comp[e.from] != comp[e.to] || !cyclic[comp[e.from]] {
                continue;
            }
            if let EdgeKind::Branch { sibling } = e.kind {
                let in_scc: Vec<bool> = (0..n).map(|v| comp[v] == comp[e.from]).collect();
                if !reaches(sibling, &in_scc, &full_adj) {
                    alive[i] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Whatever still cycles is ill-founded.
    let adj = adjacency(n, &edges, &alive);
    let (comp, cyclic) = sccs(n, &adj);
    let mut reported = vec![false; comp.iter().map(|c| c + 1).max().unwrap_or(0)];
    for (i, e) in edges.iter().enumerate() {
        if !alive[i] || comp[e.from] != comp[e.to] || !cyclic[comp[e.from]] {
            continue;
        }
        let c = comp[e.from];
        if std::mem::replace(&mut reported[c], true) {
            continue;
        }
        let members: Vec<String> = (0..n)
            .filter(|&v| comp[v] == c)
            .map(|v| m.subgraphs[v].name.clone())
            .collect();
        // Prefer anchoring at a constant-pinned Cond if the cycle has one:
        // that is the precise defect (the base case exists but is dead).
        let pinned = edges.iter().enumerate().find(|(j, e2)| {
            alive[*j]
                && e2.kind == EdgeKind::Always
                && comp[e2.from] == c
                && comp[e2.to] == c
                && cyclic[c]
        });
        let (code, anchor, detail) = match pinned {
            Some((_, e2)) => (
                codes::UNREACHABLE_BASE_CASE,
                (e2.from, e2.node),
                format!(
                    "recursive cycle {{{}}} is guarded by a constant predicate that always \
                     takes the recursive arm; the base case is statically unreachable",
                    members.join(", ")
                ),
            ),
            None => (
                codes::UNGUARDED_RECURSION,
                (e.from, e.node),
                format!(
                    "recursive cycle {{{}}} has no conditionally reachable non-recursive \
                     exit; every execution path re-enters the cycle",
                    members.join(", ")
                ),
            ),
        };
        diags.push(node_diag(
            m,
            GraphRef::Sub(SubGraphId(anchor.0 as u32)),
            anchor.1,
            Severity::Error,
            code,
            Vec::new(),
            detail,
        ));
    }

    check_depth(m, diags);
    hot
}

/// Warns when a recursive call forwards every argument unchanged from the
/// caller's formal inputs — the recursion state is provably identical at
/// every depth.
fn check_depth(m: &Module, diags: &mut Vec<Diagnostic>) {
    for (si, sg) in m.subgraphs.iter().enumerate() {
        let sid = SubGraphId(si as u32);
        // Direct self-invoke: W's body calls W. Mirrored (gradient)
        // invokes are exempt: they replay the *forward* invocation path
        // and terminate via the cached forward predicate, so unchanged
        // arguments do not imply unbounded depth.
        for (ni, node) in sg.graph.nodes.iter().enumerate() {
            if let OpKind::Invoke { sub, mirror, .. } = node.op {
                if sub == sid && !mirror && args_are_formals(&sg.graph, &node.inputs) {
                    push_depth(m, sid, NodeId(ni as u32), node.inputs.len(), diags);
                }
            }
        }
        // One level of indirection: W's body conds into a branch whose
        // body calls W with the branch's own formals, which route back to
        // W's formals through the Cond's inputs.
        for cnode in sg.graph.nodes.iter() {
            if let OpKind::Cond {
                sub_then,
                sub_else,
                n_then_in,
                ..
            } = cnode.op
            {
                for (branch, base) in [(sub_then, 1usize), (sub_else, 1 + n_then_in as usize)] {
                    let bg = &m.subgraph(branch).graph;
                    for (ni, inode) in bg.nodes.iter().enumerate() {
                        let OpKind::Invoke { sub, mirror, .. } = inode.op else {
                            continue;
                        };
                        if sub != sid || mirror {
                            continue;
                        }
                        let all_unchanged = inode.inputs.iter().enumerate().all(|(j, &p)| {
                            // invoke arg j → branch formal k → cond input
                            // (base + k) → W formal j, all through
                            // Identity only.
                            let bp = trace(bg, p);
                            let OpKind::Input { index: k, .. } = bg.node(bp.node).op else {
                                return false;
                            };
                            let Some(&cp) = cnode.inputs.get(base + k) else {
                                return false;
                            };
                            let sp = trace(&sg.graph, cp);
                            matches!(sg.graph.node(sp.node).op,
                                     OpKind::Input { index, .. } if index == j)
                        });
                        if all_unchanged && !inode.inputs.is_empty() {
                            push_depth(m, branch, NodeId(ni as u32), inode.inputs.len(), diags);
                        }
                    }
                }
            }
        }
    }
}

fn args_are_formals(g: &Graph, inputs: &[PortRef]) -> bool {
    !inputs.is_empty()
        && inputs.iter().enumerate().all(|(j, &p)| {
            let p = trace(g, p);
            matches!(g.node(p.node).op, OpKind::Input { index, .. } if index == j)
        })
}

fn push_depth(
    m: &Module,
    gref_sub: SubGraphId,
    node: NodeId,
    n_args: usize,
    diags: &mut Vec<Diagnostic>,
) {
    diags.push(node_diag(
        m,
        GraphRef::Sub(gref_sub),
        node,
        Severity::Warning,
        codes::DEPTH_UNBOUNDED,
        Vec::new(),
        format!(
            "recursive call forwards all {n_args} argument(s) unchanged from the caller's \
             inputs; the recursion state is identical at every depth"
        ),
    ));
}
